"""repro: a heterogeneous monolithic 3-D IC EDA flow.

A from-scratch Python reproduction of the Hetero-Pin-3D system: two
vertically stacked dies in *different* standard-cell technologies
(12-track at 0.90 V below, 9-track at 0.81 V above), with timing-driven
tier partitioning, heterogeneous clock-tree synthesis, and ECO
repartitioning -- plus every substrate the evaluation needs (netlist
database and generators, NLDM libraries, STA, power analysis, placement,
routing estimation, FM partitioning, CTS, and the Table IV cost model).

Quick start::

    from repro import make_library_pair, run_flow_hetero_3d

    lib12, lib9 = make_library_pair()
    design, result = run_flow_hetero_3d(
        "cpu", lib12, lib9, period_ns=1.2, scale=0.5, seed=0
    )
    print(result.row())
"""

from repro.cost.model import CostModel
from repro.flow import (
    run_flow_2d,
    run_flow_hetero_3d,
    run_flow_pin3d,
)
from repro.flow.report import FlowResult
from repro.liberty.presets import make_library_pair
from repro.netlist.generators import generate_netlist

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "FlowResult",
    "generate_netlist",
    "make_library_pair",
    "run_flow_2d",
    "run_flow_hetero_3d",
    "run_flow_pin3d",
    "__version__",
]
