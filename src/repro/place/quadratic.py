"""Analytic global placement: quadratic wirelength + bisection spreading.

The placer follows the classic two-phase analytic recipe:

1. **Quadratic solve.**  Minimize the squared-wirelength objective
   ``sum_nets w * ((x_i - x_j)^2 + (y_i - y_j)^2)`` with I/O pads and
   macros as fixed anchors.  Small nets are expanded as cliques, large
   nets as ordered chains (a cheap bounded-degree approximation of the
   star model).  The resulting Laplacian system is solved once per axis
   with a shared sparse LU factorization.

2. **Recursive bisection spreading.**  The raw quadratic solution piles
   cells at the die center, so cells are recursively split into
   capacity-proportional halves along alternating axes and mapped into
   matching subregions, preserving relative order (and thus most of the
   quadratic solution's neighborhood structure).

This is deliberately a wirelength-faithful placer rather than a
state-of-the-art one: every paper conclusion that depends on placement
(3-D footprint halving cuts wirelength ~25-35%, heterogeneous shrink cuts
it a bit more, memory nets shorten in 3-D) only needs relative fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import coo_matrix, csc_matrix
from scipy.sparse.linalg import splu

from repro.errors import PlacementError
from repro.netlist.core import Netlist
from repro.place.floorplan import Floorplan, port_positions

__all__ = ["global_place"]

#: Nets bigger than this use the chain expansion instead of a clique.
_CLIQUE_LIMIT = 4

#: Stop bisecting a region when it holds at most this many cells.
_LEAF_CELLS = 3


@dataclass
class _Problem:
    movable: list[str]
    index: dict[str, int]
    fixed_pos: dict[str, tuple[float, float]]


def _gather(netlist: Netlist, floorplan: Floorplan) -> _Problem:
    movable = sorted(
        name for name, inst in netlist.instances.items() if not inst.fixed
    )
    index = {name: i for i, name in enumerate(movable)}
    fixed_pos: dict[str, tuple[float, float]] = dict(
        port_positions(netlist, floorplan)
    )
    for inst in netlist.instances.values():
        if inst.fixed:
            if not inst.is_placed:
                raise PlacementError(f"fixed instance {inst.name} is unplaced")
            fixed_pos[inst.name] = inst.center()
    return _Problem(movable=movable, index=index, fixed_pos=fixed_pos)


def _net_pins(netlist: Netlist, net_name: str) -> list[str]:
    """Pin owners of a net: instance names, or the port name for PI nets."""
    net = netlist.nets[net_name]
    owners: list[str] = []
    if net.driver is not None:
        owners.append(net.driver[0])
    elif net_name in netlist.ports:
        owners.append(net_name)  # primary input pad anchor
    owners.extend(sink for sink, _pin in net.sinks)
    return owners


def _assemble(
    netlist: Netlist, problem: _Problem
) -> tuple[csc_matrix, np.ndarray, np.ndarray]:
    n = len(problem.movable)
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    # Edge contributions are collected as flat (index, value) streams and
    # applied in one unbuffered np.add.at pass per array below -- the bulk
    # kernel processes indices in append order, so the accumulation order
    # (and hence every float) is identical to scalar `+=` in a loop.
    d_idx: list[int] = []
    d_val: list[float] = []
    a_idx: list[int] = []
    a_x: list[float] = []
    a_y: list[float] = []

    def add_edge(a: str, b: str, w: float) -> None:
        ia = problem.index.get(a)
        ib = problem.index.get(b)
        if ia is None and ib is None:
            return
        if ia is not None and ib is not None:
            d_idx.extend((ia, ib))
            d_val.extend((w, w))
            rows.extend((ia, ib))
            cols.extend((ib, ia))
            vals.extend((-w, -w))
        elif ia is not None:
            px, py = problem.fixed_pos[b]
            d_idx.append(ia)
            d_val.append(w)
            a_idx.append(ia)
            a_x.append(w * px)
            a_y.append(w * py)
        else:
            px, py = problem.fixed_pos[a]
            d_idx.append(ib)
            d_val.append(w)
            a_idx.append(ib)
            a_x.append(w * px)
            a_y.append(w * py)

    for net_name, net in netlist.nets.items():
        if net.is_clock:
            continue  # the clock is routed by CTS, not the signal placer
        owners = _net_pins(netlist, net_name)
        owners = [o for o in owners if o in problem.index or o in problem.fixed_pos]
        unique = list(dict.fromkeys(owners))
        p = len(unique)
        if p < 2:
            continue
        if p <= _CLIQUE_LIMIT:
            w = 1.0 / (p - 1)
            for i in range(p):
                for j in range(i + 1, p):
                    add_edge(unique[i], unique[j], w)
        else:
            w = 2.0 / p
            for i in range(p - 1):
                add_edge(unique[i], unique[i + 1], w)

    diag = np.zeros(n)
    bx = np.zeros(n)
    by = np.zeros(n)
    if d_idx:
        np.add.at(diag, np.asarray(d_idx), np.asarray(d_val))
    if a_idx:
        anchor_idx = np.asarray(a_idx)
        np.add.at(bx, anchor_idx, np.asarray(a_x))
        np.add.at(by, anchor_idx, np.asarray(a_y))

    # Weak anchor to the die center keeps isolated components well-posed.
    diag += 1e-4
    rows.extend(range(n))
    cols.extend(range(n))
    vals.extend(diag)
    matrix = coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsc()
    return matrix, bx, by


def _free_area(
    region: tuple[float, float, float, float],
    blockages: list[tuple[float, float, float, float]],
) -> float:
    """Region area minus macro blockage overlap (blockages never overlap
    each other in the same plane, so plain subtraction is exact)."""
    x0, y0, x1, y1 = region
    area = max(0.0, x1 - x0) * max(0.0, y1 - y0)
    for bx0, by0, bx1, by1 in blockages:
        ox = max(0.0, min(x1, bx1) - max(x0, bx0))
        oy = max(0.0, min(y1, by1) - max(y0, by0))
        area -= ox * oy
    return max(area, 0.0)


def _split_coordinate(
    region: tuple[float, float, float, float],
    vertical: bool,
    frac: float,
    blockages: list[tuple[float, float, float, float]],
) -> float:
    """Coordinate dividing the region's *free* capacity at ``frac``."""
    x0, y0, x1, y1 = region
    lo, hi = (y0, y1) if vertical else (x0, x1)
    total = _free_area(region, blockages)
    if total <= 0:
        return lo + frac * (hi - lo)
    target = frac * total
    for _ in range(20):
        mid = 0.5 * (lo + hi)
        sub = (x0, y0, x1, mid) if vertical else (x0, y0, mid, y1)
        if _free_area(sub, blockages) < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def _spread(
    names: list[str],
    xs: np.ndarray,
    ys: np.ndarray,
    areas: np.ndarray,
    region: tuple[float, float, float, float],
    vertical: bool,
    out_x: np.ndarray,
    out_y: np.ndarray,
    order: np.ndarray,
    blockages: list[tuple[float, float, float, float]],
) -> None:
    """Recursively bisect ``order`` (indices) into free-capacity halves."""
    x0, y0, x1, y1 = region
    if len(order) == 0:
        return
    if len(order) <= _LEAF_CELLS:
        # Spread leaves evenly along the longer axis of the region,
        # preserving their relative order along that axis.
        along_x = (x1 - x0) >= (y1 - y0)
        axis = xs if along_x else ys
        leaf = order[np.argsort(axis[order], kind="stable")]
        for k, idx in enumerate(leaf):
            t = (k + 1) / (len(leaf) + 1)
            if along_x:
                out_x[idx] = x0 + t * (x1 - x0)
                out_y[idx] = y0 + 0.5 * (y1 - y0)
            else:
                out_x[idx] = x0 + 0.5 * (x1 - x0)
                out_y[idx] = y0 + t * (y1 - y0)
        return
    coord = ys if vertical else xs
    ranked = order[np.argsort(coord[order], kind="stable")]
    cum = np.cumsum(areas[ranked])
    half = cum[-1] / 2.0
    split = int(np.searchsorted(cum, half)) + 1
    split = min(max(split, 1), len(ranked) - 1)
    frac = cum[split - 1] / cum[-1]
    if vertical:
        ym = _split_coordinate(region, True, frac, blockages)
        ym = min(max(ym, y0 + 1e-6), y1 - 1e-6)
        _spread(names, xs, ys, areas, (x0, y0, x1, ym), False, out_x, out_y, ranked[:split], blockages)
        _spread(names, xs, ys, areas, (x0, ym, x1, y1), False, out_x, out_y, ranked[split:], blockages)
    else:
        xm = _split_coordinate(region, False, frac, blockages)
        xm = min(max(xm, x0 + 1e-6), x1 - 1e-6)
        _spread(names, xs, ys, areas, (x0, y0, xm, y1), True, out_x, out_y, ranked[:split], blockages)
        _spread(names, xs, ys, areas, (xm, y0, x1, y1), True, out_x, out_y, ranked[split:], blockages)


def global_place(
    netlist: Netlist,
    floorplan: Floorplan,
    *,
    area_scale: float = 1.0,
) -> None:
    """Place all movable instances inside the core region.

    ``area_scale`` shrinks cell areas during spreading; the pseudo-3-D
    stage of Pin-3D passes 0.5 so both tiers' cells share one footprint
    (the Shrunk-2D trick), while per-tier placement passes 1.0.
    Positions are written onto the instances (lower-left corners).
    """
    problem = _gather(netlist, floorplan)
    if not problem.movable:
        return
    matrix, bx, by = _assemble(netlist, problem)
    solver = splu(matrix)
    xs = solver.solve(bx)
    ys = solver.solve(by)

    areas = np.array(
        [
            netlist.instances[name].area_um2 * area_scale
            for name in problem.movable
        ]
    )
    out_x = np.empty_like(xs)
    out_y = np.empty_like(ys)
    region = (0.0, 0.0, floorplan.width_um, floorplan.height_um)
    order = np.arange(len(problem.movable))
    # Macro halos (union over tiers) are capacity holes for spreading.
    from repro.place.floorplan import MACRO_HALO

    seen: set[tuple[float, float]] = set()
    blockages: list[tuple[float, float, float, float]] = []
    for m in floorplan.macros:
        key = (round(m.x_um, 3), round(m.y_um, 3))
        if key in seen:
            continue  # macros stacked on the other tier share the hole
        seen.add(key)
        blockages.append(
            (
                m.x_um,
                m.y_um,
                m.x_um + m.width_um * (1 + MACRO_HALO),
                m.y_um + m.height_um * (1 + MACRO_HALO),
            )
        )
    _spread(
        problem.movable, xs, ys, areas, region, False, out_x, out_y, order,
        blockages,
    )

    for i, name in enumerate(problem.movable):
        inst = netlist.instances[name]
        inst.x_um = float(
            np.clip(out_x[i] - inst.cell.width_um / 2, region[0], region[2] - inst.cell.width_um)
        )
        inst.y_um = float(
            np.clip(out_y[i] - inst.cell.height_um / 2, 0.0, region[3] - inst.cell.height_um)
        )
