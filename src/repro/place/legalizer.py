"""Row-based legalization, tier-aware and capacity-guaranteed.

Each tier is legalized independently against its own library's row pitch:
the 12-track tier has taller rows than the 9-track tier, which is what the
zoomed-in layouts of Fig. 3(c) show.  Memory macros (plus halo) are
blockages carved out of the rows.

The algorithm is a deterministic two-phase scheme that provably succeeds
whenever total cell width fits total row capacity (so the flows can pack
tiers to ~90% the way the paper's densities require):

1. **Row assignment**: cells sorted by global-placement ``y`` are dealt
   into rows bottom-up, each row taking cells until its free capacity is
   reached -- so vertical order (and hence neighborhood structure) is
   preserved and no row is over-subscribed.
2. **In-row packing**: within a row, cells sorted by ``x`` are distributed
   over the row's free segments by capacity, then packed left-to-right at
   ``max(wanted_x, previous_end)`` with a right-to-left pushback pass that
   resolves any overflow against the segment end (the single-row core of
   the Abacus legalizer).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PlacementError
from repro.liberty.library import StdCellLibrary
from repro.netlist.core import Instance, Netlist
from repro.place.floorplan import Floorplan, MACRO_HALO

__all__ = ["LegalizeStats", "legalize", "row_capacity_um2"]

#: Keep a sliver of every row unfilled so x-packing has slack.
ROW_FILL_LIMIT = 0.985


def row_capacity_um2(
    floorplan: Floorplan, lib: StdCellLibrary, tier: int
) -> float:
    """Exact placeable area of one tier: free row width times pitch.

    Smaller than the smooth ``Floorplan.core_area_um2`` by the row-count
    remainder and macro-halo row rounding; area budgets must use this
    number or optimization can legally overfill the rows.
    """
    rows = _build_rows(floorplan, lib, tier)
    free = sum(s1 - s0 for _y, segs in rows for s0, s1 in segs)
    return free * lib.cell_height_um


@dataclass(frozen=True)
class LegalizeStats:
    """Quality metrics of one legalization pass."""

    cells: int
    total_displacement_um: float
    max_displacement_um: float

    @property
    def mean_displacement_um(self) -> float:
        """Average displacement per legalized cell."""
        return self.total_displacement_um / self.cells if self.cells else 0.0


def _subtract(
    segments: list[tuple[float, float]], x0: float, x1: float
) -> list[tuple[float, float]]:
    out: list[tuple[float, float]] = []
    for s0, s1 in segments:
        if x1 <= s0 or x0 >= s1:
            out.append((s0, s1))
            continue
        if x0 > s0:
            out.append((s0, x0))
        if x1 < s1:
            out.append((x1, s1))
    return out


def _build_rows(
    floorplan: Floorplan, lib: StdCellLibrary, tier: int
) -> list[tuple[float, list[tuple[float, float]]]]:
    """Rows as (y, free segments), bottom-up, with macro blockages carved."""
    pitch = lib.cell_height_um
    n_rows = int(floorplan.height_um / pitch)
    if n_rows < 1:
        raise PlacementError("die shorter than one cell row")
    rows = []
    for r in range(n_rows):
        y = r * pitch
        free: list[tuple[float, float]] = [(0.0, floorplan.width_um)]
        for m in floorplan.macros:
            if m.tier != tier:
                continue
            halo_w = m.width_um * (1 + MACRO_HALO)
            halo_h = m.height_um * (1 + MACRO_HALO)
            if m.y_um < y + pitch and m.y_um + halo_h > y:
                free = _subtract(free, m.x_um, m.x_um + halo_w)
        rows.append((y, free))
    return rows


def _pack_segment(
    cells: list[Instance], seg: tuple[float, float]
) -> tuple[float, float]:
    """Pack cells (already x-sorted) into one free segment.

    Returns (total displacement in x, max displacement in x).  The caller
    guarantees the widths fit; a greedy left-to-right pass places each
    cell at ``max(want, prev_end)`` and a right-to-left pushback clamps
    against the segment end.
    """
    s0, s1 = seg
    xs: list[float] = []
    cursor = s0
    for inst in cells:
        x = max(inst.x_um, cursor)
        xs.append(x)
        cursor = x + inst.cell.width_um
    # Pushback against the right edge.  The clamped position must satisfy
    # x + w <= limit in *float* arithmetic, not just algebra: (limit - w)
    # + w can round 1 ulp above limit, and that dust would make re-packing
    # a legal row move cells -- packing has to be exactly idempotent for
    # incremental legalization to skip untouched rows byte-safely.
    limit = s1
    for i in range(len(cells) - 1, -1, -1):
        w = cells[i].cell.width_um
        if xs[i] + w > limit:
            x = limit - w
            while x + w > limit:
                x = math.nextafter(x, -math.inf)
            xs[i] = x
        limit = xs[i]
    if xs and xs[0] < s0 - 1e-6:
        raise PlacementError("segment over-subscribed during packing")
    total = 0.0
    worst = 0.0
    for inst, x in zip(cells, xs):
        d = abs(x - inst.x_um)
        total += d
        worst = max(worst, d)
        inst.x_um = x
    return total, worst


def _collect_cells(netlist: Netlist, tier: int) -> list[Instance]:
    """Movable standard cells of one tier, in netlist order."""
    return [
        inst
        for inst in netlist.instances.values()
        if inst.tier == tier and not inst.fixed and not inst.cell.is_macro
    ]


def _check_capacity(
    cells: list[Instance],
    rows: list[tuple[float, list[tuple[float, float]]]],
    tier: int,
) -> None:
    total_width = sum(i.cell.width_um for i in cells)
    capacity = sum(s1 - s0 for _y, segs in rows for s0, s1 in segs)
    if total_width > capacity * ROW_FILL_LIMIT:
        raise PlacementError(
            f"tier {tier} utilization too high: cell width {total_width:.0f}um "
            f"exceeds {ROW_FILL_LIMIT:.0%} of row capacity {capacity:.0f}um"
        )


def _best_fit_segment(used: list[float], caps: list[float], w: float) -> int:
    """Best-fit rule shared by row assignment and the split fallback: the
    fullest segment that still fits ``w`` (lowest index on ties), or -1.

    Both phases must apply the *same* rule in decreasing-width order:
    equal-width cells are interchangeable for capacity, so phase 2
    replaying the rule over a row's width multiset reproduces the
    feasible packing phase 1 accepted the cells under.
    """
    best = -1
    best_used = -1.0
    for si, cap in enumerate(caps):
        if used[si] + w <= cap + 1e-9 and used[si] > best_used:
            best = si
            best_used = used[si]
    return best


def _assign_rows(
    cells: list[Instance],
    rows: list[tuple[float, list[tuple[float, float]]]],
    pitch: float,
    tier: int,
) -> list[list[Instance]]:
    """Phase 1: best-fit-decreasing, segment-aware row assignment.

    Wide cells (macro-ish flip-flops, x8 drives) are placed first while
    every row still has room, then the narrow majority fills the gaps --
    classic decreasing-width bin packing, which comfortably succeeds at
    the ~93-95% fills the flows run at.  Each cell targets the row
    nearest its global-placement y.  Capacity is tracked per free
    *segment*, not per row total: a macro-split row only accepts a cell
    when one of its segments can actually hold it, so every accepted row
    has a feasible segment split by construction.  Pure function of the
    input positions: it never moves a cell, so re-running it on a
    legalized tier reproduces the same assignment (which is what makes
    incremental re-legalization byte-safe).
    """
    n_rows = len(rows)
    row_groups: list[list[Instance]] = [[] for _ in rows]
    row_caps = [[s1 - s0 for s0, s1 in segs] for _y, segs in rows]
    row_used = [[0.0] * len(caps) for caps in row_caps]
    ordered = sorted(
        cells, key=lambda i: (-i.cell.width_um, i.y_um, i.name)
    )
    for inst in ordered:
        w = inst.cell.width_um
        want = min(n_rows - 1, max(0, int(inst.y_um / pitch)))
        placed_row = -1
        for radius in range(n_rows):
            for r in (want - radius, want + radius):
                if not 0 <= r < n_rows:
                    continue
                si = _best_fit_segment(row_used[r], row_caps[r], w)
                if si >= 0:
                    placed_row = r
                    row_used[r][si] += w
                    break
            if placed_row >= 0:
                break
        if placed_row < 0:
            raise PlacementError(
                f"tier {tier}: no row can host {inst.name} "
                f"(width {inst.cell.width_um:.2f}um)"
            )
        row_groups[placed_row].append(inst)
    return row_groups


def _split_row(
    group: list[Instance],
    segs: list[tuple[float, float]],
    y: float,
    tier: int,
) -> list[list[Instance]]:
    """Distribute one row's cells (x-sorted) over its free segments.

    First pass keeps x order: each segment greedily takes the next cells
    while they fit its capacity *and* want to sit before the segment's
    end -- the position guard stops a cell already packed in a later
    segment from being pulled left into slack, which makes re-splitting
    a legal row a no-op (the idempotence incremental legalization relies
    on).  The greedy can still strand a wide cell whose turn arrives at
    a nearly-full segment even though another segment has room; in that
    case the row is re-split capacity-aware -- first-fit decreasing by
    width, each cell into the feasible segment nearest its wanted x --
    and only if that also fails is the row genuinely over-subscribed.
    """
    caps = [s1 - s0 for s0, s1 in segs]
    chunks: list[list[Instance]] = [[] for _ in segs]
    used = [0.0] * len(segs)
    remaining = list(group)
    for si, cap in enumerate(caps):
        seg_end = segs[si][1]
        while (
            remaining
            and used[si] + remaining[0].cell.width_um <= cap
            and remaining[0].x_um < seg_end
        ):
            inst = remaining.pop(0)
            chunks[si].append(inst)
            used[si] += inst.cell.width_um
    if remaining:
        chunks = [[] for _ in segs]
        used = [0.0] * len(segs)
        stranded = False
        for inst in sorted(
            group, key=lambda i: (-i.cell.width_um, i.x_um, i.name)
        ):
            w = inst.cell.width_um
            best = -1
            best_d = float("inf")
            for si, (s0, s1) in enumerate(segs):
                if used[si] + w > caps[si] + 1e-6:
                    continue
                if s0 <= inst.x_um <= s1 - w:
                    d = 0.0
                else:
                    d = min(abs(inst.x_um - s0), abs(inst.x_um - (s1 - w)))
                if d < best_d:
                    best_d = d
                    best = si
            if best < 0:
                stranded = True
                break
            chunks[best].append(inst)
            used[best] += w
        if stranded:
            # Last resort: replay row assignment's best-fit-decreasing
            # rule over the same width multiset.  Phase 1 accepted these
            # cells under exactly this rule, so it succeeds whenever the
            # row intake was segment-feasible; a failure here means the
            # row is genuinely over-subscribed.
            chunks = [[] for _ in segs]
            used = [0.0] * len(segs)
            for inst in sorted(
                group, key=lambda i: (-i.cell.width_um, i.x_um, i.name)
            ):
                w = inst.cell.width_um
                si = _best_fit_segment(used, caps, w)
                if si < 0:
                    raise PlacementError(
                        f"tier {tier}: row at y={y:.1f} over-subscribed"
                    )
                chunks[si].append(inst)
                used[si] += w
        for chunk in chunks:
            chunk.sort(key=lambda i: (i.x_um, i.name))
    return chunks


def _legalize_row(
    y: float,
    segs: list[tuple[float, float]],
    group: list[Instance],
    tier: int,
) -> tuple[float, float]:
    """Phase 2 for one row: snap to the row y, split over segments, pack.

    Returns (total displacement, max displacement) over |dy| and |dx|.
    Idempotent: packing a row that is already legal moves nothing and
    contributes exactly 0.0 displacement.
    """
    group = sorted(group, key=lambda i: (i.x_um, i.name))
    total_disp = 0.0
    max_disp = 0.0
    for inst in group:
        total_disp += abs(y - inst.y_um)
        max_disp = max(max_disp, abs(y - inst.y_um))
        inst.y_um = y
    for chunk, seg in zip(_split_row(group, segs, y, tier), segs):
        if not chunk:
            continue
        t, w = _pack_segment(chunk, seg)
        total_disp += t
        max_disp = max(max_disp, w)
    return total_disp, max_disp


def legalize(
    netlist: Netlist,
    floorplan: Floorplan,
    lib: StdCellLibrary,
    tier: int,
) -> LegalizeStats:
    """Legalize all movable standard cells of one tier.

    Raises :class:`PlacementError` when total cell width genuinely exceeds
    row capacity (the flows use this as the utilization-failure signal).
    """
    rows = _build_rows(floorplan, lib, tier)
    cells = _collect_cells(netlist, tier)
    if not cells:
        return LegalizeStats(cells=0, total_displacement_um=0.0, max_displacement_um=0.0)
    for inst in cells:
        if not inst.is_placed:
            raise PlacementError(f"{inst.name} has no global placement")
    _check_capacity(cells, rows, tier)

    row_groups = _assign_rows(cells, rows, lib.cell_height_um, tier)

    total_disp = 0.0
    max_disp = 0.0
    for (y, segs), group in zip(rows, row_groups):
        if not group:
            continue
        t, w = _legalize_row(y, segs, group, tier)
        total_disp += t
        max_disp = max(max_disp, w)

    return LegalizeStats(
        cells=len(cells),
        total_displacement_um=total_disp,
        max_displacement_um=max_disp,
    )
