"""Row-based legalization, tier-aware and capacity-guaranteed.

Each tier is legalized independently against its own library's row pitch:
the 12-track tier has taller rows than the 9-track tier, which is what the
zoomed-in layouts of Fig. 3(c) show.  Memory macros (plus halo) are
blockages carved out of the rows.

The algorithm is a deterministic two-phase scheme that provably succeeds
whenever total cell width fits total row capacity (so the flows can pack
tiers to ~90% the way the paper's densities require):

1. **Row assignment**: cells sorted by global-placement ``y`` are dealt
   into rows bottom-up, each row taking cells until its free capacity is
   reached -- so vertical order (and hence neighborhood structure) is
   preserved and no row is over-subscribed.
2. **In-row packing**: within a row, cells sorted by ``x`` are distributed
   over the row's free segments by capacity, then packed left-to-right at
   ``max(wanted_x, previous_end)`` with a right-to-left pushback pass that
   resolves any overflow against the segment end (the single-row core of
   the Abacus legalizer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlacementError
from repro.liberty.library import StdCellLibrary
from repro.netlist.core import Instance, Netlist
from repro.place.floorplan import Floorplan, MACRO_HALO

__all__ = ["LegalizeStats", "legalize", "row_capacity_um2"]

#: Keep a sliver of every row unfilled so x-packing has slack.
ROW_FILL_LIMIT = 0.985


def row_capacity_um2(
    floorplan: Floorplan, lib: StdCellLibrary, tier: int
) -> float:
    """Exact placeable area of one tier: free row width times pitch.

    Smaller than the smooth ``Floorplan.core_area_um2`` by the row-count
    remainder and macro-halo row rounding; area budgets must use this
    number or optimization can legally overfill the rows.
    """
    rows = _build_rows(floorplan, lib, tier)
    free = sum(s1 - s0 for _y, segs in rows for s0, s1 in segs)
    return free * lib.cell_height_um


@dataclass(frozen=True)
class LegalizeStats:
    """Quality metrics of one legalization pass."""

    cells: int
    total_displacement_um: float
    max_displacement_um: float

    @property
    def mean_displacement_um(self) -> float:
        """Average displacement per legalized cell."""
        return self.total_displacement_um / self.cells if self.cells else 0.0


def _subtract(
    segments: list[tuple[float, float]], x0: float, x1: float
) -> list[tuple[float, float]]:
    out: list[tuple[float, float]] = []
    for s0, s1 in segments:
        if x1 <= s0 or x0 >= s1:
            out.append((s0, s1))
            continue
        if x0 > s0:
            out.append((s0, x0))
        if x1 < s1:
            out.append((x1, s1))
    return out


def _build_rows(
    floorplan: Floorplan, lib: StdCellLibrary, tier: int
) -> list[tuple[float, list[tuple[float, float]]]]:
    """Rows as (y, free segments), bottom-up, with macro blockages carved."""
    pitch = lib.cell_height_um
    n_rows = int(floorplan.height_um / pitch)
    if n_rows < 1:
        raise PlacementError("die shorter than one cell row")
    rows = []
    for r in range(n_rows):
        y = r * pitch
        free: list[tuple[float, float]] = [(0.0, floorplan.width_um)]
        for m in floorplan.macros:
            if m.tier != tier:
                continue
            halo_w = m.width_um * (1 + MACRO_HALO)
            halo_h = m.height_um * (1 + MACRO_HALO)
            if m.y_um < y + pitch and m.y_um + halo_h > y:
                free = _subtract(free, m.x_um, m.x_um + halo_w)
        rows.append((y, free))
    return rows


def _pack_segment(
    cells: list[Instance], seg: tuple[float, float]
) -> tuple[float, float]:
    """Pack cells (already x-sorted) into one free segment.

    Returns (total displacement in x, max displacement in x).  The caller
    guarantees the widths fit; a greedy left-to-right pass places each
    cell at ``max(want, prev_end)`` and a right-to-left pushback clamps
    against the segment end.
    """
    s0, s1 = seg
    xs: list[float] = []
    cursor = s0
    for inst in cells:
        x = max(inst.x_um, cursor)
        xs.append(x)
        cursor = x + inst.cell.width_um
    # pushback against the right edge
    limit = s1
    for i in range(len(cells) - 1, -1, -1):
        w = cells[i].cell.width_um
        if xs[i] + w > limit:
            xs[i] = limit - w
        limit = xs[i]
    if xs and xs[0] < s0 - 1e-6:
        raise PlacementError("segment over-subscribed during packing")
    total = 0.0
    worst = 0.0
    for inst, x in zip(cells, xs):
        d = abs(x - inst.x_um)
        total += d
        worst = max(worst, d)
        inst.x_um = x
    return total, worst


def legalize(
    netlist: Netlist,
    floorplan: Floorplan,
    lib: StdCellLibrary,
    tier: int,
) -> LegalizeStats:
    """Legalize all movable standard cells of one tier.

    Raises :class:`PlacementError` when total cell width genuinely exceeds
    row capacity (the flows use this as the utilization-failure signal).
    """
    rows = _build_rows(floorplan, lib, tier)
    cells: list[Instance] = [
        inst
        for inst in netlist.instances.values()
        if inst.tier == tier and not inst.fixed and not inst.cell.is_macro
    ]
    if not cells:
        return LegalizeStats(cells=0, total_displacement_um=0.0, max_displacement_um=0.0)
    for inst in cells:
        if not inst.is_placed:
            raise PlacementError(f"{inst.name} has no global placement")

    total_width = sum(i.cell.width_um for i in cells)
    capacity = sum(s1 - s0 for _y, segs in rows for s0, s1 in segs)
    if total_width > capacity * ROW_FILL_LIMIT:
        raise PlacementError(
            f"tier {tier} utilization too high: cell width {total_width:.0f}um "
            f"exceeds {ROW_FILL_LIMIT:.0%} of row capacity {capacity:.0f}um"
        )

    # Phase 1: first-fit-decreasing row assignment.  Wide cells (macro-ish
    # flip-flops, x8 drives) are placed first while every row still has
    # room, then the narrow majority fills the gaps -- classic FFD bin
    # packing, which comfortably succeeds at the ~93-95% fills the flows
    # run at.  Each cell targets the row nearest its global-placement y.
    pitch = lib.cell_height_um
    n_rows = len(rows)
    row_groups: list[list[Instance]] = [[] for _ in rows]
    row_free = [sum(s1 - s0 for s0, s1 in segs) for _y, segs in rows]
    ordered = sorted(
        cells, key=lambda i: (-i.cell.width_um, i.y_um, i.name)
    )
    y_disp = 0.0
    y_disp_max = 0.0
    for inst in ordered:
        want = min(n_rows - 1, max(0, int(inst.y_um / pitch)))
        placed_row = -1
        for radius in range(n_rows):
            for r in (want - radius, want + radius):
                if 0 <= r < n_rows and row_free[r] >= inst.cell.width_um:
                    placed_row = r
                    break
            if placed_row >= 0:
                break
        if placed_row < 0:
            raise PlacementError(
                f"tier {tier}: no row can host {inst.name} "
                f"(width {inst.cell.width_um:.2f}um)"
            )
        row_groups[placed_row].append(inst)
        row_free[placed_row] -= inst.cell.width_um
        d = abs(placed_row - want) * pitch
        y_disp += d
        y_disp_max = max(y_disp_max, d)

    # Phase 2: per row, split cells over free segments by x and pack.
    total_disp = 0.0
    max_disp = 0.0
    for (y, segs), group in zip(rows, row_groups):
        if not group:
            continue
        group.sort(key=lambda i: (i.x_um, i.name))
        for inst in group:
            total_disp += abs(y - inst.y_um)
            max_disp = max(max_disp, abs(y - inst.y_um))
            inst.y_um = y
        remaining = list(group)
        for si, seg in enumerate(segs):
            if si == len(segs) - 1:
                chunk, remaining = remaining, []
            else:
                seg_cap = seg[1] - seg[0]
                chunk = []
                used = 0.0
                while remaining and used + remaining[0].cell.width_um <= seg_cap:
                    used += remaining[0].cell.width_um
                    chunk.append(remaining.pop(0))
            if not chunk:
                continue
            width_needed = sum(i.cell.width_um for i in chunk)
            if width_needed > seg[1] - seg[0] + 1e-6:
                raise PlacementError(
                    f"tier {tier}: row at y={y:.1f} over-subscribed"
                )
            t, w = _pack_segment(chunk, seg)
            total_disp += t
            max_disp = max(max_disp, w)

    return LegalizeStats(
        cells=len(cells),
        total_displacement_um=total_disp,
        max_displacement_um=max_disp,
    )
