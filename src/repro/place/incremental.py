"""Incremental placement sessions: reuse across optimizer edits.

The optimization loops (sizing, cloning, buffering, the repartition ECO)
edit a handful of cells per move but historically paid for full-design
re-legalization and congestion re-analysis at every stage boundary.  A
:class:`PlacementSession` is the placement analogue of
:class:`repro.timing.incremental.TimingSession`: a long-lived facade
bound to one (netlist, floorplan) pair that keeps legalization, per-net
HPWL, and the congestion map consistent across edits by recomputing only
what an edit disturbed.

Three reuse layers
------------------

1. **Localized re-legalization.**  Phase 1 of the legalizer (FFD row
   assignment) is a pure function of cell positions and is always
   re-run -- it is cheap and deterministic.  The session diffs the
   resulting per-row membership against the previous legalize and
   re-packs only the rows whose membership changed plus the rows holding
   explicitly dirtied cells; spill to neighbor rows is exactly the FFD
   reassignment showing up in the diff.  Untouched rows are already
   legal and packing is idempotent, so skipping them changes nothing --
   results are *byte-identical* to a full pass, which CI enforces.

2. **Incremental analysis.**  Per-net HPWL values and per-net congestion
   L-route strips are cached; an edit recomputes only the nets touching
   dirty cells.  The congestion grid is rebuilt by replaying all cached
   strips through one unbuffered ``np.add.at`` bulk kernel, which
   accumulates in net order -- bitwise equal to the from-scratch loop.

3. **Kill switch and telemetry.**  ``REPRO_PLACE=full`` disables all
   reuse (the CI equivalence mode); ``REPRO_PLACE_THRESHOLD`` (default
   0.35) is the disturbed-cell fraction past which the session falls
   back to a full pass.  ``place_full_runs`` / ``place_incremental_runs``
   / ``place_disturbed_fraction`` span metrics record what actually ran.

Edits are reported through :meth:`Design.touch_placement` (cell moved,
resized, cloned, tier-moved) or :meth:`PlacementSession.dirty_net`; the
membership diff additionally catches tier and fixed/movable membership
changes on its own.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import PlacementError
from repro.liberty.library import StdCellLibrary
from repro.netlist.core import Netlist
from repro.obs import emit_metric, span
from repro.obs.metrics import net_hpwl_um
from repro.place.floorplan import Floorplan, port_ring
from repro.place.legalizer import (
    LegalizeStats,
    _assign_rows,
    _build_rows,
    _check_capacity,
    _collect_cells,
    _legalize_row,
    legalize,
)
from repro.route.congestion import (
    CongestionMap,
    _accumulate,
    _bin_capacity,
    _net_strips,
    analyze_congestion,
)

__all__ = [
    "DEFAULT_FULL_FRACTION",
    "PlaceSessionStats",
    "PlacementSession",
    "full_place_forced",
]

DEFAULT_FULL_FRACTION = 0.35


def full_place_forced() -> bool:
    """True when ``REPRO_PLACE=full`` disables incremental updates."""
    return os.environ.get("REPRO_PLACE", "").strip().lower() == "full"


@dataclass
class PlaceSessionStats:
    """Counters describing how much work the session reused."""

    full_runs: int = 0
    incremental_runs: int = 0
    rows_repacked: int = 0
    rows_total: int = 0
    nets_refreshed: int = 0
    last_disturbed_fraction: float = 0.0

    @property
    def runs(self) -> int:
        return self.full_runs + self.incremental_runs


class PlacementSession:
    """Keep legalization and placement analysis current across edits.

    Bound to one netlist and one floorplan; the flows create a fresh
    session whenever the floorplan changes (utilization backoff re-places
    everything anyway).  All queries are byte-identical to their
    from-scratch equivalents -- ``legalize_all`` to per-tier
    :func:`~repro.place.legalizer.legalize`, ``hpwl_um`` to
    :func:`repro.obs.metrics.hpwl_um`, and ``congestion`` to
    :func:`~repro.route.congestion.analyze_congestion` -- regardless of
    how many edits were applied in between.
    """

    def __init__(
        self,
        netlist: Netlist,
        floorplan: Floorplan,
        tier_libs: dict[int, StdCellLibrary],
        *,
        bins: int = 16,
        full_fraction: float | None = None,
        force_full: bool | None = None,
    ) -> None:
        self.netlist = netlist
        self.floorplan = floorplan
        self.tier_libs = dict(tier_libs)
        self.bins = bins
        if full_fraction is None:
            full_fraction = float(
                os.environ.get("REPRO_PLACE_THRESHOLD", "")
                or DEFAULT_FULL_FRACTION
            )
        self.full_fraction = full_fraction
        self._force_full = force_full
        self.stats = PlaceSessionStats()
        #: Cells moved by the most recent ``legalize_all``; ``None`` means
        #: "unknown / possibly all" (a full pass ran).
        self.last_moved: set[str] | None = None
        # --- legalization state ---
        self._legal_cold = True
        self._dirty_cells: set[str] = set()
        self._rows: dict[int, list] = {}
        self._assign: dict[int, dict[str, int]] = {}
        # --- analysis state ---
        self._analysis_cold = True
        self._analysis_dirty_cells: set[str] = set()
        self._analysis_dirty_nets: set[str] = set()
        self._hpwl_cache: dict[str, float] = {}
        self._strips: dict[str, tuple | None] = {}
        self._pads: dict[str, tuple[float, float]] | None = None

    # ------------------------------------------------------------------
    # invalidation contract
    # ------------------------------------------------------------------
    def dirty_cell(self, name: str) -> None:
        """Mark one instance as moved/resized/re-tiered since last sync."""
        self._dirty_cells.add(name)
        self._analysis_dirty_cells.add(name)

    def dirty_net(self, name: str) -> None:
        """Mark one net's analysis stale (e.g. sinks rerouted)."""
        self._analysis_dirty_nets.add(name)

    def invalidate_all(self) -> None:
        """Drop every cache; the next queries recompute from scratch."""
        self._legal_cold = True
        self._analysis_cold = True
        self._dirty_cells.clear()
        self._analysis_dirty_cells.clear()
        self._analysis_dirty_nets.clear()
        self.last_moved = None

    def _full_mode(self) -> bool:
        if self._force_full is not None:
            return self._force_full
        return full_place_forced()

    # ------------------------------------------------------------------
    # legalization
    # ------------------------------------------------------------------
    def legalize_all(self) -> dict[int, LegalizeStats]:
        """Legalize every tier, incrementally when little was disturbed."""
        movable = sum(
            1
            for inst in self.netlist.instances.values()
            if not inst.fixed
            and not inst.cell.is_macro
            and inst.tier in self.tier_libs
        )
        if self._legal_cold:
            fraction = 1.0
        else:
            fraction = len(self._dirty_cells) / max(1, movable)
        self.stats.last_disturbed_fraction = fraction
        if self._full_mode() or self._legal_cold or fraction > self.full_fraction:
            stats = self._legalize_full()
        else:
            stats = self._legalize_incremental()
        emit_metric("place_full_runs", self.stats.full_runs)
        emit_metric("place_incremental_runs", self.stats.incremental_runs)
        emit_metric("place_disturbed_fraction", fraction)
        return stats

    def _rows_for(self, tier: int, lib: StdCellLibrary) -> list:
        rows = self._rows.get(tier)
        if rows is None:
            rows = self._rows[tier] = _build_rows(self.floorplan, lib, tier)
        return rows

    def _legalize_full(self) -> dict[int, LegalizeStats]:
        self.stats.full_runs += 1
        stats: dict[int, LegalizeStats] = {}
        for tier, lib in self.tier_libs.items():
            stats[tier] = legalize(self.netlist, self.floorplan, lib, tier)
            pitch = lib.cell_height_um
            self._assign[tier] = {
                inst.name: int(round(inst.y_um / pitch))
                for inst in _collect_cells(self.netlist, tier)
            }
        self._legal_cold = False
        self._dirty_cells.clear()
        self.last_moved = None
        # A full pass may have moved anything: analysis must resync fully.
        self._analysis_cold = True
        return stats

    def _legalize_incremental(self) -> dict[int, LegalizeStats]:
        self.stats.incremental_runs += 1
        moved: set[str] = set()
        stats: dict[int, LegalizeStats] = {}
        for tier, lib in self.tier_libs.items():
            stats[tier] = self._legalize_tier(tier, lib, moved)
        moved |= self._dirty_cells
        self._dirty_cells = set()
        self.last_moved = moved
        self._analysis_dirty_cells |= moved
        return stats

    def _legalize_tier(
        self, tier: int, lib: StdCellLibrary, moved: set[str]
    ) -> LegalizeStats:
        rows = self._rows_for(tier, lib)
        cells = _collect_cells(self.netlist, tier)
        if not cells:
            self._assign[tier] = {}
            return LegalizeStats(
                cells=0, total_displacement_um=0.0, max_displacement_um=0.0
            )
        for inst in cells:
            if not inst.is_placed:
                raise PlacementError(f"{inst.name} has no global placement")
        _check_capacity(cells, rows, tier)

        row_groups = _assign_rows(cells, rows, lib.cell_height_um, tier)
        new_assign: dict[str, int] = {}
        for r, group in enumerate(row_groups):
            for inst in group:
                new_assign[inst.name] = r

        old_assign = self._assign.get(tier)
        touched: set[int] = set()
        if old_assign is None:
            touched = {r for r, g in enumerate(row_groups) if g}
        else:
            for name, r in new_assign.items():
                ro = old_assign.get(name)
                if ro is None:
                    touched.add(r)  # joined the tier
                elif ro != r:
                    touched.add(r)  # moved rows: repack both ends
                    touched.add(ro)
            for name, ro in old_assign.items():
                if name not in new_assign:
                    touched.add(ro)  # left the tier
            for name in self._dirty_cells:
                r = new_assign.get(name)
                if r is not None:
                    touched.add(r)

        total_disp = 0.0
        max_disp = 0.0
        for r in sorted(touched):
            if r < 0 or r >= len(rows):
                continue
            group = row_groups[r]
            if not group:
                continue
            y, segs = rows[r]
            t, w = _legalize_row(y, segs, group, tier)
            total_disp += t
            max_disp = max(max_disp, w)
            self.stats.rows_repacked += 1
            moved.update(inst.name for inst in group)
        self.stats.rows_total += sum(1 for g in row_groups if g)

        self._assign[tier] = new_assign
        return LegalizeStats(
            cells=len(cells),
            total_displacement_um=total_disp,
            max_displacement_um=max_disp,
        )

    # ------------------------------------------------------------------
    # analysis: HPWL + congestion
    # ------------------------------------------------------------------
    def _bin_dims(self) -> tuple[float, float]:
        return (
            self.floorplan.width_um / self.bins,
            self.floorplan.height_um / self.bins,
        )

    def _pad_ring(self) -> dict[str, tuple[float, float]]:
        if self._pads is None:
            self._pads = port_ring(
                self.netlist, self.floorplan.width_um, self.floorplan.height_um
            )
        return self._pads

    def _refresh_net(
        self, name: str, bin_w: float, bin_h: float
    ) -> None:
        net = self.netlist.nets.get(name)
        if net is None:
            self._hpwl_cache.pop(name, None)
            self._strips.pop(name, None)
            return
        instances = self.netlist.instances
        self._hpwl_cache[name] = net_hpwl_um(net, instances)
        self._strips[name] = _net_strips(
            net, instances, self._pad_ring(), self.bins, bin_w, bin_h
        )

    def _sync_analysis(self) -> None:
        bin_w, bin_h = self._bin_dims()
        nets = self.netlist.nets
        if self._analysis_cold:
            self.stats.full_runs += 1
            instances = self.netlist.instances
            pads = self._pad_ring()
            self._hpwl_cache = {
                name: net_hpwl_um(net, instances)
                for name, net in nets.items()
            }
            self._strips = {
                name: _net_strips(net, instances, pads, self.bins, bin_w, bin_h)
                for name, net in nets.items()
            }
            self._analysis_cold = False
            self._analysis_dirty_cells.clear()
            self._analysis_dirty_nets.clear()
            return
        dirty = set(self._analysis_dirty_nets)
        instances = self.netlist.instances
        for name in self._analysis_dirty_cells:
            inst = instances.get(name)
            if inst is None:
                continue
            for _pin, net_name in inst.connected_pins():
                dirty.add(net_name)
        if dirty:
            self.stats.incremental_runs += 1
            self.stats.nets_refreshed += len(dirty)
            for name in dirty:
                self._refresh_net(name, bin_w, bin_h)
        if len(self._strips) != len(nets):
            # Nets added or removed without notification: reconcile.
            for name in list(self._strips):
                if name not in nets:
                    self._strips.pop(name, None)
                    self._hpwl_cache.pop(name, None)
            for name in nets:
                if name not in self._strips:
                    self._refresh_net(name, bin_w, bin_h)
        self._analysis_dirty_cells.clear()
        self._analysis_dirty_nets.clear()

    def hpwl_um(self) -> float:
        """Total HPWL, equal to :func:`repro.obs.metrics.hpwl_um`."""
        if self._full_mode():
            from repro.obs.metrics import hpwl_um as full_hpwl

            self.stats.full_runs += 1
            self._analysis_cold = True
            return full_hpwl(self.netlist)
        self._sync_analysis()
        cache = self._hpwl_cache
        total = 0.0
        for name in self.netlist.nets:
            total += cache[name]
        return total

    def congestion(self, *, bins: int | None = None) -> CongestionMap:
        """Current congestion map, equal to ``analyze_congestion``."""
        lib = self.tier_libs[min(self.tier_libs)]
        tiers = len(self.tier_libs)
        fp = self.floorplan
        if bins is not None and bins != self.bins:
            return analyze_congestion(
                self.netlist, lib, fp.width_um, fp.height_um, tiers, bins=bins
            )
        if self._full_mode():
            self.stats.full_runs += 1
            self._analysis_cold = True
            return analyze_congestion(
                self.netlist, lib, fp.width_um, fp.height_um, tiers,
                bins=self.bins,
            )
        with span("congestion", bins=self.bins, tiers=tiers, incremental=True):
            self._sync_analysis()
            bin_w, bin_h = self._bin_dims()
            strips = self._strips
            demand = _accumulate(
                (strips[name] for name in self.netlist.nets), self.bins
            )
            result = CongestionMap(
                bins=self.bins,
                demand=demand,
                capacity_um=_bin_capacity(bin_w, bin_h, tiers),
            )
            emit_metric("peak_congestion", result.peak_demand)
            emit_metric("congestion_overflow", result.overflow_fraction)
        return result
