"""Placement: floorplanning, global placement, legalization, sessions."""

from repro.place.floorplan import (
    Floorplan,
    build_floorplan,
    port_positions,
    port_ring,
)
from repro.place.incremental import PlacementSession, PlaceSessionStats
from repro.place.legalizer import LegalizeStats, legalize
from repro.place.quadratic import global_place

__all__ = [
    "Floorplan",
    "build_floorplan",
    "port_positions",
    "port_ring",
    "PlacementSession",
    "PlaceSessionStats",
    "LegalizeStats",
    "legalize",
    "global_place",
]
