"""Placement: floorplanning, analytic global placement, legalization."""

from repro.place.floorplan import Floorplan, build_floorplan, port_positions
from repro.place.legalizer import LegalizeStats, legalize
from repro.place.quadratic import global_place

__all__ = [
    "Floorplan",
    "build_floorplan",
    "port_positions",
    "LegalizeStats",
    "legalize",
    "global_place",
]
