"""Floorplanning: die sizing from target utilization, macro placement.

The paper fixes the floorplan area from the synthesized netlist using a
target cell utilization (Section IV-A2), then holds that utilization
constant across all five configurations so area comparisons are fair.
This module reproduces that policy:

- each tier's requirement is ``std_cell_area / utilization`` plus the
  halo-padded area of the macros floorplanned *on that tier* (memory
  macros occupy one tier; the same region on the other tier is regular
  standard-cell area -- a genuine 3-D advantage the CPU design exercises);
- the die is sized by the most demanding tier, and all tiers share that
  one footprint;
- macros stack into a column on the left edge with a small halo, and the
  per-tier legalizer carves them out of the rows of their own tier only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import sqrt

from repro.errors import PlacementError
from repro.liberty.library import StdCellLibrary
from repro.netlist.core import Netlist, PortDirection

__all__ = ["MacroSlot", "Floorplan", "build_floorplan", "port_positions"]

#: Fractional halo (keep-out) added around each memory macro.
MACRO_HALO = 0.05


@dataclass(frozen=True)
class MacroSlot:
    """A placed macro: name plus its rectangle (lower-left corner)."""

    name: str
    x_um: float
    y_um: float
    width_um: float
    height_um: float
    tier: int = 0

    @property
    def halo_area_um2(self) -> float:
        """Blocked area including the keep-out halo."""
        return (
            self.width_um * (1 + MACRO_HALO) * self.height_um * (1 + MACRO_HALO)
        )


@dataclass
class Floorplan:
    """The die outline, macro placements, per-tier core accounting."""

    width_um: float
    height_um: float
    tiers: int
    utilization: float
    macros: list[MacroSlot] = field(default_factory=list)

    @property
    def area_um2(self) -> float:
        """Footprint area of one tier."""
        return self.width_um * self.height_um

    @property
    def silicon_area_um2(self) -> float:
        """Total silicon area across all tiers (the paper's 'Si Area')."""
        return self.area_um2 * self.tiers

    def blockage_area_um2(self, tier: int) -> float:
        """Macro (plus halo) area blocking standard cells on one tier."""
        return sum(m.halo_area_um2 for m in self.macros if m.tier == tier)

    def core_area_um2(self, tier: int | None = None) -> float:
        """Area available to standard cells.

        With ``tier`` given: that tier's free area.  Without: the total
        over all tiers (used for whole-chip density).
        """
        if tier is not None:
            return self.area_um2 - self.blockage_area_um2(tier)
        return sum(self.core_area_um2(t) for t in range(self.tiers))

    def density(self, netlist: Netlist) -> float:
        """Achieved standard-cell density over the free core area."""
        std_area = netlist.cell_area_um2(lambda i: not i.cell.is_macro)
        return std_area / self.core_area_um2()


def build_floorplan(
    netlist: Netlist,
    tier_libs: dict[int, StdCellLibrary],
    utilization: float,
    *,
    aspect: float = 1.0,
    demand_scale: float = 1.0,
) -> Floorplan:
    """Size the die and place macros.

    ``tier_libs`` maps each tier to its library (one entry for 2-D).  Cell
    areas are taken from the instances' *current* bindings, so calling
    this after a heterogeneous remap automatically shrinks the footprint
    -- the paper's "the footprint is reduced accordingly to maintain the
    chip utilization" step.

    ``demand_scale`` scales the standard-cell area requirement; the
    pseudo-3-D stage passes 0.5 so the whole netlist shares one half-size
    3-D footprint (the Shrunk-2D abstraction).  In that mode the *total*
    (not per-tier) cell area defines demand.
    """
    if not 0.1 <= utilization <= 1.0:
        raise PlacementError(f"utilization {utilization} out of range")
    tiers = len(tier_libs)
    if tiers not in (1, 2):
        raise PlacementError("only 1- or 2-tier floorplans are supported")

    macros = sorted(netlist.memory_macros(), key=lambda m: m.name)
    blockage: dict[int, float] = {t: 0.0 for t in tier_libs}
    for macro in macros:
        tier = macro.tier if macro.tier in blockage else 0
        blockage[tier] += (
            macro.cell.width_um
            * (1 + MACRO_HALO)
            * macro.cell.height_um
            * (1 + MACRO_HALO)
        )

    if demand_scale != 1.0:
        # Pseudo-3-D: the final design spreads std cells *and* macro
        # blockage over both tiers, so the shared footprint is the whole
        # 2-D requirement scaled down.
        total_std = netlist.cell_area_um2(lambda i: not i.cell.is_macro)
        total_blockage = sum(blockage.values())
        die_area = (total_std / utilization + total_blockage) * demand_scale
    else:
        die_area = 0.0
        for tier in tier_libs:
            std_area = netlist.cell_area_um2(
                lambda i, t=tier: i.tier == t and not i.cell.is_macro
            )
            die_area = max(die_area, std_area / utilization + blockage[tier])
    if die_area <= 0:
        raise PlacementError("netlist has no standard cells")

    height = sqrt(die_area / aspect)
    width = die_area / height

    def pack(h: float) -> tuple[list[tuple[float, float]], float]:
        """Column-pack macros under height ``h``; return (positions, width).

        Tiers pack independently -- macros on different tiers may share
        the same (x, y) region, which is exactly the memory-over-memory
        stacking a 3-D floorplan allows.
        """
        positions: list[tuple[float, float] | None] = [None] * len(macros)
        needed_w = 0.0
        for tier in {m.tier for m in macros}:
            x = y = column_w = 0.0
            for i, macro in enumerate(macros):
                if macro.tier != tier:
                    continue
                halo_h = macro.cell.height_um * (1 + MACRO_HALO)
                halo_w = macro.cell.width_um * (1 + MACRO_HALO)
                if y + halo_h > h and y > 0.0:
                    x += column_w
                    y = 0.0
                    column_w = 0.0
                column_w = max(column_w, halo_w)
                positions[i] = (x, y)
                y += halo_h
            needed_w = max(needed_w, x + column_w)
        return positions, needed_w

    # Grow the outline until the macro packing fits inside it.
    positions: list[tuple[float, float]] = []
    if macros:
        tallest = max(m.cell.height_um for m in macros) * (1 + MACRO_HALO)
        height = max(height, tallest)
        width = max(width, die_area / height)
        for _ in range(8):
            positions, needed_w = pack(height)
            if needed_w <= width + 1e-9:
                break
            width = needed_w
            height = max(die_area / width, tallest)
        else:
            raise PlacementError("cannot pack macros into the die outline")
        width = max(width, die_area / height)

    fp = Floorplan(
        width_um=width,
        height_um=height,
        tiers=tiers,
        utilization=utilization,
    )

    for macro, (x, y) in zip(macros, positions):
        fp.macros.append(
            MacroSlot(
                name=macro.name,
                x_um=x,
                y_um=y,
                width_um=macro.cell.width_um,
                height_um=macro.cell.height_um,
                tier=macro.tier,
            )
        )
        macro.x_um = x
        macro.y_um = y
        macro.fixed = True
    return fp


def port_ring(
    netlist: Netlist, width_um: float, height_um: float
) -> dict[str, tuple[float, float]]:
    """Deterministic pad ring: ports spread evenly around the die boundary.

    Inputs occupy the left and bottom edges, outputs the right and top,
    in sorted-name order, so every run of every configuration sees the
    same external pin geometry.  Takes raw die dimensions so congestion
    analysis can reuse it without a full :class:`Floorplan`.
    """
    inputs = sorted(
        name for name, d in netlist.ports.items() if d is PortDirection.INPUT
    )
    outputs = sorted(
        name for name, d in netlist.ports.items() if d is PortDirection.OUTPUT
    )
    w, h = width_um, height_um
    positions: dict[str, tuple[float, float]] = {}

    def ring(names: list[str], edges: list[tuple[tuple[float, float], tuple[float, float]]]):
        if not names:
            return
        per_edge = (len(names) + len(edges) - 1) // len(edges)
        i = 0
        for (x0, y0), (x1, y1) in edges:
            count = min(per_edge, len(names) - i)
            for k in range(count):
                t = (k + 1) / (count + 1)
                positions[names[i]] = (x0 + t * (x1 - x0), y0 + t * (y1 - y0))
                i += 1
            if i >= len(names):
                return

    ring(inputs, [((0, 0), (0, h)), ((0, 0), (w, 0))])
    ring(outputs, [((w, 0), (w, h)), ((0, h), (w, h))])
    return positions


def port_positions(
    netlist: Netlist, floorplan: Floorplan
) -> dict[str, tuple[float, float]]:
    """Pad ring of a floorplan (see :func:`port_ring`)."""
    return port_ring(netlist, floorplan.width_um, floorplan.height_um)
