"""Standard cell archetypes: functions, pins, timing arcs, cell types.

A :class:`CellType` is one row of a liberty file: a logic function at a
specific drive strength in a specific library, with physical size, pin
capacitances, power numbers and NLDM timing arcs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import LibraryError
from repro.liberty.timing_model import TimingTable

__all__ = ["CellFunction", "PinSpec", "TimingArc", "CellType"]


class CellFunction(enum.Enum):
    """Logic function archetypes supported by the libraries.

    The generators emit netlists over these functions; synthesis binds each
    one to a concrete :class:`CellType` of a target library, so the same
    netlist can be implemented in 9-track, 12-track, or a mix.
    """

    INV = "INV"
    BUF = "BUF"
    NAND2 = "NAND2"
    NOR2 = "NOR2"
    AND2 = "AND2"
    OR2 = "OR2"
    XOR2 = "XOR2"
    XNOR2 = "XNOR2"
    MUX2 = "MUX2"
    AOI21 = "AOI21"
    OAI21 = "OAI21"
    NAND3 = "NAND3"
    NOR3 = "NOR3"
    DFF = "DFF"
    CLKBUF = "CLKBUF"
    LEVEL_SHIFTER = "LS"
    MEMORY = "MEM"

    @property
    def is_sequential(self) -> bool:
        """True for clocked storage elements (flip-flops, memory macros)."""
        return self in (CellFunction.DFF, CellFunction.MEMORY)

    @property
    def is_macro(self) -> bool:
        """True for block-level macros that are floorplanned, not placed."""
        return self is CellFunction.MEMORY

    @property
    def input_count(self) -> int:
        """Number of data input pins for the function."""
        counts = {
            CellFunction.INV: 1,
            CellFunction.BUF: 1,
            CellFunction.CLKBUF: 1,
            CellFunction.LEVEL_SHIFTER: 1,
            CellFunction.NAND2: 2,
            CellFunction.NOR2: 2,
            CellFunction.AND2: 2,
            CellFunction.OR2: 2,
            CellFunction.XOR2: 2,
            CellFunction.XNOR2: 2,
            CellFunction.MUX2: 3,
            CellFunction.AOI21: 3,
            CellFunction.OAI21: 3,
            CellFunction.NAND3: 3,
            CellFunction.NOR3: 3,
            CellFunction.DFF: 1,
            CellFunction.MEMORY: 2,
        }
        return counts[self]

    @property
    def switching_transfer(self) -> float:
        """Activity transfer factor used by the power engine.

        The output toggle rate of a gate is roughly the mean input toggle
        rate scaled by this function-dependent factor (XOR propagates
        nearly every input toggle, AND/OR masks about half, etc.).
        """
        factors = {
            CellFunction.INV: 1.0,
            CellFunction.BUF: 1.0,
            CellFunction.CLKBUF: 1.0,
            CellFunction.LEVEL_SHIFTER: 1.0,
            CellFunction.NAND2: 0.60,
            CellFunction.NOR2: 0.60,
            CellFunction.AND2: 0.60,
            CellFunction.OR2: 0.60,
            CellFunction.XOR2: 1.0,
            CellFunction.XNOR2: 1.0,
            CellFunction.MUX2: 0.70,
            CellFunction.AOI21: 0.55,
            CellFunction.OAI21: 0.55,
            CellFunction.NAND3: 0.45,
            CellFunction.NOR3: 0.45,
            CellFunction.DFF: 0.5,
            CellFunction.MEMORY: 0.35,
        }
        return factors[self]


def input_pin_names(function: CellFunction) -> tuple[str, ...]:
    """Canonical input pin names for a function (data pins only)."""
    if function is CellFunction.DFF:
        return ("D",)
    if function is CellFunction.MEMORY:
        return ("A", "D")
    if function.input_count == 1:
        return ("A",)
    return tuple("ABCDEFGH"[: function.input_count])


def output_pin_name(function: CellFunction) -> str:
    """Canonical output pin name for a function."""
    if function.is_sequential:
        return "Q"
    return "Y"


@dataclass(frozen=True)
class PinSpec:
    """Electrical description of one cell pin."""

    name: str
    direction: str  # "input", "output", or "clock"
    capacitance_ff: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in ("input", "output", "clock"):
            raise LibraryError(f"bad pin direction {self.direction!r}")
        if self.capacitance_ff < 0:
            raise LibraryError("pin capacitance cannot be negative")


@dataclass(frozen=True)
class TimingArc:
    """One characterized timing arc of a cell.

    ``from_pin`` -> ``to_pin`` with NLDM delay and output-slew tables.
    Sequential cells additionally carry setup/clk-to-q constants through
    dedicated arcs (``kind`` is ``"setup"`` or ``"clk_to_q"``).
    """

    from_pin: str
    to_pin: str
    delay: TimingTable
    output_slew: TimingTable
    kind: str = "combinational"

    def __post_init__(self) -> None:
        if self.kind not in ("combinational", "setup", "clk_to_q"):
            raise LibraryError(f"bad arc kind {self.kind!r}")


@dataclass(frozen=True)
class CellType:
    """A concrete standard cell: function + drive in one library.

    Attributes
    ----------
    name:
        Library cell name, e.g. ``"INVX4_12T"``.
    function:
        The logic archetype.
    drive:
        Relative drive strength (1, 2, 4, 8, ...).
    library_name:
        Name of the owning :class:`~repro.liberty.library.StdCellLibrary`.
    area_um2 / width_um / height_um:
        Physical footprint; height is ``tracks * track pitch``.
    pins:
        Pin electrical specs by name.
    arcs:
        NLDM timing arcs.
    leakage_mw:
        State-averaged leakage power.
    internal_energy_pj:
        Internal (short-circuit + parasitics) energy per output toggle.
    setup_ns / clk_to_q_ns:
        Sequential constants (zero for combinational cells).
    vdd_v:
        Supply of the owning library, duplicated here for convenience.
    """

    name: str
    function: CellFunction
    drive: int
    library_name: str
    area_um2: float
    width_um: float
    height_um: float
    pins: dict[str, PinSpec] = field(repr=False)
    arcs: tuple[TimingArc, ...] = field(repr=False)
    leakage_mw: float = 0.0
    internal_energy_pj: float = 0.0
    setup_ns: float = 0.0
    clk_to_q_ns: float = 0.0
    vdd_v: float = 0.9

    def __post_init__(self) -> None:
        if self.drive < 1:
            raise LibraryError(f"drive must be >= 1, got {self.drive}")
        if self.area_um2 <= 0:
            raise LibraryError(f"{self.name}: area must be positive")
        for arc in self.arcs:
            if arc.from_pin not in self.pins or arc.to_pin not in self.pins:
                raise LibraryError(
                    f"{self.name}: arc {arc.from_pin}->{arc.to_pin} references "
                    "unknown pins"
                )

    @property
    def is_sequential(self) -> bool:
        """True for flip-flops and memory macros."""
        return self.function.is_sequential

    @property
    def is_macro(self) -> bool:
        """True for memory macros."""
        return self.function.is_macro

    @property
    def input_pins(self) -> tuple[str, ...]:
        """Names of data input pins, in canonical order."""
        return tuple(
            name for name, pin in self.pins.items() if pin.direction == "input"
        )

    @property
    def output_pin(self) -> str:
        """Name of the (single) output pin."""
        for name, pin in self.pins.items():
            if pin.direction == "output":
                return name
        raise LibraryError(f"{self.name} has no output pin")

    @property
    def clock_pin(self) -> str | None:
        """Name of the clock pin, or None for combinational cells."""
        for name, pin in self.pins.items():
            if pin.direction == "clock":
                return name
        return None

    def input_capacitance_ff(self, pin_name: str) -> float:
        """Capacitance of one input pin in fF."""
        try:
            return self.pins[pin_name].capacitance_ff
        except KeyError:
            raise LibraryError(f"{self.name} has no pin {pin_name!r}") from None

    def arc_to(self, to_pin: str, from_pin: str) -> TimingArc | None:
        """Find the combinational/clk-to-q arc from ``from_pin`` to ``to_pin``."""
        for arc in self.arcs:
            if arc.from_pin == from_pin and arc.to_pin == to_pin:
                if arc.kind in ("combinational", "clk_to_q"):
                    return arc
        return None

    def worst_arc_to_output(self) -> TimingArc:
        """The arc with the largest mid-table delay, used for quick estimates."""
        best: TimingArc | None = None
        best_delay = -1.0
        for arc in self.arcs:
            if arc.kind == "setup":
                continue
            mid_slew = arc.delay.slew_axis[len(arc.delay.slew_axis) // 2]
            mid_load = arc.delay.load_axis[len(arc.delay.load_axis) // 2]
            d = arc.delay.lookup(mid_slew, mid_load)
            if d > best_delay:
                best, best_delay = arc, d
        if best is None:
            raise LibraryError(f"{self.name} has no timing arcs")
        return best
