"""The 28 nm 9-track / 12-track library pair of the paper (Section IV-A).

The paper demonstrates heterogeneity with two multitrack variants of a
commercial foundry 28 nm node:

- **12-track** cells at 0.90 V on the bottom tier: fast, large, power hungry.
- **9-track** cells at 0.81 V on the top tier: ~25% smaller cell area,
  roughly 2x the stage delay, about half the dynamic power, and more than
  an order of magnitude less leakage (high-Vth-like behaviour at the lower
  supply).

We cannot ship the foundry tables, so this module synthesizes NLDM lookup
tables from a first-order RC model, calibrated so that the *relative*
numbers the paper's conclusions rest on are reproduced:

- FO-4 inverter delay ratio (slow/fast) ~= 1.8 (Table II),
- average loaded stage-delay ratio ~= 2.2 (Table VIII: 45 ps vs 19 ps),
- 9-track area = 0.75 x 12-track area (same width, 9 vs 12 tracks),
- 9-track leakage ~= 1/30 of 12-track (Table II: 0.003 uW vs 0.093 uW),
- dynamic energy ratio ~= 0.55 (Table II total power 2.00 uW vs 3.86 uW).

Both variants share the BEOL stack (wire parasitics are identical), which
is exactly the property that makes multitrack pairs the "best and simplest
option" for heterogeneous M3D per Section IV-D.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.liberty.cells import (
    CellFunction,
    CellType,
    PinSpec,
    TimingArc,
    input_pin_names,
    output_pin_name,
)
from repro.liberty.library import StdCellLibrary
from repro.liberty.timing_model import TimingTable, linear_delay_table

__all__ = [
    "ProcessCorner",
    "TWELVE_TRACK_CORNER",
    "NINE_TRACK_CORNER",
    "make_twelve_track_library",
    "make_nine_track_library",
    "make_library_pair",
    "make_track_variant",
]

#: Characterized input-slew breakpoints (ns), shared by both libraries so
#: the slew-range-overlap rule of Section II-B holds by construction.
SLEW_AXIS: tuple[float, ...] = (0.002, 0.010, 0.050, 0.150, 0.400, 1.000)

#: Characterized output-load breakpoints (fF).
LOAD_AXIS: tuple[float, ...] = (0.5, 2.0, 8.0, 24.0, 64.0, 160.0)

#: Drive strengths offered for every combinational function.
DRIVES: tuple[int, ...] = (1, 2, 4, 8)

#: Base (12-track, x1) electrical parameters per function:
#: (intrinsic delay ns, drive resistance kOhm, input cap fF,
#:  internal energy pJ/toggle, leakage mW, width um)
_BASE_PARAMS: dict[CellFunction, tuple[float, float, float, float, float, float]] = {
    CellFunction.INV: (0.004, 3.0, 1.0, 0.0015, 2.0e-5, 0.4),
    CellFunction.BUF: (0.008, 2.8, 1.1, 0.0022, 2.6e-5, 0.6),
    CellFunction.CLKBUF: (0.007, 2.2, 1.3, 0.0030, 3.2e-5, 0.8),
    CellFunction.NAND2: (0.006, 3.6, 1.2, 0.0020, 3.0e-5, 0.6),
    CellFunction.NOR2: (0.007, 4.0, 1.2, 0.0020, 3.0e-5, 0.6),
    CellFunction.AND2: (0.009, 3.4, 1.2, 0.0024, 3.4e-5, 0.8),
    CellFunction.OR2: (0.010, 3.6, 1.2, 0.0024, 3.4e-5, 0.8),
    CellFunction.XOR2: (0.012, 4.2, 1.6, 0.0036, 4.5e-5, 1.2),
    CellFunction.XNOR2: (0.012, 4.2, 1.6, 0.0036, 4.5e-5, 1.2),
    CellFunction.MUX2: (0.011, 3.8, 1.4, 0.0032, 4.2e-5, 1.2),
    CellFunction.AOI21: (0.008, 4.0, 1.3, 0.0024, 3.6e-5, 1.0),
    CellFunction.OAI21: (0.008, 4.0, 1.3, 0.0024, 3.6e-5, 1.0),
    CellFunction.NAND3: (0.008, 4.2, 1.3, 0.0026, 3.8e-5, 0.9),
    CellFunction.NOR3: (0.009, 4.6, 1.3, 0.0026, 3.8e-5, 0.9),
    CellFunction.LEVEL_SHIFTER: (0.030, 3.5, 1.5, 0.0040, 5.0e-5, 1.4),
    CellFunction.DFF: (0.0, 3.2, 1.1, 0.0060, 8.0e-5, 2.4),
}

#: 12-track DFF sequential constants (ns).
_DFF_CLK_TO_Q = 0.055
_DFF_SETUP = 0.030

#: Memory macro parameters: the paper notes "the memories in the CPU design
#: are of the same size in both technology variants", so the macro is
#: deliberately corner-independent except for voltage bookkeeping.
_MEM_AREA_UM2 = 900.0
_MEM_ACCESS_NS = 0.250
_MEM_SETUP_NS = 0.050
_MEM_PIN_CAP_FF = 2.0
_MEM_ENERGY_PJ = 2.0
_MEM_LEAKAGE_MW = 0.02


@dataclass(frozen=True)
class ProcessCorner:
    """Scaling knobs that turn the base 12-track parameters into a variant."""

    name: str
    tracks: int
    vdd_v: float
    vth_v: float
    delay_scale: float
    cap_scale: float
    energy_scale: float
    leakage_scale: float

    @property
    def area_scale(self) -> float:
        """Cell area relative to 12-track (width constant, height in tracks)."""
        return self.tracks / 12.0


TWELVE_TRACK_CORNER = ProcessCorner(
    name="28nm_12T",
    tracks=12,
    vdd_v=0.90,
    vth_v=0.30,
    delay_scale=1.0,
    cap_scale=1.0,
    energy_scale=1.0,
    leakage_scale=1.0,
)

NINE_TRACK_CORNER = ProcessCorner(
    name="28nm_9T",
    tracks=9,
    vdd_v=0.81,
    vth_v=0.32,
    # Table II's FO-4 ratios (slow/fast) are 1.89 rise / 1.60 fall; loaded
    # stages land higher (Table VIII's 45 ps vs 19 ps includes fanout
    # asymmetry), so 1.8 on both intrinsic delay and drive resistance
    # reproduces the observable range.
    delay_scale=1.8,
    cap_scale=0.75,
    energy_scale=0.55,
    leakage_scale=1.0 / 30.0,
)


def _drive_width_factor(drive: int) -> float:
    """Cell width growth with drive strength (sub-linear: shared diffusion)."""
    return 0.6 + 0.4 * drive


def _make_combinational_cell(
    corner: ProcessCorner, function: CellFunction, drive: int
) -> CellType:
    d0, res, cin, energy, leak, width = _BASE_PARAMS[function]
    d0 *= corner.delay_scale
    res = res * corner.delay_scale / drive
    cin = cin * corner.cap_scale * drive
    energy = energy * corner.energy_scale * drive
    leak = leak * corner.leakage_scale * drive
    width = width * _drive_width_factor(drive)
    height = corner.tracks * 0.1

    out_pin = output_pin_name(function)
    pins: dict[str, PinSpec] = {out_pin: PinSpec(out_pin, "output")}
    arcs: list[TimingArc] = []
    delay_table = linear_delay_table(d0, res, 0.08, SLEW_AXIS, LOAD_AXIS)
    slew_table = linear_delay_table(1.2 * d0, 1.4 * res, 0.10, SLEW_AXIS, LOAD_AXIS)
    for i, pin_name in enumerate(input_pin_names(function)):
        pins[pin_name] = PinSpec(pin_name, "input", capacitance_ff=cin)
        # Later inputs of a stack are marginally slower arcs, as in real libs.
        skew = 1.0 + 0.05 * i
        arc_delay = delay_table if i == 0 else linear_delay_table(
            d0 * skew, res * skew, 0.08, SLEW_AXIS, LOAD_AXIS
        )
        arcs.append(TimingArc(pin_name, out_pin, arc_delay, slew_table))

    return CellType(
        name=f"{function.value}X{drive}_{corner.tracks}T",
        function=function,
        drive=drive,
        library_name=corner.name,
        area_um2=width * height,
        width_um=width,
        height_um=height,
        pins=pins,
        arcs=tuple(arcs),
        leakage_mw=leak,
        internal_energy_pj=energy,
        vdd_v=corner.vdd_v,
    )


def _make_dff_cell(corner: ProcessCorner, drive: int) -> CellType:
    _, res, cin, energy, leak, width = _BASE_PARAMS[CellFunction.DFF]
    res = res * corner.delay_scale / drive
    cin = cin * corner.cap_scale
    energy = energy * corner.energy_scale * drive
    leak = leak * corner.leakage_scale * drive
    width = width * _drive_width_factor(drive)
    height = corner.tracks * 0.1
    clk_to_q = _DFF_CLK_TO_Q * corner.delay_scale
    setup = _DFF_SETUP * corner.delay_scale

    pins = {
        "D": PinSpec("D", "input", capacitance_ff=cin),
        "CK": PinSpec("CK", "clock", capacitance_ff=0.8 * cin),
        "Q": PinSpec("Q", "output"),
    }
    delay_table = linear_delay_table(clk_to_q, res, 0.02, SLEW_AXIS, LOAD_AXIS)
    slew_table = linear_delay_table(
        1.2 * clk_to_q * 0.2, 1.4 * res, 0.05, SLEW_AXIS, LOAD_AXIS
    )
    setup_table = linear_delay_table(setup, 0.0, 0.15, SLEW_AXIS, LOAD_AXIS)
    arcs = (
        TimingArc("CK", "Q", delay_table, slew_table, kind="clk_to_q"),
        TimingArc("D", "Q", setup_table, slew_table, kind="setup"),
    )
    return CellType(
        name=f"DFFX{drive}_{corner.tracks}T",
        function=CellFunction.DFF,
        drive=drive,
        library_name=corner.name,
        area_um2=width * height,
        width_um=width,
        height_um=height,
        pins=pins,
        arcs=arcs,
        leakage_mw=leak,
        internal_energy_pj=energy,
        setup_ns=setup,
        clk_to_q_ns=clk_to_q,
        vdd_v=corner.vdd_v,
    )


def _make_memory_macro(corner: ProcessCorner) -> CellType:
    """A cache-style SRAM macro; size is corner-independent by design."""
    side = _MEM_AREA_UM2 ** 0.5
    pins = {
        "A": PinSpec("A", "input", capacitance_ff=_MEM_PIN_CAP_FF),
        "D": PinSpec("D", "input", capacitance_ff=_MEM_PIN_CAP_FF),
        "CK": PinSpec("CK", "clock", capacitance_ff=_MEM_PIN_CAP_FF),
        "Q": PinSpec("Q", "output"),
    }
    access = linear_delay_table(_MEM_ACCESS_NS, 0.5, 0.02, SLEW_AXIS, LOAD_AXIS)
    slew = linear_delay_table(0.02, 0.7, 0.05, SLEW_AXIS, LOAD_AXIS)
    setup = linear_delay_table(_MEM_SETUP_NS, 0.0, 0.15, SLEW_AXIS, LOAD_AXIS)
    arcs = (
        TimingArc("CK", "Q", access, slew, kind="clk_to_q"),
        TimingArc("A", "Q", setup, slew, kind="setup"),
        TimingArc("D", "Q", setup, slew, kind="setup"),
    )
    return CellType(
        name=f"SRAM_MACRO_{corner.tracks}T",
        function=CellFunction.MEMORY,
        drive=1,
        library_name=corner.name,
        area_um2=_MEM_AREA_UM2,
        width_um=side,
        height_um=side,
        pins=pins,
        arcs=arcs,
        leakage_mw=_MEM_LEAKAGE_MW,
        internal_energy_pj=_MEM_ENERGY_PJ,
        setup_ns=_MEM_SETUP_NS,
        clk_to_q_ns=_MEM_ACCESS_NS,
        vdd_v=corner.vdd_v,
    )


def _build_library(corner: ProcessCorner) -> StdCellLibrary:
    lib = StdCellLibrary(
        name=corner.name,
        tracks=corner.tracks,
        vdd_v=corner.vdd_v,
        vth_v=corner.vth_v,
    )
    for function in _BASE_PARAMS:
        if function is CellFunction.DFF:
            for drive in DRIVES:
                lib.add_cell(_make_dff_cell(corner, drive))
        elif function is CellFunction.CLKBUF:
            # Clock buffers come in larger drives for tree levels.
            for drive in (1, 2, 4, 8, 16):
                lib.add_cell(_make_combinational_cell(corner, function, drive))
        else:
            for drive in DRIVES:
                lib.add_cell(_make_combinational_cell(corner, function, drive))
    lib.add_cell(_make_memory_macro(corner))
    return lib


def make_twelve_track_library() -> StdCellLibrary:
    """The fast/large/power-hungry 12-track variant at 0.90 V."""
    return _build_library(TWELVE_TRACK_CORNER)


def make_nine_track_library() -> StdCellLibrary:
    """The slow/small/low-power 9-track variant at 0.81 V."""
    return _build_library(NINE_TRACK_CORNER)


def make_library_pair() -> tuple[StdCellLibrary, StdCellLibrary]:
    """Return (12-track, 9-track) — the heterogeneous pair of the paper."""
    return make_twelve_track_library(), make_nine_track_library()


def make_track_variant(tracks: int, vdd_v: float | None = None) -> StdCellLibrary:
    """Synthesize an arbitrary multitrack variant of the 28 nm node.

    Section V: "choosing the right mix of technologies ... is currently
    done manually as metal track variants only, and more exploration is
    beneficial."  This constructor makes that exploration possible: any
    track height from 7 to 14 produces a self-consistent corner whose
    area, speed, capacitance, energy and leakage interpolate/extrapolate
    the calibrated 9-track and 12-track anchor points.

    ``vdd_v`` defaults to the same interpolation (0.81 V at 9 tracks,
    0.90 V at 12); pass an explicit value to explore voltage scaling
    separately.  The BEOL is shared with every other variant, so any two
    of these libraries are stackable (subject to the Section II-B
    voltage-compatibility rule).
    """
    if not 7 <= tracks <= 14:
        raise ValueError(f"track height {tracks} outside the modeled 7-14 range")
    # interpolation parameter: 0 at 9 tracks, 1 at 12 tracks
    t = (tracks - 9) / 3.0
    nine, twelve = NINE_TRACK_CORNER, TWELVE_TRACK_CORNER

    def lerp(a: float, b: float) -> float:
        return a + (b - a) * t

    # Delay falls with track height (wider devices); clamp the
    # extrapolation so very tall cells saturate rather than become free.
    delay = max(0.7, lerp(nine.delay_scale, twelve.delay_scale))
    # Leakage rises steeply with speed: interpolate in the log domain.
    import math

    log_leak = lerp(math.log(nine.leakage_scale), math.log(twelve.leakage_scale))
    vth = lerp(nine.vth_v, twelve.vth_v)
    nominal_vdd = lerp(nine.vdd_v, twelve.vdd_v)
    energy = lerp(nine.energy_scale, twelve.energy_scale)
    leakage = math.exp(log_leak)
    actual_vdd = nominal_vdd if vdd_v is None else vdd_v
    if vdd_v is not None and abs(vdd_v - nominal_vdd) > 1e-9:
        # Voltage scaling: alpha-power-law slowdown, quadratic dynamic
        # energy, roughly cubic leakage (DIBL + quadratic-ish V term).
        if vdd_v <= vth + 0.05:
            raise ValueError(
                f"vdd {vdd_v} too close to vth {vth:.2f} for this model"
            )
        overdrive_ratio = (nominal_vdd - vth) / (vdd_v - vth)
        delay = delay * overdrive_ratio**1.3
        energy = energy * (vdd_v / nominal_vdd) ** 2
        leakage = leakage * (vdd_v / nominal_vdd) ** 3
    corner = ProcessCorner(
        name=f"28nm_{tracks}T" + ("" if vdd_v is None else f"_{vdd_v:.2f}V"),
        tracks=tracks,
        vdd_v=actual_vdd,
        vth_v=vth,
        delay_scale=delay,
        cap_scale=lerp(nine.cap_scale, twelve.cap_scale),
        energy_scale=energy,
        leakage_scale=leakage,
    )
    return _build_library(corner)
