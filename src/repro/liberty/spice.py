"""Analytical CMOS stage model for the boundary-cell study (Section II-B).

The paper characterizes the two heterogeneity boundary conditions of
Fig. 2 with HSPICE on an FO-4 inverter:

- **Heterogeneity at the driver output** (Table II): the four load
  inverters sit on the other tier, so the driver sees a different load
  capacitance and the loads see a foreign swing.
- **Heterogeneity at the driver input** (Table III): driver and loads share
  a tier, but the driver's gate voltage comes from the other tier's supply
  rail, changing overdrive and -- dramatically -- leakage.

We do not have HSPICE or the foundry device models, so this module uses the
standard hand-analysis models instead:

- alpha-power-law drive current ``I_on ~ (V_GS - V_th)^alpha`` linearized
  into an overdrive-ratio sensitivity for delay/slew,
- subthreshold leakage ``I_off ~ I0 * exp((V_ov - V_th) / (n * v_T))``,
  which is what produces the huge, asymmetric leakage deltas of Table III,
- load-dependent switching power with a fitted load weight (measured total
  power is dominated by internal/short-circuit components and is only
  weakly load dependent, matching the small power deltas of Table II).

The homogeneous baselines (Case-I fast/fast and Case-III slow/slow) are
*calibrated* to Table II's published values; every heterogeneous mix is
then a prediction of the model.  The signs of all published deltas, and
their magnitude classes (|delay| <= ~25%, leakage up 3-4x for fast cells
driven from the low rail, down ~45% for the converse), are reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import exp

__all__ = [
    "InverterModel",
    "FO4Result",
    "FAST_INVERTER",
    "SLOW_INVERTER",
    "simulate_fo4_output_boundary",
    "simulate_fo4_input_boundary",
    "overdrive_ratio",
    "input_voltage_delay_factor",
    "input_voltage_slew_factor",
    "input_voltage_leakage_factor",
]

#: Sensitivity of stage delay to gate-overdrive ratio (fitted to Table III).
GAMMA_DELAY = 0.25

#: Sensitivity of output slew to gate-overdrive ratio (fitted to Table III).
GAMMA_SLEW = 0.49

#: Subthreshold slope ``n * v_T`` in volts (n ~= 1.95 at room temperature).
SUBTHRESHOLD_NVT = 0.0503

#: Short-circuit energy sensitivity voltage scale (fitted to Table III power).
PHI_SC = 0.11

#: Weight of the external load in measured total power (fitted to Table II).
P_LOAD_WEIGHT = 0.41

#: FO-4 toggle frequency used for power numbers, GHz.
TOGGLE_GHZ = 1.0


def overdrive_ratio(vdd_v: float, vth_v: float, vg_v: float) -> float:
    """Gate overdrive relative to the cell's own full-rail overdrive.

    1.0 when the input swings to the cell's own ``vdd``; below 1.0 when the
    driving tier's rail is lower (underdrive), above 1.0 when higher.
    """
    own = vdd_v - vth_v
    if own <= 0:
        raise ValueError("vdd must exceed vth")
    return max(0.0, vg_v - vth_v) / own


def input_voltage_delay_factor(vdd_v: float, vth_v: float, vg_v: float) -> float:
    """Multiplicative delay derate for a gate driven from a foreign rail.

    Used both here and by the STA delay calculator for cross-tier nets
    ("heterogeneity at the driver input", Fig. 2(b)).
    """
    ratio = overdrive_ratio(vdd_v, vth_v, vg_v)
    return 1.0 + GAMMA_DELAY * (1.0 - ratio)


def input_voltage_slew_factor(vdd_v: float, vth_v: float, vg_v: float) -> float:
    """Multiplicative output-slew derate for a foreign-rail input."""
    ratio = overdrive_ratio(vdd_v, vth_v, vg_v)
    return 1.0 + GAMMA_SLEW * (1.0 - ratio)


def input_voltage_leakage_factor(vdd_v: float, vth_v: float, vg_v: float) -> float:
    """Leakage multiplier for a gate whose input-high level is ``vg``.

    With the input high at a rail below the cell's own supply, the pull-up
    device is not fully off (``|V_GS| = vdd - vg > 0``) and subthreshold
    leakage grows exponentially; with an overdriven input the device is
    pushed further off and leakage shrinks.  State-averaged over the
    input-high (affected) and input-low (unaffected) states.
    """
    high_state = exp((vdd_v - vg_v) / SUBTHRESHOLD_NVT)
    return 0.5 * (high_state + 1.0)


@dataclass(frozen=True)
class InverterModel:
    """Calibrated FO-4 inverter characterization for one library corner.

    The ``base_*`` values are the homogeneous-baseline measurements
    (Table II Case-I for the fast corner, Case-III for the slow corner);
    self-capacitances are fitted so the model's load sensitivity reproduces
    the published heterogeneous deltas.
    """

    name: str
    vdd_v: float
    vth_v: float
    cin_ff: float
    base_rise_slew_ps: float
    base_fall_slew_ps: float
    base_rise_delay_ps: float
    base_fall_delay_ps: float
    base_leakage_uw: float
    base_total_power_uw: float
    cself_delay_rise_ff: float
    cself_delay_fall_ff: float
    cself_slew_rise_ff: float
    cself_slew_fall_ff: float
    p_sc_uw: float

    def _load_ratio(self, cself_ff: float, load_cin_ff: float) -> float:
        own = cself_ff + 4.0 * self.cin_ff
        actual = cself_ff + 4.0 * load_cin_ff
        return actual / own

    def leakage_uw(self, vg_high_v: float) -> float:
        """Driver leakage power with the input-high level at ``vg_high``."""
        return self.base_leakage_uw * input_voltage_leakage_factor(
            self.vdd_v, self.vth_v, vg_high_v
        )


#: The 12-track 0.90 V corner, baselines from Table II Case-I.
FAST_INVERTER = InverterModel(
    name="fast(12T,0.90V)",
    vdd_v=0.90,
    vth_v=0.30,
    cin_ff=1.0,
    base_rise_slew_ps=15.6,
    base_fall_slew_ps=18.2,
    base_rise_delay_ps=12.5,
    base_fall_delay_ps=16.4,
    base_leakage_uw=0.093,
    base_total_power_uw=3.86,
    cself_delay_rise_ff=3.63,
    cself_delay_fall_ff=1.53,
    cself_slew_rise_ff=10.9,
    cself_slew_fall_ff=1.93,
    p_sc_uw=0.10,
)

#: The 9-track 0.81 V corner, baselines from Table II Case-III.
SLOW_INVERTER = InverterModel(
    name="slow(9T,0.81V)",
    vdd_v=0.81,
    vth_v=0.32,
    cin_ff=0.75,
    base_rise_slew_ps=14.6,
    base_fall_slew_ps=19.1,
    base_rise_delay_ps=23.6,
    base_fall_delay_ps=26.2,
    base_leakage_uw=0.003,
    base_total_power_uw=2.00,
    cself_delay_rise_ff=6.0,
    cself_delay_fall_ff=1.2,
    cself_slew_rise_ff=3.03,
    cself_slew_fall_ff=7.0,
    p_sc_uw=0.055,
)


@dataclass(frozen=True)
class FO4Result:
    """Measured quantities of one FO-4 arrangement (Tables II/III rows)."""

    rise_slew_ps: float
    fall_slew_ps: float
    rise_delay_ps: float
    fall_delay_ps: float
    leakage_uw: float
    total_power_uw: float

    def delta_pct(self, baseline: "FO4Result") -> dict[str, float]:
        """Percent deltas relative to a homogeneous baseline run."""
        def pct(new: float, old: float) -> float:
            return (new - old) / old * 100.0

        return {
            "rise_slew": pct(self.rise_slew_ps, baseline.rise_slew_ps),
            "fall_slew": pct(self.fall_slew_ps, baseline.fall_slew_ps),
            "rise_delay": pct(self.rise_delay_ps, baseline.rise_delay_ps),
            "fall_delay": pct(self.fall_delay_ps, baseline.fall_delay_ps),
            "leakage": pct(self.leakage_uw, baseline.leakage_uw),
            "total_power": pct(self.total_power_uw, baseline.total_power_uw),
        }


def _total_power_uw(
    driver: InverterModel,
    load_cin_ff: float,
    vg_high_v: float,
) -> float:
    """Total FO-4 power: load-weighted dynamic + short-circuit + leakage."""
    own_load_term = 0.5 * driver.vdd_v**2 * P_LOAD_WEIGHT * 4.0 * driver.cin_ff
    actual_load_term = 0.5 * driver.vdd_v**2 * P_LOAD_WEIGHT * 4.0 * load_cin_ff
    dynamic_delta = (actual_load_term - own_load_term) * TOGGLE_GHZ

    sc_baseline = driver.p_sc_uw
    sc_actual = driver.p_sc_uw * exp((driver.vdd_v - vg_high_v) / PHI_SC)
    leak_delta = driver.leakage_uw(vg_high_v) - driver.base_leakage_uw

    return (
        driver.base_total_power_uw + dynamic_delta + (sc_actual - sc_baseline)
        + leak_delta
    )


def simulate_fo4_output_boundary(
    driver: InverterModel, load: InverterModel
) -> FO4Result:
    """Fig. 2(a): driver on one tier, the four load inverters on another.

    The driver's own input still swings to its own rail; only the load
    capacitance (and hence delay, slew, and switched energy) changes.
    """
    rise_delay = driver.base_rise_delay_ps * driver._load_ratio(
        driver.cself_delay_rise_ff, load.cin_ff
    )
    fall_delay = driver.base_fall_delay_ps * driver._load_ratio(
        driver.cself_delay_fall_ff, load.cin_ff
    )
    rise_slew = driver.base_rise_slew_ps * driver._load_ratio(
        driver.cself_slew_rise_ff, load.cin_ff
    )
    fall_slew = driver.base_fall_slew_ps * driver._load_ratio(
        driver.cself_slew_fall_ff, load.cin_ff
    )
    return FO4Result(
        rise_slew_ps=rise_slew,
        fall_slew_ps=fall_slew,
        rise_delay_ps=rise_delay,
        fall_delay_ps=fall_delay,
        leakage_uw=driver.leakage_uw(driver.vdd_v),
        total_power_uw=_total_power_uw(driver, load.cin_ff, driver.vdd_v),
    )


def simulate_fo4_input_boundary(
    cell: InverterModel, input_rail: InverterModel
) -> FO4Result:
    """Fig. 2(b): driver and loads share a tier; the input comes from another.

    The driver's gate-high level is the foreign tier's supply, which shifts
    overdrive (small, sign-reversible delay/slew changes) and moves the
    off-device's gate-source voltage (exponential leakage change).
    """
    vg = input_rail.vdd_v
    m_delay = input_voltage_delay_factor(cell.vdd_v, cell.vth_v, vg)
    m_slew = input_voltage_slew_factor(cell.vdd_v, cell.vth_v, vg)
    return FO4Result(
        rise_slew_ps=cell.base_rise_slew_ps * m_slew,
        fall_slew_ps=cell.base_fall_slew_ps * m_slew,
        rise_delay_ps=cell.base_rise_delay_ps * m_delay,
        fall_delay_ps=cell.base_fall_delay_ps * m_delay,
        leakage_uw=cell.leakage_uw(vg),
        total_power_uw=_total_power_uw(cell, cell.cin_ff, vg),
    )
