"""Technology library modeling.

This subpackage stands in for the commercial foundry 28 nm PDK used by the
paper.  It provides:

- :mod:`repro.liberty.timing_model` -- NLDM-style lookup tables with
  bilinear interpolation, the same abstraction commercial ``.lib`` files use.
- :mod:`repro.liberty.cells` -- cell archetypes (function, drive strength,
  pins, timing arcs).
- :mod:`repro.liberty.library` -- the :class:`StdCellLibrary` container and
  cross-library remapping.
- :mod:`repro.liberty.presets` -- the 9-track and 12-track 28 nm library
  pair the paper evaluates (Section IV-A).
- :mod:`repro.liberty.spice` -- an analytical CMOS stage simulator used for
  the FO-4 boundary-cell experiments (Tables II and III).
"""

from repro.liberty.cells import CellFunction, CellType, PinSpec, TimingArc
from repro.liberty.library import StdCellLibrary
from repro.liberty.presets import (
    make_library_pair,
    make_nine_track_library,
    make_twelve_track_library,
)
from repro.liberty.timing_model import TimingTable

__all__ = [
    "CellFunction",
    "CellType",
    "PinSpec",
    "TimingArc",
    "StdCellLibrary",
    "TimingTable",
    "make_library_pair",
    "make_nine_track_library",
    "make_twelve_track_library",
]
