"""The standard-cell library container and cross-library remapping.

A :class:`StdCellLibrary` owns a family of :class:`~repro.liberty.cells.CellType`
objects sharing one process corner: track height, supply voltage, threshold
voltage, and cost attributes.  The heterogeneous flow manipulates *pairs* of
libraries (9-track and 12-track variants of the same node) and needs to map
a cell of one library onto the equivalent cell of the other; that mapping is
:meth:`StdCellLibrary.equivalent_of`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LibraryError
from repro.liberty.cells import CellFunction, CellType

__all__ = ["StdCellLibrary"]


@dataclass
class StdCellLibrary:
    """A family of standard cells at one process/voltage corner.

    Attributes
    ----------
    name:
        Library identifier, e.g. ``"28nm_12T"``.
    tracks:
        Cell height in horizontal M1 routing tracks (paper: 9 vs 12).
    vdd_v:
        Nominal supply voltage.
    vth_v:
        Representative device threshold voltage (used by the boundary-cell
        voltage-margin rule of Section II-B).
    track_pitch_um:
        M1 track pitch; cell height is ``tracks * track_pitch_um``.
    wire_r_kohm_per_um / wire_c_ff_per_um:
        BEOL wire parasitics per micron (shared between track variants of
        the same node, which is what makes them stackable).
    miv_r_kohm / miv_c_ff:
        Monolithic inter-tier via parasitics.
    """

    name: str
    tracks: int
    vdd_v: float
    vth_v: float
    track_pitch_um: float = 0.1
    wire_r_kohm_per_um: float = 0.004
    wire_c_ff_per_um: float = 0.20
    miv_r_kohm: float = 0.05
    miv_c_ff: float = 0.1
    _cells: dict[str, CellType] = field(default_factory=dict, repr=False)
    _by_function: dict[CellFunction, dict[int, CellType]] = field(
        default_factory=dict, repr=False
    )

    def add_cell(self, cell: CellType) -> None:
        """Register a cell type; name and (function, drive) must be unique."""
        if cell.name in self._cells:
            raise LibraryError(f"duplicate cell name {cell.name!r}")
        drives = self._by_function.setdefault(cell.function, {})
        if cell.drive in drives:
            raise LibraryError(
                f"duplicate ({cell.function.value}, x{cell.drive}) in {self.name}"
            )
        self._cells[cell.name] = cell
        drives[cell.drive] = cell

    @property
    def cell_height_um(self) -> float:
        """Standard cell row height in microns."""
        return self.tracks * self.track_pitch_um

    @property
    def cells(self) -> tuple[CellType, ...]:
        """All registered cell types."""
        return tuple(self._cells.values())

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def cell(self, name: str) -> CellType:
        """Look up a cell type by library name."""
        try:
            return self._cells[name]
        except KeyError:
            raise LibraryError(f"{self.name} has no cell {name!r}") from None

    def get(self, function: CellFunction, drive: int = 1) -> CellType:
        """Look up a cell by function and drive strength."""
        try:
            return self._by_function[function][drive]
        except KeyError:
            raise LibraryError(
                f"{self.name} has no {function.value} at drive x{drive}"
            ) from None

    def drives_for(self, function: CellFunction) -> tuple[int, ...]:
        """Available drive strengths for a function, ascending."""
        drives = self._by_function.get(function)
        if not drives:
            raise LibraryError(f"{self.name} has no {function.value} cells")
        return tuple(sorted(drives))

    def upsize(self, cell: CellType) -> CellType | None:
        """The next-stronger drive of the same function, or None at the top."""
        drives = self.drives_for(cell.function)
        stronger = [d for d in drives if d > cell.drive]
        if not stronger:
            return None
        return self.get(cell.function, min(stronger))

    def downsize(self, cell: CellType) -> CellType | None:
        """The next-weaker drive of the same function, or None at the bottom."""
        drives = self.drives_for(cell.function)
        weaker = [d for d in drives if d < cell.drive]
        if not weaker:
            return None
        return self.get(cell.function, max(weaker))

    def equivalent_of(self, cell: CellType) -> CellType:
        """Map a cell from another library onto this library.

        Same function at the same drive when available, otherwise the
        closest available drive.  This is the remapping the heterogeneous
        flow performs when it moves a cell between tiers.
        """
        drives = self.drives_for(cell.function)
        if cell.drive in drives:
            return self.get(cell.function, cell.drive)
        closest = min(drives, key=lambda d: abs(d - cell.drive))
        return self.get(cell.function, closest)

    def voltage_compatible_with(self, other: StdCellLibrary) -> bool:
        """Check the Section II-B rule ``V_DDH - V_DDL < 0.3 * V_DDH``.

        When it holds (and the threshold voltage exceeds the difference),
        signals can cross tiers without level shifters.
        """
        vddh = max(self.vdd_v, other.vdd_v)
        vddl = min(self.vdd_v, other.vdd_v)
        diff = vddh - vddl
        margin_ok = diff < 0.3 * vddh
        vth_ok = min(self.vth_v, other.vth_v) > diff
        return margin_ok and vth_ok

    def slew_ranges_overlap(self, other: StdCellLibrary) -> bool:
        """Check the characterized-slew-overlap rule of Section II-B.

        Heterogeneous integration requires the two libraries' characterized
        input-slew windows to overlap substantially so that boundary-cell
        slews remain inside both tables.
        """
        ranges = []
        for lib in (self, other):
            arc = lib.get(CellFunction.INV, 1).worst_arc_to_output()
            ranges.append(arc.delay.slew_range)
        low = max(r[0] for r in ranges)
        high = min(r[1] for r in ranges)
        if high <= low:
            return False
        widths = [r[1] - r[0] for r in ranges]
        return (high - low) >= 0.5 * min(widths)
