"""NLDM-style two-dimensional timing lookup tables.

Commercial liberty files characterize each timing arc as a table of delay
(and output slew) indexed by input slew and output load.  We reproduce the
same abstraction: a :class:`TimingTable` holds a small grid of values and
answers queries by bilinear interpolation, extrapolating linearly at the
table edges exactly as signoff tools do.

The tables themselves are generated analytically by the library presets
(:mod:`repro.liberty.presets`) from a first-order RC model, but nothing in
the rest of the package knows that: the STA engine only ever sees tables.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

import numpy as np

from repro.errors import LibraryError

__all__ = ["TimingTable", "linear_delay_table"]


@dataclass(frozen=True)
class TimingTable:
    """A 2-D lookup table indexed by (input slew, output load).

    Parameters
    ----------
    slew_axis:
        Monotonically increasing input-slew breakpoints in ns.
    load_axis:
        Monotonically increasing output-load breakpoints in fF.
    values:
        ``(len(slew_axis), len(load_axis))`` array of table values
        (delay or output slew, in ns).
    """

    slew_axis: tuple[float, ...]
    load_axis: tuple[float, ...]
    values: tuple[tuple[float, ...], ...] = field(repr=False)

    def __post_init__(self) -> None:
        slews = np.asarray(self.slew_axis, dtype=float)
        loads = np.asarray(self.load_axis, dtype=float)
        grid = np.asarray(self.values, dtype=float)
        if slews.ndim != 1 or slews.size < 2:
            raise LibraryError("slew axis needs at least two breakpoints")
        if loads.ndim != 1 or loads.size < 2:
            raise LibraryError("load axis needs at least two breakpoints")
        if np.any(np.diff(slews) <= 0) or np.any(np.diff(loads) <= 0):
            raise LibraryError("table axes must be strictly increasing")
        if grid.shape != (slews.size, loads.size):
            raise LibraryError(
                f"table shape {grid.shape} does not match axes "
                f"({slews.size}, {loads.size})"
            )

    @property
    def slew_range(self) -> tuple[float, float]:
        """The characterized input-slew range (min, max) in ns."""
        return self.slew_axis[0], self.slew_axis[-1]

    @property
    def load_range(self) -> tuple[float, float]:
        """The characterized output-load range (min, max) in fF."""
        return self.load_axis[0], self.load_axis[-1]

    def covers_slew(self, slew_ns: float) -> bool:
        """Return True when ``slew_ns`` lies inside the characterized range.

        Section II-B of the paper requires heterogeneous library pairs to
        have "significant overlap in characterized slew ranges"; the flow
        uses this predicate to enforce that rule.
        """
        low, high = self.slew_range
        return low <= slew_ns <= high

    def lookup(self, slew_ns: float, load_ff: float) -> float:
        """Bilinearly interpolate the table at (slew, load).

        Queries outside the characterized window are extrapolated from the
        nearest edge segment, which matches signoff-tool behaviour for
        mildly out-of-range slews.

        The interpolation runs on the stored tuples with :mod:`bisect`
        rather than numpy: the tables are tiny (a few breakpoints per
        axis) and this is the hottest leaf of the STA engine, where the
        per-call ``np.asarray`` conversions dominated.  The arithmetic is
        the same IEEE-double sequence as the numpy formulation, so results
        are bit-identical.
        """
        slews = self.slew_axis
        loads = self.load_axis

        i = bisect_left(slews, slew_ns) - 1
        if i < 0:
            i = 0
        elif i > len(slews) - 2:
            i = len(slews) - 2
        j = bisect_left(loads, load_ff) - 1
        if j < 0:
            j = 0
        elif j > len(loads) - 2:
            j = len(loads) - 2

        s0, s1 = slews[i], slews[i + 1]
        l0, l1 = loads[j], loads[j + 1]
        ts = (slew_ns - s0) / (s1 - s0)
        tl = (load_ff - l0) / (l1 - l0)

        row0 = self.values[i]
        row1 = self.values[i + 1]
        v00, v01 = row0[j], row0[j + 1]
        v10, v11 = row1[j], row1[j + 1]
        return float(
            v00 * (1 - ts) * (1 - tl)
            + v01 * (1 - ts) * tl
            + v10 * ts * (1 - tl)
            + v11 * ts * tl
        )


def linear_delay_table(
    intrinsic_ns: float,
    resistance_kohm: float,
    slew_sensitivity: float,
    slew_axis: tuple[float, ...],
    load_axis: tuple[float, ...],
) -> TimingTable:
    """Build a table from the first-order model ``d = d0 + R*C + k*s_in``.

    The product of kOhm and fF is ps, hence the ``1e-3`` factor to ns.
    This is how the presets synthesize NLDM tables; downstream code only
    sees the resulting :class:`TimingTable`.
    """
    values = tuple(
        tuple(
            intrinsic_ns + resistance_kohm * load * 1e-3 + slew_sensitivity * slew
            for load in load_axis
        )
        for slew in slew_axis
    )
    return TimingTable(slew_axis=slew_axis, load_axis=load_axis, values=values)
