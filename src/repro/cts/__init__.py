"""Clock tree synthesis: geometric clustering, buffering, 3-D support."""

from repro.cts.tree import ClockReport, ClockTreeSynthesizer, TierPolicy

__all__ = ["ClockReport", "ClockTreeSynthesizer", "TierPolicy"]
