"""Buffered clock-tree synthesis over one or two tiers.

Pin-3D as published has no 3-D clock stage; the paper's key flow
enhancement (Section III-A2) is representing the other die's cells as
"COVER" cells so one clock tree can be designed and optimized across both
tiers at once.  This module implements that end state directly: sinks from
*all* tiers enter one geometric clustering, and every inserted buffer is
assigned a tier (and that tier's clock-buffer library cell).

Tier assignment policies:

- ``TierPolicy.MAJORITY`` -- homogeneous 3-D: a buffer lands on the tier
  holding most of its subtree's sinks.
- ``TierPolicy.PREFER_SLOW`` -- heterogeneous 3-D: clock buffers are not
  data-path cells, so the flow biases them onto the slow/low-power tier
  unless a subtree is dominated by fast-tier (critical) sinks.  This is
  what produces Table VIII's top-die-heavy clock tree (>75% of buffers on
  the 9-track tier), its smaller clock-buffer area and power, and its
  larger-but-managed insertion delay.

The tree is a recursive geometric bisection: sinks split along the longer
axis at the median until groups fit under one leaf buffer, then levels of
parent buffers are added up to a single root at the clock pad.  Latency
is computed with the buffers' NLDM tables plus Elmore wire delays, so a
9-track buffer chain really is slower.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import FlowError
from repro.liberty.cells import CellFunction, CellType
from repro.liberty.library import StdCellLibrary
from repro.netlist.core import Netlist
from repro.obs import emit_metric, span
from repro.units import RC_TO_NS

__all__ = ["TierPolicy", "ClockReport", "ClockTreeSynthesizer"]

#: Sinks per leaf buffer.
LEAF_SIZE = 6

#: Children per internal buffer level.
BRANCHING = 3

#: Input slew assumed at the clock pad (ns).
PAD_SLEW_NS = 0.02


class TierPolicy(enum.Enum):
    """How inserted clock buffers pick a tier in 3-D designs."""

    SINGLE = "single"  # 2-D: everything on tier 0
    MAJORITY = "majority"  # homogeneous 3-D
    PREFER_SLOW = "prefer_slow"  # heterogeneous 3-D


@dataclass
class _Sink:
    inst: str
    pin: str
    x: float
    y: float
    tier: int
    cap_ff: float


@dataclass
class _Node:
    x: float
    y: float
    tier: int
    cell: CellType | None  # None only for the virtual list of raw sinks
    children: list["_Node"] = field(default_factory=list)
    sinks: list[_Sink] = field(default_factory=list)
    latency_ns: float = 0.0


@dataclass(frozen=True)
class ClockReport:
    """Clock network metrics (the Table VIII 'Clock Network' block)."""

    buffer_count: int
    buffer_count_by_tier: dict[int, int]
    buffer_area_um2: float
    wirelength_mm: float
    max_latency_ns: float
    min_latency_ns: float
    power_mw: float
    latencies: dict[str, float]

    @property
    def max_skew_ns(self) -> float:
        """Global skew: max minus min insertion delay."""
        return self.max_latency_ns - self.min_latency_ns

    def tier_fraction(self, tier: int) -> float:
        """Fraction of clock buffers on one tier."""
        if self.buffer_count == 0:
            return 0.0
        return self.buffer_count_by_tier.get(tier, 0) / self.buffer_count


class ClockTreeSynthesizer:
    """Builds and characterizes one clock tree for a placed design."""

    def __init__(
        self,
        netlist: Netlist,
        tier_libs: dict[int, StdCellLibrary],
        policy: TierPolicy,
        *,
        frequency_ghz: float = 1.0,
        slow_tier: int = 1,
    ) -> None:
        if netlist.clock_port is None:
            raise FlowError("design has no clock port")
        self._netlist = netlist
        self._tier_libs = tier_libs
        self._policy = policy
        self._frequency_ghz = frequency_ghz
        self._slow_tier = slow_tier
        self._buffers: list[_Node] = []
        self._latencies: dict[str, float] = {}

    # ------------------------------------------------------------------
    def run(self) -> ClockReport:
        """Synthesize the tree and return its report."""
        with span("cts", policy=self._policy.value):
            sinks = self._collect_sinks()
            if not sinks:
                raise FlowError("no clock sinks to synthesize")
            self._buffers = []
            self._latencies = {}
            leaves = self._cluster(sinks)
            root = self._build_levels(leaves)
            self._assign_latency(root, 0.0, PAD_SLEW_NS)
            report = self._report(root)
            emit_metric("clock_buffers", report.buffer_count)
            emit_metric("clock_skew_ns", report.max_skew_ns)
            emit_metric("clock_power_mw", report.power_mw)
            if self._policy is not TierPolicy.SINGLE:
                emit_metric(
                    "clock_slow_tier_fraction",
                    report.tier_fraction(self._slow_tier),
                    tier=self._slow_tier,
                )
        return report

    # ------------------------------------------------------------------
    def _collect_sinks(self) -> list[_Sink]:
        sinks = []
        for inst_name, pin in self._netlist.clock_sinks():
            inst = self._netlist.instances[inst_name]
            if not inst.is_placed:
                raise FlowError(f"clock sink {inst_name} is unplaced")
            x, y = inst.center()
            sinks.append(
                _Sink(
                    inst=inst_name,
                    pin=pin,
                    x=x,
                    y=y,
                    tier=inst.tier,
                    cap_ff=inst.cell.input_capacitance_ff(pin),
                )
            )
        return sinks

    def _pick_tier(self, sink_tiers: list[int]) -> int:
        if self._policy is TierPolicy.SINGLE:
            return 0
        fast_tier = 1 - self._slow_tier
        fast_count = sum(1 for t in sink_tiers if t == fast_tier)
        if self._policy is TierPolicy.PREFER_SLOW:
            # Stay on the low-power tier unless this subtree is dominated
            # by fast-tier (timing-critical) sinks.
            if fast_count > 0.7 * len(sink_tiers):
                return fast_tier
            return self._slow_tier
        # MAJORITY: a balanced subtree has no majority; break the tie
        # toward the fast tier so the policy stays distinct from
        # PREFER_SLOW (for homogeneous 3-D both tiers hold the same
        # library, so the tie-break carries no area/power meaning).
        return fast_tier if fast_count * 2 >= len(sink_tiers) else self._slow_tier

    def _buffer_cell(self, tier: int, load_ff: float) -> CellType:
        lib = self._tier_libs.get(tier) or next(iter(self._tier_libs.values()))
        drives = lib.drives_for(CellFunction.CLKBUF)
        # Pick the smallest drive whose R*C stays under ~40 ps.
        for drive in drives:
            cell = lib.get(CellFunction.CLKBUF, drive)
            arc = cell.worst_arc_to_output()
            if arc.delay.lookup(PAD_SLEW_NS, load_ff) < 0.040:
                return cell
        return lib.get(CellFunction.CLKBUF, drives[-1])

    def _make_buffer(self, children_nodes: list[_Node], sinks: list[_Sink]) -> _Node:
        xs = [c.x for c in children_nodes] + [s.x for s in sinks]
        ys = [c.y for c in children_nodes] + [s.y for s in sinks]
        tiers = [c.tier for c in children_nodes] + [s.tier for s in sinks]
        x = sum(xs) / len(xs)
        y = sum(ys) / len(ys)
        tier = self._pick_tier(tiers)
        load = sum(s.cap_ff for s in sinks) + sum(
            (c.cell.input_capacitance_ff("A") if c.cell else 0.0)
            for c in children_nodes
        )
        node = _Node(
            x=x,
            y=y,
            tier=tier,
            cell=self._buffer_cell(tier, load),
            children=children_nodes,
            sinks=sinks,
        )
        self._buffers.append(node)
        return node

    def _cluster(self, sinks: list[_Sink]) -> list[_Node]:
        """Recursive geometric bisection into leaf buffers."""
        leaves: list[_Node] = []

        def recurse(group: list[_Sink]) -> None:
            if len(group) <= LEAF_SIZE:
                leaves.append(self._make_buffer([], group))
                return
            dx = max(s.x for s in group) - min(s.x for s in group)
            dy = max(s.y for s in group) - min(s.y for s in group)
            key = (lambda s: s.x) if dx >= dy else (lambda s: s.y)
            ordered = sorted(group, key=lambda s: (key(s), s.inst))
            mid = len(ordered) // 2
            recurse(ordered[:mid])
            recurse(ordered[mid:])

        recurse(sinks)
        return leaves

    def _build_levels(self, nodes: list[_Node]) -> _Node:
        """Group buffers geometrically until a single root remains."""
        while len(nodes) > 1:
            ordered = sorted(nodes, key=lambda n: (n.x, n.y))
            parents = []
            for i in range(0, len(ordered), BRANCHING):
                group = ordered[i : i + BRANCHING]
                parents.append(self._make_buffer(group, []))
            nodes = parents
        return nodes[0]

    # ------------------------------------------------------------------
    def _wire_delay(self, parent: _Node, cx: float, cy: float, cap_ff: float, tier_cross: bool) -> float:
        lib = next(iter(self._tier_libs.values()))
        dist = abs(parent.x - cx) + abs(parent.y - cy)
        r = dist * lib.wire_r_kohm_per_um
        c = dist * lib.wire_c_ff_per_um
        delay = r * (c / 2.0 + cap_ff) * RC_TO_NS
        if tier_cross:
            delay += lib.miv_r_kohm * (lib.miv_c_ff / 2.0 + cap_ff) * RC_TO_NS
        return delay

    def _node_load(self, node: _Node) -> float:
        lib = next(iter(self._tier_libs.values()))
        load = 0.0
        for child in node.children:
            dist = abs(node.x - child.x) + abs(node.y - child.y)
            load += dist * lib.wire_c_ff_per_um
            if child.cell is not None:
                load += child.cell.input_capacitance_ff("A")
        for sink in node.sinks:
            dist = abs(node.x - sink.x) + abs(node.y - sink.y)
            load += dist * lib.wire_c_ff_per_um + sink.cap_ff
        return load

    def _assign_latency(self, node: _Node, upstream_ns: float, slew_ns: float) -> None:
        assert node.cell is not None
        load = self._node_load(node)
        arc = node.cell.worst_arc_to_output()
        delay = arc.delay.lookup(slew_ns, load)
        out_slew = arc.output_slew.lookup(slew_ns, load)
        node.latency_ns = upstream_ns + delay
        for child in node.children:
            wire = self._wire_delay(
                node,
                child.x,
                child.y,
                child.cell.input_capacitance_ff("A") if child.cell else 0.0,
                tier_cross=child.tier != node.tier,
            )
            self._assign_latency(child, node.latency_ns + wire, out_slew)
        for sink in node.sinks:
            wire = self._wire_delay(
                node, sink.x, sink.y, sink.cap_ff, tier_cross=sink.tier != node.tier
            )
            sink_latency = node.latency_ns + wire
            self._latencies[sink.inst] = sink_latency

    # ------------------------------------------------------------------
    def _report(self, root: _Node) -> ClockReport:
        by_tier: dict[int, int] = {}
        area = 0.0
        wirelength = 0.0
        power_uw = 0.0
        f = self._frequency_ghz
        for node in self._buffers:
            by_tier[node.tier] = by_tier.get(node.tier, 0) + 1
            area += node.cell.area_um2
            load = self._node_load(node)
            vdd = node.cell.vdd_v
            # clock toggles twice per cycle -> energy C*V^2 per cycle
            power_uw += load * vdd * vdd * f
            power_uw += node.cell.internal_energy_pj * 2.0 * f * 1000.0
            for child in node.children:
                wirelength += abs(node.x - child.x) + abs(node.y - child.y)
            for sink in node.sinks:
                wirelength += abs(node.x - sink.x) + abs(node.y - sink.y)
        latencies = dict(self._latencies)
        values = list(latencies.values())
        return ClockReport(
            buffer_count=len(self._buffers),
            buffer_count_by_tier=by_tier,
            buffer_area_um2=area,
            wirelength_mm=wirelength / 1000.0,
            max_latency_ns=max(values),
            min_latency_ns=min(values),
            power_mw=power_uw / 1000.0,
            latencies=latencies,
        )
