"""Full-chip power analysis.

Four components, as reported by the paper's flow:

- **switching**: ``0.5 * C_net * Vdd^2 * activity * f`` per net, where
  ``C_net`` comes from the same extracted parasitics STA uses (so 3-D
  wirelength reduction lowers power automatically);
- **internal**: per-toggle internal energy of each cell;
- **leakage**: state-averaged cell leakage, *scaled by the heterogeneous
  input-boundary factor of Section II-B* -- a gate driven from a
  lower-rail tier leaks exponentially more because its pull-up never
  fully turns off;
- **clock**: supplied by the CTS module (buffers, clock wiring, and
  sequential clock-pin loads) and added on top.

Unit bookkeeping: fF x V^2 = fJ, fJ x GHz = uW, and pJ x GHz = mW.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.liberty.cells import CellFunction
from repro.liberty.spice import input_voltage_leakage_factor
from repro.liberty.library import StdCellLibrary
from repro.netlist.core import Netlist
from repro.power.activity import DEFAULT_INPUT_ACTIVITY, propagate_activities
from repro.timing.delaycalc import DelayCalculator

__all__ = ["PowerReport", "analyze_power"]


@dataclass(frozen=True)
class PowerReport:
    """Component breakdown of total chip power, in mW."""

    switching_mw: float
    internal_mw: float
    leakage_mw: float
    clock_mw: float

    @property
    def total_mw(self) -> float:
        """Sum of all components."""
        return self.switching_mw + self.internal_mw + self.leakage_mw + self.clock_mw


def _leakage_factor(
    netlist: Netlist,
    inst_name: str,
    libraries: dict[str, StdCellLibrary],
) -> float:
    """Mean input-boundary leakage multiplier over an instance's inputs.

    Level shifters are exempt: they are designed (cascode input stages)
    for a foreign-rail input, which is their entire purpose.
    """
    inst = netlist.instances[inst_name]
    if inst.cell.function is CellFunction.LEVEL_SHIFTER:
        return 1.0
    lib = libraries[inst.cell.library_name]
    factors = []
    for pin in inst.cell.input_pins:
        net_name = inst.net_of(pin)
        if net_name is None:
            continue
        driver = netlist.driver_instance(netlist.nets[net_name])
        if driver is None:
            continue
        vg = driver.cell.vdd_v
        if abs(vg - inst.cell.vdd_v) < 1e-9:
            factors.append(1.0)
        else:
            factors.append(input_voltage_leakage_factor(lib.vdd_v, lib.vth_v, vg))
    if not factors:
        return 1.0
    return sum(factors) / len(factors)


def analyze_power(
    netlist: Netlist,
    calc: DelayCalculator,
    frequency_ghz: float,
    libraries: dict[str, StdCellLibrary],
    *,
    input_activity: float = DEFAULT_INPUT_ACTIVITY,
    clock_power_mw: float = 0.0,
    activities: dict[str, float] | None = None,
) -> PowerReport:
    """Analyze chip power at a given clock frequency.

    ``activities`` can be supplied to reuse a previous propagation;
    ``clock_power_mw`` is the CTS-reported clock network power (zero for
    an ideal-clock analysis).
    """
    if activities is None:
        activities = propagate_activities(netlist, input_activity)

    switching_uw = 0.0
    internal_mw = 0.0
    leakage_mw = 0.0
    for net in netlist.nets.values():
        if net.is_clock:
            continue  # clock network power is reported by CTS
        driver = netlist.driver_instance(net)
        vdd = driver.cell.vdd_v if driver is not None else 0.9
        cap_ff = calc.net_parasitics(net).total_cap_ff
        act = activities.get(net.name, input_activity)
        switching_uw += 0.5 * cap_ff * vdd * vdd * act * frequency_ghz

    for inst in netlist.instances.values():
        out_net = inst.net_of(inst.cell.output_pin)
        act = activities.get(out_net, input_activity) if out_net else 0.0
        internal_mw += inst.cell.internal_energy_pj * act * frequency_ghz
        leakage_mw += inst.cell.leakage_mw * _leakage_factor(
            netlist, inst.name, libraries
        )

    return PowerReport(
        switching_mw=switching_uw / 1000.0,
        internal_mw=internal_mw,
        leakage_mw=leakage_mw,
        clock_mw=clock_power_mw,
    )


def net_switching_power_uw(
    netlist: Netlist,
    calc: DelayCalculator,
    net_name: str,
    frequency_ghz: float,
    activities: dict[str, float],
) -> float:
    """Switching power of a single net in uW (Table VIII memory-net rows)."""
    net = netlist.nets[net_name]
    driver = netlist.driver_instance(net)
    vdd = driver.cell.vdd_v if driver is not None else 0.9
    cap_ff = calc.net_parasitics(net).total_cap_ff
    act = activities.get(net_name, DEFAULT_INPUT_ACTIVITY)
    return 0.5 * cap_ff * vdd * vdd * act * frequency_ghz
