"""Switching-activity propagation from fixed primary-input factors.

The paper's power analysis uses "fixed input activity factors, and
statistical switching propagation in Innovus" (Section IV-B1).  This module
reproduces that scheme: primary inputs get a fixed toggle rate (transitions
per clock cycle), and each gate's output rate is the mean of its input
rates scaled by a function-dependent transfer factor (XOR propagates nearly
everything, AND/OR masks roughly half, flip-flops low-pass their input).
"""

from __future__ import annotations

from repro.netlist.core import Netlist

__all__ = [
    "DEFAULT_INPUT_ACTIVITY",
    "CLOCK_ACTIVITY",
    "propagate_activities",
]

#: Default toggle rate (transitions per cycle) at primary inputs.
DEFAULT_INPUT_ACTIVITY = 0.15

#: Toggle rate of the clock net: two transitions every cycle.
CLOCK_ACTIVITY = 2.0

#: Flip-flop output toggle attenuation versus its D input.
_FF_TRANSFER = 0.7

#: Floor/ceiling on propagated data activities.
_MIN_ACTIVITY = 0.005
_MAX_ACTIVITY = 1.0


def propagate_activities(
    netlist: Netlist,
    input_activity: float = DEFAULT_INPUT_ACTIVITY,
) -> dict[str, float]:
    """Return a toggle rate for every net, keyed by net name.

    Primary-input nets carry ``input_activity``, the clock net carries
    :data:`CLOCK_ACTIVITY`, sequential outputs are low-passed versions of
    their data inputs, and combinational outputs follow the function
    transfer factors.  The propagation is one forward sweep in topological
    order plus a pre-pass over sequential cells (whose inputs may close
    cycles; the flip-flop attenuation makes the fixed point unnecessary).
    """
    activity: dict[str, float] = {}
    for net in netlist.nets.values():
        if net.is_clock:
            activity[net.name] = CLOCK_ACTIVITY
        elif net.driver is None:
            activity[net.name] = input_activity

    # Sequential outputs: seed with a representative rate; designs with
    # feedback converge because the transfer is strictly attenuating.
    for inst in netlist.sequential_instances():
        out_net = inst.net_of(inst.cell.output_pin)
        if out_net is not None:
            activity[out_net] = _FF_TRANSFER * input_activity

    for inst in netlist.topological_order():
        out_net = inst.net_of(inst.cell.output_pin)
        if out_net is None:
            continue
        rates = []
        for pin in inst.cell.input_pins:
            net_name = inst.net_of(pin)
            if net_name is not None:
                rates.append(activity.get(net_name, input_activity))
        mean_rate = sum(rates) / len(rates) if rates else input_activity
        out_rate = mean_rate * inst.cell.function.switching_transfer
        activity[out_net] = min(_MAX_ACTIVITY, max(_MIN_ACTIVITY, out_rate))

    # Refine sequential outputs now that data arrivals are known.
    for inst in netlist.sequential_instances():
        out_net = inst.net_of(inst.cell.output_pin)
        if out_net is None:
            continue
        d_rates = []
        for pin in inst.cell.input_pins:
            net_name = inst.net_of(pin)
            if net_name is not None and not netlist.nets[net_name].is_clock:
                d_rates.append(activity.get(net_name, input_activity))
        if d_rates:
            rate = _FF_TRANSFER * sum(d_rates) / len(d_rates)
            activity[out_net] = min(0.5, max(_MIN_ACTIVITY, rate))
    return activity
