"""Power analysis: activity propagation and switching/internal/leakage power."""

from repro.power.activity import propagate_activities
from repro.power.analysis import PowerReport, analyze_power

__all__ = ["propagate_activities", "PowerReport", "analyze_power"]
