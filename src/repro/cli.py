"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``flow``     run one configuration of one netlist and print its PPAC row
``matrix``   run the full Fig. 1 configuration set for one netlist
             (``--jobs N`` fans the cells out, ``--stats`` prints the
             telemetry: cache hits/misses, flow counts, wall times;
             ``--keep-going``/``--max-retries``/``--timeout``/``--resume``
             control the resilience layer -- quarantined cells print a
             failure table and the command exits with status 3)
``sweep``    find the 12-track 2-D maximum frequency of a netlist
``export``   write the Verilog/DEF/Liberty artifacts of one implementation
``tables``   regenerate the cheap paper tables (I-IV) as text
``report``   run the full evaluation matrix and write a markdown report
``cache``    show (or ``--clear``) the persistent on-disk result cache
``trace``    pretty-print (or ``--validate``) a recorded trace file, or
             aggregate every trace in a directory into one tree
``profile``  rank the hottest flow stages of a trace file or directory
``check``    validate a saved checkpoint or FlowResult JSON file
``serve``    run the crash-safe evaluation daemon (journaled job queue,
             supervised worker pool, Unix-socket intake; SIGTERM drains)
``submit``   send a flow/matrix/sweep/probe job to a running daemon
``status``   show one job (or, without a job id, the daemon's stats)
``result``   fetch a job's result (``--wait`` polls until terminal;
             ``--trace PATH`` also fetches the job's live-stitched span
             tree -- valid mid-run -- and writes it to PATH, or prints
             it when PATH is ``-``)
``metrics``  scrape the daemon's metrics registry (Prometheus text by
             default, ``--json`` for the raw snapshot)
``top``      live ASCII dashboard over the daemon's subscribe feed
``watch``    tail one job's feed events until it reaches done/failed

``flow``/``matrix``/``sweep``/``report`` accept ``--trace PATH``: spans
are recorded for the whole command (workers inherit ``$REPRO_TRACE``)
and written to PATH on exit -- Chrome trace-event JSON by default,
JSONL when PATH ends in ``.jsonl``.  The file is written even when the
run ends quarantined (exit 3), so a degraded run still leaves a
truncated-but-valid trace behind.

The same commands accept ``--check {off,warn,repair,strict}``: the flag
sets ``$REPRO_CHECK`` for the whole command (workers inherit it), so
every stage boundary of every flow run enforces the integrity contracts
of :mod:`repro.integrity`.  ``flow`` additionally takes
``--checkpoint-dir`` (write a checksummed design snapshot after each
stage) and ``--from-stage`` (resume from the newest valid checkpoint
before the named stage).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.experiments.configs import CONFIG_NAMES, configurations
from repro.experiments.runner import find_target_period, run_configuration
from repro.experiments.telemetry import get_telemetry, timed_stage
from repro.log import init_from_env
from repro.obs import trace as obs_trace
from repro.experiments.tables import (
    PAPER_TABLE1,
    table1_qualitative_ranks,
    table2_output_boundary,
    table3_input_boundary,
    table4_cost_model,
)
from repro.netlist.generators import DESIGN_NAMES

__all__ = ["main"]

#: Exit status when the run completed but one or more cells were
#: quarantined (so CI and scripts can detect degraded runs).
EXIT_QUARANTINED = 3


def _print_result(result) -> None:
    row = result.row()
    print(f"{result.design} [{result.config}] @ {result.frequency_ghz:.2f} GHz")
    for key, value in row.items():
        print(f"  {key:22s} {value:12.4f}")


def _cmd_flow(args: argparse.Namespace) -> int:
    configs = configurations()
    kwargs = {}
    if args.checkpoint_dir:
        kwargs["checkpoint_dir"] = args.checkpoint_dir
    if args.from_stage:
        kwargs["from_stage"] = args.from_stage
    with timed_stage("flow", design=args.design, config=args.config):
        _design, result = configs[args.config].run(
            args.design, period_ns=args.period, scale=args.scale,
            seed=args.seed, **kwargs,
        )
    _print_result(result)
    return 0


def _print_failures(matrix) -> None:
    print("\n-- failed cells --")
    print(matrix.failure_summary())


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_matrix

    matrix = run_matrix(
        designs=(args.design,),
        config_names=CONFIG_NAMES,
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs,
        keep_going=args.keep_going,
        max_retries=args.max_retries,
        timeout_s=args.timeout,
        resume=args.resume,
        target_periods={args.design: args.period} if args.period else None,
    )
    period = matrix.target_periods.get(args.design)
    if period is not None:
        print(f"target period {period:.3f} ns ({1 / period:.2f} GHz)")
    for name in CONFIG_NAMES:
        result = matrix.results.get((args.design, name))
        if result is None:
            cell = matrix.failed.get((args.design, name))
            reason = (
                f"{cell.error_type} at {cell.stage}" if cell is not None
                else "period search failed"
            )
            print(f"{name:8s} QUARANTINED ({reason})")
            continue
        print(
            f"{name:8s} WNS {result.wns_ns:+7.3f}  "
            f"P {result.total_power_mw:8.3f} mW  "
            f"PDP {result.pdp_pj:8.3f} pJ  "
            f"cost {result.die_cost_1e6:8.4f}  PPC {result.ppc:10.1f}"
        )
    if not matrix.ok:
        _print_failures(matrix)
    if args.stats:
        print("\n-- telemetry --")
        print(get_telemetry().summary())
    return 0 if matrix.ok else EXIT_QUARANTINED


def _cmd_explore(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.dse import ExploreSpec, LatticeSpec, explore
    from repro.experiments.dse.pareto import parse_objectives
    from repro.experiments.dse.search import load_report
    from repro.experiments.resilience import RetryPolicy

    lattice_kwargs = {}
    if args.slow_tracks:
        lattice_kwargs["slow_tracks"] = tuple(args.slow_tracks)
    if args.slow_vdd:
        lattice_kwargs["slow_vdd"] = tuple(args.slow_vdd)
    if args.tier_caps:
        lattice_kwargs["tier_caps"] = tuple(args.tier_caps)
    if args.fm_tols:
        lattice_kwargs["fm_tolerances"] = tuple(args.fm_tols)
    spec = ExploreSpec(
        design=args.design,
        scale=args.scale,
        seed=args.seed,
        lattice=LatticeSpec(**lattice_kwargs),
        objectives=parse_objectives(args.objectives),
        prune=False if args.no_prune else None,
        reuse_prefix=False if args.no_reuse else None,
        warm_periods=False if args.no_warm else None,
    )
    if args.report:
        report = load_report(spec)
        if report is None:
            print("no stored exploration for this spec; run without "
                  "--report first", file=sys.stderr)
            return 1
    else:
        policy = RetryPolicy().with_overrides(
            keep_going=args.keep_going,
            max_retries=args.max_retries,
            timeout_s=args.timeout,
        )
        report = explore(
            spec,
            jobs=args.jobs or 1,
            resume=args.resume,
            policy=policy,
            progress=print,
        )
    print(report.render())
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True)
        )
        print(f"wrote {args.json}")
    if args.stats:
        print("\n-- telemetry --")
        print(get_telemetry().summary())
    return 0 if report.ok else EXIT_QUARANTINED


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments import cache

    root = cache.cache_dir()
    if args.clear:
        removed = cache.clear_cache()
        print(f"removed {removed} entries from {root}")
        return 0
    entries = list(root.glob("*.json")) if root.is_dir() else []
    size_kb = sum(p.stat().st_size for p in entries) / 1024.0
    state = "enabled" if cache.cache_enabled() else "DISABLED (REPRO_CACHE)"
    print(f"cache dir   {root}")
    print(f"state       {state}")
    print(f"entries     {len(entries)} ({size_kb:.1f} KiB)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    period = find_target_period(args.design, scale=args.scale, seed=args.seed)
    print(f"{args.design}: max frequency {1 / period:.3f} GHz "
          f"(period {period:.3f} ns)")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.io.def_writer import write_def
    from repro.io.liberty_writer import write_liberty
    from repro.netlist.verilog import write_verilog

    configs = configurations()
    design, _result = configs[args.config].run(
        args.design, period_ns=args.period, scale=args.scale, seed=args.seed
    )
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    (out / f"{args.design}.v").write_text(write_verilog(design.netlist))
    (out / f"{args.design}.def").write_text(write_def(design))
    for tier, lib in design.tier_libs.items():
        (out / f"{lib.name}.lib").write_text(write_liberty(lib))
    print(f"wrote Verilog/DEF/Liberty artifacts to {out}/")
    return 0


def _cmd_tables(_args: argparse.Namespace) -> int:
    print("== Table I: qualitative ranks (ours vs paper) ==")
    ranks = table1_qualitative_ranks()
    for metric in ranks:
        ours = {k: ranks[metric][k] for k in sorted(ranks[metric])}
        print(f"  {metric:16s} ours  {ours}")
        print(f"  {'':16s} paper {dict(sorted(PAPER_TABLE1[metric].items()))}")
    print("\n== Table II: FO-4 heterogeneity at driver output ==")
    for row in table2_output_boundary():
        print(f"  {row.label:10s} {row.tier0}/{row.tier1}: "
              f"delays {row.rise_delay_ps:.1f}/{row.fall_delay_ps:.1f} ps, "
              f"leak {row.leakage_uw:.3f} uW, total {row.total_power_uw:.2f} uW")
    print("\n== Table III: FO-4 heterogeneity at driver input ==")
    for row in table3_input_boundary():
        print(f"  {row.label:14s}: "
              f"delays {row.rise_delay_ps:.1f}/{row.fall_delay_ps:.1f} ps, "
              f"leak {row.leakage_uw:.3f} uW, total {row.total_power_uw:.2f} uW")
    print("\n== Table IV: cost model ==")
    for key, value in table4_cost_model().items():
        print(f"  {key:24s} {value:10.4f}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.reportgen import render_report
    from repro.experiments.runner import run_matrix

    matrix = run_matrix(
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs,
        keep_going=args.keep_going,
        max_retries=args.max_retries,
        timeout_s=args.timeout,
        resume=args.resume,
    )
    if not matrix.ok:
        # The report tables index every cell; a partial matrix cannot
        # be rendered faithfully, so report the damage instead.
        print(f"matrix incomplete; {args.output} not written")
        _print_failures(matrix)
        return EXIT_QUARANTINED
    text = render_report(matrix)
    Path(args.output).write_text(text)
    print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import (
        load_traces,
        tree_summary,
        validate_chrome_trace,
    )

    path = Path(args.file)
    if args.validate:
        try:
            obj = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"error: {path} is not JSON: {exc}", file=sys.stderr)
            return 1
        problems = validate_chrome_trace(obj)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        print(f"{path}: valid Chrome trace "
              f"({len(obj.get('traceEvents', []))} events)")
        return 0
    roots = load_traces(path)
    if not roots:
        print(f"{path}: no spans recorded")
        return 0
    print(tree_summary(roots, max_depth=args.depth, metrics=not args.no_metrics))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.export import load_traces, profile_summary

    roots = load_traces(Path(args.file))
    if not roots:
        print(f"{args.file}: no spans recorded")
        return 0
    print(profile_summary(roots, top=args.top))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    import json

    from repro.errors import CheckpointError
    from repro.integrity import check_design, check_result, load_checkpoint

    path = Path(args.file)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 1

    if isinstance(payload, dict) and "checksum" in payload:
        # A stage checkpoint: verify the envelope, then the design.
        try:
            stage, design = load_checkpoint(path)
        except CheckpointError as exc:
            print(f"{path}: CORRUPT checkpoint: {exc}", file=sys.stderr)
            return 1
        violations = check_design(design)
        what = (f"checkpoint stage={stage} design={design.name} "
                f"config={design.config}")
    elif isinstance(payload, dict) and "config" in payload:
        violations = check_result(payload)
        what = (f"FlowResult design={payload.get('design')} "
                f"config={payload.get('config')}")
    else:
        print(f"error: {path} is neither a stage checkpoint nor a "
              f"FlowResult", file=sys.stderr)
        return 1

    if not violations:
        print(f"{path}: OK ({what}; checksum and all invariants pass)")
        return 0
    print(f"{path}: {len(violations)} violation(s) ({what})")
    for v in violations:
        print(f"  {v}")
    return 1


def _default_socket() -> str:
    """The socket path a bare ``repro serve`` would bind (env-aware)."""
    from repro.serve.daemon import ServeConfig

    return str(ServeConfig.from_env().socket_path)


def _serve_client(args: argparse.Namespace):
    from repro.serve.client import ServeClient

    return ServeClient(args.socket or _default_socket())


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.daemon import ServeConfig, serve

    config = ServeConfig.from_env(
        state_dir=Path(args.state_dir) if args.state_dir else None,
        socket_path=Path(args.socket) if args.socket else None,
        workers=args.workers,
        max_workers=args.max_workers,
        queue_max=args.queue_max,
        job_timeout_s=args.job_timeout,
        drain_s=args.drain_timeout,
    )
    return serve(config)


def _build_job_spec(args: argparse.Namespace) -> dict:
    if args.probe:
        return {
            "kind": "probe",
            "seconds": args.probe_seconds,
            "payload": {"note": args.probe},
            "nonce": args.probe,
        }
    if args.design is None:
        raise ReproError("submit needs a design (or --probe NONCE)")
    if args.matrix:
        spec: dict = {
            "kind": "matrix",
            "designs": [args.design],
            "scale": args.scale,
            "seed": args.seed,
        }
        if args.period is not None:
            spec["periods"] = {args.design: args.period}
        return spec
    if args.sweep:
        return {
            "kind": "sweep",
            "design": args.design,
            "scale": args.scale,
            "seed": args.seed,
        }
    return {
        "kind": "flow",
        "design": args.design,
        "config": args.config,
        "period_ns": args.period,
        "scale": args.scale,
        "seed": args.seed,
    }


def _print_job_view(view: dict) -> None:
    import json

    print(json.dumps(view, indent=2, sort_keys=True))


def _job_exit(view: dict) -> int:
    if view.get("state") == "failed":
        return EXIT_QUARANTINED
    if view.get("state") == "evicted":
        # Retention dropped the payload; the terminal state survives in
        # the tombstone.
        return EXIT_QUARANTINED if view.get("terminal_state") == "failed" else 0
    if view.get("state") == "done":
        payload = view.get("result") or {}
        # A kept-going matrix can complete with quarantined cells.
        if payload.get("ok") is False or payload.get("failed"):
            return EXIT_QUARANTINED
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    client = _serve_client(args)
    spec = _build_job_spec(args)
    if args.wait:
        # The resilient path: backpressure rejections back off under the
        # daemon's retry_after hint, and an evicted result resubmits.
        view = client.run(
            spec,
            priority=args.priority,
            deadline=args.deadline,
            timeout_s=args.wait_timeout,
        )
        _print_job_view(view)
        return _job_exit(view)
    response = client.submit(
        spec, priority=args.priority, deadline=args.deadline
    )
    if not response.get("ok"):
        code = response.get("code", "error")
        print(f"error ({code}): {response.get('error')}", file=sys.stderr)
        if code in ("busy", "disk_pressure") and response.get("retry_after"):
            print(f"retry after {response['retry_after']:.1f}s", file=sys.stderr)
        return 1
    job_id = response["job_id"]
    dedup = " (deduplicated onto an existing job)" if response.get("deduped") else ""
    print(f"submitted {job_id} [{response.get('state')}]{dedup}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    client = _serve_client(args)
    if args.job_id:
        view = client.status(args.job_id)
    else:
        view = client.stats()
    if not view.get("ok"):
        print(f"error ({view.get('code', 'error')}): {view.get('error')}",
              file=sys.stderr)
        return 1
    view.pop("ok", None)
    _print_job_view(view)
    return 0


def _write_job_trace(client, job_id: str, dest: str) -> int:
    """Fetch a job's live-stitched span tree and write (or print) it.

    Valid mid-run: a running job yields a still-open root over the
    stages streamed so far.  ``-`` prints the ASCII tree; a ``.jsonl``
    suffix selects the JSONL exporter, anything else Chrome JSON.
    """
    from repro.obs.export import tree_summary, write_chrome_trace, write_jsonl
    from repro.obs.trace import Span

    view = client.trace(job_id)
    if not view.get("ok"):
        print(f"error ({view.get('code', 'error')}): {view.get('error')}",
              file=sys.stderr)
        return 1
    roots = [Span.from_dict(d) for d in view.get("trace") or []]
    if dest == "-":
        if roots:
            print(tree_summary(roots))
        else:
            print(f"{job_id}: no spans streamed yet")
        return 0
    if Path(dest).suffix == ".jsonl":
        write_jsonl(dest, roots)
    else:
        write_chrome_trace(dest, roots)
    print(f"wrote trace ({view.get('stages', 0)} stage(s),"
          f" state {view.get('state')}) to {dest}", file=sys.stderr)
    return 0


def _cmd_result(args: argparse.Namespace) -> int:
    client = _serve_client(args)
    if args.wait:
        view = client.wait(args.job_id, timeout_s=args.wait_timeout)
    else:
        view = client.result(args.job_id)
        if not view.get("ok"):
            print(f"error ({view.get('code', 'error')}): {view.get('error')}",
                  file=sys.stderr)
            return 1
    view.pop("ok", None)
    _print_job_view(view)
    if args.job_trace:
        status = _write_job_trace(client, args.job_id, args.job_trace)
        if status:
            return status
    return _job_exit(view)


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.obs.registry import render_prometheus

    client = _serve_client(args)
    view = client.metrics()
    if not view.get("ok"):
        print(f"error ({view.get('code', 'error')}): {view.get('error')}",
              file=sys.stderr)
        return 1
    snapshot = view.get("metrics") or {}
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_prometheus(snapshot))
    return 0


def _draw_frame(text: str) -> None:
    if sys.stdout.isatty():
        sys.stdout.write("\x1b[2J\x1b[H")  # clear + home, no curses
    print(text, flush=True)


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.serve.topview import TopModel

    client = _serve_client(args)
    model = TopModel()
    deadline = (
        time.monotonic() + args.duration if args.duration else None
    )
    last_draw = 0.0
    try:
        for event in client.subscribe(
            idle_s=min(0.5, max(0.1, args.interval))
        ):
            if event is not None:
                if "snapshot" in event:
                    model.apply_snapshot(event)
                else:
                    model.apply(event)
            now = time.monotonic()
            if args.once:
                if event is None:  # backlog settled: one frame and out
                    break
                continue
            if now - last_draw >= args.interval:
                _draw_frame(model.render())
                last_draw = now
            if deadline is not None and now >= deadline:
                break
    except KeyboardInterrupt:
        pass  # Ctrl-C just ends the dashboard; final frame below
    _draw_frame(model.render())
    return 0


def _fmt_feed_event(event: dict) -> str | None:
    kind = event.get("event")
    if kind == "job_state":
        extra = "  ".join(
            f"{key}={event[key]}"
            for key in ("worker", "attempt", "attempts", "reason",
                        "error_type")
            if event.get(key)
        )
        return f"state -> {event.get('state')}" + (
            f"  ({extra})" if extra else ""
        )
    if kind == "span_open":
        depth = int(event.get("depth", 0) or 0)
        return f"{'  ' * depth}> {event.get('name')}"
    if kind == "span_close":
        depth = int(event.get("depth", 0) or 0)
        flag = "" if event.get("status", "ok") == "ok" else (
            f" !{event.get('status')}"
        )
        return (f"{'  ' * depth}+ {event.get('name')} "
                f"({float(event.get('duration_s', 0.0)):.3f}s){flag}")
    if kind == "lifecycle":
        extra = "  ".join(
            f"{k}={v}" for k, v in sorted(event.items())
            if k not in ("event", "seq", "ts", "action")
        )
        return f"! {event.get('action')}" + (f"  ({extra})" if extra else "")
    if kind == "feed_gap":
        return f"! feed gap: {event.get('dropped')} event(s) lost"
    return None  # metrics ticks and unknown kinds stay quiet


def _cmd_watch(args: argparse.Namespace) -> int:
    import time

    client = _serve_client(args)
    view = client.result(args.job_id)
    if not view.get("ok"):
        print(f"error ({view.get('code', 'error')}): {view.get('error')}",
              file=sys.stderr)
        return 1
    if view.get("state") in ("done", "failed"):
        print(f"{args.job_id}: already {view['state']}")
        return _job_exit(view)
    deadline = time.monotonic() + args.timeout
    for event in client.subscribe(args.job_id):
        if event is None:
            if time.monotonic() >= deadline:
                print(f"error: job {args.job_id} still not terminal after "
                      f"{args.timeout:.0f}s", file=sys.stderr)
                return 1
            continue
        if "snapshot" in event:
            continue
        if event.get("job_id") not in (None, args.job_id):
            continue
        line = _fmt_feed_event(event)
        if line is not None:
            print(line, flush=True)
        if (event.get("event") == "job_state"
                and event.get("job_id") == args.job_id
                and event.get("state") in ("done", "failed")):
            break
        if time.monotonic() >= deadline:
            print(f"error: job {args.job_id} still not terminal after "
                  f"{args.timeout:.0f}s", file=sys.stderr)
            return 1
    # Feed saw the terminal transition (or ended under drain): the
    # result op is the authoritative close-out either way.
    view = client.result(args.job_id)
    if not view.get("ok") or view.get("state") not in ("done", "failed"):
        print(f"error: feed ended with job {args.job_id} still "
              f"{view.get('state', '?')!r}", file=sys.stderr)
        return 1
    print(f"{args.job_id}: {view['state']}")
    return _job_exit(view)


def _export_trace(path: str) -> None:
    """Write the recorded spans of this process to ``path``.

    JSONL when the suffix says so, Chrome trace-event JSON otherwise.
    Runs in a ``finally`` so quarantined (exit-3) runs still get their
    truncated-but-valid trace.
    """
    from repro.obs.export import write_chrome_trace, write_jsonl

    roots = obs_trace.trace_roots()
    if Path(path).suffix == ".jsonl":
        write_jsonl(path, roots)
    else:
        write_chrome_trace(path, roots)
    print(f"wrote trace ({len(roots)} root span(s)) to {path}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="heterogeneous M3D IC flow reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, with_config=True, with_period=True):
        p.add_argument("design", choices=DESIGN_NAMES)
        if with_config:
            p.add_argument("--config", default="3D_HET", choices=CONFIG_NAMES)
        if with_period:
            p.add_argument("--period", type=float, default=None,
                           help="clock period in ns")
        p.add_argument("--scale", type=float, default=0.4)
        p.add_argument("--seed", type=int, default=0)

    def add_trace(p):
        p.add_argument("--trace", metavar="PATH", default=None,
                       help="record spans for the whole command and write "
                            "them to PATH (Chrome trace-event JSON, or "
                            "JSONL when PATH ends in .jsonl)")

    def add_check(p):
        p.add_argument("--check", default=None,
                       choices=("off", "warn", "repair", "strict"),
                       help="stage-boundary integrity contract mode for "
                            "the whole command (sets $REPRO_CHECK; "
                            "workers inherit it)")

    p_flow = sub.add_parser("flow", help="run one configuration")
    add_common(p_flow)
    add_trace(p_flow)
    add_check(p_flow)
    p_flow.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="write a checksummed design checkpoint after "
                             "each flow stage into DIR")
    p_flow.add_argument("--from-stage", metavar="STAGE", default=None,
                        help="resume from the newest valid checkpoint "
                             "before STAGE (requires --checkpoint-dir)")
    p_flow.set_defaults(func=_cmd_flow)

    def add_resilience(p):
        p.add_argument("--keep-going", action="store_true",
                       help="quarantine failing cells and finish the rest "
                            "(exit status 3 when any cell failed)")
        p.add_argument("--max-retries", type=int, default=None,
                       help="retries per transient failure (default 2)")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-wave wall-clock timeout in seconds "
                            "(parallel path only)")
        p.add_argument("--resume", action="store_true",
                       help="resume an interrupted run from its manifest; "
                            "completed cells are never rerun")

    p_matrix = sub.add_parser("matrix", help="run all five configurations")
    add_common(p_matrix, with_config=False)
    p_matrix.add_argument("--jobs", type=int, default=None,
                          help="worker processes (default $REPRO_JOBS or 1)")
    p_matrix.add_argument("--stats", action="store_true",
                          help="print cache/flow telemetry after the run")
    add_resilience(p_matrix)
    add_trace(p_matrix)
    add_check(p_matrix)
    p_matrix.set_defaults(func=_cmd_matrix)

    p_explore = sub.add_parser(
        "explore",
        help="Pareto design-space exploration over the hetero-3D lattice",
    )
    add_common(p_explore, with_config=False, with_period=False)
    p_explore.add_argument("--jobs", type=int, default=None,
                           help="worker processes (default 1)")
    p_explore.add_argument("--objectives", default="pdp_pj:min,ppc:max",
                           metavar="M:SENSE,...",
                           help="comma-separated metric:min|max pairs "
                                "(default pdp_pj:min,ppc:max)")
    p_explore.add_argument("--slow-tracks", type=int, nargs="+", default=None,
                           metavar="T", help="slow-die track heights")
    p_explore.add_argument("--slow-vdd", type=float, nargs="+", default=None,
                           metavar="V", help="slow-die supplies in volts")
    p_explore.add_argument("--tier-caps", type=float, nargs="+", default=None,
                           metavar="CAP",
                           help="timing-pinning area caps (0.20-0.30)")
    p_explore.add_argument("--fm-tols", type=float, nargs="+", default=None,
                           metavar="TOL", help="FM balance tolerances")
    p_explore.add_argument("--no-prune", action="store_true",
                           help="disable dominance pruning")
    p_explore.add_argument("--no-reuse", action="store_true",
                           help="disable stage-prefix reuse")
    p_explore.add_argument("--no-warm", action="store_true",
                           help="disable warm-started period searches")
    p_explore.add_argument("--report", action="store_true",
                           help="print the stored run's Pareto report "
                                "without evaluating anything")
    p_explore.add_argument("--json", metavar="PATH", default=None,
                           help="also write the full report as JSON to PATH")
    p_explore.add_argument("--stats", action="store_true",
                           help="print cache/flow telemetry after the run")
    add_resilience(p_explore)
    add_trace(p_explore)
    add_check(p_explore)
    p_explore.set_defaults(func=_cmd_explore)

    p_sweep = sub.add_parser("sweep", help="find the 12T 2-D max frequency")
    add_common(p_sweep, with_config=False, with_period=False)
    add_trace(p_sweep)
    add_check(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_export = sub.add_parser("export", help="write Verilog/DEF/Liberty")
    add_common(p_export)
    p_export.add_argument("--output", default="out")
    p_export.set_defaults(func=_cmd_export)

    p_tables = sub.add_parser("tables", help="print the cheap paper tables")
    p_tables.set_defaults(func=_cmd_tables)

    p_report = sub.add_parser(
        "report", help="run the full matrix and write a markdown report"
    )
    p_report.add_argument("--scale", type=float, default=0.5)
    p_report.add_argument("--seed", type=int, default=1)
    p_report.add_argument("--output", default="paper_tables.md")
    p_report.add_argument("--jobs", type=int, default=None,
                          help="worker processes (default $REPRO_JOBS or 1)")
    add_resilience(p_report)
    add_trace(p_report)
    add_check(p_report)
    p_report.set_defaults(func=_cmd_report)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk result cache"
    )
    p_cache.add_argument("--clear", action="store_true",
                         help="delete every cached entry")
    p_cache.set_defaults(func=_cmd_cache)

    p_trace = sub.add_parser(
        "trace", help="pretty-print a recorded trace file"
    )
    p_trace.add_argument("file", help="trace file (Chrome JSON or JSONL)")
    p_trace.add_argument("--depth", type=int, default=None,
                         help="limit the tree to this many levels")
    p_trace.add_argument("--no-metrics", action="store_true",
                         help="omit per-span QoR metric lines")
    p_trace.add_argument("--validate", action="store_true",
                         help="schema-check a Chrome trace-event file "
                              "instead of printing it (exit 1 on problems)")
    p_trace.set_defaults(func=_cmd_trace)

    p_profile = sub.add_parser(
        "profile", help="rank the hottest flow stages of a trace"
    )
    p_profile.add_argument("file", help="trace file (Chrome JSON or JSONL)")
    p_profile.add_argument("--top", type=int, default=5,
                           help="number of stages to print (default 5)")
    p_profile.set_defaults(func=_cmd_profile)

    p_check = sub.add_parser(
        "check", help="validate a saved checkpoint or FlowResult file"
    )
    p_check.add_argument("file", help="stage checkpoint or FlowResult JSON")
    p_check.set_defaults(func=_cmd_check)

    def add_socket(p):
        p.add_argument("--socket", default=None,
                       help="daemon Unix socket (default: "
                            "$REPRO_SERVE_DIR/serve.sock)")

    p_serve = sub.add_parser(
        "serve", help="run the crash-safe evaluation daemon"
    )
    add_socket(p_serve)
    p_serve.add_argument("--state-dir", default=None,
                         help="journal/socket/pidfile directory "
                              "(default $REPRO_SERVE_DIR or <cache>/serve)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="worker processes (default $REPRO_SERVE_WORKERS"
                              " or 2)")
    p_serve.add_argument("--max-workers", type=int, default=None,
                         help="autoscale ceiling; above --workers enables "
                              "scaling under backlog pressure (default "
                              "$REPRO_SERVE_MAX_WORKERS or --workers)")
    p_serve.add_argument("--queue-max", type=int, default=None,
                         help="pending-job high-water mark before submits "
                              "are rejected busy (default 64)")
    p_serve.add_argument("--job-timeout", type=float, default=None,
                         help="per-job hang timeout in seconds; 0 disables "
                              "(default 600)")
    p_serve.add_argument("--drain-timeout", type=float, default=None,
                         help="seconds in-flight jobs get to finish on "
                              "SIGTERM/SIGINT (default 30)")
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser("submit", help="send a job to the daemon")
    p_submit.add_argument("design", nargs="?", default=None,
                          choices=DESIGN_NAMES)
    p_submit.add_argument("--config", default="3D_HET", choices=CONFIG_NAMES)
    p_submit.add_argument("--matrix", action="store_true",
                          help="submit the full five-configuration matrix "
                               "of DESIGN instead of one flow")
    p_submit.add_argument("--sweep", action="store_true",
                          help="submit a max-frequency period sweep")
    p_submit.add_argument("--probe", metavar="NONCE", default=None,
                          help="submit a cheap health-check probe instead "
                               "of real work")
    p_submit.add_argument("--probe-seconds", type=float, default=0.0,
                          help="probe sleep time (default 0)")
    p_submit.add_argument("--period", type=float, default=None,
                          help="clock period in ns (flow: the cell's "
                               "period; matrix: pins the design period)")
    p_submit.add_argument("--scale", type=float, default=0.4)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--priority", type=int, default=0,
                          help="lower runs sooner (default 0)")
    p_submit.add_argument("--deadline", type=float, default=0.0,
                          help="fail the job as DeadlineExceeded if still "
                               "pending after this many seconds (0 = none)")
    p_submit.add_argument("--wait", action="store_true",
                          help="poll until the job finishes and print its "
                               "result (exit 3 when it failed)")
    p_submit.add_argument("--wait-timeout", type=float, default=3600.0,
                          help="--wait deadline in seconds (default 3600)")
    add_socket(p_submit)
    p_submit.set_defaults(func=_cmd_submit)

    p_status = sub.add_parser(
        "status", help="show one job, or the daemon stats"
    )
    p_status.add_argument("job_id", nargs="?", default=None)
    add_socket(p_status)
    p_status.set_defaults(func=_cmd_status)

    p_result = sub.add_parser("result", help="fetch a job's result")
    p_result.add_argument("job_id")
    p_result.add_argument("--wait", action="store_true",
                          help="poll until the job reaches done/failed")
    p_result.add_argument("--wait-timeout", type=float, default=3600.0,
                          help="--wait deadline in seconds (default 3600)")
    p_result.add_argument("--trace", dest="job_trace", metavar="PATH",
                          default=None,
                          help="also fetch the job's live-stitched span "
                               "tree (valid mid-run) and write it to PATH "
                               "(Chrome JSON, .jsonl for JSONL, '-' to "
                               "print the ASCII tree)")
    add_socket(p_result)
    p_result.set_defaults(func=_cmd_result)

    p_metrics = sub.add_parser(
        "metrics", help="scrape the daemon's metrics registry"
    )
    p_metrics.add_argument("--json", action="store_true",
                           help="print the raw registry snapshot instead "
                                "of Prometheus text exposition")
    p_metrics.add_argument("--prom", action="store_true",
                           help="Prometheus text exposition (the default)")
    add_socket(p_metrics)
    p_metrics.set_defaults(func=_cmd_metrics)

    p_top = sub.add_parser(
        "top", help="live ASCII dashboard over the daemon's event feed"
    )
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="seconds between dashboard frames (default 2)")
    p_top.add_argument("--duration", type=float, default=None,
                       help="stop after this many seconds (default: until "
                            "the feed ends or Ctrl-C)")
    p_top.add_argument("--once", action="store_true",
                       help="print one frame once the backlog settles, "
                            "then exit")
    add_socket(p_top)
    p_top.set_defaults(func=_cmd_top)

    p_watch = sub.add_parser(
        "watch", help="tail one job's feed events until done/failed"
    )
    p_watch.add_argument("job_id")
    p_watch.add_argument("--timeout", type=float, default=3600.0,
                         help="give up after this many seconds (default "
                              "3600; exit 1)")
    add_socket(p_watch)
    p_watch.set_defaults(func=_cmd_watch)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    init_from_env()
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if trace_path:
        # Setting the env var (not just the in-process flag) is what lets
        # pool workers inherit the tracing mode and ship subtrees back.
        os.environ[obs_trace.ENV_TRACE] = "1"
        obs_trace.reset_trace(from_env=True)
    check_mode = getattr(args, "check", None)
    if check_mode:
        # Same pattern as --trace: the env var is what reaches the pool
        # workers, and the flows read it at every stage boundary.
        from repro.integrity import ENV_CHECK

        os.environ[ENV_CHECK] = check_mode
    try:
        if getattr(args, "command", None) == "flow" and args.period is None:
            args.period = find_target_period(
                args.design, scale=args.scale, seed=args.seed
            )
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if trace_path:
            _export_trace(trace_path)


if __name__ == "__main__":
    sys.exit(main())
