"""Physical units and constants used across the package.

Internally the package uses one consistent unit system so values can be
combined without conversion factors sprinkled through the code:

========== ==================== ======
quantity   unit                 symbol
========== ==================== ======
time       nanoseconds          ns
capacitance femtofarads         fF
resistance kilo-ohms            kOhm
voltage    volts                V
power      milliwatts           mW
energy     picojoules           pJ
length     micrometers          um
area       square micrometers   um2
========== ==================== ======

Note the happy coincidence ``kOhm * fF == ps``; the delay calculator
multiplies resistance by capacitance and divides by 1000 to obtain ns.
"""

from __future__ import annotations

#: Multiply a kOhm * fF product by this to obtain nanoseconds.
RC_TO_NS = 1e-3

#: Nanoseconds per picosecond.
PS_TO_NS = 1e-3

#: Micrometers per millimeter.
MM_TO_UM = 1000.0

#: Square micrometers per square millimeter.
MM2_TO_UM2 = 1e6

#: Square millimeters per square centimeter.
CM2_TO_MM2 = 100.0

#: Boltzmann constant times room temperature over electron charge (volts).
#: Used by the subthreshold-leakage model.
THERMAL_VOLTAGE = 0.02585


def ghz_to_period_ns(frequency_ghz: float) -> float:
    """Return the clock period in ns for a frequency in GHz."""
    if frequency_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_ghz}")
    return 1.0 / frequency_ghz


def period_ns_to_ghz(period_ns: float) -> float:
    """Return the clock frequency in GHz for a period in ns."""
    if period_ns <= 0:
        raise ValueError(f"period must be positive, got {period_ns}")
    return 1.0 / period_ns


def um2_to_mm2(area_um2: float) -> float:
    """Convert an area from square micrometers to square millimeters."""
    return area_um2 / MM2_TO_UM2


def mm2_to_um2(area_mm2: float) -> float:
    """Convert an area from square millimeters to square micrometers."""
    return area_mm2 * MM2_TO_UM2


def um_to_mm(length_um: float) -> float:
    """Convert a length from micrometers to millimeters."""
    return length_um / MM_TO_UM
