"""Fiduccia-Mattheyses min-cut bipartitioning with area balancing.

A textbook FM implementation over a generic hypergraph, with two
extensions the heterogeneous flow needs:

- **fixed terminals**: cells pinned to a side (timing-critical cells on
  the fast die, macros, or out-of-bin terminals during bin-based FM)
  participate in gain computation but never move;
- **side-dependent areas**: when a cell moves to the top tier it will be
  remapped to the 9-track library and shrink by ~25%, so balance is
  evaluated with per-side area vectors (``area_side0`` / ``area_side1``).

Gains use the standard F/T rule and a lazy-deletion heap stands in for
the classic bucket list (equivalent behaviour, simpler in Python).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import PartitionError

__all__ = ["FMResult", "fm_bipartition"]


@dataclass
class FMResult:
    """Outcome of one FM run."""

    assignment: dict[str, int]
    cut_size: int
    passes: int
    area: tuple[float, float]

    def side(self, cell: str) -> int:
        """Side (0/1) of a cell."""
        return self.assignment[cell]


def _cut_size(nets: list[list[str]], side: dict[str, int]) -> int:
    """Reference O(pins) cut count; the FM loop itself tracks the cut
    incrementally and only uses this to seed the very first value."""
    cut = 0
    for net in nets:
        sides = {side[c] for c in net}
        if len(sides) > 1:
            cut += 1
    return cut


def fm_bipartition(
    cells: list[str],
    nets: list[list[str]],
    area_side0: dict[str, float],
    area_side1: dict[str, float],
    *,
    initial: dict[str, int],
    fixed: set[str] | None = None,
    balance_tolerance: float = 0.10,
    balance_target: float = 0.5,
    max_passes: int = 6,
) -> FMResult:
    """Refine ``initial`` into a balanced min-cut bipartition.

    Parameters
    ----------
    cells:
        All cell names (movable and fixed).
    nets:
        Hyperedges as lists of cell names; names not in ``cells`` are
        ignored (callers prune to the local subproblem).
    area_side0 / area_side1:
        The area each cell would occupy on each side.
    initial:
        Starting side per cell; must satisfy the balance bound.
    fixed:
        Cells that must not move.
    balance_tolerance:
        Each side's area must stay within ``tolerance`` of the target
        share of the total (areas measured in the side's own metric).
    balance_target:
        Side 0's target share of the total area (0.5 = even split); the
        bin-based partitioner uses this to correct accumulated global
        imbalance bin by bin.

    Returns the best assignment found over up to ``max_passes`` passes,
    stopping early when a pass yields no improvement.
    """
    fixed = fixed or set()
    if not cells:
        raise PartitionError("nothing to partition")
    cell_set = set(cells)
    if len(cell_set) != len(cells):
        raise PartitionError("duplicate cell names")
    for c in cells:
        if c not in initial:
            raise PartitionError(f"no initial side for {c!r}")

    pruned_nets = [
        [c for c in net if c in cell_set] for net in nets
    ]
    pruned_nets = [net for net in pruned_nets if len(net) >= 2]

    nets_of: dict[str, list[int]] = {c: [] for c in cells}
    for ni, net in enumerate(pruned_nets):
        for c in net:
            nets_of[c].append(ni)

    side = dict(initial)
    # Total area is evaluated symmetrically: each side uses its own metric.
    total = sum(
        area_side0[c] if side[c] == 0 else area_side1[c] for c in cells
    )
    if total <= 0:
        raise PartitionError("zero total area")
    # The classic FM balance criterion must always admit moving the largest
    # movable cell, or a perfectly balanced start would freeze solid.
    movable_areas = [
        max(area_side0[c], area_side1[c]) for c in cells if c not in fixed
    ]
    max_cell = max(movable_areas) if movable_areas else 0.0
    balance_tolerance = max(balance_tolerance, max_cell / total + 1e-9)

    def side_areas(assign: dict[str, int]) -> tuple[float, float]:
        a0 = sum(area_side0[c] for c in cells if assign[c] == 0)
        a1 = sum(area_side1[c] for c in cells if assign[c] == 1)
        return a0, a1

    def gain_of(cell: str, assign: dict[str, int], counts: list[list[int]]) -> int:
        g = 0
        s = assign[cell]
        for ni in nets_of[cell]:
            from_count = counts[ni][s]
            to_count = counts[ni][1 - s]
            if from_count == 1:
                g += 1
            if to_count == 0:
                g -= 1
        return g

    # Per-net side counts, built once; every move (and rollback) updates
    # them in O(pins(cell)), carrying the cut size along so no pass ever
    # rescans the whole net list.
    counts = [
        [sum(1 for c in net if side[c] == 0), sum(1 for c in net if side[c] == 1)]
        for net in pruned_nets
    ]
    cut = sum(1 for c0, c1 in counts if c0 and c1)

    def move(cell: str) -> None:
        nonlocal cut
        s = side[cell]
        for ni in nets_of[cell]:
            c = counts[ni]
            was_cut = c[0] > 0 and c[1] > 0
            c[s] -= 1
            c[1 - s] += 1
            c_cut = c[0] > 0 and c[1] > 0
            cut += c_cut - was_cut
        side[cell] = 1 - s

    best_assign = dict(side)
    best_cut = cut
    passes_done = 0

    for _pass in range(max_passes):
        passes_done += 1
        a0, a1 = side_areas(side)
        locked: set[str] = set(fixed)
        heap: list[tuple[int, str]] = []
        current_gain: dict[str, int] = {}
        for c in cells:
            if c in locked:
                continue
            g = gain_of(c, side, counts)
            current_gain[c] = g
            heapq.heappush(heap, (-g, c))

        sequence: list[tuple[str, int]] = []  # (cell, cumulative gain)
        cum = 0
        best_prefix = 0
        best_prefix_gain = 0

        while heap:
            neg_g, cell = heapq.heappop(heap)
            if cell in locked or current_gain.get(cell) != -neg_g:
                continue
            s = side[cell]
            # balance check with side-dependent areas
            new_a0 = a0 - area_side0[cell] if s == 0 else a0 + area_side0[cell]
            new_a1 = a1 + area_side1[cell] if s == 0 else a1 - area_side1[cell]
            new_total = new_a0 + new_a1
            if not (
                new_total * (balance_target - balance_tolerance)
                <= new_a0
                <= new_total * (balance_target + balance_tolerance)
            ):
                locked.add(cell)
                continue
            # commit tentative move
            locked.add(cell)
            cum += current_gain[cell]
            move(cell)
            a0, a1 = new_a0, new_a1
            sequence.append((cell, cum))
            if cum > best_prefix_gain:
                best_prefix_gain = cum
                best_prefix = len(sequence)
            # update gains of neighbours (lazy: recompute + repush)
            touched: set[str] = set()
            for ni in nets_of[cell]:
                for other in pruned_nets[ni]:
                    if other not in locked and other not in touched:
                        touched.add(other)
            for other in touched:
                g = gain_of(other, side, counts)
                if g != current_gain.get(other):
                    current_gain[other] = g
                    heapq.heappush(heap, (-g, other))

        # roll back moves beyond the best prefix (counts/cut follow along)
        for cell, _g in sequence[best_prefix:]:
            move(cell)

        if cut < best_cut:
            best_cut = cut
            best_assign = dict(side)
        if best_prefix_gain <= 0:
            break
        side = dict(best_assign)

    a0, a1 = side_areas(best_assign)
    return FMResult(
        assignment=best_assign, cut_size=best_cut, passes=passes_done, area=(a0, a1)
    )
