"""Tier partitioning: FM min-cut, bin-based FM, timing-driven, ECO."""

from repro.partition.fm import FMResult, fm_bipartition
from repro.partition.bins import bin_fm_partition
from repro.partition.timing_driven import timing_based_pinning
from repro.partition.repartition import RepartitionConfig, RepartitionResult, repartition_eco

__all__ = [
    "FMResult",
    "fm_bipartition",
    "bin_fm_partition",
    "timing_based_pinning",
    "RepartitionConfig",
    "RepartitionResult",
    "repartition_eco",
]
