"""ECO-based repartitioning (Section III-C, Algorithm 1).

Timing-based partitioning decides tiers from *pseudo-3-D* timing, which
is measured in a single technology and therefore cannot be fully accurate
for the heterogeneous design.  After the 3-D database exists and real
per-tier timing is available, Algorithm 1 sweeps the critical paths,
finds cells that are too slow for the slow die, and ECO-moves them to the
fast die -- accepting each batch only when WNS/TNS actually improve, and
tightening the delay threshold (``d_k *= alpha``) when a batch had to be
undone.

The engine is decoupled from the flow through three callbacks (analyze,
move, undo), so the unit tests drive it against a scripted fake timer and
the flow drives it against real STA + remap + legalize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.obs import add_span_event, emit_metric, span
from repro.timing.sta import CriticalPath

__all__ = ["RepartitionConfig", "RepartitionResult", "repartition_eco"]


@dataclass(frozen=True)
class RepartitionConfig:
    """Tunables of Algorithm 1 (names follow the paper's pseudocode)."""

    d0: float = 1.1  # initial delay-threshold multiplier (d_k)
    n_paths: int = 60  # paths considered per loop (n_p)
    unbalance_max: float = 0.50  # area unbalance budget (unbalance_th)
    crit_threshold: float = 0.05  # minimum slow-die share of critical cells
    wns_improve_min_ns: float = 0.0  # W_th: required WNS improvement
    tns_improve_min_ns: float = 0.0  # T_th: required TNS improvement
    alpha: float = 0.7  # threshold decay on rejected batches
    max_iterations: int = 12
    min_dk: float = 0.3  # give up once the threshold collapses
    wns_target_ns: float = 0.0  # skip/stop once WNS reaches this


@dataclass
class RepartitionResult:
    """What the ECO loop did."""

    iterations: int = 0
    batches_accepted: int = 0
    batches_rejected: int = 0
    cells_moved: list[str] = field(default_factory=list)
    wns_before_ns: float = 0.0
    wns_after_ns: float = 0.0
    tns_before_ns: float = 0.0
    tns_after_ns: float = 0.0
    stop_reason: str = ""


def _area_unbalance(
    slow_area: float, fast_area: float
) -> float:
    total = slow_area + fast_area
    if total <= 0:
        return 0.0
    return abs(fast_area - slow_area) / total


def repartition_eco(
    analyze: Callable[[], tuple[float, float, list[CriticalPath]]],
    move_to_fast: Callable[[list[str]], object],
    undo: Callable[[object], None],
    tier_areas: Callable[[], tuple[float, float]],
    slow_tier: int,
    config: RepartitionConfig = RepartitionConfig(),
    settle: Callable[[], None] | None = None,
) -> RepartitionResult:
    """Run Algorithm 1.

    Parameters
    ----------
    analyze:
        Returns ``(wns, tns, top_paths)`` for the current design state;
        paths carry per-step cell delays and tiers.
    move_to_fast:
        ECO-moves the named cells to the fast die (remap + place); returns
        an opaque undo token.
    undo:
        Reverts one ECO batch.
    tier_areas:
        Returns ``(slow_area, fast_area)`` for the unbalance check.
    slow_tier:
        Tier index of the slow die (1/top in the paper's setup).
    settle:
        Optional callback invoked after each *accepted* batch, once the
        moves are final -- the flow uses it to incrementally re-legalize
        the moved cells and refresh their timing, so later iterations
        analyze real positions instead of the pre-move ones.
    """
    with span("repartition_eco", slow_tier=slow_tier):
        result = _repartition_eco(
            analyze, move_to_fast, undo, tier_areas, slow_tier, config,
            settle,
        )
        emit_metric("eco_iterations", result.iterations)
        emit_metric("eco_cells_moved", len(result.cells_moved))
        emit_metric("eco_batches_accepted", result.batches_accepted)
        emit_metric("eco_batches_rejected", result.batches_rejected)
        emit_metric(
            "eco_wns_gain_ns", result.wns_after_ns - result.wns_before_ns
        )
    return result


def _repartition_eco(
    analyze: Callable[[], tuple[float, float, list[CriticalPath]]],
    move_to_fast: Callable[[list[str]], object],
    undo: Callable[[object], None],
    tier_areas: Callable[[], tuple[float, float]],
    slow_tier: int,
    config: RepartitionConfig,
    settle: Callable[[], None] | None = None,
) -> RepartitionResult:
    result = RepartitionResult()
    d_k = config.d0
    wns, tns, paths = analyze()
    result.wns_before_ns = wns
    result.tns_before_ns = tns
    result.wns_after_ns = wns
    result.tns_after_ns = tns

    for _ in range(config.max_iterations):
        if result.wns_after_ns >= config.wns_target_ns:
            result.stop_reason = "timing met"
            break
        result.iterations += 1
        slow_area, fast_area = tier_areas()
        unbalance = _area_unbalance(slow_area, fast_area)
        if unbalance > config.unbalance_max:
            result.stop_reason = "unbalance budget exhausted"
            break

        top = paths[: config.n_paths]
        steps = [s for p in top for s in p.steps]
        if not steps:
            result.stop_reason = "no critical paths"
            break
        avg_delay = sum(s.arc_delay_ns for s in steps) / len(steps)
        d_th = d_k * avg_delay

        move_list: list[str] = []
        all_crit = 0
        slow_crit = 0
        seen: set[str] = set()
        for step in steps:
            if step.arc_delay_ns <= d_th or step.instance in seen:
                continue
            seen.add(step.instance)
            all_crit += 1
            if step.tier == slow_tier:
                slow_crit += 1
                move_list.append(step.instance)

        if all_crit == 0 or slow_crit / all_crit < config.crit_threshold:
            result.stop_reason = "critical cells no longer on slow die"
            break
        if not move_list:
            result.stop_reason = "nothing to move"
            break

        token = move_to_fast(move_list)
        new_wns, new_tns, new_paths = analyze()
        improved = (
            new_wns - result.wns_after_ns > config.wns_improve_min_ns
            or new_tns - result.tns_after_ns > config.tns_improve_min_ns
        )
        if improved:
            result.batches_accepted += 1
            result.cells_moved.extend(move_list)
            result.wns_after_ns = new_wns
            result.tns_after_ns = new_tns
            paths = new_paths
            if settle is not None:
                settle()
            add_span_event(
                "eco_batch_accepted",
                iteration=result.iterations,
                moved=len(move_list),
                wns_ns=round(new_wns, 6),
            )
        else:
            undo(token)
            result.batches_rejected += 1
            add_span_event(
                "eco_batch_rejected",
                iteration=result.iterations,
                moved=len(move_list),
                wns_ns=round(new_wns, 6),
            )
            d_k *= config.alpha
            if d_k < config.min_dk:
                result.stop_reason = "threshold collapsed"
                break
            wns, tns, paths = analyze()
    else:
        result.stop_reason = result.stop_reason or "iteration budget"

    if not result.stop_reason:
        result.stop_reason = "iteration budget"
    return result
