"""Placement-driven bin-based FM partitioning.

The pseudo-3-D stage leaves every cell placed on the shared footprint;
tier assignment must then keep *local* area balanced so that both tiers
stay uniformly filled (they share one outline).  Following Pin-3D's
recipe, the placement is divided into a grid of bins and FM min-cut runs
per bin, with cells outside the bin acting as fixed terminals on their
current side.  A couple of sweeps propagate good assignments between
neighbouring bins.

Cells pinned by timing-based partitioning (Section III-A1) enter as fixed
terminals, so the min-cut optimization happens around the timing
constraints rather than fighting them.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.errors import PartitionError
from repro.netlist.core import Netlist
from repro.obs import span
from repro.partition.fm import fm_bipartition

__all__ = ["bin_fm_partition"]


def _bin_of(x: float, y: float, w: float, h: float, grid: int) -> tuple[int, int]:
    bx = min(grid - 1, max(0, int(x / w * grid)))
    by = min(grid - 1, max(0, int(y / h * grid)))
    return bx, by


def bin_fm_partition(
    netlist: Netlist,
    width_um: float,
    height_um: float,
    area_side0: dict[str, float],
    area_side1: dict[str, float],
    *,
    pinned: dict[str, int] | None = None,
    grid: int = 4,
    sweeps: int = 2,
    balance_tolerance: float = 0.12,
    seed: int = 0,
) -> dict[str, int]:
    """Assign every instance a tier (0=bottom, 1=top).

    Parameters
    ----------
    netlist:
        A placed design (pseudo-3-D stage output).
    width_um / height_um:
        Footprint used for binning.
    area_side0 / area_side1:
        Per-side areas (see :mod:`repro.partition.fm`); for homogeneous
        3-D these are equal, for heterogeneous 3-D side 1 is the 9-track
        remapped area.
    pinned:
        Pre-decided sides (timing-critical cells, macros).

    Returns the assignment for every instance, including pinned ones.
    """
    with span("fm_partition", grid=grid, sweeps=sweeps):
        return _bin_fm_partition(
            netlist,
            width_um,
            height_um,
            area_side0,
            area_side1,
            pinned=pinned,
            grid=grid,
            sweeps=sweeps,
            balance_tolerance=balance_tolerance,
            seed=seed,
        )


def _bin_fm_partition(
    netlist: Netlist,
    width_um: float,
    height_um: float,
    area_side0: dict[str, float],
    area_side1: dict[str, float],
    *,
    pinned: dict[str, int] | None = None,
    grid: int = 4,
    sweeps: int = 2,
    balance_tolerance: float = 0.12,
    seed: int = 0,
) -> dict[str, int]:
    pinned = dict(pinned or {})
    area_side0 = dict(area_side0)
    area_side1 = dict(area_side1)
    rng = np.random.default_rng(seed)

    # Macros stay on the bottom tier unless the caller pinned them.
    for macro in netlist.memory_macros():
        pinned.setdefault(macro.name, macro.tier)

    # All standard cells are binned; pinned ones participate in area
    # balancing as fixed terminals (otherwise timing-based pinning would
    # silently over-subscribe the fast die).
    binned = [
        inst for inst in netlist.instances.values() if not inst.cell.is_macro
    ]
    for inst in binned:
        if not inst.is_placed:
            raise PartitionError(f"{inst.name} must be placed before bin FM")

    bins: dict[tuple[int, int], list] = defaultdict(list)
    for inst in binned:
        cx, cy = inst.center()
        bins[_bin_of(cx, cy, width_um, height_um, grid)].append(inst)

    # Memory macros block standard-cell area on their own tier, so the
    # cells of a bin a macro overlaps must overwhelmingly go to the other
    # tier (memory-over-logic, the CPU's 3-D layout).  Each macro's
    # footprint is spread over the bins it covers as immovable pseudo
    # cells that count toward that side's balance.
    blockers: list[tuple[tuple[int, int], object]] = []
    bin_w = width_um / grid
    bin_h = height_um / grid
    for mi, macro in enumerate(netlist.memory_macros()):
        if not macro.is_placed:
            continue
        x0, y0 = macro.x_um, macro.y_um
        x1 = x0 + macro.cell.width_um
        y1 = y0 + macro.cell.height_um
        bx0, by0 = _bin_of(x0, y0, width_um, height_um, grid)
        bx1, by1 = _bin_of(x1 - 1e-9, y1 - 1e-9, width_um, height_um, grid)
        for bx in range(bx0, bx1 + 1):
            for by in range(by0, by1 + 1):
                ox = min(x1, (bx + 1) * bin_w) - max(x0, bx * bin_w)
                oy = min(y1, (by + 1) * bin_h) - max(y0, by * bin_h)
                overlap = max(0.0, ox) * max(0.0, oy)
                if overlap <= 0:
                    continue
                side = pinned.get(macro.name, macro.tier)
                # Chunk the blocked area so no single pseudo cell blows up
                # the FM balance tolerance (which must admit moving the
                # largest movable cell, not the largest blocker).
                chunk = max(1.0, bin_w * bin_h / 8.0)
                pieces = max(1, int(overlap / chunk + 0.5))
                for piece in range(pieces):
                    name = f"__macro{mi}_{bx}_{by}_{piece}"
                    pinned[name] = side
                    area_side0[name] = overlap / pieces
                    area_side1[name] = overlap / pieces
                    blockers.append(((bx, by), name))
    blocker_names = {name for _key, name in blockers}

    # Initial assignment: pinned cells keep their side; the rest alternate
    # in x-order so each bin starts area balanced.
    assignment: dict[str, int] = dict(pinned)
    blocker_load: dict[tuple[int, int], list[float]] = defaultdict(
        lambda: [0.0, 0.0]
    )
    for key, name in blockers:
        blocker_load[key][assignment[name]] += area_side0[name]
    for key, members in sorted(bins.items()):
        members.sort(key=lambda i: (i.x_um, i.name))
        a0, a1 = blocker_load[key]
        for inst in members:
            if inst.name in pinned:
                side = pinned[inst.name]
            else:
                side = 0 if a0 <= a1 else 1
                assignment[inst.name] = side
            if side == 0:
                a0 += area_side0[inst.name]
            else:
                a1 += area_side1[inst.name]

    # Hyperedges touching each bin (computed once).
    net_members: list[list[str]] = []
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        owners = []
        if net.driver is not None:
            owners.append(net.driver[0])
        owners.extend(s for s, _p in net.sinks)
        unique = list(dict.fromkeys(owners))
        if len(unique) >= 2:
            net_members.append(unique)

    nets_touching_bin: dict[tuple[int, int], list[int]] = defaultdict(list)
    bin_of_cell: dict[str, tuple[int, int]] = {}
    for key, members in bins.items():
        for inst in members:
            bin_of_cell[inst.name] = key
    for ni, owners in enumerate(net_members):
        seen = set()
        for c in owners:
            key = bin_of_cell.get(c)
            if key is not None and key not in seen:
                seen.add(key)
                nets_touching_bin[key].append(ni)

    bin_keys = sorted(bins)
    for sweep in range(sweeps):
        order = list(bin_keys)
        if sweep % 2 == 1:
            order.reverse()
        blockers_in_bin: dict[tuple[int, int], list[str]] = defaultdict(list)
        for bkey, name in blockers:
            blockers_in_bin[bkey].append(name)
        for key in order:
            members = bins[key]
            if len(members) < 2:
                continue
            local_cells = [i.name for i in members] + blockers_in_bin[key]
            local_set = set(local_cells)
            # Pinned cells and macro blockers are immovable but count
            # toward the bin balance.
            fixed: set[str] = {c for c in local_cells if c in pinned}
            # Out-of-bin terminals become fixed pseudo-cells.
            local_nets: list[list[str]] = []
            extra_cells: list[str] = []
            for ni in nets_touching_bin[key]:
                owners = net_members[ni]
                net_local = []
                for c in owners:
                    if c in local_set:
                        net_local.append(c)
                    elif c in assignment:
                        term = f"__term{ni}_{assignment[c]}"
                        net_local.append(term)
                        if term not in fixed:
                            fixed.add(term)
                            extra_cells.append(term)
                if len(set(net_local)) >= 2:
                    local_nets.append(net_local)
            all_cells = local_cells + extra_cells
            initial = {c: assignment[c] for c in local_cells}
            a0 = dict(area_side0)
            a1 = dict(area_side1)
            for term in extra_cells:
                initial[term] = int(term[-1])
                a0[term] = 0.0
                a1[term] = 0.0
            # Steer this bin's split to cancel the global imbalance that
            # earlier bins' tolerance drift accumulated.
            g0 = sum(
                area_side0[n] for n, s in assignment.items()
                if s == 0 and n in area_side0
            )
            g1 = sum(
                area_side1[n] for n, s in assignment.items()
                if s == 1 and n in area_side1
            )
            bin_total = sum(a0[c] for c in local_cells) or 1.0
            target = 0.5 - (g0 - g1) / (2.0 * bin_total)
            target = min(0.65, max(0.35, target))
            result = fm_bipartition(
                all_cells,
                local_nets,
                a0,
                a1,
                initial=initial,
                fixed=fixed,
                balance_tolerance=balance_tolerance,
                balance_target=target,
            )
            for c in local_cells:
                assignment[c] = result.assignment[c]

    # Any instance not binned (e.g. unplaced fixed cells) defaults to 0.
    for inst in netlist.instances.values():
        assignment.setdefault(inst.name, 0)
    # Macro-blocker pseudo cells were bookkeeping only.
    for name in blocker_names:
        assignment.pop(name, None)
    _ = rng  # determinism knob reserved for tie-breaking extensions
    return assignment
