"""Cell-based timing-driven partitioning (Section III-A1).

Samal et al. used path-based analysis to find critical cells; the paper
argues that misses too many cells ("missing even a small fraction of
critical cells can lead to a large timing degradation") and instead
visits *every cell* and takes the worst slack among the paths through it.
That per-cell worst slack is exactly what the STA backward pass produces
(:attr:`repro.timing.sta.TimingReport.cell_slack`).

Cells are ranked by criticality and pinned to the fast die until either
the slack threshold or the area cap is hit.  The cap (20-30% of total
cell area) exists because critical cells cluster physically (they come
from the same RTL block) and pinning whole dense clusters to one die
creates overlap that 3-D legalization must undo, breaking the
pseudo-3-D/3-D placement correspondence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import PartitionError
from repro.netlist.core import Netlist
from repro.obs import emit_metric, span

if TYPE_CHECKING:
    from repro.timing.incremental import TimingSession

__all__ = ["timing_based_pinning"]


def timing_based_pinning(
    netlist: Netlist,
    cell_slack: dict[str, float] | None = None,
    *,
    session: "TimingSession | None" = None,
    period_ns: float | None = None,
    fast_tier: int = 0,
    area_cap_fraction: float = 0.25,
    slack_threshold_ns: float | None = None,
) -> dict[str, int]:
    """Pin the most timing-critical cells to the fast tier.

    Parameters
    ----------
    cell_slack:
        Worst slack through each instance (from STA with cell slacks).
        May be omitted when a ``session`` and ``period_ns`` are given, in
        which case the slacks come from an incremental timing report.
    fast_tier:
        The tier holding the fast library (0/bottom in the paper).
    area_cap_fraction:
        Maximum fraction of total standard-cell area that may be pinned
        (the paper limits this to 20%-30%).
    slack_threshold_ns:
        Only cells at or below this slack are candidates; ``None`` derives
        it as the 40th percentile of observed slacks, so roughly the worse
        half of the design competes for the fast-tier budget.

    Returns a ``{instance: fast_tier}`` dict for the pinned cells.
    """
    if not 0.0 < area_cap_fraction <= 0.5:
        raise PartitionError("area cap must be in (0, 0.5]")
    if cell_slack is None:
        if session is None or period_ns is None:
            raise PartitionError(
                "timing_based_pinning needs cell_slack or a session + period"
            )
        cell_slack = session.report(period_ns, with_cell_slacks=True).cell_slack

    with span("timing_pinning", fast_tier=fast_tier):
        candidates = [
            (slack, name)
            for name, slack in cell_slack.items()
            if name in netlist.instances
            and not netlist.instances[name].cell.is_macro
        ]
        if not candidates:
            return {}
        candidates.sort()

        if slack_threshold_ns is None:
            slacks = sorted(s for s, _ in candidates)
            slack_threshold_ns = slacks[int(0.4 * (len(slacks) - 1))]

        total_area = netlist.cell_area_um2(lambda i: not i.cell.is_macro)
        budget = area_cap_fraction * total_area

        pinned: dict[str, int] = {}
        used = 0.0
        for slack, name in candidates:
            if slack > slack_threshold_ns:
                break
            area = netlist.instances[name].area_um2
            if used + area > budget:
                break
            pinned[name] = fast_tier
            used += area
        emit_metric("pinned_cells", len(pinned), tier=fast_tier)
        emit_metric(
            "pinned_area_fraction",
            used / total_area if total_area > 0 else 0.0,
            tier=fast_tier,
        )
        emit_metric(
            "critical_cell_fraction",
            len(pinned) / len(candidates),
        )
    return pinned
