"""Level-shifter insertion for large inter-tier voltage gaps.

Section III-B: the paper *avoids* level shifters by keeping
``V_DDH - V_DDL < 0.3 x V_DDH`` -- with ~15% of nets crossing the tiers,
shifters on every crossing would wreck timing and power.  This module
implements the alternative the paper argues against, so the tradeoff can
be measured instead of asserted: given a heterogeneous design whose rail
gap is too large, insert a level shifter on every low-to-high crossing
and report the cost.

A signal driven from the low rail into a high-rail gate needs shifting
when the gap exceeds the receiving device's threshold voltage (the input
high would not register); high-to-low crossings are overdriven and safe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flow.design import Design
from repro.liberty.cells import CellFunction

__all__ = [
    "LevelShifterReport",
    "boundary_violations",
    "insert_level_shifters",
    "needs_level_shifter",
]


def needs_level_shifter(
    driver_vdd_v: float, sink_vdd_v: float, sink_vth_v: float
) -> bool:
    """True when a driver rail cannot legally drive a sink gate.

    The paper's legality condition: the rail gap must stay below the
    receiving device's threshold (with margin); only low-to-high
    crossings can violate it.
    """
    gap = sink_vdd_v - driver_vdd_v
    return gap > 0 and gap >= sink_vth_v


@dataclass(frozen=True)
class LevelShifterReport:
    """What insertion did to the design."""

    crossings_checked: int
    violating_nets: int
    shifters_inserted: int
    shifter_area_um2: float


def boundary_violations(design: Design) -> list[str]:
    """Names of nets whose low-rail driver cannot drive a high-rail sink."""
    netlist = design.netlist
    libs = design.libraries_by_name()
    violating = []
    for net in netlist.cut_nets():
        driver = netlist.driver_instance(net)
        if driver is None:
            continue
        for sink_name, _pin in net.sinks:
            sink = netlist.instances[sink_name]
            if sink.cell.function is CellFunction.LEVEL_SHIFTER:
                continue  # a shifter input is the legal foreign-rail sink
            sink_lib = libs[sink.cell.library_name]
            if needs_level_shifter(
                driver.cell.vdd_v, sink.cell.vdd_v, sink_lib.vth_v
            ):
                violating.append(net.name)
                break
    return violating


def insert_level_shifters(design: Design) -> LevelShifterReport:
    """Insert a level shifter on every violating tier crossing.

    The shifter comes from the *receiving* tier's library (it must produce
    that tier's full swing), is placed at the centroid of the sinks it
    serves, and takes over all high-rail sinks of the net.  Positions are
    approximate; callers re-legalize afterwards.
    """
    netlist = design.netlist
    libs = design.libraries_by_name()
    checked = 0
    violating = 0
    inserted = 0
    area = 0.0

    for net_name in [n.name for n in netlist.cut_nets()]:
        net = netlist.nets[net_name]
        driver = netlist.driver_instance(net)
        if driver is None:
            continue
        checked += 1
        needy = []
        for sink_name, pin in list(net.sinks):
            sink = netlist.instances[sink_name]
            if sink.cell.function is CellFunction.LEVEL_SHIFTER:
                continue  # already behind a shifter
            sink_lib = libs[sink.cell.library_name]
            if needs_level_shifter(
                driver.cell.vdd_v, sink.cell.vdd_v, sink_lib.vth_v
            ):
                needy.append((sink_name, pin))
        if not needy:
            continue
        violating += 1

        first_sink = netlist.instances[needy[0][0]]
        target_lib = libs[first_sink.cell.library_name]

        # Idempotency: a repeated pass (the post-ECO cleanup, or a repair
        # hook re-running insertion) must not double-insert.  If this net
        # already feeds a shifter producing the needed rail, route the new
        # sinks through that shifter's output instead of adding another.
        existing = None
        for sink_name, pin in net.sinks:
            cand = netlist.instances[sink_name]
            if (pin == "A"
                    and cand.cell.function is CellFunction.LEVEL_SHIFTER
                    and cand.cell.library_name == target_lib.name
                    and cand.net_of("Y") is not None):
                existing = cand
                break
        if existing is not None:
            out_net = existing.net_of("Y")
            for sink_name, pin in needy:
                netlist.disconnect(sink_name, pin)
                netlist.connect(out_net, sink_name, pin)
            # Both rerouted nets are pins of the existing shifter, so one
            # touch refreshes their HPWL/congestion entries.
            design.touch_placement(existing.name)
            continue

        ls_cell = target_lib.get(CellFunction.LEVEL_SHIFTER, 1)
        ls_name = netlist.unique_name("ls")
        ls = netlist.add_instance(ls_name, ls_cell, block=driver.block)
        ls.tier = first_sink.tier
        placed = [
            netlist.instances[s].center()
            for s, _p in needy
            if netlist.instances[s].is_placed
        ]
        if placed:
            ls.x_um = sum(p[0] for p in placed) / len(placed)
            ls.y_um = sum(p[1] for p in placed) / len(placed)
        new_net = netlist.add_net(netlist.unique_name(f"{net_name}_ls"))
        netlist.connect(net_name, ls_name, "A")
        netlist.connect(new_net.name, ls_name, "Y")
        for sink_name, pin in needy:
            netlist.disconnect(sink_name, pin)
            netlist.connect(new_net.name, sink_name, pin)
        design.touch_placement(ls_name)
        inserted += 1
        area += ls_cell.area_um2

    return LevelShifterReport(
        crossings_checked=checked,
        violating_nets=violating,
        shifters_inserted=inserted,
        shifter_area_um2=area,
    )
