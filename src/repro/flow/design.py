"""The Design object: netlist + technology binding + physical state.

A :class:`Design` ties together everything a flow stage needs: the
netlist, the per-tier libraries, the floorplan, the clock tree, and the
wire model in effect.  Flow stages mutate the design in place and the
finalizer reads every metric off it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cts.tree import ClockReport
from repro.errors import FlowError
from repro.liberty.library import StdCellLibrary
from repro.netlist.core import Netlist
from repro.place.floorplan import Floorplan
from repro.timing.delaycalc import (
    DelayCalculator,
    FanoutWireModel,
    PlacementWireModel,
)

__all__ = ["Design"]


@dataclass
class Design:
    """One implementation of one netlist in one configuration."""

    name: str
    config: str
    netlist: Netlist
    tier_libs: dict[int, StdCellLibrary]
    floorplan: Floorplan | None = None
    clock_report: ClockReport | None = None
    target_period_ns: float = 1.0
    utilization_target: float = 0.82
    notes: dict[str, object] = field(default_factory=dict)
    #: latency snapshot cache: (report it was taken from, snapshot)
    _clock_latency_cache: tuple[ClockReport, dict[str, float]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: lazy placement session bound to the current floorplan
    _place_session: object | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def tiers(self) -> int:
        """Number of tiers in this configuration."""
        return len(self.tier_libs)

    @property
    def is_3d(self) -> bool:
        """True for stacked configurations."""
        return self.tiers > 1

    @property
    def frequency_ghz(self) -> float:
        """Target clock frequency."""
        return 1.0 / self.target_period_ns

    def libraries_by_name(self) -> dict[str, StdCellLibrary]:
        """Library lookup map keyed by library name."""
        return {lib.name: lib for lib in self.tier_libs.values()}

    def reference_library(self) -> StdCellLibrary:
        """The bottom-tier library (used for shared BEOL parasitics)."""
        return self.tier_libs[0]

    def library_for_tier(self, tier: int) -> StdCellLibrary:
        """Library bound to one tier."""
        try:
            return self.tier_libs[tier]
        except KeyError:
            raise FlowError(f"design has no tier {tier}") from None

    def calculator(self, *, placed: bool) -> DelayCalculator:
        """A delay calculator over the current netlist state."""
        lib = self.reference_library()
        model = PlacementWireModel(lib) if placed else FanoutWireModel(lib)
        return DelayCalculator(self.netlist, model, self.libraries_by_name())

    def clock_latencies(self) -> dict[str, float] | None:
        """Per-sink clock insertion delays, or None before CTS.

        The snapshot is cached against the current :attr:`clock_report`,
        so repeated calls return the *same* dict object until CTS (or an
        edit that rebuilds the tree) installs a new report.  The stable
        identity lets timing sessions detect latency changes with an
        ``is`` check instead of comparing per-sink values.
        """
        report = self.clock_report
        if report is None:
            self._clock_latency_cache = None
            return None
        cached = self._clock_latency_cache
        if cached is not None and cached[0] is report:
            return cached[1]
        snapshot = dict(report.latencies)
        self._clock_latency_cache = (report, snapshot)
        return snapshot

    def slow_tier(self) -> int:
        """The tier with the slower library (heterogeneous designs).

        For homogeneous designs the top tier is returned by convention.
        """
        if not self.is_3d:
            return 0
        libs = sorted(self.tier_libs.items(), key=lambda kv: kv[1].vdd_v)
        return libs[0][0] if libs[0][1].vdd_v < libs[-1][1].vdd_v else 1

    def remap_instance_to_tier(self, inst_name: str, tier: int) -> None:
        """Move an instance to a tier and rebind it to that tier's library.

        Memory macros keep their cell (the paper keeps memories identical
        across technology variants); standard cells are swapped for the
        equivalent function/drive in the destination library.
        """
        inst = self.netlist.instances[inst_name]
        target_lib = self.library_for_tier(tier)
        inst.tier = tier
        if inst.cell.is_macro:
            return
        if inst.cell.library_name != target_lib.name:
            self.netlist.rebind(inst_name, target_lib.equivalent_of(inst.cell))
        self.touch_placement(inst_name)

    def place_session(self):
        """The placement session bound to the current floorplan.

        Created lazily and replaced whenever the floorplan object changes
        (utilization backoff re-places the whole design, so stale caches
        must not survive).  A fresh session recomputes everything on its
        first query, which is what makes checkpoint-resumed designs
        byte-identical to uninterrupted runs.
        """
        from repro.place.incremental import PlacementSession

        if self.floorplan is None:
            raise FlowError("design has no floorplan; place before querying")
        session = self._place_session
        if (
            session is None
            or session.floorplan is not self.floorplan
            or session.netlist is not self.netlist
        ):
            session = PlacementSession(
                self.netlist, self.floorplan, self.tier_libs
            )
            self._place_session = session
        return session

    def touch_placement(self, inst_name: str) -> None:
        """Report a placement-relevant edit (move/resize/clone/tier move).

        A no-op before the session exists: a cold session recomputes from
        scratch anyway.  Every flow edit that changes an instance's
        position, width, or tier must call this (the placement analogue
        of ``calc.invalidate``).
        """
        session = self._place_session
        if session is not None and session.floorplan is self.floorplan:
            session.dirty_cell(inst_name)
