"""Hetero-Pin-3D: the paper's heterogeneous monolithic 3-D flow.

Section III's enhancements over plain Pin-3D, all implemented here:

1. **Timing-based partitioning** (III-A1): after the pseudo-3-D stage
   (12-track only -- the pseudo-3-D stage supports a single technology),
   per-cell worst slacks pin the critical cells to the fast bottom die,
   capped at 20-30% of cell area; bin-based FM min-cut handles the rest.
2. **Technology remap + footprint shrink** (IV-A2): cells assigned to the
   top tier are rebound to the 9-track library; with half the cell area
   now 25% smaller, total cell area drops ~12.5% and the footprint is
   rebuilt to maintain the target utilization.
3. **Heterogeneous 3-D CTS** (III-A2): one clock tree across both tiers
   (COVER-cell abstraction) with the PREFER_SLOW tier policy, yielding
   the top-die-heavy, low-power clock network of Table VIII.
4. **ECO repartitioning** (III-C, Algorithm 1): cells that real 3-D
   timing shows to be too slow for the 9-track die are ECO-moved to the
   12-track die, batch by batch, with undo on non-improvement.

Each enhancement can be disabled independently, which is how the Table V
ablation (Pin-3D vs Hetero-Pin-3D on the same heterogeneous stack) is
produced.

The flow runs as :class:`~repro.flow.pipeline.Stage` objects under
:func:`~repro.flow.pipeline.execute_flow`; the ``level_shift`` /
``final_shifters`` stages only exist when the library pair needs
shifters, and ``repartition`` only when the ECO loop is enabled, so the
stage list (and the checkpoint sequence) is deterministic for a given
set of flow arguments.
"""

from __future__ import annotations

from repro.cost.model import CostModel
from repro.cts.tree import ClockTreeSynthesizer, TierPolicy
from repro.flow.design import Design
from repro.flow.levelshift import insert_level_shifters
from repro.flow.opt import optimize_timing, recover_area
from repro.flow.pin3d import FM_BALANCE_TOLERANCE, apply_partition
from repro.flow.pipeline import FlowContext, Stage, execute_flow
from repro.flow.report import FlowResult, finalize_design
from repro.flow.stages import legalize_all_tiers, place_with_congestion_control
from repro.flow.synthesis import initial_sizing
from repro.liberty.library import StdCellLibrary
from repro.netlist.generators import generate_netlist
from repro.obs import emit_metric, span
from repro.partition.bins import bin_fm_partition
from repro.partition.repartition import (
    RepartitionConfig,
    RepartitionResult,
    repartition_eco,
)
from repro.partition.timing_driven import timing_based_pinning
from repro.place.floorplan import build_floorplan
from repro.place.quadratic import global_place
from repro.place.legalizer import row_capacity_um2
from repro.timing.incremental import TimingSession

__all__ = ["run_flow_hetero_3d"]

FAST_TIER = 0  # bottom die, 12-track at 0.90 V
SLOW_TIER = 1  # top die, 9-track at 0.81 V


def _run_repartition(
    design: Design,
    config: RepartitionConfig,
    fast_fill_cap: float = 0.93,
) -> RepartitionResult:
    """Wire Algorithm 1 to real STA, remap, and undo callbacks."""
    calc = design.calculator(placed=True)
    latencies = design.clock_latencies()
    # One incremental session spans the whole ECO loop: each batch of
    # tier moves invalidates only the touched nets, so every analyze()
    # call re-propagates just the moved cells' fanout cones.
    session = TimingSession(design.netlist, calc, latencies)

    def analyze():
        report = session.report(
            design.target_period_ns, with_cell_slacks=False
        )
        paths = session.top_paths(report, config.n_paths)
        return report.wns_ns, report.tns_ns, paths

    fast_capacity = (
        row_capacity_um2(
            design.floorplan, design.library_for_tier(FAST_TIER), FAST_TIER
        )
        * fast_fill_cap
    )
    fast_lib = design.library_for_tier(FAST_TIER)

    def move_to_fast(cells: list[str]):
        token = []
        fast_used = design.netlist.cell_area_um2(
            lambda i: i.tier == FAST_TIER and not i.cell.is_macro
        )
        for name in cells:
            inst = design.netlist.instances[name]
            if inst.cell.is_macro or inst.fixed:
                continue
            fast_cell = fast_lib.equivalent_of(inst.cell)
            if fast_used + fast_cell.area_um2 > fast_capacity:
                continue  # the fast die is out of legalizable room
            fast_used += fast_cell.area_um2
            token.append((name, inst.tier, inst.cell))
            design.remap_instance_to_tier(name, FAST_TIER)
            for _pin, net in inst.connected_pins():
                calc.invalidate(net)
        return token

    def undo(token) -> None:
        for name, tier, cell in token:
            inst = design.netlist.instances[name]
            inst.tier = tier
            design.netlist.rebind(name, cell)
            design.touch_placement(name)
            for _pin, net in inst.connected_pins():
                calc.invalidate(net)

    def tier_areas() -> tuple[float, float]:
        slow = design.netlist.tier_area_um2(SLOW_TIER)
        fast = design.netlist.tier_area_um2(FAST_TIER)
        return slow, fast

    def settle() -> None:
        # Re-legalize after each accepted batch so later analyze() calls
        # see real (legal) positions for the moved cells.  The placement
        # session re-packs only the rows the batch disturbed; timing is
        # then re-derived for the nets of every cell that actually moved.
        place = design.place_session()
        place.legalize_all()
        moved = place.last_moved
        if moved is None:
            calc.invalidate()
            return
        for name in moved:
            inst = design.netlist.instances.get(name)
            if inst is None:
                continue
            for _pin, net in inst.connected_pins():
                calc.invalidate(net)

    return repartition_eco(
        analyze, move_to_fast, undo, tier_areas, SLOW_TIER, config,
        settle=settle,
    )


def run_flow_hetero_3d(
    design_name: str,
    fast_lib: StdCellLibrary,
    slow_lib: StdCellLibrary,
    *,
    period_ns: float,
    scale: float = 1.0,
    seed: int = 0,
    utilization: float = 0.82,
    opt_iterations: int = 12,
    recover: bool = True,
    timing_partitioning: bool = True,
    hetero_cts: bool = True,
    repartition: bool = True,
    pinning_area_cap: float = 0.25,
    fm_tolerance: float | None = None,
    repartition_config: RepartitionConfig | None = None,
    cost_model: CostModel | None = None,
    allow_level_shifters: bool = False,
    check: str | None = None,
    checkpoint_dir: str | None = None,
    from_stage: str | None = None,
    until_stage: str | None = None,
) -> tuple[Design, FlowResult]:
    """Implement one netlist as a 9+12-track heterogeneous M3D design.

    ``fast_lib`` goes on the bottom tier, ``slow_lib`` on the top tier.
    Disabling ``timing_partitioning``/``hetero_cts``/``repartition``
    reproduces the plain Pin-3D baseline of Table V.

    ``pinning_area_cap`` bounds the fast-die area fraction the timing
    pinning may claim (the paper's 20-30% range) and ``fm_tolerance``
    overrides the FM partitioner's balance tolerance (default
    :data:`~repro.flow.pin3d.FM_BALANCE_TOLERANCE`) -- both are lattice
    axes of the design-space explorer (:mod:`repro.experiments.dse`).

    Library pairs violating the Section II-B voltage rule are rejected
    unless ``allow_level_shifters`` is set, in which case every illegal
    low-to-high crossing gets a level shifter -- the costly alternative
    Section III-B argues against, kept here so the tradeoff is measurable
    (see ``benchmarks/test_level_shifter_study.py``).

    ``until_stage`` stops after the named stage (checkpoint written,
    no signoff report) -- the returned result is ``None`` and the flow
    can be resumed later with ``from_stage``.
    """
    voltage_ok = fast_lib.voltage_compatible_with(slow_lib)
    if not voltage_ok and not allow_level_shifters:
        raise ValueError(
            "library pair violates the V_DDH - V_DDL < 0.3*V_DDH rule; "
            "level shifters would be required (Section III-B); pass "
            "allow_level_shifters=True to insert them anyway"
        )
    balance_tolerance = (
        FM_BALANCE_TOLERANCE if fm_tolerance is None else float(fm_tolerance)
    )

    # Pre-ECO optimization runs with a conservative fill bound: pushing a
    # 9-track-limited path with brute-force upsizing would fill the fast
    # die and leave the repartitioning loop nowhere to move cells.  When
    # level shifters will be inserted later, every sizing pass keeps
    # additional headroom for them.
    flow_fill = 0.93 if voltage_ok else 0.84
    pre_eco_fill = min(0.86, flow_fill) if repartition else (
        None if voltage_ok else flow_fill
    )

    def synthesis(ctx: FlowContext) -> None:
        with span("synthesis", design=design_name, library=fast_lib.name):
            netlist = generate_netlist(
                design_name, fast_lib, scale=scale, seed=seed
            )
            ctx.design = Design(
                name=design_name,
                config="3D_HET",
                netlist=netlist,
                tier_libs={FAST_TIER: fast_lib, SLOW_TIER: slow_lib},
                target_period_ns=period_ns,
                utilization_target=utilization,
            )
            initial_sizing(ctx.design)
            emit_metric("cells", len(netlist.instances))
            emit_metric("cell_area_um2", netlist.cell_area_um2())

        # Memory macros are corner-independent ("the same size in both
        # technology variants"), so their tier is a free choice;
        # alternating them over the two dies keeps the per-tier blockage
        # balanced and leaves the fast die room for the critical logic
        # that timing-based partitioning pins there.
        for i, macro in enumerate(sorted(netlist.memory_macros(),
                                         key=lambda m: m.name)):
            macro.tier = (i + SLOW_TIER) % 2

    def pseudo_place(ctx: FlowContext) -> None:
        # ---- pseudo-3-D stage (single technology: the fast library) ----
        place_with_congestion_control(
            ctx.design, demand_scale=0.5, area_scale=0.5
        )

    def partitioning(ctx: FlowContext) -> None:
        design = ctx.design
        netlist = design.netlist
        pseudo_fp = design.floorplan
        with span("partitioning", design=design_name):
            pinned: dict[str, int] = {}
            if timing_partitioning:
                calc = design.calculator(placed=True)
                session = TimingSession(netlist, calc)
                pinned = timing_based_pinning(
                    netlist,
                    session=session,
                    period_ns=period_ns,
                    fast_tier=FAST_TIER,
                    area_cap_fraction=pinning_area_cap,
                    # Cells within 30% of the period of criticality
                    # compete for the fast die; padding the fast tier
                    # with mid-slack cells would only waste the area the
                    # ECO loop later needs.
                    slack_threshold_ns=0.30 * period_ns,
                )
                design.notes["pinned_cells"] = float(len(pinned))
                std_area = netlist.cell_area_um2(
                    lambda i: not i.cell.is_macro
                )
                pinned_area = sum(
                    netlist.instances[n].area_um2 for n in pinned
                )
                design.notes["pinned_area_fraction"] = (
                    pinned_area / std_area if std_area > 0 else 0.0
                )
                design.notes["pinned_area_cap"] = pinning_area_cap

            # Balance with side-dependent areas: a cell moving to the top
            # tier will shrink to its 9-track equivalent, so the
            # partitioner measures each side in its own metric and both
            # dies land at the same fill.  Slightly more than half of the
            # original 12-track area migrates to the 9-track die,
            # shrinking total cell area by ~12-14% (Section IV-A2).
            areas_fast = {
                name: inst.area_um2
                for name, inst in netlist.instances.items()
            }
            areas_slow = {
                name: (
                    inst.area_um2
                    if inst.cell.is_macro
                    else slow_lib.equivalent_of(inst.cell).area_um2
                )
                for name, inst in netlist.instances.items()
            }
            assignment = bin_fm_partition(
                netlist,
                pseudo_fp.width_um,
                pseudo_fp.height_um,
                areas_fast,
                areas_slow,
                pinned=pinned,
                balance_tolerance=balance_tolerance,
                seed=seed,
            )
            apply_partition(design, assignment)  # remaps top tier to 9T
            design.notes["fm_balance_tolerance"] = balance_tolerance
            emit_metric("cut_nets", len(netlist.cut_nets()))

    def placement_3d(ctx: FlowContext) -> None:
        # ---- footprint shrink to maintain utilization ------------------
        # Per-tier demand now sizes the die: both tiers sit at the target
        # utilization, and the footprint shrinks relative to homogeneous
        # 3-D.
        design = ctx.design
        fp_util = design.notes.get("utilization_used", utilization)
        if not voltage_ok:
            # Reserve room for the level shifters (one per violating
            # crossing plus the ones later ECO moves will need).
            fp_util = fp_util * 0.85
        with span("placement", design=design_name, phase="3d"):
            new_fp = build_floorplan(
                design.netlist,
                design.tier_libs,
                fp_util,
            )
            design.floorplan = new_fp
            global_place(design.netlist, new_fp)

    def legalization(ctx: FlowContext) -> None:
        legalize_all_tiers(ctx.design)

    def level_shift(ctx: FlowContext) -> None:
        design = ctx.design
        ls_report = insert_level_shifters(design)
        design.notes["level_shifters"] = float(ls_report.shifters_inserted)
        legalize_all_tiers(design)

    def optimize(ctx: FlowContext) -> None:
        # ---- 3-D optimization ------------------------------------------
        design = ctx.design
        calc = design.calculator(placed=True)
        optimize_timing(
            design,
            calc,
            max_iterations=opt_iterations,
            **({"max_fill": pre_eco_fill} if pre_eco_fill else {}),
        )
        if recover:
            recover_area(design, calc)
        legalize_all_tiers(design)
        calc.invalidate()

    def cts(ctx: FlowContext) -> None:
        # ---- heterogeneous clock tree ----------------------------------
        design = ctx.design
        policy = TierPolicy.PREFER_SLOW if hetero_cts else TierPolicy.MAJORITY
        synth = ClockTreeSynthesizer(
            design.netlist,
            design.tier_libs,
            policy,
            frequency_ghz=design.frequency_ghz,
            slow_tier=SLOW_TIER,
        )
        design.clock_report = synth.run()

    def postcts(ctx: FlowContext) -> None:
        design = ctx.design
        calc = design.calculator(placed=True)
        optimize_timing(
            design,
            calc,
            max_iterations=max(2, opt_iterations // 4),
            **({"max_fill": pre_eco_fill} if pre_eco_fill else {}),
        )
        calc.invalidate()

    def repartition_stage(ctx: FlowContext) -> None:
        # ---- ECO repartitioning (Algorithm 1) --------------------------
        design = ctx.design
        config = repartition_config or RepartitionConfig(
            wns_target_ns=-0.02 * period_ns
        )
        eco = _run_repartition(design, config, fast_fill_cap=flow_fill)
        design.notes["eco_cells_moved"] = float(len(eco.cells_moved))
        design.notes["eco_batches_accepted"] = float(eco.batches_accepted)
        design.notes["eco_batches_rejected"] = float(eco.batches_rejected)
        design.notes["eco_stop"] = eco.stop_reason
        if eco.cells_moved:
            # The moved cells disturbed row legality; restore it before
            # the final sizing pass so it optimizes real parasitics.
            legalize_all_tiers(design)
            calc = design.calculator(placed=True)
            if recover:
                recover_area(design, calc)
            optimize_timing(
                design,
                calc,
                max_iterations=max(4, opt_iterations // 3),
                max_fill=flow_fill,
            )
            calc.invalidate()

    def final_shifters(ctx: FlowContext) -> None:
        # Optimization and ECO moves may have created fresh low-to-high
        # crossings; shift them too before signoff.
        design = ctx.design
        extra = insert_level_shifters(design)
        design.notes["level_shifters"] = (
            design.notes.get("level_shifters", 0.0) + extra.shifters_inserted
        )

    def final_legalize(ctx: FlowContext) -> None:
        legalize_all_tiers(ctx.design)

    def signoff(ctx: FlowContext) -> None:
        ctx.result = finalize_design(ctx.design, cost_model=cost_model)

    # The shifter rule is only enforced where shifters are guaranteed
    # present: optimization/CTS/ECO may legitimately create unshifted
    # crossings that ``final_shifters`` cleans up, so "tiers" stays out
    # of those boundaries in the shifter flow.
    stages = [
        Stage("synthesis", synthesis, ("connectivity", "timing")),
        Stage("pseudo_place", pseudo_place, ("connectivity",)),
        Stage("partitioning", partitioning,
              ("connectivity", "tiers", "tier_balance")),
        Stage("placement_3d", placement_3d, ("connectivity", "tiers")),
        Stage("legalization", legalization,
              ("connectivity", "placement", "tiers")),
    ]
    if not voltage_ok:
        stages.append(Stage("level_shift", level_shift,
                            ("connectivity", "placement", "tiers")))
    stages += [
        Stage("optimize", optimize, ("connectivity", "placement", "timing")),
        Stage("cts", cts, ("connectivity", "timing")),
        # No legalization after the post-CTS sizing pass (ECO runs next),
        # so placement legality is not a contract here.
        Stage("postcts", postcts, ("connectivity", "timing")),
    ]
    if repartition:
        stages.append(Stage("repartition", repartition_stage,
                            ("connectivity", "timing")))
    if not voltage_ok:
        stages.append(Stage("final_shifters", final_shifters,
                            ("connectivity",)))
    stages += [
        Stage("final_legalize", final_legalize,
              ("connectivity", "placement", "tiers")),
        Stage("signoff", signoff,
              ("connectivity", "placement", "tiers", "timing")),
    ]
    ctx = execute_flow(
        stages,
        check=check,
        checkpoint_dir=checkpoint_dir,
        from_stage=from_stage,
        until_stage=until_stage,
        tier_libs={FAST_TIER: fast_lib, SLOW_TIER: slow_lib},
    )
    return ctx.design, ctx.result
