"""Homogeneous Pin-3D flow (the baseline of reference [5]).

Pseudo-3-D stage: the whole netlist is implemented "2-D style" on the
3-D footprint (half the 2-D area) with cells logically shrunk to half
area so they all fit -- the Shrunk-2D abstraction Pin-3D builds on.
Tier assignment then runs placement-driven bin-based FM min-cut with
area balancing, both tiers are legalized at full cell size, and the 3-D
database is optimized with full-chip timing (our optimizer sees both
tiers at once, which is exactly the Pin-3D advantage over die-by-die
flows).

The published Pin-3D has no 3-D clock stage; ``run_flow_pin3d`` therefore
defaults to the MAJORITY-tier clock policy without the heterogeneous
enhancements, and the hetero flow (:mod:`repro.flow.hetero`) adds the
paper's Section III improvements on top.

Like the other flows, the sequence is a list of
:class:`~repro.flow.pipeline.Stage` objects run by
:func:`~repro.flow.pipeline.execute_flow` (stage-boundary integrity
contracts, checksummed checkpoints, ``--from-stage`` resume).
"""

from __future__ import annotations

from repro.cost.model import CostModel
from repro.cts.tree import ClockTreeSynthesizer, TierPolicy
from repro.flow.design import Design
from repro.flow.opt import optimize_timing, recover_area
from repro.flow.pipeline import FlowContext, Stage, execute_flow
from repro.flow.report import FlowResult, finalize_design
from repro.flow.stages import legalize_all_tiers, place_with_congestion_control
from repro.flow.synthesis import initial_sizing
from repro.liberty.library import StdCellLibrary
from repro.netlist.generators import generate_netlist
from repro.obs import emit_metric, span
from repro.partition.bins import bin_fm_partition
from repro.place.floorplan import build_floorplan
from repro.place.quadratic import global_place

__all__ = ["run_flow_pin3d", "apply_partition"]

#: Balance tolerance handed to :func:`bin_fm_partition`; recorded in
#: ``design.notes`` so the tier-balance integrity check knows the bound
#: the partitioner was asked to honor.
FM_BALANCE_TOLERANCE = 0.12


def apply_partition(design: Design, assignment: dict[str, int]) -> None:
    """Move every instance to its assigned tier (remapping if needed)."""
    for name, tier in assignment.items():
        design.remap_instance_to_tier(name, tier)


def run_flow_pin3d(
    design_name: str,
    lib: StdCellLibrary,
    *,
    period_ns: float,
    scale: float = 1.0,
    seed: int = 0,
    utilization: float = 0.82,
    opt_iterations: int = 12,
    recover: bool = True,
    cost_model: CostModel | None = None,
    check: str | None = None,
    checkpoint_dir: str | None = None,
    from_stage: str | None = None,
) -> tuple[Design, FlowResult]:
    """Implement one netlist as a homogeneous two-tier M3D design."""

    def synthesis(ctx: FlowContext) -> None:
        with span("synthesis", design=design_name, library=lib.name):
            netlist = generate_netlist(design_name, lib, scale=scale,
                                       seed=seed)
            ctx.design = Design(
                name=design_name,
                config=f"3D_{lib.tracks}T",
                netlist=netlist,
                tier_libs={0: lib, 1: lib},
                target_period_ns=period_ns,
                utilization_target=utilization,
            )
            initial_sizing(ctx.design)
            emit_metric("cells", len(netlist.instances))
            emit_metric("cell_area_um2", netlist.cell_area_um2())

        # Memory macros alternate over the tiers so blockage stays
        # balanced (memory-over-logic stacking).
        for i, macro in enumerate(sorted(netlist.memory_macros(),
                                         key=lambda m: m.name)):
            macro.tier = i % 2

    def pseudo_place(ctx: FlowContext) -> None:
        # Pseudo-3-D stage: everything on one half-size footprint.
        place_with_congestion_control(
            ctx.design, demand_scale=0.5, area_scale=0.5
        )

    def partitioning(ctx: FlowContext) -> None:
        design = ctx.design
        netlist = design.netlist
        fp = design.floorplan
        with span("partitioning", design=design_name):
            areas = {
                name: inst.area_um2
                for name, inst in netlist.instances.items()
            }
            assignment = bin_fm_partition(
                netlist,
                fp.width_um,
                fp.height_um,
                areas,
                areas,
                balance_tolerance=FM_BALANCE_TOLERANCE,
                seed=seed,
            )
            apply_partition(design, assignment)
            design.notes["fm_balance_tolerance"] = FM_BALANCE_TOLERANCE
            emit_metric("cut_nets", len(netlist.cut_nets()))

    def placement_3d(ctx: FlowContext) -> None:
        # Re-floorplan from real per-tier demand (the macro tier may need
        # a different outline than the pseudo-3-D estimate) and re-place
        # on the final outline before per-tier legalization.
        design = ctx.design
        with span("placement", design=design_name, phase="3d"):
            fp3d = build_floorplan(
                design.netlist,
                design.tier_libs,
                design.notes.get("utilization_used", utilization),
            )
            design.floorplan = fp3d
            global_place(design.netlist, fp3d)

    def legalization(ctx: FlowContext) -> None:
        legalize_all_tiers(ctx.design)

    def optimize(ctx: FlowContext) -> None:
        # 3-D stage: full-chip timing optimization across both tiers.
        design = ctx.design
        calc = design.calculator(placed=True)
        optimize_timing(design, calc, max_iterations=opt_iterations)
        if recover:
            recover_area(design, calc)
        legalize_all_tiers(design)
        calc.invalidate()

    def cts(ctx: FlowContext) -> None:
        design = ctx.design
        synth = ClockTreeSynthesizer(
            design.netlist,
            design.tier_libs,
            TierPolicy.MAJORITY,
            frequency_ghz=design.frequency_ghz,
            slow_tier=1,
        )
        design.clock_report = synth.run()

    def postcts(ctx: FlowContext) -> None:
        design = ctx.design
        calc = design.calculator(placed=True)
        optimize_timing(design, calc,
                        max_iterations=max(2, opt_iterations // 4))
        if recover:
            recover_area(design, calc)
        legalize_all_tiers(design)
        calc.invalidate()

    def signoff(ctx: FlowContext) -> None:
        ctx.result = finalize_design(ctx.design, cost_model=cost_model)

    stages = [
        Stage("synthesis", synthesis, ("connectivity", "timing")),
        Stage("pseudo_place", pseudo_place, ("connectivity",)),
        Stage("partitioning", partitioning,
              ("connectivity", "tiers", "tier_balance")),
        Stage("placement_3d", placement_3d, ("connectivity", "tiers")),
        Stage("legalization", legalization,
              ("connectivity", "placement", "tiers")),
        Stage("optimize", optimize, ("connectivity", "placement", "timing")),
        Stage("cts", cts, ("connectivity", "timing")),
        Stage("postcts", postcts, ("connectivity", "placement", "timing")),
        Stage("signoff", signoff,
              ("connectivity", "placement", "tiers", "timing")),
    ]
    ctx = execute_flow(
        stages,
        check=check,
        checkpoint_dir=checkpoint_dir,
        from_stage=from_stage,
        tier_libs={0: lib, 1: lib},
    )
    return ctx.design, ctx.result
