"""Homogeneous Pin-3D flow (the baseline of reference [5]).

Pseudo-3-D stage: the whole netlist is implemented "2-D style" on the
3-D footprint (half the 2-D area) with cells logically shrunk to half
area so they all fit -- the Shrunk-2D abstraction Pin-3D builds on.
Tier assignment then runs placement-driven bin-based FM min-cut with
area balancing, both tiers are legalized at full cell size, and the 3-D
database is optimized with full-chip timing (our optimizer sees both
tiers at once, which is exactly the Pin-3D advantage over die-by-die
flows).

The published Pin-3D has no 3-D clock stage; ``run_flow_pin3d`` therefore
defaults to the MAJORITY-tier clock policy without the heterogeneous
enhancements, and the hetero flow (:mod:`repro.flow.hetero`) adds the
paper's Section III improvements on top.
"""

from __future__ import annotations

from repro.cost.model import CostModel
from repro.cts.tree import ClockTreeSynthesizer, TierPolicy
from repro.flow.design import Design
from repro.flow.opt import optimize_timing, recover_area
from repro.flow.report import FlowResult, finalize_design
from repro.flow.stages import legalize_all_tiers, place_with_congestion_control
from repro.flow.synthesis import initial_sizing
from repro.liberty.library import StdCellLibrary
from repro.netlist.generators import generate_netlist
from repro.obs import emit_metric, span
from repro.partition.bins import bin_fm_partition
from repro.place.floorplan import build_floorplan
from repro.place.quadratic import global_place

__all__ = ["run_flow_pin3d", "apply_partition"]


def apply_partition(design: Design, assignment: dict[str, int]) -> None:
    """Move every instance to its assigned tier (remapping if needed)."""
    for name, tier in assignment.items():
        design.remap_instance_to_tier(name, tier)


def run_flow_pin3d(
    design_name: str,
    lib: StdCellLibrary,
    *,
    period_ns: float,
    scale: float = 1.0,
    seed: int = 0,
    utilization: float = 0.82,
    opt_iterations: int = 12,
    recover: bool = True,
    cost_model: CostModel | None = None,
) -> tuple[Design, FlowResult]:
    """Implement one netlist as a homogeneous two-tier M3D design."""
    with span("synthesis", design=design_name, library=lib.name):
        netlist = generate_netlist(design_name, lib, scale=scale, seed=seed)
        design = Design(
            name=design_name,
            config=f"3D_{lib.tracks}T",
            netlist=netlist,
            tier_libs={0: lib, 1: lib},
            target_period_ns=period_ns,
            utilization_target=utilization,
        )
        initial_sizing(design)
        emit_metric("cells", len(netlist.instances))
        emit_metric("cell_area_um2", netlist.cell_area_um2())

    # Memory macros alternate over the tiers so blockage stays balanced
    # (memory-over-logic stacking).
    for i, macro in enumerate(sorted(netlist.memory_macros(),
                                     key=lambda m: m.name)):
        macro.tier = i % 2

    # Pseudo-3-D stage: everything on one half-size footprint.
    place_with_congestion_control(design, demand_scale=0.5, area_scale=0.5)
    fp = design.floorplan
    with span("partitioning", design=design_name):
        areas = {
            name: inst.area_um2
            for name, inst in netlist.instances.items()
        }
        assignment = bin_fm_partition(
            netlist,
            fp.width_um,
            fp.height_um,
            areas,
            areas,
            seed=seed,
        )
        apply_partition(design, assignment)
        emit_metric("cut_nets", len(netlist.cut_nets()))

    # Re-floorplan from real per-tier demand (the macro tier may need a
    # different outline than the pseudo-3-D estimate) and re-place on the
    # final outline before per-tier legalization.
    with span("placement", design=design_name, phase="3d"):
        fp3d = build_floorplan(
            netlist,
            design.tier_libs,
            design.notes.get("utilization_used", utilization),
        )
        design.floorplan = fp3d
        global_place(netlist, fp3d)
    legalize_all_tiers(design)

    # 3-D stage: full-chip timing optimization across both tiers.
    calc = design.calculator(placed=True)
    optimize_timing(design, calc, max_iterations=opt_iterations)
    if recover:
        recover_area(design, calc)
    legalize_all_tiers(design)
    calc.invalidate()

    cts = ClockTreeSynthesizer(
        design.netlist,
        design.tier_libs,
        TierPolicy.MAJORITY,
        frequency_ghz=design.frequency_ghz,
        slow_tier=1,
    )
    design.clock_report = cts.run()
    calc.invalidate()
    optimize_timing(design, calc, max_iterations=max(2, opt_iterations // 4))
    if recover:
        recover_area(design, calc)
    legalize_all_tiers(design)
    calc.invalidate()

    result = finalize_design(design, cost_model=cost_model)
    return design, result
