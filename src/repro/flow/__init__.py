"""Design flows: 2-D reference, homogeneous Pin-3D, and Hetero-Pin-3D."""

from repro.flow.design import Design
from repro.flow.flow2d import run_flow_2d
from repro.flow.hetero import run_flow_hetero_3d
from repro.flow.pin3d import run_flow_pin3d
from repro.flow.report import FlowResult, finalize_design
from repro.flow.synthesis import find_max_frequency, initial_sizing

__all__ = [
    "Design",
    "FlowResult",
    "finalize_design",
    "run_flow_2d",
    "run_flow_pin3d",
    "run_flow_hetero_3d",
    "find_max_frequency",
    "initial_sizing",
]
