"""The reference 2-D RTL-to-GDS flow.

Synthesis (generation + initial sizing) -> floorplan at target
utilization with congestion control -> quadratic global placement ->
legalization -> placement-aware timing optimization -> clock tree
synthesis -> post-CTS cleanup -> signoff.

Run once per library to produce the paper's 2-D 9-track and 2-D 12-track
configurations (Fig. 1(a)/(b)).

The flow is expressed as a list of :class:`~repro.flow.pipeline.Stage`
objects run by :func:`~repro.flow.pipeline.execute_flow`, which gives
every stage boundary an integrity contract (``--check``/``$REPRO_CHECK``)
and an optional checksummed checkpoint (``--checkpoint-dir`` /
``--from-stage``).
"""

from __future__ import annotations

from repro.cost.model import CostModel
from repro.cts.tree import ClockTreeSynthesizer, TierPolicy
from repro.flow.design import Design
from repro.flow.opt import optimize_timing, recover_area
from repro.flow.pipeline import FlowContext, Stage, execute_flow
from repro.flow.report import FlowResult, finalize_design
from repro.flow.stages import legalize_all_tiers, place_with_congestion_control
from repro.flow.synthesis import initial_sizing
from repro.liberty.library import StdCellLibrary
from repro.netlist.generators import generate_netlist
from repro.obs import emit_metric, span

__all__ = ["run_flow_2d"]


def run_flow_2d(
    design_name: str,
    lib: StdCellLibrary,
    *,
    period_ns: float,
    scale: float = 1.0,
    seed: int = 0,
    utilization: float = 0.82,
    opt_iterations: int = 12,
    recover: bool = True,
    cost_model: CostModel | None = None,
    check: str | None = None,
    checkpoint_dir: str | None = None,
    from_stage: str | None = None,
) -> tuple[Design, FlowResult]:
    """Implement one netlist in 2-D with one library at one frequency."""

    def synthesis(ctx: FlowContext) -> None:
        with span("synthesis", design=design_name, library=lib.name):
            netlist = generate_netlist(design_name, lib, scale=scale,
                                       seed=seed)
            ctx.design = Design(
                name=design_name,
                config=f"2D_{lib.tracks}T",
                netlist=netlist,
                tier_libs={0: lib},
                target_period_ns=period_ns,
                utilization_target=utilization,
            )
            initial_sizing(ctx.design)
            emit_metric("cells", len(netlist.instances))
            emit_metric("cell_area_um2", netlist.cell_area_um2())

    def placement(ctx: FlowContext) -> None:
        place_with_congestion_control(ctx.design)

    def legalization(ctx: FlowContext) -> None:
        legalize_all_tiers(ctx.design)

    def optimize(ctx: FlowContext) -> None:
        design = ctx.design
        calc = design.calculator(placed=True)
        optimize_timing(design, calc, max_iterations=opt_iterations)
        if recover:
            recover_area(design, calc)
        # Sizing changed cell widths; restore row legality.
        legalize_all_tiers(design)
        calc.invalidate()

    def cts(ctx: FlowContext) -> None:
        design = ctx.design
        synth = ClockTreeSynthesizer(
            design.netlist,
            design.tier_libs,
            TierPolicy.SINGLE,
            frequency_ghz=design.frequency_ghz,
        )
        design.clock_report = synth.run()

    def postcts(ctx: FlowContext) -> None:
        # Post-CTS: one light cleanup round against propagated clocks,
        # then a final power-driven area recovery ("the tool starts
        # optimizing for power" once timing is met, Section IV-A2).
        design = ctx.design
        calc = design.calculator(placed=True)
        optimize_timing(design, calc,
                        max_iterations=max(2, opt_iterations // 4))
        if recover:
            recover_area(design, calc)
        legalize_all_tiers(design)
        calc.invalidate()

    def signoff(ctx: FlowContext) -> None:
        ctx.result = finalize_design(ctx.design, cost_model=cost_model)

    stages = [
        Stage("synthesis", synthesis, ("connectivity", "timing")),
        Stage("placement", placement, ("connectivity",)),
        Stage("legalization", legalization,
              ("connectivity", "placement", "tiers")),
        Stage("optimize", optimize, ("connectivity", "placement", "timing")),
        Stage("cts", cts, ("connectivity", "timing")),
        Stage("postcts", postcts, ("connectivity", "placement", "timing")),
        Stage("signoff", signoff,
              ("connectivity", "placement", "tiers", "timing")),
    ]
    ctx = execute_flow(
        stages,
        check=check,
        checkpoint_dir=checkpoint_dir,
        from_stage=from_stage,
        tier_libs={0: lib},
    )
    return ctx.design, ctx.result
