"""Timing optimization: cell sizing, buffer insertion, area recovery.

This stands in for the optimization passes of a commercial PnR tool, and
its behaviour is what makes the paper's cross-configuration comparisons
meaningful:

- On violating paths, cells are **upsized** (next drive strength in the
  *instance's own tier library* -- the tool never crosses technologies,
  exactly the limitation Section I points out) and long wire segments are
  **buffered**.
- When timing is met with margin, high-slack cells are **downsized** for
  power ("when the timing target is not set tightly, the tool starts
  optimizing for power", Section IV-A2).

Because a 9-track design at a 12-track frequency target cannot close
timing with sizing alone, the optimizer keeps inflating area and power
and still ends with negative WNS -- the "over-correction" that makes the
9-track 2-D configurations lose on *every* metric in Table VII.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flow.design import Design
from repro.liberty.cells import CellFunction
from repro.obs import emit_metric, span
from repro.place.legalizer import row_capacity_um2
from repro.timing.delaycalc import DelayCalculator
from repro.timing.incremental import TimingSession

__all__ = ["AreaBudget", "OptimizeStats", "optimize_timing", "recover_area"]

#: Wire delay above which a segment is a buffering candidate (ns).
BUFFER_WIRE_THRESHOLD_NS = 0.025

#: Paths examined per optimization round.
PATHS_PER_ROUND = 12

#: Slack margin (fraction of period) above which cells may downsize.
RECOVERY_MARGIN = 0.12


#: Fraction of the core area optimization may fill per tier.  Kept below
#: the legalizer's row-fill limit with margin for row-count quantization.
MAX_UTILIZATION = 0.93


class AreaBudget:
    """Per-tier area headroom enforced during optimization.

    Mirrors a PnR tool's max-utilization constraint: once a tier's core
    is (nearly) full, upsizing and buffering on that tier stop.  This is
    what leaves the 9-track configurations with large negative WNS at
    12-track frequencies instead of growing without bound.
    """

    def __init__(self, design: Design, max_fill: float = MAX_UTILIZATION) -> None:
        self._used: dict[int, float] = {}
        self._cap: dict[int, float] = {}
        if design.floorplan is None:
            # Pre-placement (synthesis) optimization is unconstrained.
            self._unbounded = True
            return
        self._unbounded = False
        for tier, lib in design.tier_libs.items():
            core = row_capacity_um2(design.floorplan, lib, tier)
            self._cap[tier] = core * max_fill
            self._used[tier] = design.netlist.cell_area_um2(
                lambda i, t=tier: i.tier == t and not i.cell.is_macro
            )

    def can_grow(self, tier: int, delta_um2: float) -> bool:
        """True when a tier can absorb ``delta_um2`` more cell area."""
        if self._unbounded or delta_um2 <= 0:
            return True
        return self._used.get(tier, 0.0) + delta_um2 <= self._cap.get(tier, 0.0)

    def apply(self, tier: int, delta_um2: float) -> None:
        """Record committed growth (or shrink, negative delta)."""
        if not self._unbounded:
            self._used[tier] = self._used.get(tier, 0.0) + delta_um2


@dataclass
class OptimizeStats:
    """What one optimization run did."""

    iterations: int = 0
    upsized: int = 0
    cloned: int = 0
    buffers_added: int = 0
    downsized: int = 0
    wns_before_ns: float = 0.0
    wns_after_ns: float = 0.0
    history: list[float] = field(default_factory=list)


def _try_upsize(
    design: Design,
    calc: DelayCalculator,
    inst_name: str,
    budget: AreaBudget,
) -> bool:
    """Upsize one instance within its tier library if it helps its arc delay."""
    inst = design.netlist.instances[inst_name]
    if inst.cell.is_macro or inst.fixed:
        return False
    lib = design.library_for_tier(inst.tier)
    if inst.cell.library_name != lib.name:
        lib = design.libraries_by_name()[inst.cell.library_name]
    bigger = lib.upsize(inst.cell)
    if bigger is None:
        return False
    if not budget.can_grow(inst.tier, bigger.area_um2 - inst.cell.area_um2):
        return False
    out_pin = inst.cell.output_pin
    load = calc.output_load_ff(inst, out_pin)
    old_arc = inst.cell.worst_arc_to_output()
    new_arc = bigger.worst_arc_to_output()
    old_d = old_arc.delay.lookup(0.05, load)
    new_d = new_arc.delay.lookup(0.05, load)
    # Upsizing raises input caps upstream; require a real win here.
    if new_d >= old_d - 1e-4:
        return False
    budget.apply(inst.tier, bigger.area_um2 - inst.cell.area_um2)
    design.netlist.rebind(inst_name, bigger)
    _invalidate_around(design, calc, inst_name)
    return True


def _invalidate_around(design: Design, calc: DelayCalculator, inst_name: str) -> None:
    inst = design.netlist.instances[inst_name]
    for _pin, net_name in inst.connected_pins():
        calc.invalidate(net_name)
    design.touch_placement(inst_name)


def _try_clone(
    design: Design,
    calc: DelayCalculator,
    inst_name: str,
    budget: AreaBudget,
) -> bool:
    """Duplicate a maxed-out driver and split its fanout (load cloning).

    When a violating cell is already at the strongest drive, synthesis
    tools duplicate the gate and divide its sinks -- halving the load each
    copy sees at the cost of a whole extra cell.  This transform is what
    lets a slow library keep converting area and power into speed at an
    aggressive target, producing the 9-track "over-correction" bloat of
    Section IV-B2.
    """
    netlist = design.netlist
    inst = netlist.instances[inst_name]
    if inst.cell.is_macro or inst.fixed:
        return False
    out_pin = inst.cell.output_pin
    out_net_name = inst.net_of(out_pin)
    if out_net_name is None:
        return False
    net = netlist.nets[out_net_name]
    if net.fanout < 2 or net.is_clock:
        return False
    if not budget.can_grow(inst.tier, inst.cell.area_um2):
        return False
    budget.apply(inst.tier, inst.cell.area_um2)

    clone_name = netlist.unique_name(f"{inst_name}_cl")
    clone = netlist.add_instance(clone_name, inst.cell, block=inst.block)
    clone.tier = inst.tier
    if inst.is_placed:
        clone.x_um, clone.y_um = inst.x_um, inst.y_um
    for pin in inst.cell.input_pins:
        src = inst.net_of(pin)
        if src is not None:
            netlist.connect(src, clone_name, pin)
    clock_pin = inst.cell.clock_pin
    if clock_pin is not None:
        src = inst.net_of(clock_pin)
        if src is not None:
            netlist.connect(src, clone_name, clock_pin)
    new_net = netlist.add_net(netlist.unique_name(f"{out_net_name}_cl"))
    netlist.connect(new_net.name, clone_name, out_pin)
    moved = net.sinks[len(net.sinks) // 2 :]
    for s, p in list(moved):
        netlist.disconnect(s, p)
        netlist.connect(new_net.name, s, p)
    calc.invalidate(out_net_name)
    calc.invalidate(new_net.name)
    # The clone's pins don't cover out_net, so touch both cells.
    design.touch_placement(inst_name)
    design.touch_placement(clone_name)
    return True


def _insert_buffer(
    design: Design,
    calc: DelayCalculator,
    driver_name: str,
    sink_name: str,
    budget: AreaBudget,
) -> bool:
    """Split the driver->sink connection with a buffer at the midpoint."""
    netlist = design.netlist
    driver = netlist.instances.get(driver_name)
    sink = netlist.instances.get(sink_name)
    if driver is None or sink is None:
        return False
    if not (driver.is_placed and sink.is_placed):
        return False
    out_net_name = driver.net_of(driver.cell.output_pin)
    if out_net_name is None:
        return False
    net = netlist.nets[out_net_name]
    sink_pins = [(s, p) for s, p in net.sinks if s == sink_name]
    if not sink_pins:
        return False

    lib = design.library_for_tier(driver.tier)
    if driver.cell.library_name in design.libraries_by_name():
        lib = design.libraries_by_name()[driver.cell.library_name]
    buf_cell = lib.get(CellFunction.BUF, 4)
    if not budget.can_grow(driver.tier, buf_cell.area_um2):
        return False
    budget.apply(driver.tier, buf_cell.area_um2)

    buf_name = netlist.unique_name("optbuf")
    buf = netlist.add_instance(buf_name, buf_cell, block=driver.block)
    buf.tier = driver.tier
    dx, dy = driver.center()
    sx, sy = sink.center()
    buf.x_um = (dx + sx) / 2.0
    buf.y_um = (dy + sy) / 2.0

    new_net = netlist.add_net(netlist.unique_name("optnet"))
    netlist.connect(out_net_name, buf_name, "A")
    netlist.connect(new_net.name, buf_name, "Y")
    for s, p in sink_pins:
        netlist.disconnect(s, p)
        netlist.connect(new_net.name, s, p)
    calc.invalidate(out_net_name)
    calc.invalidate(new_net.name)
    design.touch_placement(buf_name)
    return True


def optimize_timing(
    design: Design,
    calc: DelayCalculator,
    *,
    max_iterations: int = 12,
    target_wns_fraction: float = -0.02,
    max_fill: float = MAX_UTILIZATION,
) -> OptimizeStats:
    """Iteratively size and buffer until timing converges or stalls.

    ``target_wns_fraction`` is the WNS goal as a fraction of the period
    (slightly negative, mirroring the paper's "allowing for a small
    negative slack shows that the achieved frequency is the max
    possible").  ``max_fill`` bounds per-tier area growth; the hetero
    flow runs its pre-ECO optimization with a tighter bound so the
    repartitioning loop still has fast-die room to move cells into.
    """
    with span("optimize", max_iterations=max_iterations):
        stats = _optimize(design, calc, max_iterations, target_wns_fraction, max_fill)
        emit_metric("opt_upsized", stats.upsized)
        emit_metric("opt_buffers", stats.buffers_added)
    return stats


def _optimize(
    design: Design,
    calc: DelayCalculator,
    max_iterations: int,
    target_wns_fraction: float,
    max_fill: float,
) -> OptimizeStats:
    stats = OptimizeStats()
    period = design.target_period_ns
    latencies = design.clock_latencies()
    target = target_wns_fraction * period
    budget = AreaBudget(design, max_fill)

    session = TimingSession(design.netlist, calc, latencies)
    report = session.report(period, with_cell_slacks=True)
    stats.wns_before_ns = report.wns_ns
    stats.wns_after_ns = report.wns_ns

    for _ in range(max_iterations):
        stats.iterations += 1
        stats.history.append(report.wns_ns)
        if report.wns_ns >= target:
            break
        changed = 0

        # Cell-based coverage: every instance whose worst path violates is
        # an upsizing candidate, worst first.  This is what lets a slow
        # library "over-correct" -- at an unreachable frequency target the
        # whole violating cone inflates until the area budget is gone.
        violators = sorted(
            (
                (slack, name)
                for name, slack in report.cell_slack.items()
                if slack < target
            ),
        )
        # Worst-first, at most a quarter of the violators per round: the
        # STA rerun between rounds stops the optimizer from spending area
        # on paths an earlier upsize already fixed.
        round_cap = max(60, len(violators) // 4)
        for _slack, name in violators[:round_cap]:
            if _try_upsize(design, calc, name, budget):
                changed += 1
                stats.upsized += 1
            elif _try_clone(design, calc, name, budget):
                # already at max drive: duplicate and split the fanout
                changed += 1
                stats.cloned += 1

        # Wire-dominated segments on the worst paths get buffers.
        paths = session.top_paths(report, PATHS_PER_ROUND)
        for path in paths:
            prev_inst: str | None = None
            for step in path.steps:
                if (
                    step.wire_delay_ns > BUFFER_WIRE_THRESHOLD_NS
                    and prev_inst is not None
                ):
                    if _insert_buffer(
                        design, calc, prev_inst, step.instance, budget
                    ):
                        changed += 1
                        stats.buffers_added += 1
                prev_inst = step.instance

        if changed == 0:
            break
        report = session.report(period, with_cell_slacks=True)
        stats.wns_after_ns = report.wns_ns

    stats.wns_after_ns = report.wns_ns
    return stats


def recover_area(
    design: Design,
    calc: DelayCalculator,
    *,
    max_cells: int = 2000,
) -> int:
    """Downsize high-slack cells for power; returns the number downsized.

    Only cells whose worst path slack exceeds ``RECOVERY_MARGIN`` of the
    period are candidates, and each downsizing is checked against the
    local delay increase so recovery cannot create new violations.  Up to
    two passes run (slacks are re-analyzed between passes), because the
    first wave of downsizing uncovers more recoverable slack.
    """
    with span("area_recovery", max_cells=max_cells):
        downsized = _recover(design, calc, max_cells)
        emit_metric("opt_downsized", downsized)
    return downsized


def _recover(design: Design, calc: DelayCalculator, max_cells: int) -> int:
    period = design.target_period_ns
    latencies = design.clock_latencies()
    margin = RECOVERY_MARGIN * period
    libs = design.libraries_by_name()
    downsized = 0
    session = TimingSession(design.netlist, calc, latencies)
    for _pass in range(2):
        report = session.report(period, with_cell_slacks=True)
        candidates = sorted(
            (
                (slack, name)
                for name, slack in report.cell_slack.items()
                if slack > margin
            ),
            reverse=True,
        )
        pass_count = 0
        for slack, name in candidates:
            if downsized >= max_cells:
                break
            inst = design.netlist.instances[name]
            if inst.cell.is_macro or inst.fixed or inst.cell.is_sequential:
                continue
            lib = libs[inst.cell.library_name]
            smaller = lib.downsize(inst.cell)
            if smaller is None:
                continue
            load = calc.output_load_ff(inst, inst.cell.output_pin)
            old_d = inst.cell.worst_arc_to_output().delay.lookup(0.05, load)
            new_d = smaller.worst_arc_to_output().delay.lookup(0.05, load)
            if new_d - old_d < slack - margin:
                design.netlist.rebind(name, smaller)
                _invalidate_around(design, calc, name)
                downsized += 1
                pass_count += 1
        if pass_count == 0 or downsized >= max_cells:
            break
    return downsized
