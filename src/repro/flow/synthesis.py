"""Synthesis stand-in: netlist generation, initial sizing, max-frequency sweep.

The paper synthesizes each RTL in the target technology "for better PPA"
(Section IV-A2).  Our generators emit technology-bound netlists directly,
so this module covers the rest of what synthesis does:

- **initial sizing** with a wire-load model: drivers are sized so their
  output load stays under a per-drive budget, then a few timing-driven
  sizing rounds run against the fanout wire model (pre-placement);
- **max-frequency search**: the binary sweep the paper applies to the
  12-track 2-D implementation, accepting a period when WNS lands in the
  "slightly negative" band (|WNS| <= ~5-7% of the period).
"""

from __future__ import annotations

from typing import Callable

from repro.flow.design import Design
from repro.flow.opt import optimize_timing
from repro.liberty.library import StdCellLibrary
from repro.netlist.core import Netlist
from repro.timing.delaycalc import DelayCalculator, FanoutWireModel
from repro.timing.incremental import TimingSession

__all__ = ["initial_sizing", "fix_drv_violations", "find_max_frequency"]

#: Load budget per unit drive (fF): a x1 gate should not see more.
LOAD_BUDGET_PER_DRIVE_FF = 6.0

#: Slew-derived max-load rule: a driver may see at most this many fF times
#: the inverse of its library's x1 inverter resistance (kOhm).  Slower
#: libraries therefore get proportionally stricter limits -- the root of
#: the 9-track "over-correction" (Section IV-B2): meeting design rules in
#: a slow library at a fast target demands far more buffering.
DRV_LOAD_BUDGET = 140.0


def max_drv_load_ff(lib: StdCellLibrary) -> float:
    """Library max-capacitance design rule derived from its x1 inverter."""
    from repro.liberty.cells import CellFunction

    inv = lib.get(CellFunction.INV, 1)
    mid_slew = inv.worst_arc_to_output().delay.slew_axis[2]
    # effective drive resistance from the delay slope (kOhm)
    d_lo = inv.worst_arc_to_output().delay.lookup(mid_slew, 1.0)
    d_hi = inv.worst_arc_to_output().delay.lookup(mid_slew, 11.0)
    r_kohm = (d_hi - d_lo) / 10.0 * 1e3
    return DRV_LOAD_BUDGET / max(r_kohm, 1e-6)


def fix_drv_violations(design: Design, *, passes: int = 2) -> int:
    """Buffer nets whose load exceeds the library max-cap rule.

    Sinks of an over-loaded net are split behind BUF x4 repeaters until
    every driver sees a legal load.  Runs pre-placement (buffers are
    placed by the global placer along with everything else).  Returns the
    number of buffers added.
    """
    from repro.liberty.cells import CellFunction

    netlist = design.netlist
    libs = design.libraries_by_name()
    added = 0
    for _ in range(passes):
        pass_added = 0
        for net_name in list(netlist.nets):
            net = netlist.nets[net_name]
            if net.is_clock or net.driver is None:
                continue
            driver = netlist.instances[net.driver[0]]
            lib = libs[driver.cell.library_name]
            limit = max_drv_load_ff(lib)
            load = sum(
                netlist.instances[s].cell.input_capacitance_ff(p)
                for s, p in net.sinks
            )
            if load <= limit or len(net.sinks) < 2:
                continue
            groups = max(2, int(load / limit) + 1)
            buf_cell = lib.get(CellFunction.BUF, 4)
            sinks = list(net.sinks)
            chunk = (len(sinks) + groups - 1) // groups
            for g in range(groups):
                part = sinks[g * chunk : (g + 1) * chunk]
                if not part:
                    continue
                buf_name = netlist.unique_name("drvbuf")
                buf = netlist.add_instance(
                    buf_name, buf_cell, block=driver.block
                )
                buf.tier = driver.tier
                if driver.is_placed:
                    buf.x_um, buf.y_um = driver.x_um, driver.y_um
                new_net = netlist.add_net(netlist.unique_name("drvnet"))
                netlist.connect(net_name, buf_name, "A")
                netlist.connect(new_net.name, buf_name, "Y")
                for s, p in part:
                    netlist.disconnect(s, p)
                    netlist.connect(new_net.name, s, p)
                pass_added += 1
        added += pass_added
        if pass_added == 0:
            break
    return added


def initial_sizing(design: Design, *, timing_rounds: int = 6) -> int:
    """Size gates against the wire-load model; returns cells resized.

    Three synthesis-style passes: a load-driven sizing pass (every driver
    gets the smallest drive whose budget covers its load), a
    design-rule-violation buffering pass, then a few rounds of the shared
    timing optimizer running on fanout-model parasitics.
    """
    netlist = design.netlist
    lib = design.reference_library()
    calc = DelayCalculator(
        netlist, FanoutWireModel(lib), design.libraries_by_name()
    )
    resized = 0
    for inst in list(netlist.instances.values()):
        if inst.cell.is_macro or inst.fixed:
            continue
        load = calc.output_load_ff(inst, inst.cell.output_pin)
        inst_lib = design.libraries_by_name()[inst.cell.library_name]
        drives = inst_lib.drives_for(inst.cell.function)
        want = next(
            (d for d in drives if d * LOAD_BUDGET_PER_DRIVE_FF >= load),
            drives[-1],
        )
        if want != inst.cell.drive:
            netlist.rebind(inst.name, inst_lib.get(inst.cell.function, want))
            resized += 1
    fix_drv_violations(design)
    calc.invalidate()
    optimize_timing(design, calc, max_iterations=timing_rounds)
    return resized


def find_max_frequency(
    flow: Callable[[float], tuple[float, float]],
    *,
    lo_period_ns: float = 0.20,
    hi_period_ns: float = 3.0,
    wns_band: tuple[float, float] = (-0.07, -0.0),
    iterations: int = 7,
) -> float:
    """Binary-search the smallest period the flow can close.

    ``flow(period)`` must return ``(wns, period)`` for an implementation
    at that target.  A period *passes* when ``wns >= wns_band[0] * period``
    (the paper's 5-7% tolerance).  Returns the smallest passing period.
    """
    lo, hi = lo_period_ns, hi_period_ns
    best = hi
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        wns, _ = flow(mid)
        if wns >= wns_band[0] * mid:
            best = mid
            hi = mid
        else:
            lo = mid
        if hi - lo < 0.01:
            break
    return best


def quick_max_frequency(
    netlist: Netlist,
    design: Design,
    calc: DelayCalculator,
    *,
    wns_tolerance: float = 0.06,
    iterations: int = 8,
    lo_period_ns: float = 0.15,
    hi_period_ns: float = 4.0,
) -> float:
    """Cheap period search on a *fixed* implementation (STA only).

    Used to seed the full sweep: re-running only STA at each candidate
    period gives a lower bound on the closable period without repeating
    placement and optimization.

    Arrivals are period-independent, so the session propagates the graph
    once and each probe below re-derives endpoint slacks in O(endpoints).
    """
    latencies = design.clock_latencies()
    session = TimingSession(netlist, calc, latencies)
    lo, hi = lo_period_ns, hi_period_ns
    best = hi
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        report = session.report(mid, with_cell_slacks=False)
        if report.wns_ns >= -wns_tolerance * mid:
            best = mid
            hi = mid
        else:
            lo = mid
    return best
