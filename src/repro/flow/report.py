"""Flow finalization: collect every Table VI metric from a finished design.

``finalize_design`` runs the signoff pass -- placed STA with propagated
clock latencies, power with the CTS clock component, the routing report,
and the Table IV cost model -- and assembles a :class:`FlowResult` whose
fields mirror the rows of Table VI (plus the supporting analyses of
Table VIII).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.cost.model import CostModel, performance_per_cost, power_delay_product_pj
from repro.cts.tree import ClockReport
from repro.flow.design import Design
from repro.obs import emit_metric, span
from repro.power.activity import propagate_activities
from repro.power.analysis import PowerReport, analyze_power, net_switching_power_uw
from repro.route.report import RoutingReport, route_design
from repro.timing.incremental import TimingSession
from repro.timing.sta import CriticalPath, PathStep, TimingReport
from repro.units import um2_to_mm2

__all__ = ["MemoryNetStats", "FlowResult", "finalize_design"]


@dataclass(frozen=True)
class MemoryNetStats:
    """Table VIII 'Memory Interconnects': RMS latency and switching power."""

    input_net_latency_ps: float
    output_net_latency_ps: float
    net_switching_power_uw: float


@dataclass(frozen=True)
class FlowResult:
    """Everything the paper reports about one implementation."""

    design: str
    config: str
    frequency_ghz: float
    period_ns: float
    wns_ns: float
    tns_ns: float
    effective_delay_ns: float
    si_area_mm2: float
    footprint_mm2: float
    chip_width_um: float
    density: float
    wirelength_mm: float
    miv_count: int
    cut_nets: int
    total_power_mw: float
    power: PowerReport
    pdp_pj: float
    die_cost_1e6: float  # in units of 1e-6 C', as Table VI prints it
    cost_per_cm2: float
    ppc: float
    clock: ClockReport | None
    critical_path: CriticalPath | None
    memory_nets: MemoryNetStats | None
    peak_congestion: float

    def to_dict(self) -> dict:
        """JSON-safe deep-dict view, invertible via :meth:`from_dict`.

        This is the serialization the on-disk result cache
        (:mod:`repro.experiments.cache`) persists; every nested report is
        a plain dataclass, so :func:`dataclasses.asdict` does the heavy
        lifting and :meth:`from_dict` re-types the pieces.
        """
        d = asdict(self)
        if self.critical_path is not None:
            d["critical_path"]["endpoint"] = list(self.critical_path.endpoint)
            d["critical_path"]["steps"] = [
                asdict(s) for s in self.critical_path.steps
            ]
        if self.clock is not None:
            # JSON keys are strings; keep tier keys as ints on the way out.
            d["clock"]["buffer_count_by_tier"] = {
                str(k): v for k, v in self.clock.buffer_count_by_tier.items()
            }
        return d

    @staticmethod
    def from_dict(d: dict) -> "FlowResult":
        """Rebuild a :class:`FlowResult` from :meth:`to_dict` output."""
        d = dict(d)
        d["power"] = PowerReport(**d["power"])
        if d.get("clock") is not None:
            clock = dict(d["clock"])
            clock["buffer_count_by_tier"] = {
                int(k): v for k, v in clock["buffer_count_by_tier"].items()
            }
            d["clock"] = ClockReport(**clock)
        if d.get("critical_path") is not None:
            cp = dict(d["critical_path"])
            cp["endpoint"] = tuple(cp["endpoint"])
            cp["steps"] = tuple(PathStep(**s) for s in cp["steps"])
            d["critical_path"] = CriticalPath(**cp)
        if d.get("memory_nets") is not None:
            d["memory_nets"] = MemoryNetStats(**d["memory_nets"])
        return FlowResult(**d)

    def row(self) -> dict[str, float]:
        """Flat dict view (one Table VI column)."""
        return {
            "frequency_ghz": self.frequency_ghz,
            "si_area_mm2": self.si_area_mm2,
            "chip_width_um": self.chip_width_um,
            "density_pct": self.density * 100.0,
            "wl_mm": self.wirelength_mm,
            "mivs": float(self.miv_count),
            "total_power_mw": self.total_power_mw,
            "wns_ns": self.wns_ns,
            "tns_ns": self.tns_ns,
            "effective_delay_ns": self.effective_delay_ns,
            "pdp_pj": self.pdp_pj,
            "die_cost_1e6": self.die_cost_1e6,
            "cost_per_cm2": self.cost_per_cm2,
            "ppc": self.ppc,
        }


def delta_pct(hetero: float, config: float) -> float:
    """The Table VII delta: ``(3-D hetero - config) / config * 100``."""
    if config == 0:
        return 0.0
    return (hetero - config) / config * 100.0


def _memory_net_stats(
    design: Design,
    calc,
    activities: dict[str, float],
) -> MemoryNetStats | None:
    macros = design.netlist.memory_macros()
    if not macros:
        return None
    in_delays: list[float] = []
    out_delays: list[float] = []
    power_uw = 0.0
    netlist = design.netlist
    seen: set[str] = set()
    for macro in macros:
        for pin, net_name in macro.connected_pins():
            net = netlist.nets[net_name]
            if net.is_clock or net_name in seen:
                continue
            seen.add(net_name)
            para = calc.net_parasitics(net)
            if macro.cell.pins[pin].direction == "output":
                out_delays.extend(para.sink_delay_ns.values())
            else:
                delay = para.sink_delay_ns.get((macro.name, pin))
                if delay is not None:
                    in_delays.append(delay)
            power_uw += net_switching_power_uw(
                netlist, calc, net_name, design.frequency_ghz, activities
            )

    def rms_ps(values: list[float]) -> float:
        if not values:
            return 0.0
        return (sum(v * v for v in values) / len(values)) ** 0.5 * 1000.0

    return MemoryNetStats(
        input_net_latency_ps=rms_ps(in_delays),
        output_net_latency_ps=rms_ps(out_delays),
        net_switching_power_uw=power_uw,
    )


def finalize_design(
    design: Design,
    *,
    cost_model: CostModel | None = None,
    timing: TimingReport | None = None,
) -> FlowResult:
    """Signoff a finished design and assemble its :class:`FlowResult`."""
    if design.floorplan is None:
        raise ValueError("design must be floorplanned before finalization")
    with span("signoff", design=design.name, config=design.config):
        result = _finalize(design, cost_model, timing)
        emit_metric("wns_ns", result.wns_ns)
        emit_metric("tns_ns", result.tns_ns)
        emit_metric("total_power_mw", result.total_power_mw)
        emit_metric("density_pct", result.density * 100.0)
        emit_metric("die_cost_1e6", result.die_cost_1e6)
    return result


def _finalize(
    design: Design,
    cost_model: CostModel | None,
    timing: TimingReport | None,
) -> FlowResult:
    cost_model = cost_model or CostModel()
    calc = design.calculator(placed=True)
    if timing is None:
        session = TimingSession(design.netlist, calc, design.clock_latencies())
        timing = session.report(
            design.target_period_ns, with_cell_slacks=False
        )

    activities = propagate_activities(design.netlist)
    clock_mw = design.clock_report.power_mw if design.clock_report else 0.0
    power = analyze_power(
        design.netlist,
        calc,
        design.frequency_ghz,
        design.libraries_by_name(),
        clock_power_mw=clock_mw,
        activities=activities,
    )
    routing: RoutingReport = route_design(
        design.netlist,
        calc,
        design.reference_library(),
        design.floorplan.width_um,
        design.floorplan.height_um,
        design.tiers,
        congestion=design.place_session().congestion(),
    )
    footprint_mm2 = um2_to_mm2(design.floorplan.area_um2)
    cost = cost_model.die_cost(footprint_mm2, design.tiers)

    effective = timing.effective_delay_ns
    pdp = power_delay_product_pj(power.total_mw, effective)
    ppc = performance_per_cost(
        design.frequency_ghz, power.total_mw, cost.die_cost * 1e6
    )
    return FlowResult(
        design=design.name,
        config=design.config,
        frequency_ghz=design.frequency_ghz,
        period_ns=design.target_period_ns,
        wns_ns=timing.wns_ns,
        tns_ns=timing.tns_ns,
        effective_delay_ns=effective,
        si_area_mm2=um2_to_mm2(design.floorplan.silicon_area_um2),
        footprint_mm2=footprint_mm2,
        chip_width_um=design.floorplan.width_um,
        density=design.floorplan.density(design.netlist),
        wirelength_mm=routing.routed_wl_mm,
        miv_count=routing.miv_count if design.is_3d else 0,
        cut_nets=routing.cut_nets if design.is_3d else 0,
        total_power_mw=power.total_mw,
        power=power,
        pdp_pj=pdp,
        die_cost_1e6=cost.die_cost * 1e6,
        cost_per_cm2=cost.cost_per_cm2,
        ppc=ppc,
        clock=design.clock_report,
        critical_path=timing.critical_path,
        memory_nets=_memory_net_stats(design, calc, activities),
        peak_congestion=routing.peak_congestion,
    )
