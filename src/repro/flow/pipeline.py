"""The staged flow driver: contracts, checkpoints, and stage resume.

Every ``run_flow_*`` entry point builds an ordered list of
:class:`Stage` objects (name, body, postcondition check set) and hands
it to :func:`execute_flow`, which runs, per stage:

1. the stage body (mutating ``ctx.design`` exactly as the monolithic
   flows used to),
2. the ``corrupt_design`` fault hook (CI corrupts here to prove the
   next step catches it),
3. the stage's postcondition contract checks
   (:func:`repro.integrity.contracts.enforce`, policy from ``--check``/
   ``$REPRO_CHECK``),
4. the checksummed checkpoint write (``--checkpoint-dir``) -- after the
   checks, so checkpoints only ever hold validated state.

``--from-stage`` resumes: the driver loads the newest valid checkpoint
*before* the named stage (falling back past corrupt files) and skips
the stages already covered.  Stage boundaries are aligned with the
points where the monolithic flows fully invalidated their delay
calculator, so a resumed flow is byte-identical to an uninterrupted
one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import FlowError
from repro.flow.design import Design
from repro.flow.report import FlowResult
from repro.integrity.checkpoint import latest_valid_checkpoint, write_checkpoint
from repro.integrity.contracts import CheckMode, current_mode, enforce
from repro.log import get_logger

__all__ = ["FlowContext", "Stage", "execute_flow"]

_log = get_logger("pipeline")


@dataclass
class FlowContext:
    """Mutable state threaded through the stages of one flow run."""

    design: Design | None = None
    result: FlowResult | None = None
    notes: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Stage:
    """One named flow stage and its postcondition check set."""

    name: str
    fn: Callable[[FlowContext], None]
    checks: tuple[str, ...] = ()


def _maybe_corrupt(ctx: FlowContext, stage: str) -> None:
    from repro.experiments.faults import maybe_corrupt_design

    if ctx.design is not None:
        maybe_corrupt_design(ctx.design, site=stage, stage=stage)


def execute_flow(
    stages: list[Stage],
    ctx: FlowContext | None = None,
    *,
    check: str | CheckMode | None = None,
    checkpoint_dir: str | None = None,
    from_stage: str | None = None,
    until_stage: str | None = None,
    tier_libs: dict | None = None,
) -> FlowContext:
    """Run a staged flow under the integrity contract policy.

    ``check`` overrides ``$REPRO_CHECK`` for this run; ``from_stage``
    requires ``checkpoint_dir`` and resumes from the newest valid
    checkpoint before that stage (cold-starting when none is usable).
    ``until_stage`` stops the flow after the named stage completes (its
    contract checks and checkpoint included), leaving the context ready
    for a later ``from_stage`` resume.  ``tier_libs`` supplies the
    flow's live library objects so a resumed design binds the exact
    cells a cold run would.
    """
    ctx = ctx or FlowContext()
    names = [s.name for s in stages]
    if len(set(names)) != len(names):
        raise FlowError(f"duplicate stage names in flow: {names}")
    if until_stage is not None and until_stage not in names:
        raise FlowError(
            f"unknown stage {until_stage!r} for this flow "
            f"(stages: {', '.join(names)})"
        )
    mode = current_mode(check)

    start = 0
    if from_stage is not None:
        if from_stage not in names:
            raise FlowError(
                f"unknown stage {from_stage!r} for this flow "
                f"(stages: {', '.join(names)})"
            )
        target = names.index(from_stage)
        if target > 0:
            if checkpoint_dir is None:
                raise FlowError(
                    "--from-stage requires --checkpoint-dir to load state from"
                )
            loaded = latest_valid_checkpoint(
                checkpoint_dir, names, target, tier_libs
            )
            if loaded is None:
                _log.warning(
                    "no valid checkpoint before stage %r in %s; "
                    "cold-starting the flow", from_stage, checkpoint_dir,
                )
            else:
                start, ctx.design = loaded[0] + 1, loaded[1]
                if start < target:
                    _log.warning(
                        "checkpoint for stage %r unusable; resuming from "
                        "%r instead", names[target - 1], names[start - 1],
                    )

    # Imported lazily (like the fault hook) to keep flow -> experiments
    # a runtime-only edge.
    from repro.experiments.telemetry import get_telemetry

    for index in range(start, len(stages)):
        stage = stages[index]
        stage.fn(ctx)
        get_telemetry().flow_stages_run += 1
        _maybe_corrupt(ctx, stage.name)
        if ctx.design is not None:
            enforce(ctx.design, stage=stage.name, checks=stage.checks,
                    mode=mode)
            if checkpoint_dir is not None:
                write_checkpoint(checkpoint_dir, index, stage.name, ctx.design)
        if stage.name == until_stage:
            break
    return ctx
