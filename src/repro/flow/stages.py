"""Shared flow stages: congestion-driven floorplan/placement and legalization.

Every configuration sizes its floorplan by target utilization and then
checks routability; wire-dominated designs (LDPC) fail the congestion
check and retry at a lower utilization, which is precisely how the paper
ends up with 64% density for LDPC against ~82-88% for the others
("the routing is extremely congested ... so a tighter integration would
lead to a worse PPA for LDPC").
"""

from __future__ import annotations

from repro.errors import PlacementError
from repro.flow.design import Design
from repro.log import get_logger
from repro.obs import emit_metric, span
from repro.obs.metrics import hpwl_um
from repro.place.floorplan import build_floorplan
from repro.place.legalizer import LegalizeStats
from repro.place.quadratic import global_place
from repro.route.congestion import analyze_congestion

__all__ = ["place_with_congestion_control", "legalize_all_tiers"]

#: Peak bin utilization above which the floorplan is declared unroutable.
CONGESTION_LIMIT = 1.00

#: Utilization shrink factor per congestion retry.
UTILIZATION_BACKOFF = 0.82

#: Maximum congestion-driven retries.
MAX_RETRIES = 3

_log = get_logger("stages")


def place_with_congestion_control(
    design: Design,
    *,
    demand_scale: float = 1.0,
    area_scale: float = 1.0,
) -> float:
    """Floorplan and globally place, lowering utilization until routable.

    Returns the utilization finally used (stored on the floorplan too).
    ``demand_scale``/``area_scale`` implement the pseudo-3-D shrink: the
    Pin-3D flows pass 0.5 so both tiers share one half-size footprint.
    """
    utilization = design.utilization_target
    lib = design.reference_library()
    last_peak = float("inf")
    with span("placement", design=design.name) as sp:
        for attempt in range(MAX_RETRIES + 1):
            with span("floorplan", attempt=attempt):
                fp = build_floorplan(
                    design.netlist,
                    design.tier_libs,
                    utilization,
                    demand_scale=demand_scale,
                )
            with span("global_place", attempt=attempt):
                global_place(design.netlist, fp, area_scale=area_scale)
            congestion = analyze_congestion(
                design.netlist,
                lib,
                fp.width_um,
                fp.height_um,
                design.tiers,
            )
            last_peak = congestion.peak_demand
            design.floorplan = fp
            if last_peak <= CONGESTION_LIMIT or attempt == MAX_RETRIES:
                break
            sp.add_event(
                "congestion_retry",
                attempt=attempt,
                peak=round(last_peak, 4),
                utilization=round(utilization, 4),
            )
            utilization *= UTILIZATION_BACKOFF
        if last_peak > CONGESTION_LIMIT:
            # Out of retries but still congested: the flow ships this
            # floorplan anyway (the paper's LDPC scenario), so leave a
            # loud record instead of returning silently.
            _log.warning(
                "%s: still congested after %d retries "
                "(peak %.3f > %.2f at utilization %.3f); "
                "shipping the congested floorplan",
                design.name, MAX_RETRIES, last_peak, CONGESTION_LIMIT,
                utilization,
            )
            sp.add_event(
                "congestion_retries_exhausted",
                retries=MAX_RETRIES,
                peak=round(last_peak, 4),
                utilization=round(utilization, 4),
            )
        emit_metric("utilization", utilization)
        emit_metric("peak_congestion", last_peak)
        emit_metric("hpwl_mm", hpwl_um(design.netlist) / 1000.0)
    design.notes["peak_congestion_at_floorplan"] = last_peak
    design.notes["utilization_used"] = utilization
    return utilization


def legalize_all_tiers(design: Design) -> dict[int, LegalizeStats]:
    """Legalize every tier against its own library's rows.

    Routed through the design's :class:`PlacementSession`, so calls after
    small edit batches re-pack only the disturbed rows (byte-identical to
    a full pass -- ``REPRO_PLACE=full`` forces the old behavior).
    """
    if design.floorplan is None:
        raise PlacementError("floorplan missing; place before legalizing")
    with span("legalization", design=design.name):
        stats = design.place_session().legalize_all()
        for tier in design.tier_libs:
            emit_metric("tier_cells", stats[tier].cells, tier=tier)
            emit_metric(
                "tier_area_um2",
                design.netlist.tier_area_um2(tier),
                tier=tier,
            )
            emit_metric(
                "legal_displacement_um",
                stats[tier].total_displacement_um,
                tier=tier,
            )
    return stats
