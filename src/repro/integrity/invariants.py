"""Design invariants checked at flow-stage boundaries.

Each checker walks one aspect of a :class:`~repro.flow.design.Design`
and returns *every* violation it finds as a typed
:class:`InvariantViolation` record (unlike ``Netlist.validate``, which
raises on the first problem -- these feed the warn/repair/strict policy
of :mod:`repro.integrity.contracts`, so completeness matters).

The four families mirror what the flow can actually break:

``connectivity``
    The netlist hypergraph: dangling nets, undriven nets, floating input
    pins, stale or mismatched driver/sink cross-references (a net bound
    by two output pins surfaces as a driver mismatch on one of them).
``placement``
    Physical legality: unplaced cells, cells outside the floorplan,
    cells off their tier's row grid, pairwise overlaps (including
    standard cells sitting on a macro of the same tier).
``tiers``
    3-D consistency: every instance on a tier that exists, every
    standard cell bound to its tier's library, level shifters present on
    every cross-voltage crossing that needs one (Section III-B), and the
    pinned critical-cell area within the paper's 20-30% cap (III-A1).
``tier_balance``
    The FM area balance between the two dies, checked right after
    partitioning against the tolerance the partitioner ran with.
``timing``
    Sanity of the timing graph: no combinational loops, and STA
    completes with finite worst/total slack.

``check_result`` validates a finished :class:`FlowResult` (the ``repro
check`` command accepts saved results as well as checkpoints).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.flow.design import Design
from repro.liberty.cells import CellFunction

__all__ = [
    "CHECKS",
    "InvariantViolation",
    "check_connectivity",
    "check_design",
    "check_placement",
    "check_result",
    "check_tier_balance",
    "check_tiers",
    "check_timing",
]

#: Position tolerance (um) for overlap / out-of-floorplan tests.
GEOM_EPS_UM = 1e-6

#: Row-alignment tolerance as a fraction of the row pitch.
ROW_ALIGN_TOL = 1e-4

#: Slack the pinned-area check allows over the configured cap.
PIN_CAP_SLACK = 0.02

#: Slack the tier-balance check allows over the FM tolerance.  The FM
#: tolerance bounds each *bin*; the global split is steered toward
#: balance but individual bins may lean, so the whole-die check gets
#: extra headroom.
BALANCE_SLACK = 0.08

#: Default FM balance tolerance when the flow did not record one
#: (matches ``bin_fm_partition``'s default).
DEFAULT_BALANCE_TOL = 0.12


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant: which check, what rule, on which object."""

    check: str  # "connectivity" | "placement" | "tiers" | ...
    code: str  # machine-readable rule id, e.g. "dangling-net"
    subject: str  # net / instance / metric the rule tripped on
    message: str  # human-readable detail
    repairable: bool = False  # a registered repair hook can fix it

    def __str__(self) -> str:
        return f"[{self.check}/{self.code}] {self.subject}: {self.message}"


# ----------------------------------------------------------------------
# connectivity
# ----------------------------------------------------------------------
def check_connectivity(design: Design) -> list[InvariantViolation]:
    """Netlist hypergraph consistency (the non-throwing ``validate``)."""
    netlist = design.netlist
    out: list[InvariantViolation] = []

    def bad(code: str, subject: str, message: str, *, repairable: bool = False):
        out.append(
            InvariantViolation("connectivity", code, subject, message,
                               repairable=repairable)
        )

    for inst in netlist.instances.values():
        for pin, net_name in inst.connected_pins():
            net = netlist.nets.get(net_name)
            if net is None:
                bad("missing-net", f"{inst.name}.{pin}",
                    f"bound to nonexistent net {net_name!r}")
                continue
            ref = (inst.name, pin)
            if inst.cell.pins[pin].direction == "output":
                if net.driver != ref:
                    bad("driver-mismatch", net_name,
                        f"output {inst.name}.{pin} bound but net driver is "
                        f"{net.driver!r} (multiple or misrecorded drivers)")
            elif ref not in net.sinks:
                bad("sink-missing", net_name,
                    f"input {inst.name}.{pin} bound but absent from sink list")
        for pin, spec in inst.cell.pins.items():
            if spec.direction != "output" and inst.net_of(pin) is None:
                bad("floating-input", f"{inst.name}.{pin}",
                    "input pin is unconnected")

    for net in netlist.nets.values():
        if net.driver is None and net.name not in netlist.ports:
            if net.sinks:
                bad("undriven-net", net.name,
                    f"{len(net.sinks)} sinks but no driver")
            else:
                bad("dangling-net", net.name,
                    "no driver and no sinks", repairable=True)
        if net.driver is not None:
            inst_name, pin = net.driver
            inst = netlist.instances.get(inst_name)
            if inst is None or inst.net_of(pin) != net.name:
                bad("stale-driver", net.name,
                    f"driver {inst_name}.{pin} does not point back")
        for inst_name, pin in net.sinks:
            inst = netlist.instances.get(inst_name)
            if inst is None or inst.net_of(pin) != net.name:
                bad("stale-sink", net.name,
                    f"sink {inst_name}.{pin} does not point back")
    return out


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------
def check_placement(design: Design) -> list[InvariantViolation]:
    """Physical legality of the current placement."""
    out: list[InvariantViolation] = []

    def bad(code: str, subject: str, message: str, *, repairable: bool = False):
        out.append(
            InvariantViolation("placement", code, subject, message,
                               repairable=repairable)
        )

    fp = design.floorplan
    if fp is None:
        bad("no-floorplan", design.name, "design has no floorplan")
        return out

    netlist = design.netlist
    # Per (tier, row) buckets of movable standard cells, for the O(n log n)
    # sweep: legal cells share exact row y-coordinates.
    rows: dict[tuple[int, float], list] = {}
    macro_rects: dict[int, list[tuple[str, float, float, float, float]]] = {}
    for m in fp.macros:
        macro_rects.setdefault(m.tier, []).append(
            (m.name, m.x_um, m.y_um, m.width_um, m.height_um)
        )

    for inst in netlist.instances.values():
        if not inst.is_placed:
            bad("unplaced", inst.name, "no placement location")
            continue
        w, h = inst.cell.width_um, inst.cell.height_um
        if (inst.x_um < -GEOM_EPS_UM or inst.y_um < -GEOM_EPS_UM
                or inst.x_um + w > fp.width_um + GEOM_EPS_UM
                or inst.y_um + h > fp.height_um + GEOM_EPS_UM):
            bad("out-of-floorplan", inst.name,
                f"at ({inst.x_um:.2f}, {inst.y_um:.2f}) size "
                f"({w:.2f} x {h:.2f}) outside "
                f"{fp.width_um:.2f} x {fp.height_um:.2f} die",
                repairable=not inst.fixed)
        if inst.fixed or inst.cell.is_macro:
            continue
        lib = design.tier_libs.get(inst.tier)
        if lib is None:
            continue  # the tiers check reports unknown tiers
        pitch = lib.cell_height_um
        r = inst.y_um / pitch
        if abs(r - round(r)) > ROW_ALIGN_TOL:
            bad("row-misaligned", inst.name,
                f"y={inst.y_um:.4f} not on the {pitch:.2f}um row grid "
                f"of tier {inst.tier}", repairable=True)
            continue  # off-grid cells are excluded from the row sweep
        rows.setdefault((inst.tier, round(r)), []).append(inst)
        for name, mx, my, mw, mh in macro_rects.get(inst.tier, ()):
            if (inst.x_um + w > mx + GEOM_EPS_UM
                    and mx + mw > inst.x_um + GEOM_EPS_UM
                    and inst.y_um + h > my + GEOM_EPS_UM
                    and my + mh > inst.y_um + GEOM_EPS_UM):
                bad("overlap", inst.name,
                    f"overlaps macro {name} on tier {inst.tier}",
                    repairable=True)

    for (tier, _row), cells in rows.items():
        cells.sort(key=lambda i: (i.x_um, i.name))
        for a, b in zip(cells, cells[1:]):
            if a.x_um + a.cell.width_um > b.x_um + GEOM_EPS_UM:
                bad("overlap", b.name,
                    f"overlaps {a.name} in row y={a.y_um:.2f} "
                    f"of tier {tier}", repairable=True)
    return out


# ----------------------------------------------------------------------
# tiers
# ----------------------------------------------------------------------
def check_tiers(design: Design) -> list[InvariantViolation]:
    """3-D consistency: tier existence, library binding, level shifters,
    and the Section III-A1 pinned critical-area cap."""
    out: list[InvariantViolation] = []

    def bad(code: str, subject: str, message: str, *, repairable: bool = False):
        out.append(
            InvariantViolation("tiers", code, subject, message,
                               repairable=repairable)
        )

    netlist = design.netlist
    for inst in netlist.instances.values():
        lib = design.tier_libs.get(inst.tier)
        if lib is None:
            bad("bad-tier", inst.name,
                f"on tier {inst.tier} but design has tiers "
                f"{sorted(design.tier_libs)}")
            continue
        if not inst.cell.is_macro and inst.cell.library_name != lib.name:
            bad("wrong-library", inst.name,
                f"bound to {inst.cell.library_name} on tier {inst.tier} "
                f"({lib.name})")

    # Level shifters: every low-to-high cross-voltage crossing must be
    # shifted.  Spurious shifters are deliberately not flagged -- ECO
    # moves can render a shifter redundant without making it illegal.
    # The rule only binds once insertion has run (the ``level_shifters``
    # note): earlier boundaries legitimately carry unshifted crossings.
    vdds = {lib.vdd_v for lib in design.tier_libs.values()}
    if (design.is_3d and len(vdds) > 1
            and "level_shifters" in design.notes):
        from repro.flow.levelshift import boundary_violations

        for net_name in boundary_violations(design):
            bad("missing-level-shifter", net_name,
                "low-rail driver reaches a high-rail sink unshifted",
                repairable=True)

    frac = design.notes.get("pinned_area_fraction")
    cap = design.notes.get("pinned_area_cap")
    if isinstance(frac, float) and isinstance(cap, float):
        if frac > cap + PIN_CAP_SLACK:
            bad("pinned-area-over-cap", "pinned_area_fraction",
                f"pinned {frac:.3f} of std-cell area exceeds the "
                f"{cap:.2f} cap (Section III-A1)")
    return out


def check_tier_balance(design: Design) -> list[InvariantViolation]:
    """FM area balance between the dies (meaningful right after
    partitioning; macro area excluded -- macro tiers are a free choice)."""
    if not design.is_3d:
        return []
    areas = [
        design.netlist.cell_area_um2(
            lambda i, t=tier: i.tier == t and not i.cell.is_macro
        )
        for tier in sorted(design.tier_libs)
    ]
    total = sum(areas)
    if total <= 0.0:
        return []
    imbalance = abs(areas[0] - areas[-1]) / total
    tol = design.notes.get("fm_balance_tolerance", DEFAULT_BALANCE_TOL)
    limit = float(tol) + BALANCE_SLACK
    if imbalance > limit:
        return [
            InvariantViolation(
                "tier_balance", "area-imbalance", "tier_area_um2",
                f"std-cell area split {areas[0]:.0f} / {areas[-1]:.0f} um2 "
                f"is {imbalance:.3f} imbalanced (limit {limit:.3f})",
            )
        ]
    return []


# ----------------------------------------------------------------------
# timing
# ----------------------------------------------------------------------
def check_timing(design: Design) -> list[InvariantViolation]:
    """Timing-graph sanity: acyclic combinational core, finite STA."""
    from repro.errors import ReproError
    from repro.timing.incremental import TimingSession

    out: list[InvariantViolation] = []
    try:
        design.netlist.topological_order()
    except ReproError as exc:
        out.append(
            InvariantViolation("timing", "comb-loop", design.name, str(exc))
        )
        return out  # STA would loop forever on a cyclic graph

    placed = all(i.is_placed for i in design.netlist.instances.values())
    try:
        session = TimingSession(
            design.netlist,
            design.calculator(placed=placed and design.floorplan is not None),
            design.clock_latencies(),
        )
        report = session.report(
            design.target_period_ns, with_cell_slacks=False
        )
    except ReproError as exc:
        out.append(
            InvariantViolation("timing", "sta-failed", design.name, str(exc))
        )
        return out
    for label, value in (("wns_ns", report.wns_ns), ("tns_ns", report.tns_ns)):
        if not math.isfinite(value):
            out.append(
                InvariantViolation("timing", "non-finite-slack", label,
                                   f"{label} = {value}")
            )
    return out


#: Checker registry, in the order boundaries run them.
CHECKS = {
    "connectivity": check_connectivity,
    "placement": check_placement,
    "tiers": check_tiers,
    "tier_balance": check_tier_balance,
    "timing": check_timing,
}


def check_design(
    design: Design, checks: tuple[str, ...] | None = None
) -> list[InvariantViolation]:
    """Run the named checks (default: all) and concatenate violations."""
    names = tuple(CHECKS) if checks is None else checks
    out: list[InvariantViolation] = []
    for name in names:
        try:
            checker = CHECKS[name]
        except KeyError:
            raise ValueError(
                f"unknown integrity check {name!r} "
                f"(expected one of {', '.join(CHECKS)})"
            ) from None
        out.extend(checker(design))
    return out


# ----------------------------------------------------------------------
# finished results
# ----------------------------------------------------------------------
def check_result(result) -> list[InvariantViolation]:
    """Validate a finished :class:`~repro.flow.report.FlowResult`.

    Accepts the dataclass or its ``to_dict`` form.  Checks that every
    scalar the paper tables consume is finite, that areas/costs are
    positive, and that the density is physically plausible.
    """
    from repro.flow.report import FlowResult

    if isinstance(result, dict):
        result = FlowResult.from_dict(result)

    out: list[InvariantViolation] = []

    def bad(code: str, subject: str, message: str):
        out.append(InvariantViolation("result", code, subject, message))

    for name, value in result.row().items():
        if not math.isfinite(value):
            bad("non-finite", name, f"{name} = {value}")
    for name, value in (
        ("si_area_mm2", result.si_area_mm2),
        ("footprint_mm2", result.footprint_mm2),
        ("period_ns", result.period_ns),
        ("die_cost_1e6", result.die_cost_1e6),
        ("total_power_mw", result.total_power_mw),
    ):
        if not (math.isfinite(value) and value > 0.0):
            bad("non-positive", name, f"{name} = {value}")
    if not 0.0 < result.density <= 1.0:
        bad("density-out-of-range", "density", f"density = {result.density}")
    if result.frequency_ghz > 0 and result.period_ns > 0:
        if abs(result.frequency_ghz * result.period_ns - 1.0) > 1e-6:
            bad("inconsistent", "frequency_ghz",
                f"frequency {result.frequency_ghz} does not invert "
                f"period {result.period_ns}")
    if result.miv_count < 0 or result.cut_nets < 0:
        bad("negative-count", "miv_count", "negative 3-D via statistics")
    return out
