"""Checksummed mid-flow checkpoints of the :class:`Design` state.

After each stage boundary passes its contract checks, the pipeline can
serialize the whole mutable flow state -- netlist, tier/library
bindings, floorplan, clock report, notes -- to
``<checkpoint-dir>/NN_stage.json``.  ``--from-stage`` later resumes the
flow from the checkpoint *preceding* the named stage; a corrupt or
truncated file is detected by its SHA-256 payload checksum and resume
falls back to the last valid earlier stage (re-running the stages in
between), so a killed run never has to start from scratch because its
newest checkpoint was half-written.

Byte-identical resume is a hard guarantee the serialization is built
around: floats survive the JSON round-trip exactly (``repr`` encoding),
and dict/list orders that downstream stages iterate -- net insertion
order, per-net sink order, per-instance pin-binding order -- are
reconstructed verbatim rather than replayed through ``connect()``.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.cts.tree import ClockReport
from repro.errors import CheckpointError
from repro.flow.design import Design
from repro.liberty.library import StdCellLibrary
from repro.log import get_logger
from repro.netlist.core import Instance, Net, Netlist, PortDirection
from repro.place.floorplan import Floorplan, MacroSlot

__all__ = [
    "CHECKPOINT_FORMAT",
    "checkpoint_path",
    "design_from_dict",
    "design_to_dict",
    "latest_valid_checkpoint",
    "library_from_spec",
    "load_checkpoint",
    "rebind_checkpoint_tier_library",
    "write_checkpoint",
]

CHECKPOINT_FORMAT = 1

_log = get_logger("checkpoint")


# ----------------------------------------------------------------------
# Design <-> dict
# ----------------------------------------------------------------------
def _library_spec(lib: StdCellLibrary) -> dict:
    return {"name": lib.name, "tracks": lib.tracks, "vdd_v": lib.vdd_v}


def library_from_spec(spec: dict) -> StdCellLibrary:
    """Rebuild a preset library from its stored identity.

    Checkpoints do not embed timing tables; libraries are reconstructed
    from :mod:`repro.liberty.presets` and verified by name.
    """
    from repro.liberty.presets import (
        make_nine_track_library,
        make_track_variant,
        make_twelve_track_library,
    )

    name = str(spec.get("name", ""))
    if name == "28nm_12T":
        return make_twelve_track_library()
    if name == "28nm_9T":
        return make_nine_track_library()
    try:
        tracks = int(spec["tracks"])
        vdd_v = float(spec["vdd_v"])
    except (KeyError, TypeError, ValueError):
        raise CheckpointError(f"malformed library spec {spec!r}") from None
    lib = make_track_variant(tracks)
    if lib.name != name or abs(lib.vdd_v - vdd_v) > 1e-9:
        lib = make_track_variant(tracks, vdd_v=vdd_v)
    if lib.name != name:
        raise CheckpointError(
            f"cannot reconstruct library {name!r} from tracks={tracks}, "
            f"vdd={vdd_v} (got {lib.name!r})"
        )
    return lib


def design_to_dict(design: Design) -> dict:
    """JSON-safe deep-dict view of the full mutable flow state."""
    netlist = design.netlist
    payload: dict = {
        "name": design.name,
        "config": design.config,
        "target_period_ns": design.target_period_ns,
        "utilization_target": design.utilization_target,
        "tier_libs": {
            str(tier): _library_spec(lib)
            for tier, lib in design.tier_libs.items()
        },
        "netlist": {
            "name": netlist.name,
            "ports": {n: d.value for n, d in netlist.ports.items()},
            "clock_port": netlist.clock_port,
            "instances": [
                {
                    "name": inst.name,
                    "cell": inst.cell.name,
                    "lib": inst.cell.library_name,
                    "tier": inst.tier,
                    "x_um": inst.x_um,
                    "y_um": inst.y_um,
                    "block": inst.block,
                    "fixed": inst.fixed,
                    "pins": dict(inst._pin_nets),
                }
                for inst in netlist.instances.values()
            ],
            "nets": [
                {
                    "name": net.name,
                    "driver": list(net.driver) if net.driver else None,
                    "sinks": [list(s) for s in net.sinks],
                    "is_clock": net.is_clock,
                }
                for net in netlist.nets.values()
            ],
        },
        "floorplan": None,
        "clock_report": None,
        "notes": dict(design.notes),
    }
    fp = design.floorplan
    if fp is not None:
        payload["floorplan"] = {
            "width_um": fp.width_um,
            "height_um": fp.height_um,
            "tiers": fp.tiers,
            "utilization": fp.utilization,
            "macros": [
                {
                    "name": m.name,
                    "x_um": m.x_um,
                    "y_um": m.y_um,
                    "width_um": m.width_um,
                    "height_um": m.height_um,
                    "tier": m.tier,
                }
                for m in fp.macros
            ],
        }
    clock = design.clock_report
    if clock is not None:
        payload["clock_report"] = {
            "buffer_count": clock.buffer_count,
            "buffer_count_by_tier": {
                str(k): v for k, v in clock.buffer_count_by_tier.items()
            },
            "buffer_area_um2": clock.buffer_area_um2,
            "wirelength_mm": clock.wirelength_mm,
            "max_latency_ns": clock.max_latency_ns,
            "min_latency_ns": clock.min_latency_ns,
            "power_mw": clock.power_mw,
            "latencies": dict(clock.latencies),
        }
    return payload


def design_from_dict(
    payload: dict, tier_libs: dict[int, StdCellLibrary] | None = None
) -> Design:
    """Inverse of :func:`design_to_dict`.

    ``tier_libs`` supplies live library objects (the resuming flow's
    own); when omitted they are rebuilt from the stored specs.  Either
    way the identities must match what was checkpointed.
    """
    try:
        specs = {int(t): spec for t, spec in payload["tier_libs"].items()}
        if tier_libs is None:
            tier_libs = {t: library_from_spec(spec) for t, spec in specs.items()}
        else:
            for tier, spec in specs.items():
                lib = tier_libs.get(tier)
                if lib is None or lib.name != spec.get("name"):
                    raise CheckpointError(
                        f"tier {tier} library mismatch: checkpoint has "
                        f"{spec.get('name')!r}, caller has "
                        f"{lib.name if lib else None!r}"
                    )

        nl_d = payload["netlist"]
        netlist = Netlist(str(nl_d["name"]))
        netlist.ports = {
            name: PortDirection(value) for name, value in nl_d["ports"].items()
        }
        netlist.clock_port = nl_d.get("clock_port")
        libs_by_name = {lib.name: lib for lib in tier_libs.values()}
        for d in nl_d["instances"]:
            lib = libs_by_name.get(d["lib"])
            if lib is None:
                raise CheckpointError(
                    f"instance {d['name']!r} references unknown library "
                    f"{d['lib']!r}"
                )
            inst = Instance(
                name=str(d["name"]),
                cell=lib.cell(str(d["cell"])),
                tier=int(d["tier"]),
                x_um=d["x_um"],
                y_um=d["y_um"],
                block=str(d["block"]),
                fixed=bool(d["fixed"]),
            )
            # Rebuild pin bindings directly: replaying connect() would
            # reorder net sink lists and break byte-identical resume.
            inst._pin_nets = {str(p): str(n) for p, n in d["pins"].items()}
            netlist.instances[inst.name] = inst
        for d in nl_d["nets"]:
            net = Net(
                name=str(d["name"]),
                driver=tuple(d["driver"]) if d["driver"] else None,
                sinks=[tuple(s) for s in d["sinks"]],
                is_clock=bool(d["is_clock"]),
            )
            netlist.nets[net.name] = net
        netlist.validate()

        fp = None
        fp_d = payload.get("floorplan")
        if fp_d is not None:
            fp = Floorplan(
                width_um=fp_d["width_um"],
                height_um=fp_d["height_um"],
                tiers=int(fp_d["tiers"]),
                utilization=fp_d["utilization"],
                macros=[
                    MacroSlot(
                        name=str(m["name"]),
                        x_um=m["x_um"],
                        y_um=m["y_um"],
                        width_um=m["width_um"],
                        height_um=m["height_um"],
                        tier=int(m["tier"]),
                    )
                    for m in fp_d["macros"]
                ],
            )
        clock = None
        ck_d = payload.get("clock_report")
        if ck_d is not None:
            clock = ClockReport(
                buffer_count=int(ck_d["buffer_count"]),
                buffer_count_by_tier={
                    int(k): v
                    for k, v in ck_d["buffer_count_by_tier"].items()
                },
                buffer_area_um2=ck_d["buffer_area_um2"],
                wirelength_mm=ck_d["wirelength_mm"],
                max_latency_ns=ck_d["max_latency_ns"],
                min_latency_ns=ck_d["min_latency_ns"],
                power_mw=ck_d["power_mw"],
                latencies=dict(ck_d["latencies"]),
            )
        return Design(
            name=str(payload["name"]),
            config=str(payload["config"]),
            netlist=netlist,
            tier_libs=tier_libs,
            floorplan=fp,
            clock_report=clock,
            target_period_ns=payload["target_period_ns"],
            utilization_target=payload["utilization_target"],
            notes=dict(payload["notes"]),
        )
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(f"malformed checkpoint payload: {exc}") from exc


# ----------------------------------------------------------------------
# files
# ----------------------------------------------------------------------
def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: dict) -> str:
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def rebind_checkpoint_tier_library(
    envelope: dict, tier: int, lib: StdCellLibrary
) -> dict:
    """Copy of a checkpoint envelope with one tier's library spec
    replaced and the payload checksum recomputed.

    The design-space explorer's prefix store shares synthesis and
    pseudo-place checkpoints across configs that differ only in the
    *slow*-tier library: those stages never consume it, but the
    envelope embeds its spec (and the checksum covers the spec), so a
    borrowing config must re-slot its own library before resuming.

    Raises :class:`CheckpointError` when any netlist instance actually
    references the library being swapped out -- the guard that keeps
    "this stage does not consume tier N's library" honest: if it ever
    stops being true, reuse fails loudly instead of resuming a design
    bound to the wrong cells.
    """
    import copy

    if not isinstance(envelope, dict) or "design" not in envelope:
        raise CheckpointError("envelope has no design payload")
    envelope = copy.deepcopy(envelope)
    payload = envelope["design"]
    try:
        old_spec = payload["tier_libs"][str(tier)]
        instances = payload["netlist"]["instances"]
    except (KeyError, TypeError) as exc:
        raise CheckpointError(f"malformed checkpoint payload: {exc}") from exc
    old_name = str(old_spec.get("name", ""))
    if old_name != lib.name:
        bound = sorted(
            {str(d.get("lib")) for d in instances if d.get("lib") == old_name}
        )
        if bound:
            raise CheckpointError(
                f"cannot re-slot tier {tier} library {old_name!r} ->"
                f" {lib.name!r}: instances are bound to it (the stage"
                f" consumed the library; this checkpoint is not shareable)"
            )
    payload["tier_libs"][str(tier)] = _library_spec(lib)
    envelope["checksum"] = _checksum(payload)
    return envelope


def checkpoint_path(directory: str | Path, index: int, stage: str) -> Path:
    """Canonical file name for one stage's checkpoint."""
    return Path(directory) / f"{index:02d}_{stage}.json"


def write_checkpoint(
    directory: str | Path, index: int, stage: str, design: Design
) -> Path:
    """Serialize the design after ``stage`` (atomic write + checksum)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = design_to_dict(design)
    envelope = {
        "format": CHECKPOINT_FORMAT,
        "stage": stage,
        "index": index,
        "checksum": _checksum(payload),
        "design": payload,
    }
    path = checkpoint_path(directory, index, stage)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(envelope))
    os.replace(tmp, path)
    return path


def load_checkpoint(
    path: str | Path, tier_libs: dict[int, StdCellLibrary] | None = None
) -> tuple[str, Design]:
    """Load and verify one checkpoint; returns ``(stage, design)``.

    Raises :class:`CheckpointError` on a missing file, unparseable JSON,
    unknown format, checksum mismatch, or a payload that fails netlist
    validation.
    """
    path = Path(path)
    try:
        envelope = json.loads(path.read_text())
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(envelope, dict) or "design" not in envelope:
        raise CheckpointError(f"checkpoint {path} has no design payload")
    if envelope.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint {path} has format {envelope.get('format')!r}, "
            f"expected {CHECKPOINT_FORMAT}"
        )
    payload = envelope["design"]
    if envelope.get("checksum") != _checksum(payload):
        raise CheckpointError(
            f"checkpoint {path} failed its checksum (corrupt or tampered)"
        )
    return str(envelope.get("stage", "")), design_from_dict(payload, tier_libs)


def latest_valid_checkpoint(
    directory: str | Path,
    stage_names: list[str],
    before_index: int,
    tier_libs: dict[int, StdCellLibrary] | None = None,
) -> tuple[int, Design] | None:
    """Newest loadable checkpoint strictly before ``before_index``.

    Walks backwards from ``before_index - 1``; corrupt or missing files
    are logged and skipped, implementing the resume fallback.  Returns
    ``(stage_index, design)`` or ``None`` when nothing is usable.
    """
    for idx in range(min(before_index, len(stage_names)) - 1, -1, -1):
        path = checkpoint_path(directory, idx, stage_names[idx])
        if not path.exists():
            continue
        try:
            _stage, design = load_checkpoint(path, tier_libs)
        except CheckpointError as exc:
            _log.warning(
                "skipping checkpoint %s: %s; falling back to an earlier stage",
                path, exc,
            )
            continue
        return idx, design
    return None
