"""Stage-boundary contract enforcement: off / warn / repair / strict.

The flow pipeline (:mod:`repro.flow.pipeline`) calls :func:`enforce`
after every stage with that stage's postcondition check set.  What
happens to a violation is policy, selected by ``--check`` /
``$REPRO_CHECK``:

``off``
    No checks run at all -- the production fast path, byte-identical to
    the pre-contract flow (guarded by ``benchmarks``).
``warn``
    Violations are logged via ``repro.log`` and recorded as
    ``invariant_violation`` span events; the flow continues.
``repair``
    Registered repair hooks run first -- re-legalize overlapping tiers,
    strip dangling nets, insert missing level shifters -- each recorded
    as an ``integrity_repair`` span event and ``integrity_repairs`` QoR
    metric; anything still broken afterwards escalates to strict.
``strict``
    Any violation raises :class:`~repro.errors.IntegrityError` carrying
    the typed records.

Repairs intentionally mirror what the flow itself would do (the hooks
call the same ``legalize_all_tiers`` / ``insert_level_shifters`` the
stages use), so a repaired design is indistinguishable from one the
flow produced legally.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field

from repro.errors import IntegrityError
from repro.flow.design import Design
from repro.integrity.invariants import InvariantViolation, check_design
from repro.log import get_logger
from repro.obs import emit_metric, span

__all__ = [
    "ENV_CHECK",
    "CheckMode",
    "IntegrityStats",
    "current_mode",
    "enforce",
    "get_integrity_stats",
    "parse_mode",
    "reset_integrity_stats",
]

ENV_CHECK = "REPRO_CHECK"

#: Cap on per-boundary violation span events / log lines, so a badly
#: corrupted design cannot flood the trace.
MAX_REPORTED = 20

_log = get_logger("integrity")


class CheckMode(enum.Enum):
    """What a stage boundary does about invariant violations."""

    OFF = "off"
    WARN = "warn"
    REPAIR = "repair"
    STRICT = "strict"


def parse_mode(text: str) -> CheckMode:
    """Parse a ``--check`` / ``$REPRO_CHECK`` value."""
    try:
        return CheckMode(text.strip().lower())
    except ValueError:
        raise ValueError(
            f"unknown check mode {text!r} (expected one of "
            f"{', '.join(m.value for m in CheckMode)})"
        ) from None


def current_mode(explicit: str | CheckMode | None = None) -> CheckMode:
    """Resolve the active mode: explicit argument, else ``$REPRO_CHECK``,
    else :attr:`CheckMode.OFF`."""
    if isinstance(explicit, CheckMode):
        return explicit
    if explicit is not None:
        return parse_mode(explicit)
    raw = os.environ.get(ENV_CHECK, "").strip()
    return parse_mode(raw) if raw else CheckMode.OFF


@dataclass
class IntegrityStats:
    """Process-wide contract counters (mirrors ``Telemetry``'s role)."""

    boundaries_checked: int = 0
    violations: int = 0
    repairs: int = 0
    by_check: dict[str, int] = field(default_factory=dict)

    def record(self, violations: list[InvariantViolation]) -> None:
        self.violations += len(violations)
        for v in violations:
            self.by_check[v.check] = self.by_check.get(v.check, 0) + 1

    def summary(self) -> str:
        per = ", ".join(f"{k}={v}" for k, v in sorted(self.by_check.items()))
        return (
            f"boundaries={self.boundaries_checked} "
            f"violations={self.violations} repairs={self.repairs}"
            + (f" ({per})" if per else "")
        )


_STATS = IntegrityStats()


def get_integrity_stats() -> IntegrityStats:
    """The process-global contract counters."""
    return _STATS


def reset_integrity_stats() -> None:
    """Zero the counters (tests / worker task entry)."""
    global _STATS
    _STATS = IntegrityStats()


# ----------------------------------------------------------------------
# repair hooks
# ----------------------------------------------------------------------
def _repair_connectivity(design: Design) -> str:
    """Strip dangling nets (no driver, no sinks, not a port)."""
    netlist = design.netlist
    dangling = [
        net.name
        for net in netlist.nets.values()
        if net.driver is None and not net.sinks
        and net.name not in netlist.ports
    ]
    for name in dangling:
        netlist.remove_net(name)
    return f"stripped {len(dangling)} dangling nets"


def _repair_placement(design: Design) -> str:
    """Re-legalize every tier (fixes overlaps and row misalignment).

    The violation arrived outside the normal edit contract (nothing
    called ``touch_placement``), so the placement session's caches can't
    be trusted: drop them and force a full pass.
    """
    from repro.flow.stages import legalize_all_tiers

    if design.floorplan is not None:
        design.place_session().invalidate_all()
    stats = legalize_all_tiers(design)
    moved = sum(s.cells for s in stats.values())
    return f"re-legalized {moved} cells across {len(stats)} tiers"


def _repair_tiers(design: Design) -> str:
    """Insert missing level shifters and re-legalize the new cells."""
    from repro.flow.levelshift import insert_level_shifters
    from repro.flow.stages import legalize_all_tiers

    report = insert_level_shifters(design)
    if report.shifters_inserted:
        legalize_all_tiers(design)
    return f"inserted {report.shifters_inserted} level shifters"


#: check name -> hook; checks without a hook cannot be auto-repaired.
REPAIRS = {
    "connectivity": _repair_connectivity,
    "placement": _repair_placement,
    "tiers": _repair_tiers,
}


# ----------------------------------------------------------------------
# enforcement
# ----------------------------------------------------------------------
def _report(
    stage: str, violations: list[InvariantViolation], mode: CheckMode
) -> None:
    from repro.obs import add_span_event

    for v in violations[:MAX_REPORTED]:
        add_span_event(
            "invariant_violation",
            stage=stage,
            check=v.check,
            code=v.code,
            subject=v.subject,
        )
        _log.warning("[%s] %s (%s mode)", stage, v, mode.value)
    if len(violations) > MAX_REPORTED:
        _log.warning(
            "[%s] ... and %d more violations",
            stage, len(violations) - MAX_REPORTED,
        )
    emit_metric("integrity_violations", len(violations))


def enforce(
    design: Design,
    *,
    stage: str,
    checks: tuple[str, ...],
    mode: CheckMode,
) -> list[InvariantViolation]:
    """Run a stage's postcondition checks and apply the mode's policy.

    Returns the violations found *before* any repair (empty on a clean
    boundary).  Raises :class:`IntegrityError` in strict mode, or in
    repair mode when violations survive the hooks.
    """
    if mode is CheckMode.OFF or not checks:
        return []
    with span("integrity", stage=stage, mode=mode.value):
        stats = get_integrity_stats()
        stats.boundaries_checked += 1
        violations = check_design(design, checks)
        if not violations:
            return []
        stats.record(violations)
        _report(stage, violations, mode)

        if mode is CheckMode.WARN:
            return violations

        remaining = violations
        if mode is CheckMode.REPAIR:
            from repro.obs import add_span_event

            broken = {v.check for v in violations if v.repairable}
            for check in [c for c in checks if c in broken and c in REPAIRS]:
                detail = REPAIRS[check](design)
                stats.repairs += 1
                add_span_event(
                    "integrity_repair", stage=stage, check=check, detail=detail
                )
                emit_metric("integrity_repairs", 1)
                _log.warning("[%s] repaired %s: %s", stage, check, detail)
            remaining = check_design(design, checks)
            if not remaining:
                return violations

        head = "; ".join(str(v) for v in remaining[:5])
        more = f" (+{len(remaining) - 5} more)" if len(remaining) > 5 else ""
        raise IntegrityError(
            f"{len(remaining)} invariant violation(s) at the {stage} "
            f"boundary: {head}{more}",
            violations=tuple(remaining),
        ).with_context(stage=stage, design=design.name, config=design.config)
