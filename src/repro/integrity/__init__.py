"""Flow-integrity contracts: invariants, enforcement policy, checkpoints.

Long heterogeneous-flow runs are only trustworthy if the flow distrusts
its own intermediate state.  This package wraps every stage of the
``run_flow_*`` pipelines in typed pre/postcondition contracts:

- :mod:`repro.integrity.invariants` -- the checkers (netlist
  connectivity, placement legality, tier consistency incl. the paper's
  level-shifter and critical-area rules, timing sanity) returning
  :class:`InvariantViolation` records;
- :mod:`repro.integrity.contracts` -- the ``off``/``warn``/``repair``/
  ``strict`` enforcement policy behind ``--check`` / ``$REPRO_CHECK``,
  with repair hooks and span/metric instrumentation;
- :mod:`repro.integrity.checkpoint` -- checksummed per-stage ``Design``
  serialization under ``--checkpoint-dir`` and the corrupt-tolerant
  ``--from-stage`` resume.
"""

from repro.integrity.checkpoint import (
    CHECKPOINT_FORMAT,
    checkpoint_path,
    design_from_dict,
    design_to_dict,
    latest_valid_checkpoint,
    library_from_spec,
    load_checkpoint,
    write_checkpoint,
)
from repro.integrity.contracts import (
    ENV_CHECK,
    CheckMode,
    IntegrityStats,
    current_mode,
    enforce,
    get_integrity_stats,
    parse_mode,
    reset_integrity_stats,
)
from repro.integrity.invariants import (
    CHECKS,
    InvariantViolation,
    check_connectivity,
    check_design,
    check_placement,
    check_result,
    check_tier_balance,
    check_tiers,
    check_timing,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKS",
    "CheckMode",
    "ENV_CHECK",
    "IntegrityStats",
    "InvariantViolation",
    "check_connectivity",
    "check_design",
    "check_placement",
    "check_result",
    "check_tier_balance",
    "check_tiers",
    "check_timing",
    "checkpoint_path",
    "current_mode",
    "design_from_dict",
    "design_to_dict",
    "enforce",
    "get_integrity_stats",
    "latest_valid_checkpoint",
    "library_from_spec",
    "load_checkpoint",
    "parse_mode",
    "reset_integrity_stats",
    "write_checkpoint",
]
