"""Liberty-like library dump.

Writes a :class:`~repro.liberty.library.StdCellLibrary` in a ``.lib``-
flavoured text format -- cell groups with area/pin/arc blocks and the
NLDM tables as ``values`` matrices -- so the synthesized technology can
be inspected and diffed the way a foundry deck would be.  This is an
export format only (the package constructs libraries in code).
"""

from __future__ import annotations

from repro.liberty.cells import CellType
from repro.liberty.library import StdCellLibrary

__all__ = ["write_liberty"]


def _format_axis(values: tuple[float, ...]) -> str:
    return ", ".join(f"{v:g}" for v in values)


def _format_table(values) -> list[str]:
    lines = []
    for row in values:
        lines.append("        \"" + ", ".join(f"{v:.6f}" for v in row) + "\",")
    return lines


def _cell_block(cell: CellType) -> list[str]:
    lines = [f"  cell ({cell.name}) {{"]
    lines.append(f"    area : {cell.area_um2:.4f};")
    lines.append(f"    /* drive x{cell.drive}, {cell.function.value}, "
                 f"vdd {cell.vdd_v:g} V */")
    lines.append(f"    cell_leakage_power : {cell.leakage_mw * 1e6:.4f}; /* nW */")
    if cell.is_sequential:
        lines.append(f"    ff (IQ) {{ clocked_on : CK; next_state : D; }}")

    for pin_name, spec in sorted(cell.pins.items()):
        lines.append(f"    pin ({pin_name}) {{")
        if spec.direction == "output":
            lines.append("      direction : output;")
            for arc in cell.arcs:
                if arc.to_pin != pin_name or arc.kind == "setup":
                    continue
                lines.append(f"      timing () {{")
                lines.append(f"        related_pin : \"{arc.from_pin}\";")
                if arc.kind == "clk_to_q":
                    lines.append("        timing_type : rising_edge;")
                lines.append("        cell_rise (delay_template) {")
                lines.append(
                    f"          index_1 (\"{_format_axis(arc.delay.slew_axis)}\");"
                )
                lines.append(
                    f"          index_2 (\"{_format_axis(arc.delay.load_axis)}\");"
                )
                lines.append("          values ( \\")
                lines.extend("    " + ln for ln in _format_table(arc.delay.values))
                lines.append("          );")
                lines.append("        }")
                lines.append("      }")
        else:
            direction = "input" if spec.direction == "input" else "input /* clock */"
            lines.append(f"      direction : {direction};")
            lines.append(f"      capacitance : {spec.capacitance_ff:.4f};")
            if spec.direction == "clock":
                lines.append("      clock : true;")
        lines.append("    }")
    lines.append("  }")
    return lines


def write_liberty(lib: StdCellLibrary) -> str:
    """Serialize a library to Liberty-flavoured text."""
    lines = [
        f"library ({lib.name}) {{",
        "  delay_model : table_lookup;",
        "  time_unit : \"1ns\";",
        "  capacitive_load_unit (1, ff);",
        f"  nom_voltage : {lib.vdd_v:g};",
        f"  /* tracks: {lib.tracks}, vth: {lib.vth_v:g} V, "
        f"row height: {lib.cell_height_um:g} um */",
        f"  /* BEOL: {lib.wire_r_kohm_per_um:g} kOhm/um, "
        f"{lib.wire_c_ff_per_um:g} fF/um; "
        f"MIV: {lib.miv_r_kohm:g} kOhm, {lib.miv_c_ff:g} fF */",
    ]
    for cell in sorted(lib.cells, key=lambda c: c.name):
        lines.extend(_cell_block(cell))
    lines.append("}")
    return "\n".join(lines) + "\n"
