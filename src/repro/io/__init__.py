"""Interchange formats: DEF-like layout and Liberty-like library dumps."""

from repro.io.def_writer import read_def, write_def
from repro.io.liberty_writer import write_liberty

__all__ = ["read_def", "write_def", "write_liberty"]
