"""DEF-like layout writer/reader.

A compact subset of the Design Exchange Format carrying what our flows
produce: the die area, per-tier rows, component placements (with a
``+ TIER`` extension for monolithic 3-D), and net connectivity.  Enough
for layouts to be inspected, diffed, and reloaded; not a full LEF/DEF
implementation.

Units: DEF convention of integer database units; we use 1000 DBU = 1 um.
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.flow.design import Design
from repro.liberty.library import StdCellLibrary
from repro.netlist.core import Netlist, PortDirection
from repro.place.floorplan import Floorplan

__all__ = ["write_def", "read_def"]

#: Database units per micron.
DBU = 1000


def _dbu(value_um: float) -> int:
    return int(round(value_um * DBU))


def write_def(design: Design) -> str:
    """Serialize a placed design to DEF-like text."""
    fp = design.floorplan
    if fp is None:
        raise NetlistError("design must be floorplanned before DEF export")
    netlist = design.netlist
    lines = [
        "VERSION 5.8 ;",
        f"DESIGN {netlist.name} ;",
        f"UNITS DISTANCE MICRONS {DBU} ;",
        f"DIEAREA ( 0 0 ) ( {_dbu(fp.width_um)} {_dbu(fp.height_um)} ) ;",
    ]

    for tier, lib in sorted(design.tier_libs.items()):
        pitch = lib.cell_height_um
        n_rows = int(fp.height_um / pitch)
        lines.append(
            f"# TIER {tier} LIB {lib.name} ROWS {n_rows} PITCH {_dbu(pitch)}"
        )

    comps = sorted(netlist.instances)
    lines.append(f"COMPONENTS {len(comps)} ;")
    for name in comps:
        inst = netlist.instances[name]
        state = "FIXED" if inst.fixed else "PLACED"
        if inst.is_placed:
            where = f"{state} ( {_dbu(inst.x_um)} {_dbu(inst.y_um)} ) N"
        else:
            where = "UNPLACED"
        lines.append(
            f"- {name} {inst.cell.name} + {where} + TIER {inst.tier} ;"
        )
    lines.append("END COMPONENTS")

    pins = sorted(netlist.ports)
    lines.append(f"PINS {len(pins)} ;")
    for name in pins:
        direction = netlist.ports[name]
        kw = "INPUT" if direction is PortDirection.INPUT else "OUTPUT"
        lines.append(f"- {name} + DIRECTION {kw} ;")
    lines.append("END PINS")

    nets = sorted(netlist.nets)
    lines.append(f"NETS {len(nets)} ;")
    for name in nets:
        net = netlist.nets[name]
        terms = []
        if net.driver is not None:
            terms.append(f"( {net.driver[0]} {net.driver[1]} )")
        elif name in netlist.ports:
            terms.append(f"( PIN {name} )")
        terms.extend(f"( {s} {p} )" for s, p in net.sinks)
        lines.append(f"- {name} {' '.join(terms)} ;")
    lines.append("END NETS")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"


def read_def(
    text: str,
    libraries: dict[str, StdCellLibrary],
) -> Netlist:
    """Parse DEF-like text produced by :func:`write_def` into a netlist.

    The floorplan itself is not reconstructed (rebuild it with
    :func:`repro.place.floorplan.build_floorplan` if needed); instance
    placements, tiers, cells and connectivity round-trip exactly.
    """
    cell_lookup = {}
    for lib in libraries.values():
        for cell in lib.cells:
            cell_lookup[cell.name] = cell

    lines = [ln.strip() for ln in text.splitlines()]
    name = None
    for ln in lines:
        if ln.startswith("DESIGN "):
            name = ln.split()[1]
            break
    if name is None:
        raise NetlistError("no DESIGN statement found")
    netlist = Netlist(name)

    section = None
    pending_nets: list[tuple[str, list[tuple[str, str]]]] = []
    for ln in lines:
        if ln.startswith("COMPONENTS"):
            section = "components"
            continue
        if ln.startswith("PINS"):
            section = "pins"
            continue
        if ln.startswith("NETS"):
            section = "nets"
            continue
        if ln.startswith("END "):
            section = None
            continue
        if not ln.startswith("- "):
            continue
        body = ln[2:].rstrip(" ;")
        if section == "components":
            parts = body.split(" + ")
            comp_name, cell_name = parts[0].split()
            cell = cell_lookup.get(cell_name)
            if cell is None:
                raise NetlistError(f"unknown cell {cell_name!r}")
            inst = netlist.add_instance(comp_name, cell)
            for extra in parts[1:]:
                tokens = extra.split()
                if tokens[0] in ("PLACED", "FIXED"):
                    inst.x_um = int(tokens[2]) / DBU
                    inst.y_um = int(tokens[3]) / DBU
                    inst.fixed = tokens[0] == "FIXED"
                elif tokens[0] == "TIER":
                    inst.tier = int(tokens[1])
        elif section == "pins":
            parts = body.split(" + ")
            pin_name = parts[0].strip()
            direction = PortDirection.INPUT
            for extra in parts[1:]:
                tokens = extra.split()
                if tokens[0] == "DIRECTION" and tokens[1] == "OUTPUT":
                    direction = PortDirection.OUTPUT
            netlist.add_port(
                pin_name, direction, is_clock=(pin_name == "clk")
            )
        elif section == "nets":
            tokens = body.split()
            net_name = tokens[0]
            terms: list[tuple[str, str]] = []
            i = 1
            while i < len(tokens):
                if tokens[i] == "(":
                    terms.append((tokens[i + 1], tokens[i + 2]))
                    i += 4
                else:
                    i += 1
            pending_nets.append((net_name, terms))

    for net_name, terms in pending_nets:
        if net_name not in netlist.nets:
            netlist.add_net(net_name)
        for owner, pin in terms:
            if owner == "PIN":
                continue  # the port connection is implicit in our model
            netlist.connect(net_name, owner, pin)
    netlist.validate()
    return netlist
