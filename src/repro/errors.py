"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so a
caller can catch the whole family with a single ``except`` clause while
still being able to distinguish the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class LibraryError(ReproError):
    """A technology-library lookup or construction failed."""


class NetlistError(ReproError):
    """The netlist database is inconsistent or an edit is illegal."""


class TimingError(ReproError):
    """Static timing analysis could not complete."""


class PlacementError(ReproError):
    """Placement or legalization failed (e.g. utilization > 100%)."""


class PartitionError(ReproError):
    """Tier partitioning could not satisfy its constraints."""


class FlowError(ReproError):
    """A design flow stage failed or was invoked out of order."""


class CostModelError(ReproError):
    """The cost model was given out-of-domain parameters."""
