"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so a
caller can catch the whole family with a single ``except`` clause while
still being able to distinguish the failure domain.

Errors that travel through the evaluation engine carry *context*: the
flow stage, design, configuration and retry attempt they happened in.
:meth:`ReproError.with_context` annotates an exception in place (and
returns it, so ``raise exc.with_context(stage="flow")`` reads well);
the context renders at the end of ``str(exc)`` so logs and failure
tables are self-describing even after the traceback is gone.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""

    @property
    def context(self) -> dict:
        """Engine context (stage/design/config/attempt) attached so far."""
        ctx = getattr(self, "_context", None)
        if ctx is None:
            ctx = {}
            self._context = ctx
        return ctx

    def with_context(self, **fields) -> "ReproError":
        """Attach context fields in place; ``None`` values are ignored."""
        self.context.update(
            {key: value for key, value in fields.items() if value is not None}
        )
        return self

    def __str__(self) -> str:
        base = super().__str__()
        ctx = getattr(self, "_context", None)
        if not ctx:
            return base
        rendered = ", ".join(f"{key}={value}" for key, value in ctx.items())
        return f"{base}  [{rendered}]"


class LibraryError(ReproError):
    """A technology-library lookup or construction failed."""


class NetlistError(ReproError):
    """The netlist database is inconsistent or an edit is illegal."""


class TimingError(ReproError):
    """Static timing analysis could not complete."""


class PlacementError(ReproError):
    """Placement or legalization failed (e.g. utilization > 100%)."""


class PartitionError(ReproError):
    """Tier partitioning could not satisfy its constraints."""


class FlowError(ReproError):
    """A design flow stage failed or was invoked out of order."""


class CostModelError(ReproError):
    """The cost model was given out-of-domain parameters."""


class IntegrityError(ReproError):
    """A stage-boundary invariant check failed (strict/repair mode).

    Carries the surviving :class:`~repro.integrity.invariants.InvariantViolation`
    records on :attr:`violations` so callers (and the ``repro check`` CLI)
    can render them without re-running the checks.
    """

    def __init__(self, message: str, violations: tuple = ()):  # noqa: D107
        super().__init__(message)
        self.violations = tuple(violations)


class CheckpointError(IntegrityError):
    """A flow checkpoint is missing, corrupt, or incompatible."""


class ServeError(ReproError):
    """The evaluation daemon, its journal, or a client request failed."""


class LockError(ReproError):
    """An advisory file lock could not be acquired in time."""
