"""Pure event-fold model behind ``repro top`` and ``repro watch``.

:class:`TopModel` consumes the daemon's subscribe feed -- the snapshot
line followed by live events -- and maintains the dashboard state: one
record per job, worker lifecycle counts, the latest metric summary, and
the number of events lost to feed gaps.

The fold is deliberately **order-insensitive**: every event carries the
bus-global ``seq``, so the model dedups on it (reconnect replays the
backlog, which overlaps what was already seen) and resolves conflicting
updates by keeping the highest-``seq`` one per slot.  Any interleaving
of a feed that preserves nothing but the events themselves converges to
the same final state -- the property the hypothesis test replays
shuffled feeds against.  Terminal job states latch for free: a job's
``done``/``failed`` transition has the highest ``seq`` among its state
events, so no stale ``running`` can overwrite it.

Rendering is plain ASCII (no curses): :meth:`TopModel.render` returns
one frame as a string and the CLI decides how to repaint.
"""

from __future__ import annotations

from typing import Any

__all__ = ["TopModel"]

#: Job states a job never leaves (mirrors repro.serve.queue).
TERMINAL_STATES = ("done", "failed")


def _new_job(job_id: str) -> dict[str, Any]:
    return {
        "job_id": job_id,
        "kind": "",
        "state": "?",
        "worker": "",
        "attempts": 0,
        "stage": "",          # name of the stage the worker is inside
        "stage_open": False,  # True between span_open and span_close
        "stages_done": 0,     # depth-1 span closes seen
        "error_type": "",
        "reason": "",
        "_state_seq": -1,     # highest seq of an applied job_state event
        "_stage_seq": -1,     # highest seq of an applied span event
        "_field_seq": {},     # per-field seq: last event that set it
    }


class TopModel:
    """Fold subscribe-feed events into the ``repro top`` dashboard state."""

    def __init__(self) -> None:
        self.jobs: dict[str, dict[str, Any]] = {}
        self.lifecycle_counts: dict[str, int] = {}
        self.metrics: dict[str, Any] = {}
        self.stats: dict[str, Any] = {}
        self.draining = False
        self.dropped = 0          # events lost to feed gaps
        self.events_applied = 0
        self._metrics_seq = -1
        self._seen: set[int] = set()  # applied seqs (dedup across replay)

    # ------------------------------------------------------------------
    # folding
    # ------------------------------------------------------------------
    def _job(self, job_id: str) -> dict[str, Any]:
        job = self.jobs.get(job_id)
        if job is None:
            job = self.jobs[job_id] = _new_job(job_id)
        return job

    def apply_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Seed from the feed's first line (``{"ok": ..., "snapshot"}``
        or the snapshot object itself).  Live events always win: a job
        that already applied a ``job_state`` event is left alone, so a
        reconnect's fresh snapshot cannot roll the model backwards.
        """
        snap = snapshot.get("snapshot", snapshot)
        if not isinstance(snap, dict):
            return
        for job_id, view in (snap.get("jobs") or {}).items():
            if not isinstance(view, dict):
                continue
            job = self._job(str(job_id))
            if job["_state_seq"] >= 0:
                continue
            job["kind"] = str(view.get("kind", job["kind"]))
            job["state"] = str(view.get("state", job["state"]))
            job["worker"] = str(view.get("worker") or "")
            job["attempts"] = int(view.get("attempts", 0) or 0)
            error = view.get("error")
            if isinstance(error, dict):
                job["error_type"] = str(error.get("error_type", ""))
        if "draining" in snap:
            self.draining = bool(snap.get("draining"))
        if isinstance(snap.get("stats"), dict):
            self.stats = dict(snap["stats"])

    def apply(self, event: dict[str, Any]) -> bool:
        """Fold one feed event; returns whether it changed the model.

        Unknown event kinds are ignored (forward compatibility), and a
        ``seq`` already applied is skipped (backlog replay overlap).
        """
        if not isinstance(event, dict):
            return False
        kind = event.get("event")
        if kind == "feed_gap":
            self.dropped += int(event.get("dropped", 0) or 0)
            return True
        seq = event.get("seq")
        if isinstance(seq, int):
            if seq in self._seen:
                return False
            self._seen.add(seq)
        else:
            seq = -1
        if kind == "job_state":
            self._apply_job_state(event, seq)
        elif kind in ("span_open", "span_close"):
            self._apply_span(event, seq, opened=(kind == "span_open"))
        elif kind == "lifecycle":
            action = str(event.get("action", "?"))
            self.lifecycle_counts[action] = (
                self.lifecycle_counts.get(action, 0) + 1
            )
            if action == "drain_begin":
                self.draining = True
        elif kind == "metrics":
            if seq > self._metrics_seq:
                self._metrics_seq = seq
                self.metrics = {
                    k: v for k, v in event.items()
                    if k not in ("event", "seq", "ts")
                }
        else:
            return False
        self.events_applied += 1
        return True

    def _apply_job_state(self, event: dict[str, Any], seq: int) -> None:
        job = self._job(str(event.get("job_id", "")))
        # Fields are seq-gated individually, not per event: the terminal
        # ``done`` event carries no ``worker``, so a one-gate fold would
        # keep or lose the worker depending on arrival order.
        field_seq = job["_field_seq"]

        def put(field: str, value: Any) -> None:
            if seq > field_seq.get(field, -1):
                field_seq[field] = seq
                job[field] = value

        job["attempts"] = max(
            job["attempts"],
            int(event.get("attempt", event.get("attempts", 0)) or 0),
        )
        if event.get("kind"):
            put("kind", str(event["kind"]))
        if "worker" in event:
            put("worker", str(event.get("worker") or ""))
        if event.get("reason"):
            put("reason", str(event["reason"]))
        if event.get("error_type"):
            put("error_type", str(event["error_type"]))
        if seq <= job["_state_seq"]:
            return
        job["_state_seq"] = seq
        job["state"] = str(event.get("state", job["state"]))
        # Terminal states hide the stage at *render* time rather than
        # clearing it here: a mutation would make the fold depend on
        # whether span events arrived before or after the terminal one.

    def _apply_span(
        self, event: dict[str, Any], seq: int, *, opened: bool
    ) -> None:
        if int(event.get("depth", 0) or 0) != 1:
            return  # root open/close carries no stage information
        job = self._job(str(event.get("job_id", "")))
        name = str(event.get("name", ""))
        if not opened:
            job["stages_done"] += 1  # idempotent: seq was deduped above
        if seq > job["_stage_seq"]:
            job["_stage_seq"] = seq
            job["stage"] = name
            job["stage_open"] = opened

    # ------------------------------------------------------------------
    # queries / rendering
    # ------------------------------------------------------------------
    def job_state(self, job_id: str) -> str:
        job = self.jobs.get(job_id)
        return job["state"] if job else "?"

    def counts(self) -> dict[str, int]:
        """Job-state histogram over everything the model has seen."""
        out: dict[str, int] = {}
        for job in self.jobs.values():
            out[job["state"]] = out.get(job["state"], 0) + 1
        return out

    def render(self, *, max_jobs: int = 20) -> str:
        """One dashboard frame as plain ASCII text."""
        counts = self.counts()
        summary = "  ".join(
            f"{state}={counts[state]}" for state in sorted(counts)
        ) or "no jobs"
        lines = [
            f"repro top -- {len(self.jobs)} job(s): {summary}"
            + ("  [DRAINING]" if self.draining else ""),
        ]
        if self.metrics:
            m = self.metrics
            lines.append(
                f"daemon: pending={m.get('pending', '?')}"
                f" running={m.get('running', '?')}"
                f" completed={m.get('completed', '?')}"
                f" failed={m.get('failed', '?')}"
                f" respawns={m.get('worker_respawns', '?')}"
                f" feed_dropped={m.get('feed_dropped', '?')}"
            )
        if self.lifecycle_counts:
            lines.append(
                "lifecycle: " + "  ".join(
                    f"{action}={n}"
                    for action, n in sorted(self.lifecycle_counts.items())
                )
            )
        if self.dropped:
            lines.append(f"feed gaps: {self.dropped} event(s) lost")
        lines.append(
            f"{'JOB':14s} {'KIND':7s} {'STATE':8s} {'WORKER':10s}"
            f" {'ATT':>3s} {'DONE':>4s}  STAGE"
        )
        # Running first, then pending, then terminal; newest last.
        order = {"running": 0, "pending": 1}
        ranked = sorted(
            self.jobs.values(),
            key=lambda j: (order.get(j["state"], 2), j["job_id"]),
        )
        for job in ranked[:max_jobs]:
            stage = "" if job["state"] in TERMINAL_STATES else job["stage"]
            if stage and not job["stage_open"]:
                stage = f"({stage})"  # finished, next not yet open
            flag = f" !{job['error_type']}" if job["error_type"] else ""
            lines.append(
                f"{job['job_id'][:14]:14s} {job['kind'][:7]:7s}"
                f" {job['state'][:8]:8s} {job['worker'][:10]:10s}"
                f" {job['attempts']:3d} {job['stages_done']:4d}"
                f"  {stage}{flag}"
            )
        if len(self.jobs) > max_jobs:
            lines.append(f"... and {len(self.jobs) - max_jobs} more job(s)")
        return "\n".join(lines)
