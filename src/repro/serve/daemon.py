"""The flow-as-a-service daemon: intake, recovery, backpressure, drain.

``repro serve`` turns the batch matrix engine into a long-lived
evaluation server.  Clients speak the JSON-lines protocol of
:mod:`repro.serve.protocol` over a Unix socket; jobs flow through the
journaled queue (:mod:`repro.serve.queue`) into the supervised worker
pool (:mod:`repro.serve.supervisor`).

Crash safety is one invariant, enforced in :class:`ServerCore`: **the
journal is written and fsync'd before any in-memory transition, and
before any acknowledgment leaves the process.**  Restart (including
after ``kill -9``) replays the journal, requeues whatever was claimed
but unfinished, and compacts the file.  Re-running a recovered matrix
job costs nothing redundant: completed cells reload from the
content-addressed result cache and interrupted matrices resume through
their run-manifest, so a served run interrupted at any instant still
converges to results byte-identical to a clean batch run.

Admission control: past ``REPRO_SERVE_QUEUE_MAX`` pending jobs a submit
either *sheds* -- when the submit outranks the lowest-priority pending
job, that victim is failed with a structured ``LoadShed`` error and the
submit is admitted in its place -- or is rejected with ``code=busy``
and a ``retry_after`` hint derived from the observed drain rate, so
clients back off proportionally to the actual backlog instead of a
constant.  Deduplicated submits are always admitted -- they add no
work.  A submit may carry a relative ``deadline``; pending jobs whose
deadline passes are failed as ``DeadlineExceeded`` by the maintenance
loop (and checked again at claim time) without ever occupying a worker.

Bounded retention: terminal job payloads are held under an LRU count
bound and a TTL (``REPRO_SERVE_RETAIN_JOBS`` / ``_RETAIN_S``); evicted
jobs answer ``result`` with a structured ``evicted`` tombstone pointing
at the journal, and resubmitting the same spec is the supported
recovery path (the content-addressed result cache makes the rerun
byte-identical and cheap).  The journal is compacted online -- under
the core lock, with the same atomic rewrite used at startup -- whenever
the live-record fraction drops below ``REPRO_SERVE_COMPACT_RATIO``.  A
disk-pressure guard flips the daemon into a journaled degraded mode
(submits rejected with ``code=disk_pressure``, in-flight work finishes)
below ``REPRO_SERVE_MIN_FREE_MB`` instead of dying on ENOSPC, and
recovers with hysteresis once space returns.

Graceful drain: SIGTERM/SIGINT flips the daemon into draining mode --
new submits are rejected (``code=draining``), status/result stay
available, in-flight jobs get ``REPRO_SERVE_DRAIN_S`` seconds to
finish, the journal is flushed, and the process exits 0.  Jobs still
running at the deadline stay claimed in the journal and are requeued by
the next start.

Observability: the daemon owns a typed metrics registry
(:mod:`repro.obs.registry`) and a best-effort event bus
(:mod:`repro.serve.events`).  ``metrics`` returns the registry
snapshot, ``trace JOB`` the job's incrementally-stitched span tree, and
``subscribe`` turns the connection into a long-lived JSON-lines feed of
job state transitions, live worker span open/close, supervisor
lifecycle actions, and periodic metric summaries.  The feed is
journaled nowhere and never blocks the daemon: each subscriber has a
bounded queue that drops-and-counts under backpressure.

Environment knobs (all prefixed ``REPRO_SERVE_``)
-------------------------------------------------
``DIR`` state directory (journal, socket, pidfile); ``WORKERS`` pool
floor; ``MAX_WORKERS`` pool ceiling the autoscaler may grow to;
``SCALE_UP_PENDING`` pending-jobs-per-worker pressure that triggers a
scale-up; ``SCALE_COOLDOWN_S`` hysteresis between scale events;
``IDLE_RETIRE_S`` idle time before a surplus worker retires;
``QUEUE_MAX`` pending high-water mark; ``HEARTBEAT_S`` worker
heartbeat interval (stale after 3x); ``JOB_TIMEOUT_S`` per-job hang
limit (0 disables); ``RESTART_BUDGET`` attempts before a poison job is
failed; ``DRAIN_S`` drain deadline; ``RETRY_AFTER_S`` backpressure
hint floor (the live hint scales with the observed drain rate);
``RETAIN_JOBS`` / ``RETAIN_S`` terminal-result retention bounds;
``COMPACT_RATIO`` live-record fraction below which the journal is
compacted online; ``COMPACT_MIN`` journal records before online
compaction is considered; ``MIN_FREE_MB`` free-disk floor under which
submits are rejected with ``code=disk_pressure``; ``TRACE``
worker-side span forwarding (default on; falsy disables).  CLI flags
override the environment.

Metrics/feed knobs are prefixed ``REPRO_METRICS_``: ``INTERVAL_S``
periodic feed metric events, ``FEED_QUEUE`` per-subscriber queue bound,
``BACKLOG`` replay ring size, ``WINDOW_S`` telemetry reporting window,
``TRACES`` retained per-job trace trees.
"""

from __future__ import annotations

import errno
import os
import signal
import socket
import socketserver
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field, fields
from pathlib import Path

from repro.errors import ServeError
from repro.experiments.cache import cache_dir
from repro.experiments.faults import FaultInjected, inject
from repro.experiments.telemetry import Telemetry
from repro.log import get_logger
from repro.obs import add_span_event
from repro.obs.registry import MetricsRegistry
from repro.serve.events import EventBus, JobTrace
from repro.serve.journal import Journal, JournalError
from repro.serve.protocol import (
    ProtocolError,
    encode_message,
    job_key,
    normalize_spec,
    read_message,
)
from repro.serve.queue import DONE, EVICTED, FAILED, PENDING, JobQueue, QueueFull
from repro.serve.supervisor import Supervisor

__all__ = ["ServeConfig", "ServerCore", "ServerStats", "serve"]

_log = get_logger("serve.daemon")


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, "") or default)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "") or default)
    except ValueError:
        return default


@dataclass
class ServeConfig:
    """Resolved daemon configuration (env defaults, CLI overrides)."""

    state_dir: Path
    workers: int = 2
    max_workers: int = 0  # autoscale ceiling; 0 = same as workers
    scale_up_pending: int = 2  # pending jobs per worker before growing
    scale_cooldown_s: float = 5.0  # hysteresis between scale events
    idle_retire_s: float = 30.0  # idle time before a surplus worker retires
    queue_max: int = 64
    heartbeat_s: float = 1.0
    job_timeout_s: float = 600.0
    restart_budget: int = 3
    drain_s: float = 30.0
    retry_after_s: float = 2.0
    retain_jobs: int = 512  # terminal results kept resident (0 = unbounded)
    retain_s: float = 86400.0  # terminal result TTL (0 = unbounded)
    compact_ratio: float = 0.5  # live fraction below which to compact
    compact_min: int = 512  # journal records before compaction considered
    min_free_mb: float = 64.0  # free-disk floor before degraded mode
    socket_path: Path | None = None
    worker_trace: bool = True  # workers trace + forward live spans
    metrics_interval_s: float = 2.0  # periodic feed metric events
    feed_queue: int = 256  # per-subscriber bounded queue
    feed_backlog: int = 256  # replay ring for late subscribers
    telemetry_window_s: float = 3600.0  # stats_view telemetry horizon
    trace_keep: int = 32  # per-job trace trees retained

    @staticmethod
    def from_env(**overrides) -> "ServeConfig":
        """Build from ``$REPRO_SERVE_*``; non-``None`` overrides win."""
        state_dir = Path(
            os.environ.get("REPRO_SERVE_DIR") or (cache_dir() / "serve")
        ).expanduser()
        trace_raw = os.environ.get("REPRO_SERVE_TRACE", "1").strip().lower()
        config = ServeConfig(
            state_dir=state_dir,
            workers=_env_int("REPRO_SERVE_WORKERS", 2),
            max_workers=_env_int("REPRO_SERVE_MAX_WORKERS", 0),
            scale_up_pending=_env_int("REPRO_SERVE_SCALE_UP_PENDING", 2),
            scale_cooldown_s=_env_float("REPRO_SERVE_SCALE_COOLDOWN_S", 5.0),
            idle_retire_s=_env_float("REPRO_SERVE_IDLE_RETIRE_S", 30.0),
            queue_max=_env_int("REPRO_SERVE_QUEUE_MAX", 64),
            heartbeat_s=_env_float("REPRO_SERVE_HEARTBEAT_S", 1.0),
            job_timeout_s=_env_float("REPRO_SERVE_JOB_TIMEOUT_S", 600.0),
            restart_budget=_env_int("REPRO_SERVE_RESTART_BUDGET", 3),
            drain_s=_env_float("REPRO_SERVE_DRAIN_S", 30.0),
            retry_after_s=_env_float("REPRO_SERVE_RETRY_AFTER_S", 2.0),
            retain_jobs=_env_int("REPRO_SERVE_RETAIN_JOBS", 512),
            retain_s=_env_float("REPRO_SERVE_RETAIN_S", 86400.0),
            compact_ratio=_env_float("REPRO_SERVE_COMPACT_RATIO", 0.5),
            compact_min=_env_int("REPRO_SERVE_COMPACT_MIN", 512),
            min_free_mb=_env_float("REPRO_SERVE_MIN_FREE_MB", 64.0),
            worker_trace=trace_raw not in ("", "0", "false", "off", "no"),
            metrics_interval_s=_env_float("REPRO_METRICS_INTERVAL_S", 2.0),
            feed_queue=_env_int("REPRO_METRICS_FEED_QUEUE", 256),
            feed_backlog=_env_int("REPRO_METRICS_BACKLOG", 256),
            telemetry_window_s=_env_float("REPRO_METRICS_WINDOW_S", 3600.0),
            trace_keep=_env_int("REPRO_METRICS_TRACES", 32),
        )
        for name, value in overrides.items():
            if value is None:
                continue
            if name not in {f.name for f in fields(ServeConfig)}:
                raise ServeError(f"unknown serve option {name!r}")
            setattr(config, name, value)
        config.state_dir = Path(config.state_dir)
        # The ceiling can never undercut the floor: "max_workers=0"
        # (unset) and any value below `workers` both mean "fixed pool".
        config.max_workers = max(config.workers, config.max_workers)
        if config.socket_path is None:
            config.socket_path = config.state_dir / "serve.sock"
        config.socket_path = Path(config.socket_path)
        return config

    @property
    def journal_path(self) -> Path:
        return self.state_dir / "journal.wal"

    @property
    def pid_path(self) -> Path:
        return self.state_dir / "daemon.pid"


@dataclass
class ServerStats:
    """Daemon-side counters (the workers' flow telemetry merges apart)."""

    submitted: int = 0
    deduped: int = 0
    completed: int = 0
    failed: int = 0
    requeued: int = 0
    recovered: int = 0
    busy_rejected: int = 0
    draining_rejected: int = 0
    disk_rejected: int = 0
    shed: int = 0
    expired: int = 0
    evicted: int = 0
    compactions: int = 0
    worker_respawns: int = 0
    hangs_detected: int = 0
    started_s: float = field(default_factory=time.time)

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "deduped": self.deduped,
            "completed": self.completed,
            "failed": self.failed,
            "requeued": self.requeued,
            "recovered": self.recovered,
            "busy_rejected": self.busy_rejected,
            "draining_rejected": self.draining_rejected,
            "disk_rejected": self.disk_rejected,
            "shed": self.shed,
            "expired": self.expired,
            "evicted": self.evicted,
            "compactions": self.compactions,
            "worker_respawns": self.worker_respawns,
            "hangs_detected": self.hangs_detected,
            "uptime_s": time.time() - self.started_s,
        }


class ServerCore:
    """Journal + queue + stats behind one lock; transport-agnostic.

    Every mutator follows the same order: journal (fsync'd) first, then
    memory, then acknowledgment.  A :class:`JournalError` aborts the
    transition entirely -- the daemon would rather refuse work than
    accept work it might lose.
    """

    #: Drain-rate observation window (seconds) behind ``retry_after``.
    DRAIN_WINDOW_S = 30.0
    #: Degraded mode exits only once free space doubles the floor.
    DISK_RECOVER_FACTOR = 2.0

    def __init__(self, config: ServeConfig):
        self.config = config
        self.stats = ServerStats()
        self.draining = False
        self.degraded = False  # disk-pressure mode: submits rejected
        self._lock = threading.RLock()
        # Terminal-transition timestamps inside DRAIN_WINDOW_S; their
        # rate converts queue depth into an honest retry_after hint.
        self._terminal_times: deque = deque()
        # Observability: the registry is per-core (tests spin up several
        # cores per process), the bus fans live events to subscribers,
        # and _traces holds incrementally-stitched per-job span trees.
        self.registry = MetricsRegistry()
        self._init_metrics()
        self.bus = EventBus(
            queue_max=config.feed_queue, backlog=config.feed_backlog
        )
        self._traces: OrderedDict[str, JobTrace] = OrderedDict()
        # Finished-job telemetry, (wall_s, snapshot) pairs pruned to the
        # reporting window -- the fix for the old unbounded process-
        # global merge (a week-old daemon now reports recent activity).
        self._telemetry_window: deque = deque()
        config.state_dir.mkdir(parents=True, exist_ok=True)
        self.journal = Journal(config.journal_path, registry=self.registry)
        records = self.journal.open()
        self.queue = JobQueue(max_pending=config.queue_max)
        recovered = self.queue.restore(records)
        self.stats.recovered = len(recovered)
        if records:
            # Startup is the one quiet moment: squash the replayed
            # history down to its live state so the file stays bounded.
            self.journal.compact(self.queue.live_records())
        for job_id in recovered:
            job = self.queue.jobs[job_id]
            self.journal.append(
                "requeue", job_id=job_id, attempts=job.attempts,
                reason="recovered",
            )
            self._jobs_total.labels(state="recovered").inc()
            self.bus.publish(
                "job_state", job_id=job_id, state=PENDING, kind=job.kind,
                reason="recovered", attempts=job.attempts,
            )

    def _init_metrics(self) -> None:
        reg = self.registry
        self._queue_depth = reg.gauge(
            "repro_queue_depth", "Jobs pending in the priority queue"
        )
        self._jobs_running = reg.gauge(
            "repro_jobs_running", "Jobs currently claimed by workers"
        )
        self._jobs_total = reg.counter(
            "repro_jobs_total",
            "Job state transitions by terminal/requeue state",
            labels=("state",),
        )
        self._submits_total = reg.counter(
            "repro_submits_total",
            "Submit requests by admission disposition",
            labels=("disposition",),
        )
        self._wait_hist = reg.histogram(
            "repro_job_wait_seconds",
            "Submit-to-claim latency (queue wait) per claim",
        )
        self._run_hist = reg.histogram(
            "repro_job_run_seconds",
            "Claim-to-terminal latency per finished/failed job",
        )
        self._restarts_total = reg.counter(
            "repro_worker_restarts_total",
            "Worker processes respawned (crash, stale heartbeat, hang)",
        )
        self._heartbeat_age = reg.gauge(
            "repro_heartbeat_age_seconds",
            "Seconds since each worker's last heartbeat",
            labels=("worker",),
        )
        self._workers_gauge = reg.gauge(
            "repro_workers",
            "Worker processes by lifecycle state",
            labels=("state",),
        )
        for state in ("idle", "busy", "booting"):
            self._workers_gauge.labels(state=state).set(0)
        self._evictions_total = reg.counter(
            "repro_evictions_total",
            "Terminal job payloads dropped by retention bounds",
        )
        self._compactions_total = reg.counter(
            "repro_compactions_total",
            "Online journal compactions performed",
        )
        self._degraded_gauge = reg.gauge(
            "repro_degraded",
            "1 while the daemon rejects submits under disk pressure",
        )
        self._stage_seconds = reg.counter(
            "repro_stage_seconds_total",
            "Cumulative wall seconds per flow stage, fed from live spans",
            labels=("stage",),
        )
        self._feed_events = reg.counter(
            "repro_feed_events_total", "Events published on the live feed"
        )
        self._feed_dropped = reg.counter(
            "repro_feed_dropped_total",
            "Feed events dropped by full subscriber queues",
        )
        self._feed_subscribers = reg.gauge(
            "repro_feed_subscribers", "Live subscribe connections"
        )
        self._dropped_seen = 0  # bus drop count already folded in
        self._published_seen = 0  # bus publish count already folded in

    # ------------------------------------------------------------------
    # client-facing operations
    # ------------------------------------------------------------------
    def submit(
        self, raw_spec: dict, priority: int = 0, deadline: float = 0.0
    ) -> dict:
        spec = normalize_spec(raw_spec)
        key = job_key(spec)
        priority = int(priority)
        deadline = float(deadline or 0.0)
        deadline_s = time.time() + deadline if deadline > 0 else 0.0
        with self._lock:
            existing = self.queue.lookup_key(key)
            if existing is not None:
                self.stats.deduped += 1
                self._submits_total.labels(disposition="deduped").inc()
                return {
                    "ok": True,
                    "job_id": existing.job_id,
                    "state": existing.state,
                    "deduped": True,
                }
            if self.draining:
                self.stats.draining_rejected += 1
                self._submits_total.labels(disposition="draining").inc()
                return {
                    "ok": False,
                    "code": "draining",
                    "error": "daemon is draining; submit again after restart",
                    "retry_after": self.config.retry_after_s,
                }
            if self.degraded:
                self.stats.disk_rejected += 1
                self._submits_total.labels(disposition="disk_pressure").inc()
                return {
                    "ok": False,
                    "code": "disk_pressure",
                    "error": "daemon is degraded (disk pressure); submits"
                             " resume once space is reclaimed",
                    "retry_after": self._retry_after_hint(),
                }
            try:
                job = self.queue.make_job(
                    spec["kind"], spec, key, priority, deadline_s=deadline_s
                )
            except QueueFull as exc:
                victim = self.queue.shed_candidate(priority)
                if victim is None:
                    self.stats.busy_rejected += 1
                    self._submits_total.labels(disposition="busy").inc()
                    return {
                        "ok": False,
                        "code": "busy",
                        "error": str(exc),
                        "retry_after": self._retry_after_hint(),
                    }
                self._shed_locked(victim, priority)
                job = self.queue.make_job(
                    spec["kind"], spec, key, priority, deadline_s=deadline_s
                )
            record = {
                "job_id": job.job_id,
                "job_seq": job.seq,
                "key": key,
                "kind": job.kind,
                "spec": spec,
                "priority": job.priority,
                "submitted_s": job.submitted_s,
            }
            if deadline_s:
                record["deadline_s"] = deadline_s
            try:
                self.journal.append("submit", **record)
            except JournalError as exc:
                if exc.errno == errno.ENOSPC:
                    # The disk filled between maintenance ticks: the
                    # submit was not acknowledged and must not be kept.
                    self._enter_degraded_locked(free_mb=0.0)
                    self.stats.disk_rejected += 1
                    self._submits_total.labels(
                        disposition="disk_pressure"
                    ).inc()
                    return {
                        "ok": False,
                        "code": "disk_pressure",
                        "error": f"journal write hit ENOSPC: {exc}",
                        "retry_after": self._retry_after_hint(),
                    }
                raise
            self.queue.add(job)
            self.stats.submitted += 1
            self._submits_total.labels(disposition="accepted").inc()
            self._update_queue_gauges()
            self.bus.publish(
                "job_state", job_id=job.job_id, state=job.state,
                kind=job.kind, priority=job.priority,
            )
            return {
                "ok": True,
                "job_id": job.job_id,
                "state": job.state,
                "deduped": False,
            }

    def _evicted_view(self, job_id: str, tombstone: dict) -> dict:
        """The structured answer for a job retention already dropped."""
        return {
            "ok": False,
            "code": "evicted",
            "job_id": job_id,
            "state": EVICTED,
            "kind": tombstone.get("kind", ""),
            "key": tombstone.get("key", ""),
            "terminal_state": tombstone.get("state", ""),
            "finished_s": tombstone.get("finished_s", 0.0),
            "evicted_s": tombstone.get("evicted_s", 0.0),
            "journal": str(self.config.journal_path),
            "error": (
                f"job {job_id} finished as {tombstone.get('state')!r} but"
                " retention evicted its payload; resubmit the same spec"
                " (the result cache makes the rerun cheap and"
                " byte-identical) or consult the journal"
            ),
        }

    def status(self, job_id: str) -> dict:
        with self._lock:
            job = self.queue.jobs.get(job_id)
            if job is None:
                tombstone = self.queue.evicted.get(job_id)
                if tombstone is not None:
                    return self._evicted_view(job_id, tombstone)
                return {
                    "ok": False, "code": "unknown_job",
                    "error": f"no such job {job_id!r}",
                }
            view = job.status_view()
            position = self.queue.position(job_id)
            if position is not None:
                view["pending_ahead"] = position
            view["ok"] = True
            view["draining"] = self.draining
            return view

    def result(self, job_id: str) -> dict:
        with self._lock:
            job = self.queue.jobs.get(job_id)
            if job is None:
                tombstone = self.queue.evicted.get(job_id)
                if tombstone is not None:
                    return self._evicted_view(job_id, tombstone)
                return {
                    "ok": False, "code": "unknown_job",
                    "error": f"no such job {job_id!r}",
                }
            view = job.status_view()
            view["ok"] = True
            if job.state == DONE:
                view["result"] = job.result
            return view

    def stats_view(self) -> dict:
        with self._lock:
            return {
                "ok": True,
                "draining": self.draining,
                "pending": self.queue.pending_count(),
                "running": self.queue.running_count(),
                "jobs": len(self.queue.jobs),
                "stats": self.stats.to_dict(),
                "telemetry": self._windowed_telemetry().snapshot(),
            }

    def _windowed_telemetry(self) -> Telemetry:
        """Merge finished-job telemetry inside the reporting window.

        Called with the lock held.  Pruning happens here (reads are the
        only consumer), so a quiet daemon costs nothing.
        """
        horizon = time.time() - self.config.telemetry_window_s
        window = self._telemetry_window
        while window and window[0][0] < horizon:
            window.popleft()
        merged = Telemetry()
        for _ts, snap in window:
            merged.merge(snap)
        return merged

    def _record_telemetry(self, telemetry) -> None:
        """Append one finished job's telemetry snapshot to the window."""
        if telemetry:
            self._telemetry_window.append((time.time(), telemetry))

    def _update_queue_gauges(self) -> None:
        self._queue_depth.set(self.queue.pending_count())
        self._jobs_running.set(self.queue.running_count())

    def _note_terminal(self, when: float | None = None) -> None:
        """Record one terminal transition for drain-rate estimation."""
        self._terminal_times.append(time.time() if when is None else when)

    def _retry_after_hint(self) -> float:
        """Backpressure hint from the observed drain rate (lock held).

        ``pending / rate`` estimates when a queue slot frees up; the
        configured constant is the floor, and the answer whenever
        nothing finished recently enough to estimate a rate.
        """
        now = time.time()
        window = self._terminal_times
        while window and now - window[0] > self.DRAIN_WINDOW_S:
            window.popleft()
        floor = self.config.retry_after_s
        if not window:
            return floor
        rate = len(window) / self.DRAIN_WINDOW_S
        pending = self.queue.pending_count()
        return round(min(120.0, max(floor, pending / rate)), 2)

    def _shed_locked(self, victim, priority: int) -> None:
        """Fail one pending job to admit a higher-priority submit.

        Called with the lock held at the high-water mark.  The shed is
        journaled first, exactly like any failure, so it survives a
        crash -- the victim's client reads a structured ``LoadShed``
        error, never a silent disappearance.
        """
        now = time.time()
        error = {
            "error_type": "LoadShed",
            "message": (
                f"shed at the high-water mark ({self.config.queue_max}"
                f" pending) to admit a priority-{priority} submit"
            ),
            "kind": "deterministic",
            "priority": victim.priority,
        }
        self.journal.append(
            "fail", job_id=victim.job_id, error=error, finished_s=now
        )
        self.queue.mark_failed(victim.job_id, error)
        self.stats.shed += 1
        self._submits_total.labels(disposition="shed").inc()
        self._jobs_total.labels(state="shed").inc()
        self._note_terminal(now)
        self._update_queue_gauges()
        self.bus.publish(
            "job_state", job_id=victim.job_id, state=FAILED,
            kind=victim.kind, error_type="LoadShed", reason="shed",
        )
        _log.warning(
            "shed pending job %s (priority %d) for a priority-%d submit",
            victim.job_id, victim.priority, priority,
        )

    def _enter_degraded_locked(self, free_mb: float) -> None:
        if self.degraded:
            return
        self.degraded = True
        self._degraded_gauge.set(1)
        # Best-effort journal record: on a truly full disk the append
        # fails, but the mode itself lives in memory and the guard
        # re-enters it after a restart as long as pressure persists.
        try:
            self.journal.append(
                "degraded", mode="enter", free_mb=round(free_mb, 1)
            )
        except JournalError:
            pass
        self.bus.publish("lifecycle", action="degraded_enter",
                         free_mb=round(free_mb, 1))
        _log.warning(
            "entering degraded mode: %.1f MiB free under the"
            " %.1f MiB floor; rejecting submits",
            free_mb, self.config.min_free_mb,
        )

    def _exit_degraded_locked(self, free_mb: float) -> None:
        if not self.degraded:
            return
        self.degraded = False
        self._degraded_gauge.set(0)
        try:
            self.journal.append(
                "degraded", mode="exit", free_mb=round(free_mb, 1)
            )
        except JournalError:
            pass
        self.bus.publish("lifecycle", action="degraded_exit",
                         free_mb=round(free_mb, 1))
        _log.warning(
            "leaving degraded mode: %.1f MiB free; accepting submits",
            free_mb,
        )

    # ------------------------------------------------------------------
    # observability operations
    # ------------------------------------------------------------------
    def metrics_view(self) -> dict:
        """The registry snapshot with queue/feed gauges freshened."""
        with self._lock:
            self._update_queue_gauges()
            self._feed_subscribers.set(self.bus.subscriber_count())
            # Counters only go up: fold in deltas since the last view.
            dropped = self.bus.dropped_total()
            if dropped > self._dropped_seen:
                self._feed_dropped.inc(dropped - self._dropped_seen)
                self._dropped_seen = dropped
            published = self.bus.published
            if published > self._published_seen:
                self._feed_events.inc(published - self._published_seen)
                self._published_seen = published
            return {"ok": True, "metrics": self.registry.snapshot()}

    def trace_view(self, job_id: str) -> dict:
        """The job's span tree as assembled so far (valid mid-run)."""
        with self._lock:
            job = self.queue.jobs.get(job_id)
            if job is None:
                return {
                    "ok": False, "code": "unknown_job",
                    "error": f"no such job {job_id!r}",
                }
            trace = self._traces.get(job_id)
            return {
                "ok": True,
                "job_id": job_id,
                "state": job.state,
                "stages": trace.stage_count() if trace else 0,
                "trace": trace.roots() if trace else [],
            }

    def feed_snapshot(self, job_id: str | None = None) -> dict:
        """The state a new subscriber needs before live events make
        sense: every live job's status view plus daemon stats."""
        with self._lock:
            jobs = {
                jid: job.status_view()
                for jid, job in self.queue.jobs.items()
                if job_id is None or jid == job_id
            }
            return {
                "jobs": jobs,
                "draining": self.draining,
                "stats": self.stats.to_dict(),
            }

    def _trace_for(self, job_id: str, kind: str = "") -> JobTrace:
        """The job's trace assembler, creating and bounding as needed.

        Called with the lock held.  Eviction is FIFO over *finished*
        insertion order -- with ``trace_keep`` far above the worker
        count, a running job's trace is never evicted in practice.
        """
        trace = self._traces.get(job_id)
        if trace is None:
            trace = self._traces[job_id] = JobTrace(job_id, kind)
            while len(self._traces) > max(1, self.config.trace_keep):
                self._traces.popitem(last=False)
        return trace

    def note_progress(self, job_id: str, span_msg: dict, worker: str = "") -> None:
        """Fold one forwarded worker span transition into the feed.

        Publishes a ``span_open``/``span_close`` event, grows the job's
        incremental trace with completed depth-1 subtrees, and feeds the
        per-stage wall-seconds counter.
        """
        phase = span_msg.get("phase")
        name = str(span_msg.get("name", ""))
        depth = int(span_msg.get("depth", 0) or 0)
        with self._lock:
            job = self.queue.jobs.get(job_id)
            kind = job.kind if job is not None else ""
            trace = self._trace_for(job_id, kind)
            if phase == "open":
                if depth == 0:
                    trace.note_root(span_msg)
                self.bus.publish(
                    "span_open", job_id=job_id, name=name, depth=depth,
                    worker=worker, attrs=span_msg.get("attrs") or {},
                )
                return
            duration = float(span_msg.get("duration_s", 0.0) or 0.0)
            tree = span_msg.get("tree")
            if depth == 1 and isinstance(tree, dict):
                trace.add_stage(tree)
            if name and duration > 0:
                self._stage_seconds.labels(stage=name).inc(duration)
            self.bus.publish(
                "span_close", job_id=job_id, name=name, depth=depth,
                worker=worker, duration_s=duration,
                status=span_msg.get("status", "ok"),
            )

    def note_heartbeat(self, worker: str, age_s: float) -> None:
        """Watchdog hook: publish each worker's heartbeat age gauge."""
        self._heartbeat_age.labels(worker=worker).set(age_s)

    def lifecycle(self, action: str, **fields) -> None:
        """Record one supervisor lifecycle action everywhere it matters:
        the event feed, the metrics registry, and the daemon's own span
        (when the daemon process is being traced)."""
        clean = {k: v for k, v in fields.items() if v is not None}
        self.bus.publish("lifecycle", action=action, **clean)
        if action == "worker_restart":
            self._restarts_total.inc()
        add_span_event(f"serve:{action}", **clean)

    # ------------------------------------------------------------------
    # supervisor-facing operations (journal first, memory second)
    # ------------------------------------------------------------------
    def job(self, job_id: str):
        with self._lock:
            return self.queue.jobs.get(job_id)

    def claim_job(self, worker: str):
        with self._lock:
            # An expired job must never occupy a worker: sweep the
            # deadline queue right at the claim boundary too, not just
            # on the maintenance tick.
            self.expire_deadlines()
            job = self.queue.next_pending()
            if job is None:
                return None
            with inject(
                "job_claim", job=job.job_id, kind=job.kind, worker=worker
            ):
                self.journal.append(
                    "claim",
                    job_id=job.job_id,
                    worker=worker,
                    attempt=job.attempts + 1,
                )
            claimed = self.queue.mark_claimed(job.job_id, worker)
            if claimed.submitted_s:
                self._wait_hist.observe(
                    max(0.0, claimed.claimed_s - claimed.submitted_s)
                )
            self._update_queue_gauges()
            self.bus.publish(
                "job_state", job_id=claimed.job_id, state=claimed.state,
                kind=claimed.kind, worker=worker, attempt=claimed.attempts,
            )
            return claimed

    def finish_job(self, job_id: str, payload, telemetry=None, trace=None) -> None:
        with self._lock:
            job = self.queue.jobs.get(job_id)
            if job is None or job.state in (DONE, FAILED):
                return
            result = payload if isinstance(payload, dict) else None
            now = time.time()
            self.journal.append(
                "complete", job_id=job_id, result=result, finished_s=now
            )
            self.queue.mark_done(job_id, result)
            self.stats.completed += 1
            self._jobs_total.labels(state="done").inc()
            self._note_terminal(now)
            if job.claimed_s:
                self._run_hist.observe(max(0.0, time.time() - job.claimed_s))
            self._record_telemetry(telemetry)
            if trace:
                self._trace_for(job_id, job.kind).set_final(trace)
            self._update_queue_gauges()
            self.bus.publish(
                "job_state", job_id=job_id, state=DONE, kind=job.kind,
            )

    def fail_job(self, job_id: str, error: dict, telemetry=None, trace=None) -> None:
        with self._lock:
            job = self.queue.jobs.get(job_id)
            if job is None or job.state in (DONE, FAILED):
                return
            now = time.time()
            self.journal.append(
                "fail", job_id=job_id, error=error, finished_s=now
            )
            self.queue.mark_failed(job_id, error)
            self.stats.failed += 1
            self._jobs_total.labels(state="failed").inc()
            self._note_terminal(now)
            if job.claimed_s:
                self._run_hist.observe(max(0.0, time.time() - job.claimed_s))
            self._record_telemetry(telemetry)
            if trace:
                self._trace_for(job_id, job.kind).set_final(trace)
            self._update_queue_gauges()
            self.bus.publish(
                "job_state", job_id=job_id, state=FAILED, kind=job.kind,
                error_type=error.get("error_type"),
            )
            _log.warning(
                "job %s failed: %s: %s",
                job_id, error.get("error_type"), error.get("message"),
            )

    def requeue_job(self, job_id: str, reason: str, telemetry=None) -> None:
        with self._lock:
            job = self.queue.jobs.get(job_id)
            if job is None or job.state in (DONE, FAILED, PENDING):
                return
            self.journal.append(
                "requeue", job_id=job_id, attempts=job.attempts, reason=reason
            )
            self.queue.mark_requeued(job_id)
            self.stats.requeued += 1
            self._jobs_total.labels(state="requeued").inc()
            self._record_telemetry(telemetry)
            self._update_queue_gauges()
            self.bus.publish(
                "job_state", job_id=job_id, state=PENDING, kind=job.kind,
                reason=reason, attempts=job.attempts,
            )
            _log.warning("requeued job %s: %s", job_id, reason)

    # ------------------------------------------------------------------
    # periodic maintenance (deadlines, retention, compaction, disk)
    # ------------------------------------------------------------------
    def expire_deadlines(self, now: float | None = None) -> int:
        """Fail every pending job whose deadline has passed.

        Each expiry is a journaled structured failure -- the client
        reads ``DeadlineExceeded``, never a stuck ``pending``.  Safe to
        call from any thread at any time; returns how many expired.
        """
        with self._lock:
            now = time.time() if now is None else now
            expired = self.queue.expired_pending(now)
            for job in expired:
                error = {
                    "error_type": "DeadlineExceeded",
                    "message": (
                        f"deadline passed {now - job.deadline_s:.1f}s ago"
                        " while the job was still pending"
                    ),
                    "kind": "deterministic",
                    "deadline_s": job.deadline_s,
                }
                self.journal.append(
                    "fail", job_id=job.job_id, error=error, finished_s=now
                )
                self.queue.mark_failed(job.job_id, error)
                self.stats.expired += 1
                self._jobs_total.labels(state="expired").inc()
                self._note_terminal(now)
                self.bus.publish(
                    "job_state", job_id=job.job_id, state=FAILED,
                    kind=job.kind, error_type="DeadlineExceeded",
                )
            if expired:
                self._update_queue_gauges()
            return len(expired)

    def enforce_retention(self, now: float | None = None) -> int:
        """Evict terminal jobs past the count/age retention bounds.

        Journal first (an ``evict`` record), memory second -- replaying
        the journal after a crash reproduces exactly which payloads
        were dropped, and :meth:`JobQueue.restore` guarantees an
        evicted job never resurrects.  Returns how many were evicted.
        """
        with self._lock:
            now = time.time() if now is None else now
            candidates = self.queue.evict_candidates(
                self.config.retain_jobs, self.config.retain_s, now
            )
            for job in candidates:
                self.journal.append(
                    "evict",
                    job_id=job.job_id,
                    key=job.key,
                    kind=job.kind,
                    state=job.state,
                    finished_s=job.finished_s,
                    evicted_s=now,
                )
                self.queue.evict(job.job_id, evicted_s=now)
                self._traces.pop(job.job_id, None)
                self.stats.evicted += 1
                self._evictions_total.inc()
                self._jobs_total.labels(state="evicted").inc()
                self.bus.publish(
                    "job_state", job_id=job.job_id, state=EVICTED,
                    kind=job.kind, terminal_state=job.state,
                )
            return len(candidates)

    def maybe_compact(self) -> bool:
        """Rewrite the journal online once mostly-dead records dominate.

        Uses a cheap live-record estimate (two records per resident job,
        one per tombstone) against the journal's durable record count;
        below ``compact_ratio`` the queue is re-serialized through the
        same atomic compactor the startup path uses.  Runs under the
        core lock, so submits briefly queue behind a compaction --
        that is the price of never replaying an unbounded file.
        """
        with self._lock:
            total = self.journal.records_in_file
            if total < max(1, self.config.compact_min):
                return False
            live = 2 * len(self.queue.jobs) + len(self.queue.evicted)
            if live / total >= self.config.compact_ratio:
                return False
            self.journal.compact(self.queue.live_records())
            self.stats.compactions += 1
            self._compactions_total.inc()
            self.lifecycle(
                "journal_compacted", before=total,
                after=self.journal.records_in_file,
            )
            return True

    def _disk_free_mb(self) -> float:
        """Free space on the state-dir filesystem, in MiB.

        The ``disk_full`` fault site models a full disk: an injected
        fault reads as zero bytes free.
        """
        try:
            with inject("disk_full", path=str(self.config.state_dir)):
                usage = os.statvfs(self.config.state_dir)
        except FaultInjected:
            return 0.0
        except OSError:
            return float("inf")  # cannot stat: do not flap into degraded
        return usage.f_bavail * usage.f_frsize / (1024 * 1024)

    def check_disk(self) -> bool:
        """Flip degraded mode on disk pressure; recover with hysteresis.

        Degraded entry triggers at ``min_free_mb``; exit waits for
        ``DISK_RECOVER_FACTOR`` times that, so a daemon hovering at the
        floor does not oscillate.  Returns the current degraded state.
        """
        floor = self.config.min_free_mb
        if floor <= 0:
            return False
        free_mb = self._disk_free_mb()
        with self._lock:
            if not self.degraded and free_mb < floor:
                self._enter_degraded_locked(free_mb)
            elif self.degraded and free_mb >= self.DISK_RECOVER_FACTOR * floor:
                self._exit_degraded_locked(free_mb)
            return self.degraded

    def maintenance(self) -> None:
        """One background upkeep pass; every step is independently safe."""
        self.expire_deadlines()
        self.enforce_retention()
        self.maybe_compact()
        self.check_disk()

    # ------------------------------------------------------------------
    # worker-pool observability hooks
    # ------------------------------------------------------------------
    def drop_worker(self, worker: str) -> None:
        """Forget a retired/reaped worker's per-worker gauge labels.

        Without this a weeks-old autoscaling daemon accumulates one
        dead ``heartbeat_age_seconds`` label set per worker it ever
        ran.
        """
        self._heartbeat_age.remove(worker=worker)

    def note_worker_pool(self, counts: dict) -> None:
        """Supervisor hook: publish ``repro_workers{state}`` gauges."""
        for state in ("idle", "busy", "booting"):
            self._workers_gauge.labels(state=state).set(
                int(counts.get(state, 0))
            )

    def stats_bump(self, counter: str) -> None:
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)

    def start_drain(self) -> None:
        with self._lock:
            self.draining = True

    def close(self) -> None:
        self.bus.close()
        with self._lock:
            self.journal.close()


# ----------------------------------------------------------------------
# socket transport
# ----------------------------------------------------------------------
class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        core: ServerCore = self.server.core  # type: ignore[attr-defined]
        try:
            message = read_message(self.rfile)
        except ProtocolError as exc:
            self._reply({"ok": False, "code": "bad_request", "error": str(exc)})
            return
        if message is None:
            return
        op = message.get("op")
        try:
            if op == "ping":
                response = {"ok": True, "pid": os.getpid()}
            elif op == "submit":
                response = core.submit(
                    message.get("job") or {},
                    priority=int(message.get("priority", 0) or 0),
                    deadline=float(message.get("deadline", 0) or 0),
                )
            elif op == "status":
                response = core.status(str(message.get("job_id", "")))
            elif op == "result":
                response = core.result(str(message.get("job_id", "")))
            elif op == "stats":
                response = core.stats_view()
            elif op == "metrics":
                response = core.metrics_view()
            elif op == "trace":
                response = core.trace_view(str(message.get("job_id", "")))
            elif op == "subscribe":
                self._subscribe(core, message)
                return  # long-lived connection; already closed by now
            elif op == "drain":
                self.server.request_shutdown()  # type: ignore[attr-defined]
                response = {"ok": True, "draining": True}
            else:
                response = {
                    "ok": False, "code": "bad_request",
                    "error": f"unknown op {op!r}",
                }
        except ProtocolError as exc:
            response = {"ok": False, "code": "bad_request", "error": str(exc)}
        except JournalError as exc:
            response = {"ok": False, "code": "internal", "error": str(exc)}
        self._reply(response, op=str(op))

    def _subscribe(self, core: ServerCore, message: dict) -> None:
        """Serve one long-lived feed connection until either side quits.

        The first line is ``{"ok": true, "snapshot": {...}}``, then the
        backlog replay, then live events as they happen -- one JSON
        object per line, exactly the request framing in reverse.  The
        daemon notices a dead client at the next write (every metric
        tick at the latest) and unsubscribes it; a bus shutdown (drain)
        wakes the blocking read and ends the stream cleanly.
        """
        job_id = str(message.get("job_id") or "") or None
        sub = core.bus.subscribe(
            job_id=job_id, backlog=bool(message.get("backlog", True))
        )
        core._feed_subscribers.set(core.bus.subscriber_count())
        try:
            self.wfile.write(
                encode_message(
                    {"ok": True, "snapshot": core.feed_snapshot(job_id)}
                )
            )
            self.wfile.flush()
            while True:
                event = sub.get(timeout_s=0.5)
                if event is None:
                    if sub.closed:
                        return
                    continue
                self.wfile.write(encode_message(event))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # the subscriber went away; nothing to clean but state
        finally:
            core.bus.unsubscribe(sub)
            core._feed_subscribers.set(core.bus.subscriber_count())

    def _reply(self, response: dict, op: str = "?") -> None:
        try:
            # Context key is `request`, not `op`: op= is reserved by the
            # fault-spec syntax for corrupt_design operators.
            with inject("client_disconnect", request=op):
                self.wfile.write(encode_message(response))
                self.wfile.flush()
        except FaultInjected:
            # Injected mid-response disconnect: close without replying,
            # exactly as a client crash or cut connection would look.
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # the client went away; its retry will reconnect


class _Server(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, socket_path: Path, core: ServerCore, stop_event):
        self.core = core
        self._stop_event = stop_event
        super().__init__(str(socket_path), _Handler)

    def request_shutdown(self) -> None:
        self._stop_event.set()


def _claim_pidfile(pid_path: Path) -> None:
    """Refuse to double-start; adopt the pidfile of a dead daemon."""
    pid_path.parent.mkdir(parents=True, exist_ok=True)
    for _ in range(2):
        try:
            fd = os.open(pid_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.write(fd, str(os.getpid()).encode("ascii"))
            os.close(fd)
            return
        except FileExistsError:
            try:
                pid = int(pid_path.read_text().strip() or "0")
            except (OSError, ValueError):
                pid = 0
            if pid > 0 and pid != os.getpid() and _pid_alive(pid):
                raise ServeError(
                    f"daemon already running (pid {pid}, {pid_path})"
                ) from None
            # Stale pidfile from a killed daemon: take over.
            pid_path.unlink(missing_ok=True)
    raise ServeError(f"cannot claim pidfile {pid_path}")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def serve(config: ServeConfig) -> int:
    """Run the daemon until drained; returns the process exit status.

    Blocks the calling thread.  SIGTERM/SIGINT (or a client ``drain``
    op) stop intake, give in-flight jobs ``drain_s`` seconds, flush the
    journal, and return 0.
    """
    _claim_pidfile(config.pid_path)
    stop = threading.Event()
    core = ServerCore(config)
    try:
        config.socket_path.unlink(missing_ok=True)
        server = _Server(config.socket_path, core, stop)
    except OSError as exc:
        config.pid_path.unlink(missing_ok=True)
        core.close()
        raise ServeError(
            f"cannot bind socket {config.socket_path}: {exc}"
        ) from exc

    supervisor = Supervisor(
        core,
        workers=config.workers,
        max_workers=config.max_workers,
        scale_up_pending=config.scale_up_pending,
        scale_cooldown_s=config.scale_cooldown_s,
        idle_retire_s=config.idle_retire_s,
        heartbeat_s=config.heartbeat_s,
        job_timeout_s=config.job_timeout_s,
        restart_budget=config.restart_budget,
        forward_spans=config.worker_trace,
    )

    def on_signal(signum, _frame):
        _log.warning("received signal %d; draining", signum)
        stop.set()

    old_handlers = {
        sig: signal.signal(sig, on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    server_thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.1},
        name="repro-serve-socket",
        daemon=True,
    )
    ticker_stop = threading.Event()

    def maintenance_ticker():
        # Two cadences in one loop.  Maintenance (deadline expiry,
        # retention, online compaction, the disk guard) runs every
        # tick -- deadlines should expire within ~half a second of
        # passing.  Metric summaries keep their configured interval,
        # double as feed keepalives (a dead subscriber is detected at
        # the next tick's failed write), and are skipped with no
        # subscribers (the backlog ring should hold job history, not
        # clock noise).
        tick = max(0.1, min(0.5, config.metrics_interval_s))
        metrics_interval = max(0.2, config.metrics_interval_s)
        last_metrics = time.monotonic()
        while not ticker_stop.wait(tick):
            try:
                core.maintenance()
            except Exception:  # noqa: BLE001 -- upkeep must outlive bugs
                _log.exception("maintenance pass failed; continuing")
            now = time.monotonic()
            if now - last_metrics < metrics_interval:
                continue
            last_metrics = now
            if core.bus.subscriber_count() == 0:
                continue
            view = core.stats_view()
            core.bus.publish(
                "metrics",
                pending=view["pending"],
                running=view["running"],
                jobs=view["jobs"],
                completed=view["stats"]["completed"],
                failed=view["stats"]["failed"],
                worker_respawns=view["stats"]["worker_respawns"],
                feed_dropped=core.bus.dropped_total(),
            )

    ticker_thread = threading.Thread(
        target=maintenance_ticker, name="repro-serve-maintenance", daemon=True
    )
    try:
        supervisor.start()
        server_thread.start()
        ticker_thread.start()
        _log.warning(
            "serving on %s (journal %s, %d worker(s), %d job(s) recovered)",
            config.socket_path, config.journal_path,
            config.workers, core.stats.recovered,
        )
        stop.wait()
        # --- graceful drain -------------------------------------------
        core.start_drain()  # submits now answer code=draining
        drained = supervisor.drain(config.drain_s)
        _log.warning(
            "drain %s; shutting down",
            "complete" if drained else "timed out",
        )
    finally:
        ticker_stop.set()
        supervisor.stop()
        server.shutdown()
        server.server_close()
        server_thread.join(timeout=5.0)
        if ticker_thread.ident is not None:
            ticker_thread.join(timeout=2.0)
        core.close()
        config.socket_path.unlink(missing_ok=True)
        config.pid_path.unlink(missing_ok=True)
        for sig, handler in old_handlers.items():
            signal.signal(sig, handler)
    return 0
