"""The flow-as-a-service daemon: intake, recovery, backpressure, drain.

``repro serve`` turns the batch matrix engine into a long-lived
evaluation server.  Clients speak the JSON-lines protocol of
:mod:`repro.serve.protocol` over a Unix socket; jobs flow through the
journaled queue (:mod:`repro.serve.queue`) into the supervised worker
pool (:mod:`repro.serve.supervisor`).

Crash safety is one invariant, enforced in :class:`ServerCore`: **the
journal is written and fsync'd before any in-memory transition, and
before any acknowledgment leaves the process.**  Restart (including
after ``kill -9``) replays the journal, requeues whatever was claimed
but unfinished, and compacts the file.  Re-running a recovered matrix
job costs nothing redundant: completed cells reload from the
content-addressed result cache and interrupted matrices resume through
their run-manifest, so a served run interrupted at any instant still
converges to results byte-identical to a clean batch run.

Admission control: past ``REPRO_SERVE_QUEUE_MAX`` pending jobs a submit
is rejected with ``code=busy`` and a ``retry_after`` hint instead of
letting the backlog (and every client's latency) grow without bound.
Deduplicated submits are always admitted -- they add no work.

Graceful drain: SIGTERM/SIGINT flips the daemon into draining mode --
new submits are rejected (``code=draining``), status/result stay
available, in-flight jobs get ``REPRO_SERVE_DRAIN_S`` seconds to
finish, the journal is flushed, and the process exits 0.  Jobs still
running at the deadline stay claimed in the journal and are requeued by
the next start.

Environment knobs (all prefixed ``REPRO_SERVE_``)
-------------------------------------------------
``DIR`` state directory (journal, socket, pidfile); ``WORKERS`` pool
size; ``QUEUE_MAX`` pending high-water mark; ``HEARTBEAT_S`` worker
heartbeat interval (stale after 3x); ``JOB_TIMEOUT_S`` per-job hang
limit (0 disables); ``RESTART_BUDGET`` attempts before a poison job is
failed; ``DRAIN_S`` drain deadline; ``RETRY_AFTER_S`` backpressure
hint.  CLI flags override the environment.
"""

from __future__ import annotations

import os
import signal
import socket
import socketserver
import threading
import time
from dataclasses import dataclass, field, fields
from pathlib import Path

from repro.errors import ServeError
from repro.experiments.cache import cache_dir
from repro.experiments.faults import FaultInjected, inject
from repro.experiments.telemetry import get_telemetry
from repro.log import get_logger
from repro.serve.journal import Journal, JournalError
from repro.serve.protocol import (
    ProtocolError,
    encode_message,
    job_key,
    normalize_spec,
    read_message,
)
from repro.serve.queue import DONE, FAILED, PENDING, JobQueue, QueueFull
from repro.serve.supervisor import Supervisor

__all__ = ["ServeConfig", "ServerCore", "ServerStats", "serve"]

_log = get_logger("serve.daemon")


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, "") or default)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "") or default)
    except ValueError:
        return default


@dataclass
class ServeConfig:
    """Resolved daemon configuration (env defaults, CLI overrides)."""

    state_dir: Path
    workers: int = 2
    queue_max: int = 64
    heartbeat_s: float = 1.0
    job_timeout_s: float = 600.0
    restart_budget: int = 3
    drain_s: float = 30.0
    retry_after_s: float = 2.0
    socket_path: Path | None = None

    @staticmethod
    def from_env(**overrides) -> "ServeConfig":
        """Build from ``$REPRO_SERVE_*``; non-``None`` overrides win."""
        state_dir = Path(
            os.environ.get("REPRO_SERVE_DIR") or (cache_dir() / "serve")
        ).expanduser()
        config = ServeConfig(
            state_dir=state_dir,
            workers=_env_int("REPRO_SERVE_WORKERS", 2),
            queue_max=_env_int("REPRO_SERVE_QUEUE_MAX", 64),
            heartbeat_s=_env_float("REPRO_SERVE_HEARTBEAT_S", 1.0),
            job_timeout_s=_env_float("REPRO_SERVE_JOB_TIMEOUT_S", 600.0),
            restart_budget=_env_int("REPRO_SERVE_RESTART_BUDGET", 3),
            drain_s=_env_float("REPRO_SERVE_DRAIN_S", 30.0),
            retry_after_s=_env_float("REPRO_SERVE_RETRY_AFTER_S", 2.0),
        )
        for name, value in overrides.items():
            if value is None:
                continue
            if name not in {f.name for f in fields(ServeConfig)}:
                raise ServeError(f"unknown serve option {name!r}")
            setattr(config, name, value)
        config.state_dir = Path(config.state_dir)
        if config.socket_path is None:
            config.socket_path = config.state_dir / "serve.sock"
        config.socket_path = Path(config.socket_path)
        return config

    @property
    def journal_path(self) -> Path:
        return self.state_dir / "journal.wal"

    @property
    def pid_path(self) -> Path:
        return self.state_dir / "daemon.pid"


@dataclass
class ServerStats:
    """Daemon-side counters (the workers' flow telemetry merges apart)."""

    submitted: int = 0
    deduped: int = 0
    completed: int = 0
    failed: int = 0
    requeued: int = 0
    recovered: int = 0
    busy_rejected: int = 0
    draining_rejected: int = 0
    worker_respawns: int = 0
    hangs_detected: int = 0
    started_s: float = field(default_factory=time.time)

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "deduped": self.deduped,
            "completed": self.completed,
            "failed": self.failed,
            "requeued": self.requeued,
            "recovered": self.recovered,
            "busy_rejected": self.busy_rejected,
            "draining_rejected": self.draining_rejected,
            "worker_respawns": self.worker_respawns,
            "hangs_detected": self.hangs_detected,
            "uptime_s": time.time() - self.started_s,
        }


class ServerCore:
    """Journal + queue + stats behind one lock; transport-agnostic.

    Every mutator follows the same order: journal (fsync'd) first, then
    memory, then acknowledgment.  A :class:`JournalError` aborts the
    transition entirely -- the daemon would rather refuse work than
    accept work it might lose.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        self.stats = ServerStats()
        self.draining = False
        self._lock = threading.RLock()
        config.state_dir.mkdir(parents=True, exist_ok=True)
        self.journal = Journal(config.journal_path)
        records = self.journal.open()
        self.queue = JobQueue(max_pending=config.queue_max)
        recovered = self.queue.restore(records)
        self.stats.recovered = len(recovered)
        if records:
            # Startup is the one quiet moment: squash the replayed
            # history down to its live state so the file stays bounded.
            self.journal.compact(self.queue.live_records())
        for job_id in recovered:
            job = self.queue.jobs[job_id]
            self.journal.append(
                "requeue", job_id=job_id, attempts=job.attempts,
                reason="recovered",
            )

    # ------------------------------------------------------------------
    # client-facing operations
    # ------------------------------------------------------------------
    def submit(self, raw_spec: dict, priority: int = 0) -> dict:
        spec = normalize_spec(raw_spec)
        key = job_key(spec)
        with self._lock:
            existing = self.queue.lookup_key(key)
            if existing is not None:
                self.stats.deduped += 1
                return {
                    "ok": True,
                    "job_id": existing.job_id,
                    "state": existing.state,
                    "deduped": True,
                }
            if self.draining:
                self.stats.draining_rejected += 1
                return {
                    "ok": False,
                    "code": "draining",
                    "error": "daemon is draining; submit again after restart",
                    "retry_after": self.config.retry_after_s,
                }
            try:
                job = self.queue.make_job(
                    spec["kind"], spec, key, int(priority)
                )
            except QueueFull as exc:
                self.stats.busy_rejected += 1
                return {
                    "ok": False,
                    "code": "busy",
                    "error": str(exc),
                    "retry_after": self.config.retry_after_s,
                }
            self.journal.append(
                "submit",
                job_id=job.job_id,
                job_seq=job.seq,
                key=key,
                kind=job.kind,
                spec=spec,
                priority=job.priority,
                submitted_s=job.submitted_s,
            )
            self.queue.add(job)
            self.stats.submitted += 1
            return {
                "ok": True,
                "job_id": job.job_id,
                "state": job.state,
                "deduped": False,
            }

    def status(self, job_id: str) -> dict:
        with self._lock:
            job = self.queue.jobs.get(job_id)
            if job is None:
                return {
                    "ok": False, "code": "unknown_job",
                    "error": f"no such job {job_id!r}",
                }
            view = job.status_view()
            position = self.queue.position(job_id)
            if position is not None:
                view["pending_ahead"] = position
            view["ok"] = True
            view["draining"] = self.draining
            return view

    def result(self, job_id: str) -> dict:
        with self._lock:
            job = self.queue.jobs.get(job_id)
            if job is None:
                return {
                    "ok": False, "code": "unknown_job",
                    "error": f"no such job {job_id!r}",
                }
            view = job.status_view()
            view["ok"] = True
            if job.state == DONE:
                view["result"] = job.result
            return view

    def stats_view(self) -> dict:
        with self._lock:
            return {
                "ok": True,
                "draining": self.draining,
                "pending": self.queue.pending_count(),
                "running": self.queue.running_count(),
                "jobs": len(self.queue.jobs),
                "stats": self.stats.to_dict(),
                "telemetry": get_telemetry().snapshot(),
            }

    # ------------------------------------------------------------------
    # supervisor-facing operations (journal first, memory second)
    # ------------------------------------------------------------------
    def job(self, job_id: str):
        with self._lock:
            return self.queue.jobs.get(job_id)

    def claim_job(self, worker: str):
        with self._lock:
            job = self.queue.next_pending()
            if job is None:
                return None
            with inject(
                "job_claim", job=job.job_id, kind=job.kind, worker=worker
            ):
                self.journal.append(
                    "claim",
                    job_id=job.job_id,
                    worker=worker,
                    attempt=job.attempts + 1,
                )
            return self.queue.mark_claimed(job.job_id, worker)

    def finish_job(self, job_id: str, payload, telemetry=None) -> None:
        with self._lock:
            job = self.queue.jobs.get(job_id)
            if job is None or job.state in (DONE, FAILED):
                return
            result = payload if isinstance(payload, dict) else None
            self.journal.append("complete", job_id=job_id, result=result)
            self.queue.mark_done(job_id, result)
            self.stats.completed += 1
            if telemetry:
                get_telemetry().merge(telemetry)

    def fail_job(self, job_id: str, error: dict, telemetry=None) -> None:
        with self._lock:
            job = self.queue.jobs.get(job_id)
            if job is None or job.state in (DONE, FAILED):
                return
            self.journal.append("fail", job_id=job_id, error=error)
            self.queue.mark_failed(job_id, error)
            self.stats.failed += 1
            if telemetry:
                get_telemetry().merge(telemetry)
            _log.warning(
                "job %s failed: %s: %s",
                job_id, error.get("error_type"), error.get("message"),
            )

    def requeue_job(self, job_id: str, reason: str, telemetry=None) -> None:
        with self._lock:
            job = self.queue.jobs.get(job_id)
            if job is None or job.state in (DONE, FAILED, PENDING):
                return
            self.journal.append(
                "requeue", job_id=job_id, attempts=job.attempts, reason=reason
            )
            self.queue.mark_requeued(job_id)
            self.stats.requeued += 1
            if telemetry:
                get_telemetry().merge(telemetry)
            _log.warning("requeued job %s: %s", job_id, reason)

    def stats_bump(self, counter: str) -> None:
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)

    def start_drain(self) -> None:
        with self._lock:
            self.draining = True

    def close(self) -> None:
        with self._lock:
            self.journal.close()


# ----------------------------------------------------------------------
# socket transport
# ----------------------------------------------------------------------
class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        core: ServerCore = self.server.core  # type: ignore[attr-defined]
        try:
            message = read_message(self.rfile)
        except ProtocolError as exc:
            self._reply({"ok": False, "code": "bad_request", "error": str(exc)})
            return
        if message is None:
            return
        op = message.get("op")
        try:
            if op == "ping":
                response = {"ok": True, "pid": os.getpid()}
            elif op == "submit":
                response = core.submit(
                    message.get("job") or {},
                    priority=int(message.get("priority", 0) or 0),
                )
            elif op == "status":
                response = core.status(str(message.get("job_id", "")))
            elif op == "result":
                response = core.result(str(message.get("job_id", "")))
            elif op == "stats":
                response = core.stats_view()
            elif op == "drain":
                self.server.request_shutdown()  # type: ignore[attr-defined]
                response = {"ok": True, "draining": True}
            else:
                response = {
                    "ok": False, "code": "bad_request",
                    "error": f"unknown op {op!r}",
                }
        except ProtocolError as exc:
            response = {"ok": False, "code": "bad_request", "error": str(exc)}
        except JournalError as exc:
            response = {"ok": False, "code": "internal", "error": str(exc)}
        self._reply(response, op=str(op))

    def _reply(self, response: dict, op: str = "?") -> None:
        try:
            # Context key is `request`, not `op`: op= is reserved by the
            # fault-spec syntax for corrupt_design operators.
            with inject("client_disconnect", request=op):
                self.wfile.write(encode_message(response))
                self.wfile.flush()
        except FaultInjected:
            # Injected mid-response disconnect: close without replying,
            # exactly as a client crash or cut connection would look.
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # the client went away; its retry will reconnect


class _Server(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, socket_path: Path, core: ServerCore, stop_event):
        self.core = core
        self._stop_event = stop_event
        super().__init__(str(socket_path), _Handler)

    def request_shutdown(self) -> None:
        self._stop_event.set()


def _claim_pidfile(pid_path: Path) -> None:
    """Refuse to double-start; adopt the pidfile of a dead daemon."""
    pid_path.parent.mkdir(parents=True, exist_ok=True)
    for _ in range(2):
        try:
            fd = os.open(pid_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.write(fd, str(os.getpid()).encode("ascii"))
            os.close(fd)
            return
        except FileExistsError:
            try:
                pid = int(pid_path.read_text().strip() or "0")
            except (OSError, ValueError):
                pid = 0
            if pid > 0 and pid != os.getpid() and _pid_alive(pid):
                raise ServeError(
                    f"daemon already running (pid {pid}, {pid_path})"
                ) from None
            # Stale pidfile from a killed daemon: take over.
            pid_path.unlink(missing_ok=True)
    raise ServeError(f"cannot claim pidfile {pid_path}")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def serve(config: ServeConfig) -> int:
    """Run the daemon until drained; returns the process exit status.

    Blocks the calling thread.  SIGTERM/SIGINT (or a client ``drain``
    op) stop intake, give in-flight jobs ``drain_s`` seconds, flush the
    journal, and return 0.
    """
    _claim_pidfile(config.pid_path)
    stop = threading.Event()
    core = ServerCore(config)
    try:
        config.socket_path.unlink(missing_ok=True)
        server = _Server(config.socket_path, core, stop)
    except OSError as exc:
        config.pid_path.unlink(missing_ok=True)
        core.close()
        raise ServeError(
            f"cannot bind socket {config.socket_path}: {exc}"
        ) from exc

    supervisor = Supervisor(
        core,
        workers=config.workers,
        heartbeat_s=config.heartbeat_s,
        job_timeout_s=config.job_timeout_s,
        restart_budget=config.restart_budget,
    )

    def on_signal(signum, _frame):
        _log.warning("received signal %d; draining", signum)
        stop.set()

    old_handlers = {
        sig: signal.signal(sig, on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    server_thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.1},
        name="repro-serve-socket",
        daemon=True,
    )
    try:
        supervisor.start()
        server_thread.start()
        _log.warning(
            "serving on %s (journal %s, %d worker(s), %d job(s) recovered)",
            config.socket_path, config.journal_path,
            config.workers, core.stats.recovered,
        )
        stop.wait()
        # --- graceful drain -------------------------------------------
        core.start_drain()  # submits now answer code=draining
        drained = supervisor.drain(config.drain_s)
        _log.warning(
            "drain %s; shutting down",
            "complete" if drained else "timed out",
        )
    finally:
        supervisor.stop()
        server.shutdown()
        server.server_close()
        server_thread.join(timeout=5.0)
        core.close()
        config.socket_path.unlink(missing_ok=True)
        config.pid_path.unlink(missing_ok=True)
        for sig, handler in old_handlers.items():
            signal.signal(sig, handler)
    return 0
