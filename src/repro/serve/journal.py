"""Write-ahead job journal: append-only, checksummed, fsync'd records.

The daemon's whole crash-safety story rests on one file.  Every queue
transition -- ``submit``, ``claim``, ``complete``, ``fail``,
``requeue`` -- is appended to the journal and **fsync'd before the
transition is acknowledged** (to a client, or acted on by the worker
pool).  The in-memory queue is always a pure function of the journal,
so a ``kill -9`` at any instant loses at most the record being written
-- never an acknowledged one.

Record framing
--------------
One record per line::

    <sha256(body)[:16]> <canonical-JSON body>\\n

The checksum covers the exact body bytes, so a torn write (power loss,
``kill -9`` mid-``write``) leaves a tail that fails verification.
:func:`replay_file` reads records until the first unverifiable line and
reports where the valid prefix ends; :meth:`Journal.open` then truncates
the file back to that point before appending again.  A record is only
considered durable once its full line (including the newline) hit the
disk -- exactly the records ``replay_file`` returns.

Records are plain dicts with at least ``type`` and ``seq`` (a
monotonically increasing integer; appends continue after the replayed
maximum).  Unknown record types are preserved by replay and ignored by
the queue reducer, so old daemons can read journals written by newer
ones.

Compaction
----------
The journal only grows, so :meth:`Journal.compact` rewrites it from a
caller-supplied record list (typically the live queue re-serialized:
one ``submit`` plus the terminal record per job) into a temporary file,
fsyncs it, and atomically renames it over the old journal.  A crash
during compaction leaves either the old or the new journal -- never a
mix.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

from repro.errors import ServeError
from repro.experiments.faults import inject
from repro.log import get_logger

__all__ = ["Journal", "JournalError", "replay_file", "verify_line"]

_log = get_logger("serve.journal")

#: Hex digits of SHA-256 prefixing each record line.
_CHECKSUM_LEN = 16

#: Refuse to journal absurd records (a corrupted caller, not a queue).
_MAX_RECORD_BYTES = 32 * 1024 * 1024


class JournalError(ServeError):
    """The journal could not be written (its *reads* never raise)."""

    errno: int | None = None  # underlying OS errno, when one caused this


def _frame(record: dict) -> bytes:
    """Serialize one record to its checksummed line."""
    body = json.dumps(
        record, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")
    digest = hashlib.sha256(body).hexdigest()[:_CHECKSUM_LEN].encode("ascii")
    return digest + b" " + body + b"\n"


def verify_line(line: bytes) -> dict | None:
    """Decode one journal line; ``None`` when torn, truncated or tampered."""
    if b" " not in line:
        return None
    digest, body = line.split(b" ", 1)
    if len(digest) != _CHECKSUM_LEN:
        return None
    if hashlib.sha256(body).hexdigest()[:_CHECKSUM_LEN].encode("ascii") != digest:
        return None
    try:
        record = json.loads(body)
    except ValueError:
        return None
    if not isinstance(record, dict) or not isinstance(record.get("type"), str):
        return None
    return record


def replay_file(path: Path) -> tuple[list[dict], int, int]:
    """Read every durable record of a journal file.

    Returns ``(records, valid_bytes, dropped_bytes)``: the records whose
    full line verified, the byte offset where the valid prefix ends, and
    how many trailing bytes failed verification.  Replay stops at the
    *first* bad line -- in an append-only, fsync-per-record file,
    anything after a torn record was never acknowledged.  A missing file
    is an empty journal, never an error.
    """
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return [], 0, 0
    records: list[dict] = []
    offset = 0
    while offset < len(data):
        end = data.find(b"\n", offset)
        if end < 0:
            break  # no newline: the final write was torn
        record = verify_line(data[offset:end])
        if record is None:
            break
        records.append(record)
        offset = end + 1
    dropped = len(data) - offset
    if dropped:
        _log.warning(
            "journal %s: dropping %d unverifiable trailing byte(s) after"
            " %d durable record(s)", path.name, dropped, len(records),
        )
    return records, offset, dropped


class Journal:
    """One append-only journal file, opened for the daemon's lifetime.

    ``registry``, when given, receives a ``repro_journal_fsync_seconds``
    histogram observation per append -- fsync latency is the floor under
    every acknowledgment the daemon sends, so it is the first thing to
    look at when submit latency drifts.
    """

    def __init__(self, path: str | Path, registry=None):
        self.path = Path(path)
        self._fh = None
        self._seq = 0
        self._records_in_file = 0
        self._fsync_hist = None
        if registry is not None:
            self._fsync_hist = registry.histogram(
                "repro_journal_fsync_seconds",
                "Wall time of one durable journal append (write+flush+fsync)",
            )

    @property
    def records_in_file(self) -> int:
        """How many durable records the file holds right now.

        Replay count plus appends since, reset by compaction -- the
        denominator of the online-compaction live-fraction trigger.
        """
        return self._records_in_file

    @property
    def seq(self) -> int:
        """The sequence number the *next* appended record will carry."""
        return self._seq

    @property
    def is_open(self) -> bool:
        return self._fh is not None

    def open(self) -> list[dict]:
        """Replay the existing file, truncate any torn tail, open to append.

        Returns the durable records (possibly empty).  After this call
        :meth:`append` is usable and sequence numbers continue after the
        replayed maximum.
        """
        records, valid_bytes, dropped = replay_file(self.path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(self.path, "ab")
        try:
            if dropped:
                fh.truncate(valid_bytes)
                fh.seek(0, os.SEEK_END)
        except OSError as exc:
            fh.close()
            raise JournalError(
                f"cannot truncate torn journal tail of {self.path}: {exc}"
            ) from exc
        self._fh = fh
        self._seq = 1 + max(
            (r["seq"] for r in records if isinstance(r.get("seq"), int)),
            default=-1,
        )
        self._records_in_file = len(records)
        return records

    def append(self, rtype: str, **fields) -> dict:
        """Durably append one record; returns it (with ``seq`` assigned).

        The record is on disk (written, flushed, fsync'd) when this
        returns -- callers acknowledge or act only after that.  Raises
        :class:`JournalError` when durability cannot be guaranteed; the
        in-memory state must not transition in that case.
        """
        if self._fh is None:
            raise JournalError("journal is not open")
        record = {"type": rtype, "seq": self._seq, **fields}
        line = _frame(record)
        if len(line) > _MAX_RECORD_BYTES:
            raise JournalError(
                f"journal record of {len(line)} bytes exceeds the"
                f" {_MAX_RECORD_BYTES}-byte limit"
            )
        started = time.perf_counter()
        try:
            with inject("journal_write", type=rtype, path=str(self.path)):
                self._fh.write(line)
                self._fh.flush()
                os.fsync(self._fh.fileno())
        except OSError as exc:
            error = JournalError(
                f"journal append failed for {self.path}: {exc}"
            )
            # Preserve the errno so the daemon can tell disk exhaustion
            # (ENOSPC -> degraded mode) from other write failures.
            error.errno = exc.errno
            raise error from exc
        if self._fsync_hist is not None:
            self._fsync_hist.observe(time.perf_counter() - started)
        self._seq += 1
        self._records_in_file += 1
        return record

    def compact(self, records: list[dict]) -> None:
        """Atomically replace the journal's contents with ``records``.

        Records are re-framed (fresh checksums) into ``<path>.compact``,
        fsync'd, and renamed over the live file; the directory entry is
        fsync'd too so the rename itself is durable.  The append handle
        is re-opened on the new file.  Sequence numbering continues --
        compaction never reuses a seq.

        Crash-safe at any instant: the ``compaction_crash`` fault site
        fires once with ``phase=written`` (tmp durable, rename not yet
        issued -- a crash leaves the *old* journal plus a stray tmp) and
        once with ``phase=replaced`` (rename durable -- a crash leaves
        the *new* journal).  Either way replay sees one valid file.
        """
        was_open = self._fh is not None
        if was_open:
            self._fh.close()
            self._fh = None
        tmp = self.path.with_suffix(".compact")
        try:
            with open(tmp, "wb") as fh:
                for record in records:
                    fh.write(_frame(record))
                fh.flush()
                os.fsync(fh.fileno())
            with inject(
                "compaction_crash", phase="written", path=str(self.path)
            ):
                os.replace(tmp, self.path)
            dir_fd = os.open(self.path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
            with inject(
                "compaction_crash", phase="replaced", path=str(self.path)
            ):
                self._records_in_file = len(records)
        except OSError as exc:
            raise JournalError(
                f"journal compaction failed for {self.path}: {exc}"
            ) from exc
        finally:
            tmp.unlink(missing_ok=True)
            if was_open:
                self._fh = open(self.path, "ab")

    def close(self) -> None:
        """Flush and close the append handle (replay still works)."""
        if self._fh is not None:
            try:
                self._fh.flush()
                os.fsync(self._fh.fileno())
            except OSError:
                pass
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        self.open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
