"""Wire protocol and job-spec normalization for the evaluation daemon.

Transport is JSON-lines over a Unix stream socket: each request is one
JSON object on one ``\\n``-terminated line, answered by exactly one JSON
object on one line.  Every response carries ``"ok"``; failures add
``"error"`` (human text) and ``"code"`` (machine string -- ``busy``,
``draining``, ``disk_pressure``, ``evicted``, ``unknown_job``,
``bad_request``, ``internal``).  The
connection closes after the response, so clients reconnect per request
-- which is also what makes daemon restarts invisible to a polling
client.

Operations: ``ping``, ``submit`` (a job spec, below), ``status`` /
``result`` / ``trace`` (by ``job_id``; ``trace`` returns the job's
incrementally-stitched span tree, valid mid-run), ``stats``,
``metrics`` (the typed registry snapshot; render with
:func:`repro.obs.registry.render_prometheus`), ``drain``, and
``subscribe``.  ``subscribe`` is the one op that does *not* close after
one response: the connection becomes a JSON-lines event feed -- first a
``{"ok": true, "snapshot": ...}`` line, then backlog replay and live
events (``job_state``, ``span_open``/``span_close``, ``lifecycle``,
``metrics``, ``feed_gap``), each carrying a bus-global ``seq``.  An
optional ``job_id`` filters the feed to one job plus daemon-wide
events; the feed is best-effort (bounded queues, drop-and-count) and
journaled nowhere.

Job specs
---------
A submitted job is ``{"kind": ..., ...}`` with one of four kinds:

``flow``
    One matrix cell: ``design``, ``config``, ``period_ns``, ``scale``,
    ``seed``.
``matrix``
    A full evaluation matrix: ``designs``, ``configs``, ``scale``,
    ``seed``, optional pinned ``periods``.
``sweep``
    One 12-track max-frequency search: ``design``, ``scale``, ``seed``.
``probe``
    A cheap health-check job that echoes ``payload`` after ``seconds``
    of sleep; ``nonce`` differentiates probes that must not dedup, and
    ``fail`` (``"deterministic"``/``"transient"``) forces a failure --
    the serving analog of the fault-injection harness.

:func:`normalize_spec` validates a raw spec and fills every default
*explicitly* (e.g. ``scale`` becomes a concrete float), because the
normalized spec is hashed into the job's **single-flight dedup key**
(:func:`job_key`): two clients submitting the same work must produce
the same key regardless of which defaults they spelled out.

Scheduling hints -- ``priority`` and the relative ``deadline`` seconds
on a ``submit`` message -- are deliberately *not* part of the spec and
never reach the dedup key: the same work submitted urgently and lazily
is still the same work, and must share one execution.
"""

from __future__ import annotations

import json

from repro.errors import ServeError
from repro.experiments.cache import cache_key
from repro.experiments.configs import CONFIG_NAMES
from repro.netlist.generators import DESIGN_NAMES

__all__ = [
    "KINDS",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "decode_line",
    "encode_message",
    "job_key",
    "normalize_spec",
    "read_message",
]

KINDS = ("flow", "matrix", "sweep", "probe")

#: One request or response line may not exceed this (results included).
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(ServeError):
    """A request or job spec is malformed (client error, never retried)."""


# ----------------------------------------------------------------------
# job specs
# ----------------------------------------------------------------------
def _as_float(spec: dict, field: str, default: float | None) -> float | None:
    value = spec.get(field, default)
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ProtocolError(f"spec field {field!r} must be a number")
    return float(value)


def _as_int(spec: dict, field: str, default: int) -> int:
    value = spec.get(field, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(f"spec field {field!r} must be an integer")
    return value


def _as_design(value) -> str:
    if value not in DESIGN_NAMES:
        raise ProtocolError(
            f"unknown design {value!r} (expected one of {', '.join(DESIGN_NAMES)})"
        )
    return str(value)


def normalize_spec(raw: dict) -> dict:
    """Validate a raw job spec into its canonical, fully-explicit form.

    Raises :class:`ProtocolError` on anything malformed.  The result is
    stable under re-normalization and is what :func:`job_key` hashes.
    """
    if not isinstance(raw, dict):
        raise ProtocolError("job spec must be an object")
    kind = raw.get("kind")
    if kind not in KINDS:
        raise ProtocolError(
            f"unknown job kind {kind!r} (expected one of {', '.join(KINDS)})"
        )
    from repro.experiments.runner import default_scale

    if kind == "flow":
        config = raw.get("config", "3D_HET")
        if config not in CONFIG_NAMES:
            raise ProtocolError(f"unknown config {config!r}")
        return {
            "kind": "flow",
            "design": _as_design(raw.get("design")),
            "config": str(config),
            "period_ns": _as_float(raw, "period_ns", None),
            "scale": _as_float(raw, "scale", default_scale()),
            "seed": _as_int(raw, "seed", 0),
        }
    if kind == "matrix":
        designs = raw.get("designs") or list(DESIGN_NAMES)
        if isinstance(designs, str):
            designs = [designs]
        if not isinstance(designs, (list, tuple)) or not designs:
            raise ProtocolError("spec field 'designs' must be a non-empty list")
        configs = raw.get("configs") or list(CONFIG_NAMES)
        if not isinstance(configs, (list, tuple)) or not configs:
            raise ProtocolError("spec field 'configs' must be a non-empty list")
        for config in configs:
            if config not in CONFIG_NAMES:
                raise ProtocolError(f"unknown config {config!r}")
        periods = raw.get("periods") or {}
        if not isinstance(periods, dict):
            raise ProtocolError("spec field 'periods' must be an object")
        for design, period in periods.items():
            _as_design(design)
            if not isinstance(period, (int, float)) or isinstance(period, bool):
                raise ProtocolError(f"period for {design!r} must be a number")
        return {
            "kind": "matrix",
            "designs": [_as_design(d) for d in designs],
            "configs": [str(c) for c in configs],
            "scale": _as_float(raw, "scale", default_scale()),
            "seed": _as_int(raw, "seed", 0),
            "periods": {str(d): float(p) for d, p in sorted(periods.items())},
        }
    if kind == "sweep":
        return {
            "kind": "sweep",
            "design": _as_design(raw.get("design")),
            "scale": _as_float(raw, "scale", default_scale()),
            "seed": _as_int(raw, "seed", 0),
        }
    # probe
    fail = raw.get("fail", "")
    if fail not in ("", "deterministic", "transient"):
        raise ProtocolError(
            "spec field 'fail' must be 'deterministic' or 'transient'"
        )
    payload = raw.get("payload")
    try:
        json.dumps(payload)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"probe payload is not JSON-safe: {exc}") from None
    return {
        "kind": "probe",
        "seconds": _as_float(raw, "seconds", 0.0),
        "payload": payload,
        "nonce": str(raw.get("nonce", "")),
        "fail": str(fail),
    }


def job_key(spec: dict) -> str:
    """Content-addressed single-flight key of a *normalized* spec.

    Reuses the result cache's keying (SHA-256 of canonical JSON plus the
    package version), so the dedup domain rolls over with releases just
    like cached results do.
    """
    return cache_key("serve-job", spec=spec)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_message(message: dict) -> bytes:
    """One message as its newline-terminated JSON line."""
    return json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one received line; raises :class:`ProtocolError` when bad."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"request is not a JSON line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


def read_message(sock_file) -> dict | None:
    """Read one framed message from a socket file; ``None`` on EOF.

    Raises :class:`ProtocolError` on oversized or malformed lines.
    """
    line = sock_file.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
    return decode_line(line.rstrip(b"\n"))
