"""Best-effort event feed for the serving daemon: bus + subscribers.

The daemon's journal answers "what must survive a crash"; the event bus
answers "what is happening *right now*".  They are deliberately
decoupled: events are journaled nowhere, delivery is best-effort, and a
subscriber that stops reading loses events rather than stalling the
daemon.  Three rules fall out of that:

1. **Publish never blocks.**  ``EventBus.publish`` offers the event to
   every subscriber's bounded queue; a full queue drops the event and
   counts it.  The socket thread serving a job completion proceeds at
   the same speed whether zero or fifty clients are subscribed.
2. **Drops are visible.**  When a subscriber's queue drains after an
   overflow, the next read is prefixed with a synthetic ``feed_gap``
   event carrying the number of lost events, so a `top` client can show
   a gap marker instead of silently lying.
3. **Late subscribers get context.**  A bounded backlog ring replays
   the most recent events on subscribe, so a client attaching mid-run
   sees how the in-flight jobs got to their current state.

Every event is a flat JSON-safe dict ``{"event": kind, "seq": n,
"ts": wall_s, ...fields}`` with a bus-global monotonically increasing
``seq``; consumers order and dedup on it.

:class:`JobTrace` rides along here: it assembles a job's span subtrees
incrementally as workers forward them stage-by-stage, so
``repro result --trace JOB`` can render a partial tree mid-run and the
final tree after completion -- same data, growing monotonically.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Any, Iterator

__all__ = ["EventBus", "JobTrace", "Subscriber"]


class Subscriber:
    """One client's bounded event queue with drop-and-count overflow."""

    def __init__(
        self,
        maxsize: int,
        job_id: str | None = None,
    ):
        self._queue: queue.Queue = queue.Queue(maxsize=max(2, maxsize))
        self.job_id = job_id
        self.dropped = 0  # total events lost to overflow
        self._pending_gap = 0  # drops not yet surfaced as a feed_gap
        self._lock = threading.Lock()
        self.closed = False

    def wants(self, event: dict[str, Any]) -> bool:
        """Whether this subscriber's filter admits the event.

        A job filter admits that job's events plus everything that has
        no ``job_id`` at all (lifecycle, metrics, drain) -- a ``watch``
        client still learns the daemon is draining under it.
        """
        if self.job_id is None:
            return True
        event_job = event.get("job_id")
        return event_job is None or event_job == self.job_id

    def offer(self, event: dict[str, Any]) -> bool:
        """Enqueue without blocking; on overflow, drop and count."""
        if self.closed or not self.wants(event):
            return False
        try:
            self._queue.put_nowait(event)
            return True
        except queue.Full:
            with self._lock:
                self.dropped += 1
                self._pending_gap += 1
            return False

    def get(self, timeout_s: float | None = None) -> dict[str, Any] | None:
        """Next event (blocking up to ``timeout_s``); ``None`` on timeout
        or after close.  Surfaces accumulated drops as a ``feed_gap``
        event before handing out post-gap events."""
        with self._lock:
            if self._pending_gap:
                gap, self._pending_gap = self._pending_gap, 0
                return {"event": "feed_gap", "dropped": gap}
        try:
            event = self._queue.get(timeout=timeout_s)
        except queue.Empty:
            return None
        return None if event is _CLOSE else event

    def drain(self) -> Iterator[dict[str, Any]]:
        """Yield whatever is queued right now, without blocking."""
        while True:
            event = self.get(timeout_s=0.0)
            if event is None:
                return
            yield event

    def close(self) -> None:
        self.closed = True
        try:
            self._queue.put_nowait(_CLOSE)
        except queue.Full:
            pass  # a queued reader will hit its timeout and re-check


_CLOSE = object()  # sentinel waking blocked Subscriber.get() on close


class EventBus:
    """Fan-out hub: publish to every subscriber, bounded everywhere."""

    def __init__(self, queue_max: int = 256, backlog: int = 256):
        self._lock = threading.Lock()
        self._subscribers: list[Subscriber] = []
        self._backlog: deque = deque(maxlen=max(0, backlog))
        self._queue_max = queue_max
        self._seq = 0
        self.published = 0
        self.dropped = 0
        self._closed = False

    def publish(self, event_kind: str, **fields: Any) -> dict[str, Any]:
        """Stamp, backlog, and offer an event; never blocks.

        Returns the stamped event so callers can reuse it (tests,
        logging).  Fields must already be JSON-safe; ``event_kind`` is
        deliberately not called ``kind`` so job fields named ``kind``
        pass through ``**fields`` unobstructed.
        """
        with self._lock:
            if self._closed:
                return {"event": event_kind, **fields}
            self._seq += 1
            event = {"event": event_kind, "seq": self._seq, "ts": time.time()}
            event.update(fields)
            self._backlog.append(event)
            self.published += 1
            subscribers = list(self._subscribers)
        for sub in subscribers:
            if not sub.offer(event) and sub.wants(event) and not sub.closed:
                with self._lock:
                    self.dropped += 1
        return event

    def subscribe(
        self, job_id: str | None = None, backlog: bool = True
    ) -> Subscriber:
        """Attach a subscriber; optionally replay the backlog ring."""
        sub = Subscriber(self._queue_max, job_id=job_id)
        with self._lock:
            replay = list(self._backlog) if backlog else []
            self._subscribers.append(sub)
        for event in replay:
            sub.offer(event)
        return sub

    def unsubscribe(self, sub: Subscriber) -> None:
        with self._lock:
            try:
                self._subscribers.remove(sub)
            except ValueError:
                return
        sub.close()

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def dropped_total(self) -> int:
        with self._lock:
            return self.dropped

    def close(self) -> None:
        """Stop the bus and wake every blocked subscriber."""
        with self._lock:
            self._closed = True
            subscribers, self._subscribers = self._subscribers, []
        for sub in subscribers:
            sub.close()


class JobTrace:
    """A job's span tree, assembled incrementally from worker messages.

    Workers forward each completed depth-1 subtree (one stage / one
    matrix cell) as it closes, and the full snapshot when the job
    finishes.  Mid-run, :meth:`roots` synthesizes an *open* root span
    over the stages seen so far -- structurally identical to what the
    crash-truncated tracer would record -- so the partial tree exports
    as a valid Chrome trace.  Once the final snapshot lands it wins
    outright (it carries the root's true duration and attrs).
    """

    def __init__(self, job_id: str, kind: str):
        self.job_id = job_id
        self.kind = kind
        self.stages: list[dict[str, Any]] = []
        self.final: list[dict[str, Any]] | None = None
        self.root_name: str | None = None
        self.root_attrs: dict[str, Any] = {}
        self.root_start_wall_s = 0.0
        self.root_start_perf_s = 0.0
        self._lock = threading.Lock()

    def note_root(self, span_dict: dict[str, Any]) -> None:
        """Record the job's root span as it *opens* (name/attrs/start)."""
        with self._lock:
            self.root_name = str(span_dict.get("name", "")) or self.root_name
            attrs = span_dict.get("attrs")
            if isinstance(attrs, dict):
                self.root_attrs.update(attrs)
            self.root_start_wall_s = float(
                span_dict.get("start_wall_s", self.root_start_wall_s)
            )
            self.root_start_perf_s = float(
                span_dict.get("start_perf_s", self.root_start_perf_s)
            )

    def add_stage(self, tree: dict[str, Any]) -> None:
        """Append one completed depth-1 subtree (already a plain dict)."""
        with self._lock:
            self.stages.append(tree)

    def set_final(self, snapshot: list[dict[str, Any]] | None) -> None:
        """Install the worker's complete end-of-job trace snapshot."""
        if snapshot:
            with self._lock:
                self.final = list(snapshot)

    def roots(self) -> list[dict[str, Any]]:
        """The best current view: final snapshot, or a synthesized
        still-open root over the stages forwarded so far."""
        with self._lock:
            if self.final is not None:
                return list(self.final)
            stages = list(self.stages)
            name = self.root_name or f"job:{self.kind}"
            attrs = dict(self.root_attrs)
            attrs.setdefault("job_id", self.job_id)
            start_wall = self.root_start_wall_s
            start_perf = self.root_start_perf_s
        if not start_wall and stages:
            start_wall = min(
                float(s.get("start_wall_s", 0.0)) for s in stages
            )
            start_perf = min(
                float(s.get("start_perf_s", 0.0)) for s in stages
            )
        duration = 0.0
        for stage in stages:
            end = float(stage.get("start_perf_s", 0.0)) + float(
                stage.get("duration_s", 0.0)
            )
            duration = max(duration, end - start_perf)
        return [
            {
                "name": name,
                "attrs": attrs,
                "status": "open",
                "metrics": [],
                "events": [],
                "children": stages,
                "start_wall_s": start_wall,
                "start_perf_s": start_perf,
                "duration_s": duration,
                "cpu_s": 0.0,
            }
        ]

    def stage_count(self) -> int:
        with self._lock:
            return len(self.stages)
