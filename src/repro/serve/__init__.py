"""Crash-safe flow-as-a-service: daemon, journal, queue, worker pool.

``repro serve`` runs the evaluation engine as a long-lived daemon
behind a Unix socket (see :mod:`repro.serve.daemon`); ``repro submit``
/ ``status`` / ``result`` are its clients.  The package is organised by
failure domain:

- :mod:`repro.serve.journal` -- the write-ahead job journal (checksummed
  lines, fsync before acknowledgment, truncation-tolerant replay,
  atomic compaction);
- :mod:`repro.serve.queue` -- the in-memory priority queue with
  single-flight dedup, restored purely from journal records;
- :mod:`repro.serve.supervisor` -- the worker pool (heartbeats, hang
  watchdog, restart budgets, orphan-proof workers);
- :mod:`repro.serve.daemon` -- the socket front end, admission control
  and graceful drain, tying the three together under one lock;
- :mod:`repro.serve.protocol` / :mod:`repro.serve.client` -- the
  JSON-lines wire protocol and the reconnecting client.
"""

from repro.serve.client import ServeClient, request
from repro.serve.daemon import ServeConfig, ServerCore, ServerStats, serve
from repro.serve.journal import Journal, JournalError, replay_file, verify_line
from repro.serve.protocol import (
    KINDS,
    ProtocolError,
    job_key,
    normalize_spec,
)
from repro.serve.queue import Job, JobQueue, QueueFull
from repro.serve.supervisor import Supervisor

__all__ = [
    "Job",
    "JobQueue",
    "Journal",
    "JournalError",
    "KINDS",
    "ProtocolError",
    "QueueFull",
    "ServeClient",
    "ServeConfig",
    "ServerCore",
    "ServerStats",
    "Supervisor",
    "job_key",
    "normalize_spec",
    "replay_file",
    "request",
    "serve",
    "verify_line",
]
