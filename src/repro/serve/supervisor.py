"""Worker-pool supervisor: heartbeats, hang detection, restart budgets.

Each worker is a separate process (spawn context: the daemon is
multi-threaded, and forking a threaded parent is how deadlocks are
born) connected by a duplex pipe and a shared heartbeat timestamp.  The
supervisor runs one thread in the daemon, ticking a fixed loop:

1. **harvest** -- pull finished-job replies off worker pipes and hand
   them to the core (which journals before mutating);
2. **reap** -- a dead worker process (crash, ``os._exit``, OOM kill) is
   replaced and its job requeued as a *transient* failure;
3. **watchdog** -- a worker whose heartbeat went stale (the process is
   wedged) or whose job outlived the per-job timeout (the flow is
   hung) is killed, replaced, and its job requeued;
4. **dispatch** -- idle workers claim the highest-priority pending job
   (claim journaled and fsync'd *before* the job crosses the pipe).

Requeues respect a **restart budget**: a job whose attempts exceed it
is failed as a poison job (``crash_loop``) instead of being allowed to
take the pool down forever -- the serving analog of the batch engine's
transient-vs-deterministic taxonomy (transient worker death retries;
the budget converts "retries forever" into a structured failure).

The pool size is adaptive between a floor (``workers``) and a ceiling
(``max_workers``): when the pending backlog outgrows
``scale_up_pending`` jobs per worker, one worker is added per
``scale_cooldown_s`` of sustained pressure, and a surplus worker idle
for ``idle_retire_s`` is retired back toward the floor.  Scaling is
deliberately one-worker-at-a-time with a shared cooldown (hysteresis):
a burst neither forks a worker storm nor thrashes spawn/retire cycles,
and the watchdog/restart-budget machinery only ever sees workers that
exist for real work.  Worker names are monotonic (``w0, w1, ...`` --
never reused, even across respawns), so every lifecycle event and
per-worker gauge names exactly one process; retired and reaped names
drop their gauge label sets via ``core.drop_worker``.

Workers double as crash-confinement cells: they set ``PR_SET_PDEATHSIG``
so a ``kill -9`` of the daemon kills them too (no orphan keeps burning
CPU or double-running a flow after the daemon restarts and requeues),
and their heartbeat thread exits the process if the parent pid changes,
as a fallback where pdeathsig is unavailable.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time

from repro.experiments.faults import inject
from repro.log import get_logger
from repro.obs import attach_subtree

__all__ = ["Supervisor", "WorkerHandle"]

_log = get_logger("serve.supervisor")


# ----------------------------------------------------------------------
# worker process side
# ----------------------------------------------------------------------
def _set_pdeathsig() -> None:
    """Ask Linux to SIGKILL this worker when its parent dies."""
    try:
        import ctypes
        import signal

        PR_SET_PDEATHSIG = 1
        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(PR_SET_PDEATHSIG, signal.SIGKILL, 0, 0, 0)
    except Exception:  # noqa: BLE001 -- best-effort on non-Linux
        pass


def _heartbeat_loop(name, heartbeat, parent_pid, interval_s, stop):
    """Worker-side thread: beat the shared timestamp, watch the parent."""
    from repro.experiments.faults import inject

    while not stop.is_set():
        with inject("heartbeat", worker=name):
            heartbeat.value = time.time()
        if os.getppid() != parent_pid:
            # The daemon died without pdeathsig delivering: do not keep
            # running (and possibly double-running) its job as an orphan.
            os._exit(40)
        stop.wait(interval_s)


def _execute_job(kind: str, spec: dict, attempt: int) -> dict:
    """Run one job body; returns its JSON-safe result payload."""
    if kind == "probe":
        from repro.experiments.faults import FaultInjected

        if spec.get("seconds"):
            time.sleep(float(spec["seconds"]))
        fail = spec.get("fail")
        if fail == "deterministic":
            raise FaultInjected("probe requested a deterministic failure")
        if fail == "transient":
            raise OSError("probe requested a transient failure")
        return {"echo": spec.get("payload"), "attempt": attempt}
    if kind == "sweep":
        from repro.experiments.runner import find_target_period

        period = find_target_period(
            spec["design"], scale=spec["scale"], seed=spec["seed"]
        )
        return {"design": spec["design"], "period_ns": period}
    if kind == "flow":
        from repro.experiments.runner import run_configuration

        _design, result = run_configuration(
            spec["design"],
            spec["config"],
            period_ns=spec["period_ns"],
            scale=spec["scale"],
            seed=spec["seed"],
        )
        return {"result": result.to_dict()}
    # matrix: serial inside the worker (no nested pools); interrupted
    # attempts resume through the run-manifest + content-addressed cache,
    # so a requeued matrix never re-executes a completed cell.
    from repro.experiments.runner import run_matrix

    matrix = run_matrix(
        designs=tuple(spec["designs"]),
        config_names=tuple(spec["configs"]),
        scale=spec["scale"],
        seed=spec["seed"],
        jobs=1,
        keep_going=True,
        resume=attempt > 1,
        target_periods=dict(spec["periods"]) or None,
    )
    return {
        "ok": matrix.ok,
        "target_periods": dict(matrix.target_periods),
        "results": {
            f"{d}/{c}": r.to_dict() for (d, c), r in matrix.results.items()
        },
        "failed": [cell.to_dict() for cell in matrix.all_failures()],
    }


#: Only spans this shallow are forwarded live (job root + its stages);
#: deeper sub-steps stay in the end-of-job snapshot, keeping the feed's
#: per-span cost flat no matter how deep a flow's trace goes.
_FORWARD_MAX_DEPTH = 1


def _span_forwarder(conn, job_id: str):
    """Build a span observer streaming shallow transitions up the pipe.

    Each forwarded message is ``{"job_id", "status": "progress", "span":
    {...}}`` -- the same channel as the final reply, so ordering with the
    job's completion is guaranteed by the pipe.  A close at depth 1
    carries the whole completed subtree (one stage / one matrix cell);
    the daemon stitches those into the job's incremental trace.  Send
    failures are swallowed: a dying daemon must not crash the flow.
    """

    def forward(phase: str, sp, depth: int) -> None:
        if depth > _FORWARD_MAX_DEPTH:
            return
        msg = {"phase": phase, "name": sp.name, "depth": depth}
        if phase == "open":
            msg["start_wall_s"] = sp.start_wall_s
            msg["start_perf_s"] = sp.start_perf_s
            msg["attrs"] = {
                k: v
                for k, v in sp.attrs.items()
                if isinstance(v, (str, int, float, bool))
            }
        else:
            msg["duration_s"] = sp.duration_s
            msg["status"] = sp.status
            if depth == _FORWARD_MAX_DEPTH:
                msg["tree"] = sp.to_dict()
        try:
            conn.send({"job_id": job_id, "status": "progress", "span": msg})
        except (BrokenPipeError, OSError, ValueError):
            pass

    return forward


def _worker_main(
    name: str,
    conn,
    heartbeat,
    parent_pid: int,
    interval_s: float,
    forward_spans: bool = True,
):
    """Worker entry point: loop on jobs from the pipe until told to stop."""
    from repro.errors import ReproError
    from repro.experiments.faults import inject
    from repro.experiments.resilience import (
        DETERMINISTIC,
        TRANSIENT,
        TRANSIENT_ERRORS,
    )
    from repro.experiments.telemetry import get_telemetry, reset_telemetry
    from repro.log import init_from_env
    from repro.obs import (
        add_span_observer,
        enable_tracing,
        remove_span_observer,
        reset_trace,
        trace_snapshot,
    )

    _set_pdeathsig()
    init_from_env()
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(name, heartbeat, parent_pid, interval_s, stop),
        daemon=True,
    )
    beat.start()
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        job_id, kind, spec, attempt = task
        reset_telemetry()
        reset_trace(from_env=True)
        forwarder = None
        if forward_spans:
            # Live progress needs spans even when $REPRO_TRACE is unset:
            # the served flow is always traced (PR 3 measured tracing at
            # ~0% overhead, and the feed-overhead benchmark guards it).
            enable_tracing()
            forwarder = _span_forwarder(conn, job_id)
            add_span_observer(forwarder)
        try:
            with inject("worker", stage=kind, job=job_id, worker=name):
                payload = _execute_job(kind, spec, attempt)
            reply = {"job_id": job_id, "status": "done", "payload": payload}
        except Exception as exc:  # noqa: BLE001 -- process boundary
            transient = not isinstance(exc, ReproError) and isinstance(
                exc, TRANSIENT_ERRORS
            )
            reply = {
                "job_id": job_id,
                "status": "failed",
                "error": {
                    "error_type": type(exc).__name__,
                    "message": str(exc),
                    "kind": TRANSIENT if transient else DETERMINISTIC,
                    "attempt": attempt,
                    "worker": name,
                },
            }
        finally:
            if forwarder is not None:
                remove_span_observer(forwarder)
        reply["telemetry"] = get_telemetry().snapshot()
        reply["trace"] = trace_snapshot()
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    stop.set()


# ----------------------------------------------------------------------
# daemon side
# ----------------------------------------------------------------------
class WorkerHandle:
    """One supervised worker process and its channel state."""

    def __init__(
        self,
        name: str,
        ctx,
        heartbeat_interval_s: float,
        forward_spans: bool = True,
    ):
        self.name = name
        self.ctx = ctx
        self.heartbeat_interval_s = heartbeat_interval_s
        self.forward_spans = forward_spans
        self.proc = None
        self.conn = None
        self.heartbeat = None
        self.job_id: str | None = None
        self.job_started_s = 0.0
        self.spawn()

    def spawn(self) -> None:
        # 0.0 = "no beat since spawn": the watchdog grants booting
        # workers a grace period (spawn + imports dwarf heartbeat_s).
        self.spawned_s = time.time()
        self.heartbeat = self.ctx.Value("d", 0.0)
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        self.proc = self.ctx.Process(
            target=_worker_main,
            args=(
                self.name,
                child_conn,
                self.heartbeat,
                os.getpid(),
                self.heartbeat_interval_s,
                self.forward_spans,
            ),
            daemon=True,
            name=f"repro-serve-{self.name}",
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.job_id = None
        self.job_started_s = 0.0
        self.idle_since = time.monotonic()  # retire-after-idle clock

    @property
    def idle(self) -> bool:
        return self.job_id is None

    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    def last_beat_s(self) -> float:
        return float(self.heartbeat.value)

    def assign(self, job) -> None:
        self.job_id = job.job_id
        self.job_started_s = time.monotonic()
        self.conn.send((job.job_id, job.kind, job.spec, job.attempts))

    def kill(self) -> None:
        """Hard-stop the process (hung or crashed); the pipe dies with it."""
        try:
            if self.proc is not None and self.proc.is_alive():
                self.proc.kill()
            if self.proc is not None:
                self.proc.join(timeout=2.0)
        except (OSError, ValueError):
            pass
        try:
            if self.conn is not None:
                self.conn.close()
        except OSError:
            pass

    def stop(self, timeout_s: float = 2.0) -> None:
        """Polite shutdown: close the intake, then join, then kill."""
        try:
            if self.conn is not None:
                self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        try:
            if self.proc is not None:
                self.proc.join(timeout=timeout_s)
        except (OSError, ValueError):
            pass
        self.kill()


class Supervisor:
    """Drives the worker pool from one daemon thread."""

    def __init__(
        self,
        core,
        *,
        workers: int,
        heartbeat_s: float,
        job_timeout_s: float,
        restart_budget: int,
        max_workers: int = 0,
        scale_up_pending: int = 2,
        scale_cooldown_s: float = 5.0,
        idle_retire_s: float = 30.0,
        poll_s: float = 0.05,
        boot_grace_s: float = 30.0,
        forward_spans: bool = True,
    ):
        self.core = core
        self.workers_wanted = max(1, workers)
        self.max_workers = max(self.workers_wanted, max_workers)
        self.scale_up_pending = max(1, scale_up_pending)
        self.scale_cooldown_s = max(0.0, scale_cooldown_s)
        self.idle_retire_s = max(0.0, idle_retire_s)
        self.heartbeat_s = heartbeat_s
        self.boot_grace_s = boot_grace_s
        self.job_timeout_s = job_timeout_s
        self.restart_budget = restart_budget
        self.poll_s = poll_s
        self.forward_spans = forward_spans
        self.ctx = multiprocessing.get_context("spawn")
        self.workers: list[WorkerHandle] = []
        self._draining = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._worker_seq = 0  # names are monotonic, never reused
        self._last_scale = 0.0  # cooldown clock shared by up and down

    def _next_name(self) -> str:
        name = f"w{self._worker_seq}"
        self._worker_seq += 1
        return name

    def _drop_worker(self, name: str) -> None:
        """Tell the core to forget a dead worker's gauge label sets."""
        hook = getattr(self.core, "drop_worker", None)
        if hook is not None:
            hook(name)

    def _lifecycle(self, action: str, **fields) -> None:
        """Publish a structured lifecycle event through the core.

        ``getattr`` keeps bare test doubles (a core without the event
        plumbing) usable as supervisor targets.
        """
        hook = getattr(self.core, "lifecycle", None)
        if hook is not None:
            hook(action, **fields)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.workers = [
            WorkerHandle(
                self._next_name(), self.ctx, self.heartbeat_s,
                self.forward_spans,
            )
            for _ in range(self.workers_wanted)
        ]
        for handle in self.workers:
            self._lifecycle("worker_boot", worker=handle.name)
        self._publish_pool()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-supervisor", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.tick()
            except Exception:  # noqa: BLE001 -- the pool must outlive bugs
                _log.exception("supervisor tick failed; continuing")
            self._stop.wait(self.poll_s)

    def stop(self) -> None:
        """Stop the loop and the workers (jobs in flight stay claimed:
        the journal requeues them on the next daemon start)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        for handle in self.workers:
            handle.stop()

    def drain(self, timeout_s: float) -> bool:
        """Finish in-flight jobs without dispatching new ones.

        Returns ``True`` when every worker went idle in time.  Jobs
        still running at the deadline stay claimed in the journal -- the
        next daemon start requeues them -- and their workers are killed.
        """
        self._draining = True
        self._lifecycle(
            "drain_begin",
            timeout_s=timeout_s,
            busy=[h.name for h in self.workers if not h.idle],
        )
        deadline = time.monotonic() + timeout_s
        complete = False
        while time.monotonic() < deadline:
            if all(handle.idle for handle in self.workers):
                complete = True
                break
            time.sleep(min(0.05, self.poll_s))
        busy = [] if complete else [
            h.name for h in self.workers if not h.idle
        ]
        if busy:
            _log.warning(
                "drain timeout after %.1fs; %s still busy (their jobs"
                " will be recovered from the journal on restart)",
                timeout_s, ", ".join(busy),
            )
        self._lifecycle("drain_end", complete=not busy, busy=busy)
        return not busy

    # ------------------------------------------------------------------
    # one scheduling step (also driven directly by tests)
    # ------------------------------------------------------------------
    def tick(self) -> None:
        self._harvest()
        self._reap()
        self._watchdog()
        if not self._draining:
            self._autoscale()
            self._dispatch()
        self._publish_pool()

    def _pending_jobs(self) -> int:
        """Queue-depth pressure signal (0 when the core has no queue)."""
        queue = getattr(self.core, "queue", None)
        if queue is None:
            return 0
        try:
            # Lock-free read of a concurrently-mutated table: a torn
            # scan only skews one tick's pressure estimate.
            return queue.pending_count()
        except RuntimeError:
            return 0

    def _autoscale(self) -> None:
        """Grow under sustained pressure, retire after sustained idle.

        One worker per cooldown window in either direction: the shared
        ``_last_scale`` clock is the hysteresis that keeps the restart
        budget and watchdog looking at a stable pool, not a thrashing
        one.  The ``scale_event`` fault site can veto (or crash) either
        transition for chaos testing.
        """
        now = time.monotonic()
        if now - self._last_scale < self.scale_cooldown_s:
            return
        pending = self._pending_jobs()
        pool = len(self.workers)
        if pool < self.max_workers and pending >= self.scale_up_pending * pool:
            with inject("scale_event", direction="up", pool=pool):
                handle = WorkerHandle(
                    self._next_name(), self.ctx, self.heartbeat_s,
                    self.forward_spans,
                )
            self.workers.append(handle)
            self._last_scale = now
            self._lifecycle(
                "worker_scale_up", worker=handle.name,
                pool=len(self.workers), pending=pending,
            )
            _log.warning(
                "scaled up to %d worker(s) (%d pending): booted %s",
                len(self.workers), pending, handle.name,
            )
            return
        if pool <= self.workers_wanted:
            return
        for handle in reversed(self.workers):
            idle_s = now - handle.idle_since
            if not handle.idle or idle_s < self.idle_retire_s:
                continue
            with inject("scale_event", direction="down", worker=handle.name):
                self.workers.remove(handle)
            handle.stop(timeout_s=1.0)
            self._drop_worker(handle.name)
            self._last_scale = now
            self._lifecycle(
                "worker_retire", worker=handle.name,
                pool=len(self.workers), idle_s=round(idle_s, 2),
            )
            _log.warning(
                "retired idle worker %s (%.1fs idle); pool back to %d",
                handle.name, idle_s, len(self.workers),
            )
            return

    def _publish_pool(self) -> None:
        """Feed the ``repro_workers{state}`` gauges through the core."""
        note = getattr(self.core, "note_worker_pool", None)
        if note is None:
            return
        counts = {"idle": 0, "busy": 0, "booting": 0}
        for handle in self.workers:
            if not handle.idle:
                counts["busy"] += 1
            elif handle.last_beat_s() == 0.0:
                counts["booting"] += 1
            else:
                counts["idle"] += 1
        note(counts)

    def _harvest(self) -> None:
        for handle in self.workers:
            if handle.idle or handle.conn is None:
                continue
            try:
                while handle.conn.poll(0):
                    reply = handle.conn.recv()
                    self._deliver(handle, reply)
            except (EOFError, OSError):
                continue  # the reaper below deals with the corpse

    def _deliver(self, handle: WorkerHandle, reply: dict) -> None:
        job_id = reply.get("job_id")
        if job_id != handle.job_id:
            _log.warning(
                "worker %s replied for %s while assigned %s; dropping",
                handle.name, job_id, handle.job_id,
            )
            return
        if reply.get("status") == "progress":
            # A live span transition, not a completion: feed it to the
            # core (event bus + incremental job trace) and keep the job
            # assigned -- the terminal reply is still coming.
            note = getattr(self.core, "note_progress", None)
            if note is not None:
                note(job_id, reply.get("span") or {}, worker=handle.name)
            return
        handle.job_id = None
        handle.idle_since = time.monotonic()
        telemetry = reply.get("telemetry")
        trace = reply.get("trace")
        if trace:
            attach_subtree(trace, worker=f"serve:{handle.name}")
        if reply.get("status") == "done":
            self.core.finish_job(
                job_id, reply.get("payload"), telemetry, trace=trace
            )
            return
        error = reply.get("error") or {}
        if error.get("kind") == "transient":
            self._requeue_or_poison(
                job_id,
                reason=f"transient failure: {error.get('error_type')}:"
                       f" {error.get('message')}",
                telemetry=telemetry,
                error=error,
            )
        else:
            self.core.fail_job(job_id, error, telemetry, trace=trace)

    def _reap(self) -> None:
        for handle in self.workers:
            if handle.alive():
                continue
            exitcode = handle.proc.exitcode if handle.proc else None
            job_id = handle.job_id
            dead = handle.name
            handle.kill()
            self.core.stats_bump("worker_respawns")
            _log.warning(
                "worker %s died (exit %s)%s; respawning",
                dead, exitcode,
                f" while running {job_id}" if job_id else "",
            )
            # The replacement gets a fresh name: per-worker gauges and
            # lifecycle events always describe exactly one process.
            self._drop_worker(dead)
            handle.name = self._next_name()
            handle.spawn()
            self._lifecycle(
                "worker_restart",
                worker=handle.name,
                replaces=dead,
                reason=f"worker died (exit {exitcode})",
                job_id=job_id,
            )
            if job_id is not None:
                self._requeue_or_poison(
                    job_id, reason=f"worker died (exit {exitcode})"
                )

    def _watchdog(self) -> None:
        now = time.time()
        mono = time.monotonic()
        note_age = getattr(self.core, "note_heartbeat", None)
        for handle in self.workers:
            if not handle.alive():
                continue  # the reaper handles corpses
            beat = handle.last_beat_s()
            if beat == 0.0:
                # Still booting (spawn + imports): grace, not staleness.
                stale = now - handle.spawned_s > self.boot_grace_s
                if note_age is not None:
                    note_age(handle.name, 0.0)
            else:
                stale = now - beat > 3.0 * self.heartbeat_s
                if note_age is not None:
                    note_age(handle.name, max(0.0, now - beat))
            hung = (
                not handle.idle
                and self.job_timeout_s > 0
                and mono - handle.job_started_s > self.job_timeout_s
            )
            if not stale and not hung:
                continue
            job_id = handle.job_id
            why = (
                f"job exceeded {self.job_timeout_s:.1f}s timeout" if hung
                else f"heartbeat stale for >{3.0 * self.heartbeat_s:.1f}s"
            )
            _log.warning(
                "worker %s is wedged (%s); killing and respawning",
                handle.name, why,
            )
            if stale:
                self._lifecycle(
                    "heartbeat_stale",
                    worker=handle.name,
                    age_s=round(now - beat, 3) if beat else None,
                    job_id=job_id,
                )
            self.core.stats_bump("hangs_detected")
            self.core.stats_bump("worker_respawns")
            wedged = handle.name
            handle.kill()
            self._drop_worker(wedged)
            handle.name = self._next_name()
            handle.spawn()
            self._lifecycle(
                "worker_restart", worker=handle.name, replaces=wedged,
                reason=why, job_id=job_id,
            )
            if job_id is not None:
                self._requeue_or_poison(job_id, reason=why)

    def _requeue_or_poison(
        self,
        job_id: str,
        *,
        reason: str,
        telemetry=None,
        error: dict | None = None,
    ) -> None:
        job = self.core.job(job_id)
        if job is None:
            return
        if job.attempts > self.restart_budget:
            poison = {
                "error_type": "CrashLoop",
                "message": (
                    f"job failed {job.attempts} attempt(s), over the"
                    f" restart budget of {self.restart_budget};"
                    f" last: {reason}"
                ),
                "kind": "transient",
                "attempt": job.attempts,
            }
            if error:
                poison["cause"] = error
            self._lifecycle(
                "restart_budget_exhausted",
                job_id=job_id,
                attempts=job.attempts,
                budget=self.restart_budget,
                reason=reason,
            )
            self.core.fail_job(job_id, poison, telemetry)
            return
        self.core.requeue_job(job_id, reason, telemetry)

    def _dispatch(self) -> None:
        for handle in self.workers:
            if not handle.idle or not handle.alive():
                continue
            job = self.core.claim_job(handle.name)
            if job is None:
                return
            try:
                handle.assign(job)
            except (BrokenPipeError, OSError):
                # Worker died between claim and send: requeue right away;
                # the reaper respawns the process on the next tick.
                handle.job_id = None
                self._requeue_or_poison(
                    job.job_id, reason="worker pipe broke at dispatch"
                )
