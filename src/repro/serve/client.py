"""Client side of the evaluation daemon: connect-per-request + polling.

Every operation opens a fresh connection, sends one JSON line, reads
one JSON line back, and closes.  That makes the client stateless across
daemon restarts: a request that lands while the daemon is down (socket
missing or refusing) is retried inside ``reconnect_s`` -- combined with
idempotent server ops (submits dedup, status/result are reads) the
caller never has to care whether the daemon it is talking to is the
incarnation it submitted to.

:meth:`ServeClient.wait` polls ``result`` until the job reaches a
terminal state, riding out daemon downtime the same way; jobs survive
restarts in the journal, so waiting through a crash is expected to
succeed, not error.

Resilience against an *overloaded or crash-looping* daemon lives in two
places.  A small circuit breaker inside :class:`ServeClient` fails fast
after consecutive exhausted reconnect windows -- a crash-looping daemon
gets breathing room instead of a reconnect stampede -- and closes again
on the first success.  :meth:`ServeClient.run` wraps submit+wait in the
full retry discipline: backpressure rejections (``busy``, ``draining``,
``disk_pressure``) back off with capped jittered exponential delays
that honor the daemon's ``retry_after`` hint, and a result evicted by
retention is recovered by resubmitting the content-addressed spec
(dedup plus the result cache make the rerun idempotent).

The one exception to connect-per-request is :meth:`ServeClient.subscribe`:
it holds a single connection open and yields the daemon's JSON-lines
event feed as decoded dicts (``None`` between events when the feed is
idle, so callers can redraw UIs or check deadlines).  On a dropped
connection it reconnects inside the usual window and resubscribes with
backlog replay -- the per-event ``seq`` lets consumers drop duplicates.
"""

from __future__ import annotations

import random
import socket
import time
from pathlib import Path
from typing import Iterator

from repro.errors import ServeError
from repro.serve.protocol import MAX_LINE_BYTES, encode_message, decode_line

__all__ = ["ServeClient", "request"]


def request(
    socket_path: str | Path,
    message: dict,
    *,
    timeout_s: float = 30.0,
    reconnect_s: float = 0.0,
) -> dict:
    """One request/response round-trip; retries connection for ``reconnect_s``.

    Raises :class:`ServeError` when the daemon stays unreachable past the
    reconnect window, answers with a malformed line, or hangs up without
    responding (e.g. an injected ``client_disconnect`` fault).
    """
    path = str(socket_path)
    deadline = time.monotonic() + max(0.0, reconnect_s)
    attempt = 0
    while True:
        attempt += 1
        try:
            return _round_trip(path, message, timeout_s)
        except (ConnectionRefusedError, FileNotFoundError, ConnectionResetError,
                BrokenPipeError) as exc:
            if time.monotonic() >= deadline:
                error = ServeError(
                    f"daemon unreachable at {path} after {attempt} attempt(s):"
                    f" {type(exc).__name__}: {exc}"
                ).with_context(
                    attempts=attempt,
                    reconnect_window_s=round(max(0.0, reconnect_s), 2),
                    last_error=f"{type(exc).__name__}: {exc}",
                )
                raise error from exc
            time.sleep(min(0.2, max(0.02, 0.02 * attempt)))
        except socket.timeout as exc:
            raise ServeError(
                f"daemon at {path} did not answer within {timeout_s:.1f}s"
            ).with_context(attempts=attempt, timeout_s=timeout_s) from exc


def _round_trip(path: str, message: dict, timeout_s: float) -> dict:
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout_s)
        sock.connect(path)
        sock.sendall(encode_message(message))
        chunks: list[bytes] = []
        total = 0
        while True:
            chunk = sock.recv(1 << 16)
            if not chunk:
                break
            chunks.append(chunk)
            total += len(chunk)
            if chunk.endswith(b"\n"):
                break
            if total > MAX_LINE_BYTES:
                raise ServeError("daemon response exceeds the line limit")
    line = b"".join(chunks)
    if not line.endswith(b"\n"):
        # The daemon hung up mid-response (crash, injected disconnect):
        # surface as a connection error so the retry loop reconnects.
        raise ConnectionResetError("daemon closed the connection mid-response")
    return decode_line(line.rstrip(b"\n"))


class _CircuitBreaker:
    """Fail fast against a daemon that keeps eating reconnect windows.

    Counts *consecutive* failed requests (each one already survived a
    full reconnect window, so these are expensive).  At ``threshold``
    the breaker opens: requests fail immediately with the remaining
    cooldown in their context instead of hammering a crash-looping
    daemon.  Each consecutive open doubles the cooldown up to a cap;
    the first success closes everything.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 1.0,
        max_cooldown_s: float = 30.0,
    ):
        self.threshold = max(1, threshold)
        self.cooldown_s = max(0.05, cooldown_s)
        self.max_cooldown_s = max_cooldown_s
        self.failures = 0
        self.opens = 0
        self.open_until = 0.0

    def check(self) -> None:
        remaining = self.open_until - time.monotonic()
        if remaining > 0:
            raise ServeError(
                f"circuit breaker is open for another {remaining:.1f}s"
                f" after {self.failures} consecutive failure(s)"
            ).with_context(
                code="circuit_open",
                failures=self.failures,
                retry_in_s=round(remaining, 2),
            )

    def record_failure(self) -> None:
        self.failures += 1
        if self.failures >= self.threshold:
            self.opens += 1
            cooldown = min(
                self.max_cooldown_s,
                self.cooldown_s * (2 ** (self.opens - 1)),
            )
            self.open_until = time.monotonic() + cooldown

    def record_success(self) -> None:
        self.failures = 0
        self.opens = 0
        self.open_until = 0.0


class ServeClient:
    """Thin convenience wrapper binding a socket path and retry window."""

    def __init__(
        self,
        socket_path: str | Path,
        *,
        timeout_s: float = 30.0,
        reconnect_s: float = 10.0,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 1.0,
    ):
        self.socket_path = Path(socket_path)
        self.timeout_s = timeout_s
        self.reconnect_s = reconnect_s
        self._breaker = _CircuitBreaker(
            threshold=breaker_threshold, cooldown_s=breaker_cooldown_s
        )

    def _op(self, message: dict, *, reconnect_s: float | None = None) -> dict:
        self._breaker.check()
        try:
            response = request(
                self.socket_path,
                message,
                timeout_s=self.timeout_s,
                reconnect_s=(
                    self.reconnect_s if reconnect_s is None else reconnect_s
                ),
            )
        except ServeError:
            self._breaker.record_failure()
            raise
        self._breaker.record_success()
        return response

    def ping(self, *, reconnect_s: float | None = None) -> dict:
        return self._op({"op": "ping"}, reconnect_s=reconnect_s)

    def submit(
        self, job: dict, *, priority: int = 0, deadline: float = 0.0
    ) -> dict:
        message = {"op": "submit", "job": job, "priority": priority}
        if deadline and deadline > 0:
            message["deadline"] = float(deadline)
        return self._op(message)

    def status(self, job_id: str) -> dict:
        return self._op({"op": "status", "job_id": job_id})

    def result(self, job_id: str) -> dict:
        return self._op({"op": "result", "job_id": job_id})

    def stats(self) -> dict:
        return self._op({"op": "stats"})

    def metrics(self) -> dict:
        return self._op({"op": "metrics"})

    def trace(self, job_id: str) -> dict:
        return self._op({"op": "trace", "job_id": job_id})

    def drain(self) -> dict:
        return self._op({"op": "drain"})

    def subscribe(
        self,
        job_id: str | None = None,
        *,
        backlog: bool = True,
        idle_s: float = 2.0,
        reconnect_s: float | None = None,
    ) -> Iterator[dict | None]:
        """Yield feed events (and ``None`` on idle) until the feed ends.

        The first yielded event is the ``snapshot`` line (``{"ok": true,
        "snapshot": {...}}``).  A broken connection is retried within the
        reconnect window and resubscribed with backlog replay; the
        generator ends when the window is exhausted or the daemon closes
        the feed (drain/shutdown).
        """
        window = self.reconnect_s if reconnect_s is None else reconnect_s
        deadline = time.monotonic() + max(0.0, window)
        request_line = encode_message(
            {"op": "subscribe", "job_id": job_id or "", "backlog": backlog}
        )
        while True:
            try:
                with socket.socket(
                    socket.AF_UNIX, socket.SOCK_STREAM
                ) as sock:
                    sock.settimeout(max(0.1, idle_s))
                    sock.connect(str(self.socket_path))
                    sock.sendall(request_line)
                    buffer = bytearray()
                    while True:
                        newline = buffer.find(b"\n")
                        if newline >= 0:
                            line = bytes(buffer[:newline])
                            del buffer[: newline + 1]
                            yield decode_line(line)
                            # Events are flowing: refresh the window.
                            deadline = time.monotonic() + max(0.0, window)
                            continue
                        if len(buffer) > MAX_LINE_BYTES:
                            raise ServeError(
                                "feed event exceeds the line limit"
                            )
                        try:
                            chunk = sock.recv(1 << 16)
                        except socket.timeout:
                            yield None  # idle beat; caller may redraw
                            continue
                        if not chunk:
                            break  # daemon closed the feed
                        buffer.extend(chunk)
            except (
                ConnectionRefusedError,
                FileNotFoundError,
                ConnectionResetError,
                BrokenPipeError,
                OSError,
            ):
                pass
            if time.monotonic() >= deadline:
                return
            time.sleep(0.1)

    def wait(
        self,
        job_id: str,
        *,
        timeout_s: float = 600.0,
        poll_s: float = 0.2,
    ) -> dict:
        """Poll until the job is ``done``/``failed``; rides out restarts.

        A job retention evicted mid-wait is returned as its structured
        ``evicted`` view (terminal from the waiter's perspective --
        :meth:`run` turns it into a resubmit).  Raises
        :class:`ServeError` on deadline, on an unknown job (a journal
        that never saw the submit), or when the daemon stays down
        longer than the reconnect window.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            view = self.result(job_id)
            if view.get("code") == "evicted":
                return view
            if not view.get("ok"):
                raise ServeError(
                    f"waiting on {job_id}: {view.get('error', 'unknown error')}"
                ).with_context(code=view.get("code"))
            if view.get("state") in ("done", "failed"):
                return view
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {view.get('state')!r} after"
                    f" {timeout_s:.1f}s"
                )
            time.sleep(poll_s)

    def run(
        self,
        job: dict,
        *,
        priority: int = 0,
        deadline: float = 0.0,
        timeout_s: float = 600.0,
        poll_s: float = 0.2,
        max_backoff_s: float = 30.0,
        max_resubmits: int = 3,
    ) -> dict:
        """Submit and wait, with the full overload-retry discipline.

        Backpressure rejections (``busy``, ``draining``,
        ``disk_pressure``) retry under capped jittered exponential
        backoff that never undercuts the daemon's ``retry_after`` hint.
        A result evicted by retention between completion and our read
        is recovered by resubmitting the identical spec -- submits are
        content-addressed and results cached, so the retry is
        idempotent.  Any other rejection or failure raises/returns
        exactly as :meth:`wait` would.
        """
        stop_at = time.monotonic() + timeout_s
        rejections = 0
        resubmits = 0
        while True:
            remaining = stop_at - time.monotonic()
            if remaining <= 0:
                raise ServeError(
                    f"gave up submitting after {timeout_s:.1f}s"
                ).with_context(rejections=rejections, resubmits=resubmits)
            submitted = self.submit(job, priority=priority, deadline=deadline)
            if not submitted.get("ok"):
                code = submitted.get("code")
                if code not in ("busy", "draining", "disk_pressure"):
                    raise ServeError(
                        f"submit rejected: {submitted.get('error')}"
                    ).with_context(code=code)
                rejections += 1
                hint = float(submitted.get("retry_after") or 0.0)
                backoff = min(
                    max_backoff_s, 0.2 * (2 ** min(rejections, 8))
                )
                # The hint is a floor, never jittered away; the jitter
                # spreads simultaneous retriers apart (up to +25%).
                delay = max(hint, backoff) * (1.0 + 0.25 * random.random())
                time.sleep(max(0.02, min(delay, remaining)))
                continue
            rejections = 0
            view = self.wait(
                submitted["job_id"],
                timeout_s=max(0.1, stop_at - time.monotonic()),
                poll_s=poll_s,
            )
            if view.get("code") == "evicted":
                resubmits += 1
                if resubmits > max_resubmits:
                    raise ServeError(
                        f"job {submitted['job_id']} evicted"
                        f" {resubmits} time(s); giving up"
                    ).with_context(code="evicted", resubmits=resubmits)
                continue
            return view
