"""Client side of the evaluation daemon: connect-per-request + polling.

Every operation opens a fresh connection, sends one JSON line, reads
one JSON line back, and closes.  That makes the client stateless across
daemon restarts: a request that lands while the daemon is down (socket
missing or refusing) is retried inside ``reconnect_s`` -- combined with
idempotent server ops (submits dedup, status/result are reads) the
caller never has to care whether the daemon it is talking to is the
incarnation it submitted to.

:meth:`ServeClient.wait` polls ``result`` until the job reaches a
terminal state, riding out daemon downtime the same way; jobs survive
restarts in the journal, so waiting through a crash is expected to
succeed, not error.

The one exception to connect-per-request is :meth:`ServeClient.subscribe`:
it holds a single connection open and yields the daemon's JSON-lines
event feed as decoded dicts (``None`` between events when the feed is
idle, so callers can redraw UIs or check deadlines).  On a dropped
connection it reconnects inside the usual window and resubscribes with
backlog replay -- the per-event ``seq`` lets consumers drop duplicates.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Iterator

from repro.errors import ServeError
from repro.serve.protocol import MAX_LINE_BYTES, encode_message, decode_line

__all__ = ["ServeClient", "request"]


def request(
    socket_path: str | Path,
    message: dict,
    *,
    timeout_s: float = 30.0,
    reconnect_s: float = 0.0,
) -> dict:
    """One request/response round-trip; retries connection for ``reconnect_s``.

    Raises :class:`ServeError` when the daemon stays unreachable past the
    reconnect window, answers with a malformed line, or hangs up without
    responding (e.g. an injected ``client_disconnect`` fault).
    """
    path = str(socket_path)
    deadline = time.monotonic() + max(0.0, reconnect_s)
    attempt = 0
    while True:
        attempt += 1
        try:
            return _round_trip(path, message, timeout_s)
        except (ConnectionRefusedError, FileNotFoundError, ConnectionResetError,
                BrokenPipeError) as exc:
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"daemon unreachable at {path} after {attempt} attempt(s):"
                    f" {type(exc).__name__}: {exc}"
                ) from exc
            time.sleep(min(0.2, max(0.02, 0.02 * attempt)))
        except socket.timeout as exc:
            raise ServeError(
                f"daemon at {path} did not answer within {timeout_s:.1f}s"
            ) from exc


def _round_trip(path: str, message: dict, timeout_s: float) -> dict:
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout_s)
        sock.connect(path)
        sock.sendall(encode_message(message))
        chunks: list[bytes] = []
        total = 0
        while True:
            chunk = sock.recv(1 << 16)
            if not chunk:
                break
            chunks.append(chunk)
            total += len(chunk)
            if chunk.endswith(b"\n"):
                break
            if total > MAX_LINE_BYTES:
                raise ServeError("daemon response exceeds the line limit")
    line = b"".join(chunks)
    if not line.endswith(b"\n"):
        # The daemon hung up mid-response (crash, injected disconnect):
        # surface as a connection error so the retry loop reconnects.
        raise ConnectionResetError("daemon closed the connection mid-response")
    return decode_line(line.rstrip(b"\n"))


class ServeClient:
    """Thin convenience wrapper binding a socket path and retry window."""

    def __init__(
        self,
        socket_path: str | Path,
        *,
        timeout_s: float = 30.0,
        reconnect_s: float = 10.0,
    ):
        self.socket_path = Path(socket_path)
        self.timeout_s = timeout_s
        self.reconnect_s = reconnect_s

    def _op(self, message: dict, *, reconnect_s: float | None = None) -> dict:
        return request(
            self.socket_path,
            message,
            timeout_s=self.timeout_s,
            reconnect_s=self.reconnect_s if reconnect_s is None else reconnect_s,
        )

    def ping(self, *, reconnect_s: float | None = None) -> dict:
        return self._op({"op": "ping"}, reconnect_s=reconnect_s)

    def submit(self, job: dict, *, priority: int = 0) -> dict:
        return self._op({"op": "submit", "job": job, "priority": priority})

    def status(self, job_id: str) -> dict:
        return self._op({"op": "status", "job_id": job_id})

    def result(self, job_id: str) -> dict:
        return self._op({"op": "result", "job_id": job_id})

    def stats(self) -> dict:
        return self._op({"op": "stats"})

    def metrics(self) -> dict:
        return self._op({"op": "metrics"})

    def trace(self, job_id: str) -> dict:
        return self._op({"op": "trace", "job_id": job_id})

    def drain(self) -> dict:
        return self._op({"op": "drain"})

    def subscribe(
        self,
        job_id: str | None = None,
        *,
        backlog: bool = True,
        idle_s: float = 2.0,
        reconnect_s: float | None = None,
    ) -> Iterator[dict | None]:
        """Yield feed events (and ``None`` on idle) until the feed ends.

        The first yielded event is the ``snapshot`` line (``{"ok": true,
        "snapshot": {...}}``).  A broken connection is retried within the
        reconnect window and resubscribed with backlog replay; the
        generator ends when the window is exhausted or the daemon closes
        the feed (drain/shutdown).
        """
        window = self.reconnect_s if reconnect_s is None else reconnect_s
        deadline = time.monotonic() + max(0.0, window)
        request_line = encode_message(
            {"op": "subscribe", "job_id": job_id or "", "backlog": backlog}
        )
        while True:
            try:
                with socket.socket(
                    socket.AF_UNIX, socket.SOCK_STREAM
                ) as sock:
                    sock.settimeout(max(0.1, idle_s))
                    sock.connect(str(self.socket_path))
                    sock.sendall(request_line)
                    buffer = bytearray()
                    while True:
                        newline = buffer.find(b"\n")
                        if newline >= 0:
                            line = bytes(buffer[:newline])
                            del buffer[: newline + 1]
                            yield decode_line(line)
                            # Events are flowing: refresh the window.
                            deadline = time.monotonic() + max(0.0, window)
                            continue
                        if len(buffer) > MAX_LINE_BYTES:
                            raise ServeError(
                                "feed event exceeds the line limit"
                            )
                        try:
                            chunk = sock.recv(1 << 16)
                        except socket.timeout:
                            yield None  # idle beat; caller may redraw
                            continue
                        if not chunk:
                            break  # daemon closed the feed
                        buffer.extend(chunk)
            except (
                ConnectionRefusedError,
                FileNotFoundError,
                ConnectionResetError,
                BrokenPipeError,
                OSError,
            ):
                pass
            if time.monotonic() >= deadline:
                return
            time.sleep(0.1)

    def wait(
        self,
        job_id: str,
        *,
        timeout_s: float = 600.0,
        poll_s: float = 0.2,
    ) -> dict:
        """Poll until the job is ``done``/``failed``; rides out restarts.

        Raises :class:`ServeError` on deadline, on an unknown job (a
        journal that never saw the submit), or when the daemon stays
        down longer than the reconnect window.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            view = self.result(job_id)
            if not view.get("ok"):
                raise ServeError(
                    f"waiting on {job_id}: {view.get('error', 'unknown error')}"
                )
            if view.get("state") in ("done", "failed"):
                return view
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {view.get('state')!r} after"
                    f" {timeout_s:.1f}s"
                )
            time.sleep(poll_s)
