"""Priority job queue with single-flight dedup and journal restore.

The queue is deliberately *dumb about durability*: it is a pure
in-memory state machine, and :class:`~repro.serve.daemon.ServerCore`
journals every transition **before** calling the matching mutator here.
That ordering is the recovery invariant -- anything the memory knows,
the journal already knows -- and it is what lets
:meth:`JobQueue.restore` rebuild the exact queue from a replayed record
list after a crash.

Single-flight dedup: jobs are keyed by the content address of their
normalized spec (:func:`repro.serve.protocol.job_key`).  A submit whose
key matches a live (pending/running/done) job returns that job instead
of creating a new one -- two clients asking for the same matrix share
one execution and both read the same result.  Only a *failed* job's key
is released, so resubmitting known-bad work is allowed to try again.

Backpressure: ``max_pending`` bounds the pending backlog.  A submit
past the high-water mark raises :class:`QueueFull` (the daemon turns
that into a ``busy`` + ``retry_after`` response) -- except when it
dedups onto an existing job, which costs nothing.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from repro.errors import ServeError
from repro.log import get_logger

__all__ = [
    "DONE",
    "FAILED",
    "Job",
    "JobQueue",
    "PENDING",
    "QueueFull",
    "RUNNING",
    "STATES",
]

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
STATES = (PENDING, RUNNING, DONE, FAILED)

_log = get_logger("serve.queue")


class QueueFull(ServeError):
    """The pending backlog is past the high-water mark (shed load)."""


@dataclass
class Job:
    """One unit of served work, from submit to its terminal record."""

    job_id: str
    key: str  # content-addressed single-flight key
    kind: str
    spec: dict
    priority: int = 0  # lower runs sooner; FIFO within a priority
    seq: int = 0  # submission order (heap tiebreak, stable ids)
    state: str = PENDING
    attempts: int = 0
    worker: str = ""
    submitted_s: float = 0.0
    claimed_s: float = 0.0  # last claim time (job wait/run latency metrics)
    result: dict | None = None  # payload of the complete record
    error: dict | None = None  # structured failure of the fail record

    def status_view(self) -> dict:
        """The JSON-safe view ``status`` responses return (no payload)."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "attempts": self.attempts,
            "worker": self.worker if self.state == RUNNING else "",
            "error": self.error,
        }


class JobQueue:
    """In-memory queue: priority heap + dedup index + job table."""

    def __init__(self, max_pending: int | None = None):
        self.max_pending = max_pending
        self.jobs: dict[str, Job] = {}
        self._by_key: dict[str, str] = {}
        self._heap: list[tuple[int, int, str]] = []  # (priority, seq, id)
        self._next_seq = 0

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        return sum(1 for job in self.jobs.values() if job.state == PENDING)

    def running_count(self) -> int:
        return sum(1 for job in self.jobs.values() if job.state == RUNNING)

    def lookup_key(self, key: str) -> Job | None:
        """The live (non-failed) job already covering this key, if any."""
        job_id = self._by_key.get(key)
        if job_id is None:
            return None
        job = self.jobs[job_id]
        return None if job.state == FAILED else job

    def make_job(self, kind: str, spec: dict, key: str, priority: int) -> Job:
        """Build (but do not enqueue) the next job for this spec.

        Split from :meth:`add` so the caller can journal the submit
        record -- with the final job id and seq -- *before* the queue
        mutates.  Raises :class:`QueueFull` past the high-water mark.
        """
        if (
            self.max_pending is not None
            and self.pending_count() >= self.max_pending
        ):
            raise QueueFull(
                f"queue is full ({self.pending_count()} pending,"
                f" high-water mark {self.max_pending})"
            )
        seq = self._next_seq
        return Job(
            job_id=f"j{seq:06d}-{key[:8]}",
            key=key,
            kind=kind,
            spec=spec,
            priority=priority,
            seq=seq,
            submitted_s=time.time(),
        )

    def add(self, job: Job) -> Job:
        """Enqueue a job built by :meth:`make_job` (journal already has it)."""
        self._next_seq = max(self._next_seq, job.seq + 1)
        self.jobs[job.job_id] = job
        self._by_key[job.key] = job.job_id
        if job.state == PENDING:
            heapq.heappush(self._heap, (job.priority, job.seq, job.job_id))
        return job

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def next_pending(self) -> Job | None:
        """Peek the highest-priority pending job without claiming it."""
        while self._heap:
            _prio, _seq, job_id = self._heap[0]
            job = self.jobs.get(job_id)
            if job is not None and job.state == PENDING:
                return job
            heapq.heappop(self._heap)  # stale entry (claimed/failed/replaced)
        return None

    def mark_claimed(self, job_id: str, worker: str) -> Job:
        """Transition pending -> running (claim record already journaled)."""
        job = self.jobs[job_id]
        if job.state != PENDING:
            raise ServeError(f"cannot claim job {job_id} in state {job.state}")
        job.state = RUNNING
        job.worker = worker
        job.attempts += 1
        job.claimed_s = time.time()
        return job

    def mark_requeued(self, job_id: str, *, attempts: int | None = None) -> Job:
        """Transition running -> pending (worker died, hang, daemon restart)."""
        job = self.jobs[job_id]
        job.state = PENDING
        job.worker = ""
        if attempts is not None:
            job.attempts = attempts
        heapq.heappush(self._heap, (job.priority, job.seq, job.job_id))
        return job

    def mark_done(self, job_id: str, result: dict | None) -> Job:
        job = self.jobs[job_id]
        job.state = DONE
        job.worker = ""
        job.result = result
        return job

    def mark_failed(self, job_id: str, error: dict) -> Job:
        job = self.jobs[job_id]
        job.state = FAILED
        job.worker = ""
        job.error = error
        # Release the single-flight key so the spec may be resubmitted.
        if self._by_key.get(job.key) == job.job_id:
            del self._by_key[job.key]
        return job

    def position(self, job_id: str) -> int | None:
        """How many pending jobs run before this one (``None`` if not pending)."""
        job = self.jobs.get(job_id)
        if job is None or job.state != PENDING:
            return None
        return sum(
            1
            for other in self.jobs.values()
            if other.state == PENDING
            and (other.priority, other.seq) < (job.priority, job.seq)
        )

    # ------------------------------------------------------------------
    # journal restore
    # ------------------------------------------------------------------
    def restore(self, records: list[dict]) -> list[str]:
        """Rebuild the queue from replayed journal records.

        Applies the same reduction the live daemon performs, then
        converts every job the journal left ``running`` back to
        ``pending`` -- a claim without a terminal record means the
        worker died with the daemon, and the job must run again.
        Completed and failed jobs keep their terminal state forever (a
        claim replayed *after* a complete record is ignored: finished
        work is never reopened).  Returns the ids of the recovered
        (requeued) jobs so the caller can journal their requeue records.
        """
        for record in records:
            rtype = record.get("type")
            if rtype == "submit":
                spec = record.get("spec")
                job_id = record.get("job_id")
                if not isinstance(spec, dict) or not isinstance(job_id, str):
                    continue
                if job_id in self.jobs:
                    continue  # duplicate submit record: first one wins
                job = Job(
                    job_id=job_id,
                    key=str(record.get("key", "")),
                    kind=str(record.get("kind", "")),
                    spec=spec,
                    priority=int(record.get("priority", 0)),
                    seq=int(record.get("job_seq", 0)),
                    submitted_s=float(record.get("submitted_s", 0.0)),
                )
                self.jobs[job.job_id] = job
                self._by_key[job.key] = job.job_id
                self._next_seq = max(self._next_seq, job.seq + 1)
                continue
            job = self.jobs.get(record.get("job_id", ""))
            if job is None or job.state in (DONE, FAILED):
                continue
            if rtype == "claim":
                job.state = RUNNING
                job.worker = str(record.get("worker", ""))
                job.attempts = int(record.get("attempt", job.attempts + 1))
            elif rtype == "requeue":
                job.state = PENDING
                job.worker = ""
                job.attempts = int(record.get("attempts", job.attempts))
            elif rtype == "complete":
                job.state = DONE
                job.worker = ""
                result = record.get("result")
                job.result = result if isinstance(result, dict) else None
            elif rtype == "fail":
                job.state = FAILED
                job.worker = ""
                error = record.get("error")
                job.error = error if isinstance(error, dict) else {
                    "error_type": "ServeError", "message": "unknown failure",
                }
                if self._by_key.get(job.key) == job.job_id:
                    del self._by_key[job.key]
            # unknown record types: forward-compatible no-op

        recovered: list[str] = []
        for job in self.jobs.values():
            if job.state == RUNNING:
                job.state = PENDING
                job.worker = ""
                recovered.append(job.job_id)
        for job in self.jobs.values():
            if job.state == PENDING:
                heapq.heappush(self._heap, (job.priority, job.seq, job.job_id))
        if recovered:
            _log.warning(
                "journal recovery requeued %d in-flight job(s): %s",
                len(recovered), ", ".join(sorted(recovered)),
            )
        return sorted(recovered)

    def live_records(self) -> list[dict]:
        """Re-serialize the queue for journal compaction.

        One submit record per job plus its terminal (or attempts-
        preserving requeue) record, in submission order -- replaying
        these reproduces this exact queue.
        """
        records: list[dict] = []
        for job in sorted(self.jobs.values(), key=lambda j: j.seq):
            records.append(
                {
                    "type": "submit",
                    "seq": 2 * job.seq,
                    "job_id": job.job_id,
                    "job_seq": job.seq,
                    "key": job.key,
                    "kind": job.kind,
                    "spec": job.spec,
                    "priority": job.priority,
                    "submitted_s": job.submitted_s,
                }
            )
            extra: dict | None = None
            if job.state == DONE:
                extra = {"type": "complete", "result": job.result}
            elif job.state == FAILED:
                extra = {"type": "fail", "error": job.error}
            elif job.attempts:
                extra = {"type": "requeue", "attempts": job.attempts,
                         "reason": "compaction"}
            if extra is not None:
                extra.update({"seq": 2 * job.seq + 1, "job_id": job.job_id})
                records.append(extra)
        return records
