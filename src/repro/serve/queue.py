"""Priority job queue with single-flight dedup and journal restore.

The queue is deliberately *dumb about durability*: it is a pure
in-memory state machine, and :class:`~repro.serve.daemon.ServerCore`
journals every transition **before** calling the matching mutator here.
That ordering is the recovery invariant -- anything the memory knows,
the journal already knows -- and it is what lets
:meth:`JobQueue.restore` rebuild the exact queue from a replayed record
list after a crash.

Single-flight dedup: jobs are keyed by the content address of their
normalized spec (:func:`repro.serve.protocol.job_key`).  A submit whose
key matches a live (pending/running/done) job returns that job instead
of creating a new one -- two clients asking for the same matrix share
one execution and both read the same result.  Only a *failed* job's key
is released, so resubmitting known-bad work is allowed to try again.

Backpressure: ``max_pending`` bounds the pending backlog.  A submit
past the high-water mark raises :class:`QueueFull` (the daemon turns
that into a ``busy`` + ``retry_after`` response) -- except when it
dedups onto an existing job, which costs nothing.  At the mark the
daemon may instead *shed*: :meth:`JobQueue.shed_candidate` names the
lowest-priority, newest pending job, and evicting it makes room for a
strictly higher-priority submit -- overload degrades the cheap work
first instead of blanket-rejecting the important work.

Deadlines: a job may carry an absolute ``deadline_s``.
:meth:`JobQueue.expired_pending` lists the pending jobs whose deadline
has passed so the daemon can fail them as ``DeadlineExceeded`` --
checked at claim time too, so an expired job never occupies a worker.

Retention: terminal jobs are tracked in finish order.
:meth:`JobQueue.evict_candidates` names the terminal jobs past the
count/age retention bounds and :meth:`JobQueue.evict` drops one from
memory, leaving a bounded tombstone so ``result`` can answer with a
structured ``evicted`` record instead of ``unknown_job``.  Eviction
releases the single-flight key: resubmitting the same spec is the
documented recovery path (content addressing plus the result cache make
the rerun cheap and byte-identical).
"""

from __future__ import annotations

import heapq
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ServeError
from repro.log import get_logger

__all__ = [
    "DONE",
    "EVICTED",
    "FAILED",
    "Job",
    "JobQueue",
    "PENDING",
    "QueueFull",
    "RUNNING",
    "STATES",
]

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
#: Tombstone pseudo-state: the job reached DONE/FAILED, then retention
#: dropped its payload from memory.  Never a live ``Job.state``.
EVICTED = "evicted"
STATES = (PENDING, RUNNING, DONE, FAILED)

_log = get_logger("serve.queue")


class QueueFull(ServeError):
    """The pending backlog is past the high-water mark (shed load)."""


@dataclass
class Job:
    """One unit of served work, from submit to its terminal record."""

    job_id: str
    key: str  # content-addressed single-flight key
    kind: str
    spec: dict
    priority: int = 0  # lower runs sooner; FIFO within a priority
    seq: int = 0  # submission order (heap tiebreak, stable ids)
    state: str = PENDING
    attempts: int = 0
    worker: str = ""
    submitted_s: float = 0.0
    claimed_s: float = 0.0  # last claim time (job wait/run latency metrics)
    deadline_s: float = 0.0  # absolute wall-clock deadline (0 = none)
    finished_s: float = 0.0  # terminal-transition time (retention TTL)
    result: dict | None = None  # payload of the complete record
    error: dict | None = None  # structured failure of the fail record

    def status_view(self) -> dict:
        """The JSON-safe view ``status`` responses return (no payload)."""
        view = {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "attempts": self.attempts,
            "worker": self.worker if self.state == RUNNING else "",
            "error": self.error,
        }
        if self.deadline_s:
            view["deadline_s"] = self.deadline_s
        return view


class JobQueue:
    """In-memory queue: priority heap + dedup index + job table."""

    def __init__(
        self, max_pending: int | None = None, max_tombstones: int = 4096
    ):
        self.max_pending = max_pending
        self.max_tombstones = max(1, max_tombstones)
        self.jobs: dict[str, Job] = {}
        self.evicted: OrderedDict[str, dict] = OrderedDict()  # tombstones
        self._by_key: dict[str, str] = {}
        self._heap: list[tuple[int, int, str]] = []  # (priority, seq, id)
        self._terminal: OrderedDict[str, None] = OrderedDict()  # finish order
        self._next_seq = 0

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        return sum(1 for job in self.jobs.values() if job.state == PENDING)

    def running_count(self) -> int:
        return sum(1 for job in self.jobs.values() if job.state == RUNNING)

    def lookup_key(self, key: str) -> Job | None:
        """The live (non-failed) job already covering this key, if any."""
        job_id = self._by_key.get(key)
        if job_id is None:
            return None
        job = self.jobs[job_id]
        return None if job.state == FAILED else job

    def make_job(
        self,
        kind: str,
        spec: dict,
        key: str,
        priority: int,
        deadline_s: float = 0.0,
    ) -> Job:
        """Build (but do not enqueue) the next job for this spec.

        Split from :meth:`add` so the caller can journal the submit
        record -- with the final job id and seq -- *before* the queue
        mutates.  Raises :class:`QueueFull` past the high-water mark.
        """
        if (
            self.max_pending is not None
            and self.pending_count() >= self.max_pending
        ):
            raise QueueFull(
                f"queue is full ({self.pending_count()} pending,"
                f" high-water mark {self.max_pending})"
            )
        seq = self._next_seq
        return Job(
            job_id=f"j{seq:06d}-{key[:8]}",
            key=key,
            kind=kind,
            spec=spec,
            priority=priority,
            seq=seq,
            submitted_s=time.time(),
            deadline_s=deadline_s,
        )

    def shed_candidate(self, priority: int) -> Job | None:
        """The pending job a ``priority`` submit may displace, if any.

        The victim is the *lowest-priority, newest* pending job -- the
        work the queue would run last anyway -- and only a strictly
        higher-priority submit (lower number) may displace it: equal
        priority never sheds, so a flood at one priority cannot rotate
        itself through the queue.
        """
        victim: Job | None = None
        for job in self.jobs.values():
            if job.state != PENDING:
                continue
            if victim is None or (job.priority, job.seq) > (
                victim.priority, victim.seq
            ):
                victim = job
        if victim is not None and victim.priority > priority:
            return victim
        return None

    def expired_pending(self, now: float | None = None) -> list[Job]:
        """Pending jobs whose deadline has passed (oldest deadline first).

        The caller fails each as ``DeadlineExceeded`` -- this is a pure
        query so the journal-first ordering stays in the daemon.
        """
        now = time.time() if now is None else now
        expired = [
            job
            for job in self.jobs.values()
            if job.state == PENDING and job.deadline_s
            and job.deadline_s <= now
        ]
        return sorted(expired, key=lambda j: (j.deadline_s, j.seq))

    def add(self, job: Job) -> Job:
        """Enqueue a job built by :meth:`make_job` (journal already has it)."""
        self._next_seq = max(self._next_seq, job.seq + 1)
        self.jobs[job.job_id] = job
        self._by_key[job.key] = job.job_id
        if job.state == PENDING:
            heapq.heappush(self._heap, (job.priority, job.seq, job.job_id))
        return job

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def next_pending(self) -> Job | None:
        """Peek the highest-priority pending job without claiming it."""
        while self._heap:
            _prio, _seq, job_id = self._heap[0]
            job = self.jobs.get(job_id)
            if job is not None and job.state == PENDING:
                return job
            heapq.heappop(self._heap)  # stale entry (claimed/failed/replaced)
        return None

    def mark_claimed(self, job_id: str, worker: str) -> Job:
        """Transition pending -> running (claim record already journaled)."""
        job = self.jobs[job_id]
        if job.state != PENDING:
            raise ServeError(f"cannot claim job {job_id} in state {job.state}")
        job.state = RUNNING
        job.worker = worker
        job.attempts += 1
        job.claimed_s = time.time()
        return job

    def mark_requeued(self, job_id: str, *, attempts: int | None = None) -> Job:
        """Transition running -> pending (worker died, hang, daemon restart)."""
        job = self.jobs[job_id]
        job.state = PENDING
        job.worker = ""
        if attempts is not None:
            job.attempts = attempts
        heapq.heappush(self._heap, (job.priority, job.seq, job.job_id))
        return job

    def mark_done(self, job_id: str, result: dict | None) -> Job:
        job = self.jobs[job_id]
        job.state = DONE
        job.worker = ""
        job.result = result
        job.finished_s = job.finished_s or time.time()
        self._terminal[job_id] = None
        return job

    def mark_failed(self, job_id: str, error: dict) -> Job:
        job = self.jobs[job_id]
        job.state = FAILED
        job.worker = ""
        job.error = error
        job.finished_s = job.finished_s or time.time()
        self._terminal[job_id] = None
        # Release the single-flight key so the spec may be resubmitted.
        if self._by_key.get(job.key) == job.job_id:
            del self._by_key[job.key]
        return job

    # ------------------------------------------------------------------
    # retention
    # ------------------------------------------------------------------
    def terminal_count(self) -> int:
        return len(self._terminal)

    def evict_candidates(
        self,
        retain_jobs: int,
        retain_s: float,
        now: float | None = None,
    ) -> list[Job]:
        """Terminal jobs past the retention bounds, oldest finish first.

        ``retain_jobs`` caps how many terminal jobs stay resident (LRU
        by finish order); ``retain_s`` expires any terminal job older
        than that.  Either bound <= 0 disables that dimension.
        """
        now = time.time() if now is None else now
        candidates: list[Job] = []
        over = (
            len(self._terminal) - retain_jobs if retain_jobs > 0 else 0
        )
        for index, job_id in enumerate(self._terminal):
            job = self.jobs.get(job_id)
            if job is None:  # defensive: tombstoned out of band
                continue
            too_many = index < over
            too_old = (
                retain_s > 0
                and job.finished_s
                and now - job.finished_s > retain_s
            )
            if too_many or too_old:
                candidates.append(job)
        return candidates

    def evict(self, job_id: str, evicted_s: float | None = None) -> dict:
        """Drop one terminal job from memory, leaving a tombstone.

        Releases the single-flight key -- an evicted result can only be
        recovered by resubmitting the spec, so the resubmit must create
        a fresh job.  Returns the tombstone (what ``result`` answers
        with, and what journal compaction preserves).
        """
        job = self.jobs.get(job_id)
        if job is None or job.state not in (DONE, FAILED):
            raise ServeError(
                f"cannot evict job {job_id}:"
                f" {'unknown' if job is None else job.state}"
            )
        tombstone = {
            "job_id": job.job_id,
            "key": job.key,
            "kind": job.kind,
            "state": job.state,
            "finished_s": job.finished_s,
            "evicted_s": time.time() if evicted_s is None else evicted_s,
        }
        del self.jobs[job_id]
        self._terminal.pop(job_id, None)
        if self._by_key.get(job.key) == job_id:
            del self._by_key[job.key]
        self._remember_tombstone(tombstone)
        return tombstone

    def _remember_tombstone(self, tombstone: dict) -> None:
        job_id = str(tombstone.get("job_id", ""))
        if not job_id:
            return
        self.evicted[job_id] = tombstone
        self.evicted.move_to_end(job_id)
        while len(self.evicted) > self.max_tombstones:
            self.evicted.popitem(last=False)

    def position(self, job_id: str) -> int | None:
        """How many pending jobs run before this one (``None`` if not pending)."""
        job = self.jobs.get(job_id)
        if job is None or job.state != PENDING:
            return None
        return sum(
            1
            for other in self.jobs.values()
            if other.state == PENDING
            and (other.priority, other.seq) < (job.priority, job.seq)
        )

    # ------------------------------------------------------------------
    # journal restore
    # ------------------------------------------------------------------
    def restore(self, records: list[dict]) -> list[str]:
        """Rebuild the queue from replayed journal records.

        Applies the same reduction the live daemon performs, then
        converts every job the journal left ``running`` back to
        ``pending`` -- a claim without a terminal record means the
        worker died with the daemon, and the job must run again.
        Completed and failed jobs keep their terminal state forever (a
        claim replayed *after* a complete record is ignored: finished
        work is never reopened), and **retention wins over terminal**:
        a job with an ``evict`` record anywhere in the replay stays a
        tombstone no matter where its other records land -- an evicted
        result must never resurrect into memory.  Returns the ids of
        the recovered (requeued) jobs so the caller can journal their
        requeue records.
        """
        evict_records: dict[str, dict] = {}
        for record in records:
            rtype = record.get("type")
            if rtype == "evict":
                job_id = record.get("job_id")
                if isinstance(job_id, str) and job_id:
                    evict_records[job_id] = record
                continue
            if rtype == "submit":
                spec = record.get("spec")
                job_id = record.get("job_id")
                if not isinstance(spec, dict) or not isinstance(job_id, str):
                    continue
                if job_id in self.jobs:
                    continue  # duplicate submit record: first one wins
                job = Job(
                    job_id=job_id,
                    key=str(record.get("key", "")),
                    kind=str(record.get("kind", "")),
                    spec=spec,
                    priority=int(record.get("priority", 0)),
                    seq=int(record.get("job_seq", 0)),
                    submitted_s=float(record.get("submitted_s", 0.0)),
                    deadline_s=float(record.get("deadline_s", 0.0)),
                )
                self.jobs[job.job_id] = job
                self._by_key[job.key] = job.job_id
                self._next_seq = max(self._next_seq, job.seq + 1)
                continue
            job = self.jobs.get(record.get("job_id", ""))
            if job is None or job.state in (DONE, FAILED):
                continue
            if rtype == "claim":
                job.state = RUNNING
                job.worker = str(record.get("worker", ""))
                job.attempts = int(record.get("attempt", job.attempts + 1))
            elif rtype == "requeue":
                job.state = PENDING
                job.worker = ""
                job.attempts = int(record.get("attempts", job.attempts))
            elif rtype == "complete":
                job.state = DONE
                job.worker = ""
                job.finished_s = float(record.get("finished_s", 0.0))
                result = record.get("result")
                job.result = result if isinstance(result, dict) else None
            elif rtype == "fail":
                job.state = FAILED
                job.worker = ""
                job.finished_s = float(record.get("finished_s", 0.0))
                error = record.get("error")
                job.error = error if isinstance(error, dict) else {
                    "error_type": "ServeError", "message": "unknown failure",
                }
                if self._by_key.get(job.key) == job.job_id:
                    del self._by_key[job.key]
            # unknown record types: forward-compatible no-op

        # Retention wins: an evicted job never re-enters memory, whatever
        # order its records replayed in.  The tombstone merges whatever
        # the evict record knew with whatever the reduction learned.
        for job_id, record in evict_records.items():
            job = self.jobs.pop(job_id, None)
            if job is not None:
                self._terminal.pop(job_id, None)
                if self._by_key.get(job.key) == job_id:
                    del self._by_key[job.key]
            self._remember_tombstone(
                {
                    "job_id": job_id,
                    "key": str(record.get("key", job.key if job else "")),
                    "kind": str(record.get("kind", job.kind if job else "")),
                    "state": str(
                        record.get(
                            "state",
                            job.state if job is not None
                            and job.state in (DONE, FAILED) else DONE,
                        )
                    ),
                    "finished_s": float(
                        record.get(
                            "finished_s", job.finished_s if job else 0.0
                        )
                    ),
                    "evicted_s": float(record.get("evicted_s", 0.0)),
                }
            )

        recovered: list[str] = []
        for job in self.jobs.values():
            if job.state == RUNNING:
                job.state = PENDING
                job.worker = ""
                recovered.append(job.job_id)
        terminal = sorted(
            (j for j in self.jobs.values() if j.state in (DONE, FAILED)),
            key=lambda j: (j.finished_s, j.seq),
        )
        for job in terminal:
            self._terminal[job.job_id] = None
        for job in self.jobs.values():
            if job.state == PENDING:
                heapq.heappush(self._heap, (job.priority, job.seq, job.job_id))
        if recovered:
            _log.warning(
                "journal recovery requeued %d in-flight job(s): %s",
                len(recovered), ", ".join(sorted(recovered)),
            )
        return sorted(recovered)

    def live_records(self) -> list[dict]:
        """Re-serialize the queue for journal compaction.

        One submit record per job plus its terminal (or attempts-
        preserving requeue) record, in submission order, then one
        ``evict`` record per tombstone -- replaying these reproduces
        this exact queue, including which results retention already
        dropped.
        """
        records: list[dict] = []
        for job in sorted(self.jobs.values(), key=lambda j: j.seq):
            submit = {
                "type": "submit",
                "seq": 2 * job.seq,
                "job_id": job.job_id,
                "job_seq": job.seq,
                "key": job.key,
                "kind": job.kind,
                "spec": job.spec,
                "priority": job.priority,
                "submitted_s": job.submitted_s,
            }
            if job.deadline_s:
                submit["deadline_s"] = job.deadline_s
            records.append(submit)
            extra: dict | None = None
            if job.state == DONE:
                extra = {"type": "complete", "result": job.result,
                         "finished_s": job.finished_s}
            elif job.state == FAILED:
                extra = {"type": "fail", "error": job.error,
                         "finished_s": job.finished_s}
            elif job.attempts:
                extra = {"type": "requeue", "attempts": job.attempts,
                         "reason": "compaction"}
            if extra is not None:
                extra.update({"seq": 2 * job.seq + 1, "job_id": job.job_id})
                records.append(extra)
        seq = 2 * self._next_seq
        for tombstone in self.evicted.values():
            records.append({"type": "evict", "seq": seq, **tombstone})
            seq += 1
        return records
