"""Design-level PDN analysis: power maps, IR drop, noise margins.

Builds per-tier current maps from the placed design's power distribution
(every instance draws ``P / V_DD`` at its location; the clock network's
power is spread over its sink area), runs the stacked-grid solve, and
reports the figures a PDN signoff would: worst/average IR drop per tier,
drop as a fraction of each tier's supply, and whether the design meets a
noise-margin target.

The heterogeneous insight this surfaces (the Section V future-work
question): the top die of a hetero stack draws far less current than a
homogeneous 12-track top die, which largely offsets the via-feeding
penalty -- but its 0.81 V rail also has less margin to give.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flow.design import Design
from repro.pdn.grid import PdnConfig, solve_ir_drop
from repro.power.activity import propagate_activities

__all__ = ["TierPdnReport", "PdnReport", "analyze_pdn"]

#: Default IR-drop budget as a fraction of the tier supply (signoff rule).
DROP_BUDGET_FRACTION = 0.05


@dataclass(frozen=True)
class TierPdnReport:
    """IR-drop summary of one tier."""

    tier: int
    vdd_v: float
    total_current_ma: float
    worst_drop_mv: float
    mean_drop_mv: float

    @property
    def worst_drop_fraction(self) -> float:
        """Worst drop relative to this tier's supply."""
        return self.worst_drop_mv / (self.vdd_v * 1000.0)

    def meets_budget(self, fraction: float = DROP_BUDGET_FRACTION) -> bool:
        """True when the worst drop stays inside the signoff budget."""
        return self.worst_drop_fraction <= fraction


@dataclass(frozen=True)
class PdnReport:
    """Full-chip PDN analysis result."""

    tiers: dict[int, TierPdnReport]
    config: PdnConfig

    @property
    def worst_tier(self) -> TierPdnReport:
        """The tier with the largest relative drop."""
        return max(self.tiers.values(), key=lambda t: t.worst_drop_fraction)

    def meets_budget(self, fraction: float = DROP_BUDGET_FRACTION) -> bool:
        """True when every tier meets the signoff budget."""
        return all(t.meets_budget(fraction) for t in self.tiers.values())


def _current_maps(design: Design, bins: int) -> dict[int, np.ndarray]:
    """Per-tier (bins, bins) current maps in mA from instance power."""
    fp = design.floorplan
    if fp is None:
        raise ValueError("design must be floorplanned for PDN analysis")
    netlist = design.netlist
    calc = design.calculator(placed=True)
    activities = propagate_activities(netlist)
    frequency = design.frequency_ghz

    maps = {tier: np.zeros((bins, bins)) for tier in design.tier_libs}

    for inst in netlist.instances.values():
        if not inst.is_placed:
            continue
        out_net = inst.net_of(inst.cell.output_pin)
        act = activities.get(out_net, 0.1) if out_net else 0.0
        power_mw = inst.cell.internal_energy_pj * act * frequency
        power_mw += inst.cell.leakage_mw
        if out_net is not None:
            cap = calc.net_parasitics(netlist.nets[out_net]).total_cap_ff
            vdd = inst.cell.vdd_v
            power_mw += 0.5 * cap * vdd * vdd * act * frequency / 1000.0
        current_ma = power_mw / inst.cell.vdd_v
        cx, cy = inst.center()
        r = min(bins - 1, max(0, int(cy / fp.height_um * bins)))
        c = min(bins - 1, max(0, int(cx / fp.width_um * bins)))
        tier = inst.tier if inst.tier in maps else 0
        maps[tier][r, c] += current_ma

    # Clock power: spread uniformly over each tier's share of buffers.
    if design.clock_report is not None:
        report = design.clock_report
        total = max(1, report.buffer_count)
        for tier, count in report.buffer_count_by_tier.items():
            if tier not in maps:
                continue
            vdd = design.tier_libs[tier].vdd_v
            share_mw = report.power_mw * count / total
            maps[tier] += share_mw / vdd / (bins * bins)
    return maps


def analyze_pdn(
    design: Design,
    config: PdnConfig | None = None,
    *,
    current_scale: float = 1.0,
) -> PdnReport:
    """IR-drop analysis of a placed (optionally heterogeneous) design.

    ``current_scale`` multiplies the extracted currents; repro-scale
    netlists are ~50x smaller than the paper's, so passing the cell-count
    ratio emulates full-scale current density (the comparative hetero-vs-
    homogeneous conclusions are scale-invariant either way).
    """
    config = config or PdnConfig()
    maps = _current_maps(design, config.bins)
    if current_scale != 1.0:
        maps = {tier: m * current_scale for tier, m in maps.items()}
    drops = solve_ir_drop(maps, config)
    tiers = {}
    for tier, drop in drops.items():
        tiers[tier] = TierPdnReport(
            tier=tier,
            vdd_v=design.tier_libs[tier].vdd_v,
            total_current_ma=float(maps[tier].sum()),
            worst_drop_mv=float(drop.max()),
            mean_drop_mv=float(drop.mean()),
        )
    return PdnReport(tiers=tiers, config=config)
