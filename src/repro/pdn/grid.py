"""Resistive power-grid model and IR-drop solver.

Section V: "the current research is done with ideal power delivery, and a
thorough study of the power delivery networks for heterogeneous 3-D ICs
is required".  This module supplies that study's substrate: each tier's
power grid is a uniform resistive mesh over a bin grid; the bottom tier
is fed from C4 bumps along the die periphery, and the *top tier is fed
only through power vias from the bottom tier* -- the defining PDN
challenge of monolithic stacking, since every milliamp the top die draws
must first cross the bottom die's grid and the inter-tier vias.

The solve is a standard nodal analysis: a Laplacian over the mesh nodes
with Dirichlet pads, one sparse factorization per analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import spsolve

from repro.errors import FlowError

__all__ = ["PdnConfig", "solve_ir_drop"]


@dataclass(frozen=True)
class PdnConfig:
    """Electrical parameters of the power delivery network.

    ``grid_r_ohm`` is the mesh resistance between adjacent bin nodes of
    one tier (it lumps the rail/strap stack over one bin pitch);
    ``via_r_ohm`` is the total resistance of the power-via bundle
    connecting one top-tier node down to the node below it; ``pad_r_ohm``
    connects periphery nodes of the bottom tier to the ideal supply.
    """

    bins: int = 12
    grid_r_ohm: float = 0.08
    via_r_ohm: float = 0.35
    pad_r_ohm: float = 0.02

    def __post_init__(self) -> None:
        if self.bins < 2:
            raise FlowError("PDN grid needs at least 2x2 bins")
        for name in ("grid_r_ohm", "via_r_ohm", "pad_r_ohm"):
            if getattr(self, name) <= 0:
                raise FlowError(f"{name} must be positive")


def solve_ir_drop(
    current_ma: dict[int, np.ndarray],
    config: PdnConfig = PdnConfig(),
) -> dict[int, np.ndarray]:
    """Solve the stacked power grid; return per-tier IR-drop maps in mV.

    Parameters
    ----------
    current_ma:
        Per-tier ``(bins, bins)`` arrays of drawn current in mA.  Tier 0
        is the bottom die (pad-fed); higher tiers are fed through vias
        from the tier below.  A single-entry dict analyzes a 2-D chip.

    Returns per-tier arrays of IR drop (supply minus node voltage), mV.
    The drop is referenced to each tier's own rail, so heterogeneous
    supplies need no special handling here (currents already encode them).
    """
    tiers = sorted(current_ma)
    if tiers[0] != 0:
        raise FlowError("tier 0 (the pad-fed bottom die) is required")
    n = config.bins
    for tier in tiers:
        if current_ma[tier].shape != (n, n):
            raise FlowError(
                f"tier {tier} current map must be {n}x{n}, "
                f"got {current_ma[tier].shape}"
            )

    def node(tier_index: int, row: int, col: int) -> int:
        return tier_index * n * n + row * n + col

    total_nodes = len(tiers) * n * n
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    diag = np.zeros(total_nodes)
    rhs = np.zeros(total_nodes)

    g_mesh = 1.0 / config.grid_r_ohm
    g_via = 1.0 / config.via_r_ohm
    g_pad = 1.0 / config.pad_r_ohm

    def stamp(a: int, b: int, g: float) -> None:
        diag[a] += g
        diag[b] += g
        rows.extend((a, b))
        cols.extend((b, a))
        vals.extend((-g, -g))

    for ti, tier in enumerate(tiers):
        for r in range(n):
            for c in range(n):
                a = node(ti, r, c)
                if c + 1 < n:
                    stamp(a, node(ti, r, c + 1), g_mesh)
                if r + 1 < n:
                    stamp(a, node(ti, r + 1, c), g_mesh)
                # current sink (mA with conductances in 1/ohm -> volts
                # come out in millivolts of drop)
                rhs[a] -= current_ma[tier][r, c]
        if ti == 0:
            # C4 pads around the periphery of the bottom tier
            for r in range(n):
                for c in range(n):
                    if r in (0, n - 1) or c in (0, n - 1):
                        diag[node(ti, r, c)] += g_pad
                        # pad ties to 0 drop: contributes nothing to rhs
        else:
            # power vias to the tier below, one bundle per node
            for r in range(n):
                for c in range(n):
                    stamp(node(ti, r, c), node(ti - 1, r, c), g_via)

    diag += 1e-9  # keep the matrix non-singular for isolated nodes
    idx = np.arange(total_nodes)
    rows.extend(idx)
    cols.extend(idx)
    vals.extend(diag)
    matrix = coo_matrix((vals, (rows, cols)), shape=(total_nodes, total_nodes)).tocsc()
    # Unknowns are node *drops* below the ideal rail: G * v = -I with pads
    # pulling toward zero drop; solve for v (negative of our convention).
    voltage = spsolve(matrix, rhs)
    drops = {}
    for ti, tier in enumerate(tiers):
        block = voltage[ti * n * n : (ti + 1) * n * n].reshape(n, n)
        drops[tier] = -block  # drop is positive below the rail
    return drops
