"""Power delivery network analysis (the paper's Section V future work)."""

from repro.pdn.analysis import PdnReport, TierPdnReport, analyze_pdn
from repro.pdn.grid import PdnConfig, solve_ir_drop

__all__ = [
    "PdnConfig",
    "PdnReport",
    "TierPdnReport",
    "analyze_pdn",
    "solve_ir_drop",
]
