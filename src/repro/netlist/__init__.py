"""Design database: instances, nets, netlist graph, generators, Verilog I/O."""

from repro.netlist.core import Instance, Net, Netlist, PortDirection
from repro.netlist.generators import (
    NetlistSpec,
    generate_aes,
    generate_cpu,
    generate_ldpc,
    generate_netcard,
    generate_netlist,
)

__all__ = [
    "Instance",
    "Net",
    "Netlist",
    "PortDirection",
    "NetlistSpec",
    "generate_aes",
    "generate_cpu",
    "generate_ldpc",
    "generate_netcard",
    "generate_netlist",
]
