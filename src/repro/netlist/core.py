"""Core netlist database: instances, nets, and the netlist hypergraph.

The database is deliberately close to what a PnR tool keeps in memory:

- an :class:`Instance` is one placed cell: a name, a bound
  :class:`~repro.liberty.cells.CellType`, a tier assignment (0 = bottom,
  1 = top; always 0 for 2-D designs), an optional placement location, and
  per-pin net bindings;
- a :class:`Net` is a hyperedge with exactly one driver (an instance output
  pin or a primary input port) and any number of sinks;
- a :class:`Netlist` owns both maps plus the primary ports, and offers the
  graph traversals every downstream engine needs (topological order over
  the combinational core, fanin/fanout, area queries, validation).

Tier and position live on the instance rather than in side tables because
the flows mutate them constantly (partitioning, ECO repartitioning,
legalization) and locality of that state keeps the code honest.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.errors import NetlistError
from repro.liberty.cells import CellType

__all__ = ["PortDirection", "Instance", "Net", "Netlist"]


class PortDirection(enum.Enum):
    """Direction of a primary (chip-level) port."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass
class Instance:
    """One cell instance in the design.

    Attributes
    ----------
    name:
        Unique instance name.
    cell:
        The bound library cell type.  Rebinding (tech remap, resize) goes
        through :meth:`Netlist.rebind` so pin compatibility is checked.
    tier:
        Die assignment: 0 is the bottom tier, 1 the top tier.  2-D designs
        keep every instance on tier 0.
    x_um / y_um:
        Placement location (lower-left corner), or None before placement.
    block:
        Logical block tag from the generator (e.g. ``"alu"``); used for
        reporting and for the clustering effects Section III-A1 discusses.
    fixed:
        True for instances the optimizer must not touch (e.g. macros).
    """

    name: str
    cell: CellType
    tier: int = 0
    x_um: float | None = None
    y_um: float | None = None
    block: str = ""
    fixed: bool = False
    _pin_nets: dict[str, str] = field(default_factory=dict, repr=False)

    @property
    def is_placed(self) -> bool:
        """True once the instance has a location."""
        return self.x_um is not None and self.y_um is not None

    @property
    def area_um2(self) -> float:
        """Footprint of the bound cell."""
        return self.cell.area_um2

    def net_of(self, pin: str) -> str | None:
        """Name of the net bound to ``pin``, or None when unconnected."""
        return self._pin_nets.get(pin)

    def connected_pins(self) -> Iterator[tuple[str, str]]:
        """Iterate (pin name, net name) for every bound pin."""
        return iter(self._pin_nets.items())

    def center(self) -> tuple[float, float]:
        """Placement center of the instance."""
        if not self.is_placed:
            raise NetlistError(f"instance {self.name} is not placed")
        return (
            self.x_um + self.cell.width_um / 2.0,
            self.y_um + self.cell.height_um / 2.0,
        )


@dataclass
class Net:
    """A signal net: one driver, many sinks.

    ``driver`` is ``(instance_name, pin_name)`` or ``None`` when the net is
    driven by a primary input port of the same name.  Sinks are
    ``(instance_name, pin_name)`` pairs; a primary output port appears in
    ``Netlist.ports`` rather than in the sink list.
    """

    name: str
    driver: tuple[str, str] | None = None
    sinks: list[tuple[str, str]] = field(default_factory=list)
    is_clock: bool = False

    @property
    def fanout(self) -> int:
        """Number of sink pins on the net."""
        return len(self.sinks)


class Netlist:
    """The design hypergraph plus primary ports.

    All structural edits go through methods of this class so the
    instance/net cross-references stay consistent; :meth:`validate` checks
    the invariants and is exercised heavily by the property-based tests.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.instances: dict[str, Instance] = {}
        self.nets: dict[str, Net] = {}
        self.ports: dict[str, PortDirection] = {}
        self.clock_port: str | None = None
        self._topology_version = 0
        self._topo_cache: list[Instance] | None = None
        self._topo_cache_version = -1

    @property
    def topology_version(self) -> int:
        """Monotonic counter bumped by every structural edit.

        Rebinding a cell (resize/remap) does not change connectivity and
        does not bump the version; connect/disconnect and adding/removing
        instances, nets, or ports do.  Consumers (the cached
        :meth:`topological_order`, the incremental timing session) compare
        versions instead of re-walking the graph.
        """
        return self._topology_version

    def _bump_topology(self) -> None:
        self._topology_version += 1
        self._topo_cache = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_port(
        self, name: str, direction: PortDirection, *, is_clock: bool = False
    ) -> None:
        """Declare a primary port; input ports implicitly create their net."""
        if name in self.ports:
            raise NetlistError(f"duplicate port {name!r}")
        self.ports[name] = direction
        self._bump_topology()
        if direction is PortDirection.INPUT:
            if name in self.nets:
                raise NetlistError(f"net {name!r} already exists for port")
            self.nets[name] = Net(name=name, driver=None, is_clock=is_clock)
            if is_clock:
                if self.clock_port is not None:
                    raise NetlistError("only one clock port is supported")
                self.clock_port = name
        elif is_clock:
            raise NetlistError("clock port must be an input")

    def add_instance(
        self,
        name: str,
        cell: CellType,
        *,
        block: str = "",
        tier: int = 0,
        fixed: bool = False,
    ) -> Instance:
        """Create an unconnected instance."""
        if name in self.instances:
            raise NetlistError(f"duplicate instance {name!r}")
        inst = Instance(name=name, cell=cell, tier=tier, block=block, fixed=fixed)
        self.instances[name] = inst
        self._bump_topology()
        return inst

    def add_net(self, name: str, *, is_clock: bool = False) -> Net:
        """Create an empty (undriven) net."""
        if name in self.nets:
            raise NetlistError(f"duplicate net {name!r}")
        net = Net(name=name, is_clock=is_clock)
        self.nets[name] = net
        self._bump_topology()
        return net

    def connect(self, net_name: str, inst_name: str, pin: str) -> None:
        """Bind an instance pin to a net, as driver or sink by direction."""
        net = self._net(net_name)
        inst = self._instance(inst_name)
        spec = inst.cell.pins.get(pin)
        if spec is None:
            raise NetlistError(f"{inst.cell.name} has no pin {pin!r}")
        if inst.net_of(pin) is not None:
            raise NetlistError(f"{inst_name}.{pin} is already connected")
        if spec.direction == "output":
            if net.driver is not None:
                raise NetlistError(f"net {net_name!r} already has a driver")
            net.driver = (inst_name, pin)
        else:
            net.sinks.append((inst_name, pin))
        inst._pin_nets[pin] = net_name
        self._bump_topology()

    def disconnect(self, inst_name: str, pin: str) -> None:
        """Unbind an instance pin from its net."""
        inst = self._instance(inst_name)
        net_name = inst.net_of(pin)
        if net_name is None:
            raise NetlistError(f"{inst_name}.{pin} is not connected")
        net = self._net(net_name)
        if net.driver == (inst_name, pin):
            net.driver = None
        else:
            net.sinks.remove((inst_name, pin))
        del inst._pin_nets[pin]
        self._bump_topology()

    def remove_instance(self, inst_name: str) -> None:
        """Delete an instance, unbinding all its pins first."""
        inst = self._instance(inst_name)
        for pin, _net in list(inst.connected_pins()):
            self.disconnect(inst_name, pin)
        del self.instances[inst_name]
        self._bump_topology()

    def remove_net(self, net_name: str) -> None:
        """Delete a net; it must have no connections left."""
        net = self._net(net_name)
        if net.driver is not None or net.sinks:
            raise NetlistError(f"net {net_name!r} still has connections")
        if net_name in self.ports:
            raise NetlistError(f"net {net_name!r} belongs to a port")
        del self.nets[net_name]
        self._bump_topology()

    def rebind(self, inst_name: str, new_cell: CellType) -> None:
        """Swap an instance's cell type (resize or tech remap).

        The new cell must expose every currently-connected pin name; this
        holds for same-function cells across drives and track variants.
        """
        inst = self._instance(inst_name)
        for pin, _net in inst.connected_pins():
            if pin not in new_cell.pins:
                raise NetlistError(
                    f"cannot rebind {inst_name}: {new_cell.name} lacks pin {pin!r}"
                )
        inst.cell = new_cell

    # ------------------------------------------------------------------
    # lookups and traversal
    # ------------------------------------------------------------------
    def _instance(self, name: str) -> Instance:
        try:
            return self.instances[name]
        except KeyError:
            raise NetlistError(f"no instance {name!r}") from None

    def _net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise NetlistError(f"no net {name!r}") from None

    def driver_instance(self, net: Net) -> Instance | None:
        """The instance driving a net, or None for primary-input nets."""
        if net.driver is None:
            return None
        return self.instances[net.driver[0]]

    def fanout_instances(self, inst_name: str) -> Iterator[Instance]:
        """Instances reading any output of ``inst_name`` (may repeat)."""
        inst = self._instance(inst_name)
        for pin, net_name in inst.connected_pins():
            if inst.cell.pins[pin].direction != "output":
                continue
            for sink_name, _sink_pin in self.nets[net_name].sinks:
                yield self.instances[sink_name]

    def fanin_instances(self, inst_name: str) -> Iterator[Instance]:
        """Instances driving any input of ``inst_name`` (may repeat)."""
        inst = self._instance(inst_name)
        for pin, net_name in inst.connected_pins():
            if inst.cell.pins[pin].direction == "output":
                continue
            driver = self.driver_instance(self.nets[net_name])
            if driver is not None:
                yield driver

    def sequential_instances(self) -> list[Instance]:
        """All flip-flops and memory macros."""
        return [i for i in self.instances.values() if i.cell.is_sequential]

    def combinational_instances(self) -> list[Instance]:
        """All non-sequential instances."""
        return [i for i in self.instances.values() if not i.cell.is_sequential]

    def memory_macros(self) -> list[Instance]:
        """All memory macro instances."""
        return [i for i in self.instances.values() if i.cell.is_macro]

    def topological_order(self) -> list[Instance]:
        """Combinational instances in dependency order.

        Sequential cells act as graph sources/sinks (their Q output launches,
        their D input captures), so a legal sequential design yields a
        complete order; a combinational loop raises :class:`NetlistError`.

        The order is cached against :attr:`topology_version`, so repeated
        calls between structural edits are O(1).  Callers must treat the
        returned list as read-only.
        """
        if (self._topo_cache is not None
                and self._topo_cache_version == self._topology_version):
            return self._topo_cache
        indegree: dict[str, int] = {}
        for inst in self.instances.values():
            if inst.cell.is_sequential:
                continue
            count = 0
            for pin, net_name in inst.connected_pins():
                if inst.cell.pins[pin].direction == "output":
                    continue
                driver = self.driver_instance(self.nets[net_name])
                if driver is not None and not driver.cell.is_sequential:
                    count += 1
            indegree[inst.name] = count

        ready = deque(sorted(name for name, d in indegree.items() if d == 0))
        order: list[Instance] = []
        while ready:
            name = ready.popleft()
            inst = self.instances[name]
            order.append(inst)
            for pin, net_name in inst.connected_pins():
                if inst.cell.pins[pin].direction != "output":
                    continue
                for sink_name, _pin in self.nets[net_name].sinks:
                    if sink_name in indegree:
                        indegree[sink_name] -= 1
                        if indegree[sink_name] == 0:
                            ready.append(sink_name)
        if len(order) != len(indegree):
            raise NetlistError(
                f"combinational loop: ordered {len(order)} of {len(indegree)}"
            )
        self._topo_cache = order
        self._topo_cache_version = self._topology_version
        return order

    # ------------------------------------------------------------------
    # aggregate queries
    # ------------------------------------------------------------------
    def cell_area_um2(self, predicate: Callable[[Instance], bool] | None = None) -> float:
        """Total cell area, optionally filtered by a predicate."""
        return sum(
            inst.area_um2
            for inst in self.instances.values()
            if predicate is None or predicate(inst)
        )

    def tier_area_um2(self, tier: int) -> float:
        """Total cell area on one tier."""
        return self.cell_area_um2(lambda inst: inst.tier == tier)

    def tiers_used(self) -> tuple[int, ...]:
        """Sorted tuple of tiers that hold at least one instance."""
        return tuple(sorted({inst.tier for inst in self.instances.values()}))

    def cut_nets(self) -> list[Net]:
        """Nets whose pins span more than one tier (each needs MIVs)."""
        cut: list[Net] = []
        for net in self.nets.values():
            tiers = set()
            if net.driver is not None:
                tiers.add(self.instances[net.driver[0]].tier)
            for sink_name, _pin in net.sinks:
                tiers.add(self.instances[sink_name].tier)
            if len(tiers) > 1:
                cut.append(net)
        return cut

    def clock_sinks(self) -> list[tuple[str, str]]:
        """(instance, pin) pairs on the clock net."""
        if self.clock_port is None:
            return []
        return list(self.nets[self.clock_port].sinks)

    def validate(self) -> None:
        """Check the structural invariants; raise on the first violation.

        - every bound pin appears exactly once on its net (right side),
        - every net connection points back to a bound pin,
        - every non-port net has a driver,
        - every input pin of every instance is connected (no floating
          inputs -- the generators guarantee this and the flows preserve it).
        """
        for inst in self.instances.values():
            for pin, net_name in inst.connected_pins():
                net = self.nets.get(net_name)
                if net is None:
                    raise NetlistError(f"{inst.name}.{pin} points at missing net")
                ref = (inst.name, pin)
                if inst.cell.pins[pin].direction == "output":
                    if net.driver != ref:
                        raise NetlistError(f"driver mismatch on {net_name}")
                elif ref not in net.sinks:
                    raise NetlistError(f"sink {ref} missing from {net_name}")
            for pin, spec in inst.cell.pins.items():
                if spec.direction != "output" and inst.net_of(pin) is None:
                    raise NetlistError(f"floating input {inst.name}.{pin}")
        for net in self.nets.values():
            if net.driver is None and net.name not in self.ports:
                raise NetlistError(f"net {net.name} is undriven")
            if net.driver is not None:
                inst_name, pin = net.driver
                inst = self.instances.get(inst_name)
                if inst is None or inst.net_of(pin) != net.name:
                    raise NetlistError(f"stale driver on {net.name}")
            for inst_name, pin in net.sinks:
                inst = self.instances.get(inst_name)
                if inst is None or inst.net_of(pin) != net.name:
                    raise NetlistError(f"stale sink on {net.name}")

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def unique_name(self, prefix: str) -> str:
        """Generate an instance/net name not currently in use."""
        i = len(self.instances)
        while True:
            candidate = f"{prefix}_{i}"
            if candidate not in self.instances and candidate not in self.nets:
                return candidate
            i += 1

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, {len(self.instances)} instances, "
            f"{len(self.nets)} nets)"
        )

    def summary(self) -> dict[str, float]:
        """Headline statistics used by reports and tests."""
        seq = self.sequential_instances()
        return {
            "instances": len(self.instances),
            "nets": len(self.nets),
            "ports": len(self.ports),
            "sequential": len(seq),
            "macros": len(self.memory_macros()),
            "cell_area_um2": self.cell_area_um2(),
        }


def iter_net_pins(netlist: Netlist, net: Net) -> Iterable[tuple[str, str]]:
    """All (instance, pin) connections of a net including the driver."""
    if net.driver is not None:
        yield net.driver
    yield from net.sinks
