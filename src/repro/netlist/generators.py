"""Synthetic netlist generators for the paper's four evaluation RTLs.

The paper evaluates AES, LDPC, Netcard, and a commercial Cortex-A7 class
CPU (Section IV).  We cannot redistribute those netlists, so each
generator synthesizes a netlist reproducing the *published topology
character* that the evaluation actually exercises:

``aes``
    Cell-dominant 128-bit encryption core: many identical bit-slice
    clouds of the same depth ("all the 128-bits have a very similar
    functional path, making the design very symmetric"), local
    connectivity, shallow-ish logic that closes at ~3 GHz.  The symmetry
    is what makes AES the weakest case for timing-based partitioning.

``ldpc``
    Wire-dominant encoder/decoder: a bipartite Tanner graph between
    variable-node and check-node logic with *random global* connections
    spanning the whole chip ("a high degree of interconnectivity and the
    timing paths span the entire chip").

``netcard``
    The largest netlist: plain modular logic (many medium-depth modules
    with nearest-neighbour and some long-range traffic).

``cpu``
    A general-purpose core: heterogeneous pipeline blocks with very
    different logic depths (a deep multiplier block supplies the
    timing-critical cluster Section III-A1 talks about) plus SRAM cache
    macros contributing ~40% of the footprint, "of the same size in both
    technology variants".

Every generator is deterministic in its ``seed`` and linear in ``scale``;
``scale=1.0`` produces a few thousand instances so that the full 4x5
configuration matrix of the paper runs in minutes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetlistError
from repro.liberty.cells import CellFunction
from repro.liberty.library import StdCellLibrary
from repro.netlist.core import Netlist, PortDirection

__all__ = [
    "NetlistSpec",
    "generate_netlist",
    "generate_aes",
    "generate_ldpc",
    "generate_netcard",
    "generate_cpu",
    "DESIGN_NAMES",
]

#: The four evaluation designs, in the paper's table order.
DESIGN_NAMES: tuple[str, ...] = ("netcard", "aes", "ldpc", "cpu")

#: Default combinational function mix (weights) for generic logic.
_GENERIC_MIX: tuple[tuple[CellFunction, float], ...] = (
    (CellFunction.NAND2, 0.22),
    (CellFunction.NOR2, 0.12),
    (CellFunction.INV, 0.14),
    (CellFunction.AND2, 0.10),
    (CellFunction.OR2, 0.08),
    (CellFunction.AOI21, 0.09),
    (CellFunction.OAI21, 0.09),
    (CellFunction.XOR2, 0.06),
    (CellFunction.MUX2, 0.06),
    (CellFunction.NAND3, 0.04),
)

#: XOR-heavy mix for parity/datapath logic (AES mix columns, LDPC checks).
_XOR_MIX: tuple[tuple[CellFunction, float], ...] = (
    (CellFunction.XOR2, 0.45),
    (CellFunction.XNOR2, 0.20),
    (CellFunction.NAND2, 0.12),
    (CellFunction.INV, 0.10),
    (CellFunction.MUX2, 0.08),
    (CellFunction.AOI21, 0.05),
)


@dataclass(frozen=True)
class NetlistSpec:
    """Reproducible recipe for one generated netlist."""

    name: str
    scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.name not in DESIGN_NAMES:
            raise NetlistError(
                f"unknown design {self.name!r}; expected one of {DESIGN_NAMES}"
            )
        if self.scale <= 0:
            raise NetlistError("scale must be positive")


class _Builder:
    """Shared machinery for emitting clouds of logic and FF banks."""

    def __init__(self, netlist: Netlist, lib: StdCellLibrary, rng: np.random.Generator):
        self.netlist = netlist
        self.lib = lib
        self.rng = rng
        self._counter = 0

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def _sample_function(
        self, mix: tuple[tuple[CellFunction, float], ...]
    ) -> CellFunction:
        functions = [f for f, _ in mix]
        weights = np.array([w for _, w in mix], dtype=float)
        weights /= weights.sum()
        return functions[int(self.rng.choice(len(functions), p=weights))]

    def add_gate(
        self,
        function: CellFunction,
        input_nets: list[str],
        *,
        block: str,
        drive: int = 1,
    ) -> str:
        """Emit one gate reading ``input_nets``; return its output net name.

        When the function needs more inputs than supplied, inputs are
        reused (legal: a pin may read any net); extra supplied nets beyond
        the pin count are ignored by taking a prefix.
        """
        cell = self.lib.get(function, drive)
        name = self._fresh(f"{block}_u")
        inst = self.netlist.add_instance(name, cell, block=block)
        out_net = self.netlist.add_net(self._fresh(f"{block}_n"))
        self.netlist.connect(out_net.name, name, cell.output_pin)
        pins = cell.input_pins
        if not input_nets:
            raise NetlistError("gate needs at least one input net")
        for i, pin in enumerate(pins):
            src = input_nets[i % len(input_nets)]
            self.netlist.connect(src, inst.name, pin)
        return out_net.name

    def add_ff(self, d_net: str, *, block: str, drive: int = 1) -> str:
        """Emit one flip-flop capturing ``d_net``; return its Q net name."""
        if self.netlist.clock_port is None:
            raise NetlistError("add a clock port before flip-flops")
        cell = self.lib.get(CellFunction.DFF, drive)
        name = self._fresh(f"{block}_ff")
        self.netlist.add_instance(name, cell, block=block)
        q_net = self.netlist.add_net(self._fresh(f"{block}_q"))
        self.netlist.connect(d_net, name, "D")
        self.netlist.connect(self.netlist.clock_port, name, "CK")
        self.netlist.connect(q_net.name, name, "Q")
        return q_net.name

    def ff_bank(self, d_nets: list[str], *, block: str) -> list[str]:
        """A register stage over a list of nets."""
        return [self.add_ff(d, block=block) for d in d_nets]

    def _level_chain(
        self,
        sources: list[str],
        n_gates: int,
        depth: int,
        block: str,
        mix: tuple[tuple[CellFunction, float], ...],
        pool: list[str],
        global_fraction: float,
    ) -> list[list[str]]:
        """One tapered chain of logic levels; returns the level net lists."""
        raw = [1.0 - 0.5 * l / max(1, depth - 1) for l in range(depth)]
        total = sum(raw)
        widths = [max(1, int(round(n_gates * r / total))) for r in raw]
        levels: list[list[str]] = [list(sources)]
        for width in widths:
            level_nets: list[str] = []
            previous = levels[-1]
            for _g in range(width):
                function = self._sample_function(mix)
                inputs: list[str] = []
                for i in range(function.input_count):
                    if pool and self.rng.random() < global_fraction:
                        inputs.append(pool[int(self.rng.integers(len(pool)))])
                    elif i == 0 or self.rng.random() < 0.7:
                        inputs.append(previous[int(self.rng.integers(len(previous)))])
                    else:
                        # skip-level read, biased toward recent levels
                        back = 1 + int(self.rng.integers(min(3, len(levels))))
                        src_level = levels[-back]
                        inputs.append(
                            src_level[int(self.rng.integers(len(src_level)))]
                        )
                level_nets.append(self.add_gate(function, inputs, block=block))
            levels.append(level_nets)
        return levels

    def cloud(
        self,
        sources: list[str],
        *,
        n_gates: int,
        depth: int,
        n_outputs: int,
        block: str,
        mix: tuple[tuple[CellFunction, float], ...] = _GENERIC_MIX,
        global_pool: list[str] | None = None,
        global_fraction: float = 0.0,
        depth_spread: tuple[float, float] = (0.5, 1.0),
        strata: int = 4,
    ) -> list[str]:
        """Emit a combinational cloud with realistic *cell* depth spread.

        Real designs contain many logic cones of very different depths,
        and only the deepest ones are timing critical -- the premise of
        cell-based timing-driven partitioning (Section III-A1).  A single
        levelized mesh fails to reproduce that (every gate ends up feeding
        the deepest cone), so the cloud is built as ``strata`` independent
        tapered level-chains whose depths span
        ``[depth_spread[0] * depth, depth]``.  Cells of a shallow stratum
        genuinely never reach a deep endpoint, giving the design a broad
        per-cell worst-slack distribution.

        ``depth_spread`` is the per-design symmetry knob: AES uses a tight
        spread (its 128 bit-slices are nearly identical -- the paper's
        hardest case for heterogeneous partitioning), while CPU-style
        logic is diverse.  ``global_fraction`` is the wire-dominance knob
        (LDPC reads from ``global_pool`` across the whole die).

        Returns ``n_outputs`` nets sampled from every stratum's final
        level (deepest stratum first).
        """
        if not sources:
            raise NetlistError("cloud needs source nets")
        depth = max(1, depth)
        pool = list(global_pool) if global_pool else []
        strata = max(1, min(strata, n_gates))

        lo, hi = depth_spread
        depths = [
            max(1, int(round(depth * (hi - (hi - lo) * s / max(1, strata - 1)))))
            for s in range(strata)
        ]
        share = n_gates // strata
        finals: list[list[str]] = []
        for s, sub_depth in enumerate(depths):
            levels = self._level_chain(
                sources,
                share,
                sub_depth,
                block,
                mix,
                pool,
                global_fraction,
            )
            finals.append(levels[-1])

        # Outputs: round-robin over strata, deepest first.
        outputs: list[str] = []
        idx = 0
        while len(outputs) < n_outputs and idx < 64:
            stratum = finals[idx % len(finals)]
            outputs.append(stratum[int(self.rng.integers(len(stratum)))])
            idx += 1
        while len(outputs) < n_outputs:
            src = outputs[int(self.rng.integers(len(outputs)))]
            outputs.append(self.add_gate(CellFunction.BUF, [src], block=block))
        return outputs[:n_outputs]

    def tie_off(self, nets: list[str], *, block: str) -> None:
        """Terminate dangling nets into single-FF sinks so nothing floats.

        Generated clouds leave interior nets with no sinks; that is fine
        (they model don't-care logic cones), but the *final* outputs of a
        block must reach a register so they participate in timing.
        """
        for net in nets:
            self.add_ff(net, block=block)


def _make_base(name: str, lib: StdCellLibrary, n_inputs: int) -> tuple[Netlist, list[str]]:
    """Create the netlist shell: clock plus primary data inputs."""
    netlist = Netlist(name)
    netlist.add_port("clk", PortDirection.INPUT, is_clock=True)
    inputs = []
    for i in range(n_inputs):
        port = f"in_{i}"
        netlist.add_port(port, PortDirection.INPUT)
        inputs.append(port)
    return netlist, inputs


def _expose_outputs(netlist: Netlist, nets: list[str]) -> None:
    """Declare primary output ports named after the nets they observe."""
    for i, net in enumerate(nets):
        netlist.add_port(f"out_{i}__{net}", PortDirection.OUTPUT)


def generate_aes(
    lib: StdCellLibrary, scale: float = 1.0, seed: int = 0
) -> Netlist:
    """Cell-dominant, symmetric 128-bit-slice encryption core.

    ``n_slices`` identical bit-slice clouds of identical depth between an
    input and an output register bank, with a thin XOR "mix" layer coupling
    neighbouring slices (the MixColumns analogue).  All slices share the
    same depth, so path slacks are tightly clustered -- the property that
    defeats timing-criticality separation in the paper.
    """
    rng = np.random.default_rng(seed)
    n_slices = max(4, int(round(32 * scale)))
    gates_per_slice = 56
    slice_depth = 11

    netlist, inputs = _make_base("aes", lib, n_inputs=32)
    b = _Builder(netlist, lib, rng)

    state = b.ff_bank(
        [inputs[i % len(inputs)] for i in range(n_slices * 2)], block="key"
    )
    slice_outputs: list[list[str]] = []
    for s in range(n_slices):
        sources = [state[(2 * s) % len(state)], state[(2 * s + 1) % len(state)]]
        outs = b.cloud(
            sources,
            n_gates=gates_per_slice,
            depth=slice_depth,
            n_outputs=2,
            block=f"sbox{s}",
            mix=_XOR_MIX,
            depth_spread=(0.8, 1.0),  # near-identical paths: paper's worst case
            strata=3,
        )
        slice_outputs.append(outs)

    # Mix layer: XOR each slice with its neighbour (symmetric coupling).
    mixed: list[str] = []
    for s, outs in enumerate(slice_outputs):
        neighbour = slice_outputs[(s + 1) % n_slices]
        mixed.append(
            b.add_gate(
                CellFunction.XOR2, [outs[0], neighbour[1]], block=f"mix{s}"
            )
        )
    final = b.ff_bank(mixed, block="state")
    _expose_outputs(netlist, final[: min(16, len(final))])
    netlist.validate()
    return netlist


def generate_ldpc(
    lib: StdCellLibrary, scale: float = 1.0, seed: int = 0
) -> Netlist:
    """Wire-dominant LDPC decoder: bipartite variable/check Tanner graph.

    Check-node XOR trees read from *randomly chosen* variable nodes across
    the whole design, producing the global, congestion-driving connectivity
    the paper describes ("routing feasibility drives the optimization").
    """
    rng = np.random.default_rng(seed)
    n_vars = max(16, int(round(96 * scale)))
    n_checks = max(12, int(round(96 * scale)))
    check_degree = 10

    netlist, inputs = _make_base("ldpc", lib, n_inputs=48)
    b = _Builder(netlist, lib, rng)

    # Variable nodes: a small local update cloud each, registered.
    var_nets: list[str] = []
    for v in range(n_vars):
        src = [inputs[v % len(inputs)], inputs[(v * 7 + 3) % len(inputs)]]
        outs = b.cloud(
            src, n_gates=6, depth=3, n_outputs=1, block=f"var{v}", mix=_GENERIC_MIX
        )
        var_nets.append(b.add_ff(outs[0], block=f"var{v}"))

    # Check nodes: XOR trees over random global selections of variables.
    check_nets: list[str] = []
    for c in range(n_checks):
        members = rng.choice(n_vars, size=check_degree, replace=False)
        level = [var_nets[int(m)] for m in members]
        block = f"chk{c}"
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(
                    b.add_gate(CellFunction.XOR2, [level[i], level[i + 1]], block=block)
                )
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        # Deepen with a global-reading refinement cloud (wire dominance).
        outs = b.cloud(
            level,
            n_gates=22,
            depth=9,
            n_outputs=1,
            block=block,
            mix=_XOR_MIX,
            global_pool=var_nets,
            global_fraction=0.75,
            depth_spread=(0.55, 1.0),
            strata=2,
        )
        check_nets.append(outs[0])

    final = b.ff_bank(check_nets, block="syndrome")
    _expose_outputs(netlist, final[: min(16, len(final))])
    netlist.validate()
    return netlist


def generate_netcard(
    lib: StdCellLibrary, scale: float = 1.0, seed: int = 0
) -> Netlist:
    """Large plain-logic design: a grid of modules with neighbour traffic.

    The biggest of the four netlists (matching the paper's 250k-cell
    Netcard at full scale), medium depth, with moderate long-range nets
    between modules.
    """
    rng = np.random.default_rng(seed)
    n_modules = max(6, int(round(24 * scale)))
    gates_per_module = 180
    depth = 18

    netlist, inputs = _make_base("netcard", lib, n_inputs=64)
    b = _Builder(netlist, lib, rng)

    module_regs: list[list[str]] = []
    registered_pool: list[str] = []
    for m in range(n_modules):
        src = [inputs[(m * 5 + k) % len(inputs)] for k in range(4)]
        if module_regs:
            # read a few registered nets from the previous modules
            prev = module_regs[int(rng.integers(len(module_regs)))]
            src.extend(prev[:2])
        regs_in = b.ff_bank(src, block=f"mod{m}")
        outs = b.cloud(
            regs_in,
            n_gates=gates_per_module,
            depth=depth,
            n_outputs=4,
            block=f"mod{m}",
            global_pool=registered_pool if registered_pool else None,
            global_fraction=0.08 if registered_pool else 0.0,
            depth_spread=(0.45, 1.0),
        )
        regs_out = b.ff_bank(outs, block=f"mod{m}")
        module_regs.append(regs_out)
        registered_pool.extend(regs_out)

    final = [regs[0] for regs in module_regs]
    _expose_outputs(netlist, final[: min(16, len(final))])
    netlist.validate()
    return netlist


def generate_cpu(
    lib: StdCellLibrary, scale: float = 1.0, seed: int = 0
) -> Netlist:
    """General-purpose CPU core: diverse blocks plus SRAM cache macros.

    Blocks have deliberately different logic depths: the multiplier cloud
    is the deep, physically-clustered timing-critical block of Section
    III-A1, the decode/control blocks are shallow, and the cache macros
    contribute roughly 40% of the footprint as in the paper.
    """
    rng = np.random.default_rng(seed)
    s = scale
    blocks = (
        # (name, gates, depth, outputs, mix)
        ("fetch", int(220 * s), 10, 8, _GENERIC_MIX),
        ("decode", int(360 * s), 12, 12, _GENERIC_MIX),
        ("alu", int(420 * s), 18, 8, _GENERIC_MIX),
        ("mul", int(520 * s), 30, 8, _XOR_MIX),  # the critical cluster
        ("lsu", int(320 * s), 14, 8, _GENERIC_MIX),
        ("ctrl", int(240 * s), 8, 8, _GENERIC_MIX),
    )
    n_macros = max(1, int(round(4 * s)))

    netlist, inputs = _make_base("cpu", lib, n_inputs=48)
    b = _Builder(netlist, lib, rng)

    pipeline_regs = b.ff_bank(inputs[:24], block="fetch")
    block_outputs: dict[str, list[str]] = {}
    prior: list[str] = pipeline_regs
    for name, gates, depth, n_out, mix in blocks:
        if gates < 8:
            gates = 8
        outs = b.cloud(
            prior,
            n_gates=gates,
            depth=depth,
            n_outputs=n_out,
            block=name,
            mix=mix,
            global_pool=pipeline_regs,
            global_fraction=0.10,
            depth_spread=(0.5, 1.0),
        )
        regs = b.ff_bank(outs, block=name)
        block_outputs[name] = regs
        prior = regs

    # Cache macros: addressed by the LSU, feeding decode via registers.
    lsu_regs = block_outputs["lsu"]
    mem_cell = lib.get(CellFunction.MEMORY, 1)
    mem_q_nets: list[str] = []
    for i in range(n_macros):
        inst = netlist.add_instance(
            f"cache_macro_{i}", mem_cell, block="cache", fixed=True
        )
        q_net = netlist.add_net(f"cache_q_{i}")
        netlist.connect(lsu_regs[i % len(lsu_regs)], inst.name, "A")
        netlist.connect(lsu_regs[(i + 1) % len(lsu_regs)], inst.name, "D")
        netlist.connect(netlist.clock_port, inst.name, "CK")
        netlist.connect(q_net.name, inst.name, "Q")
        mem_q_nets.append(q_net.name)

    # Memory outputs go through a short distribution cloud into registers.
    mem_outs = b.cloud(
        mem_q_nets,
        n_gates=int(80 * s) or 8,
        depth=4,
        n_outputs=8,
        block="lsu_rdata",
    )
    mem_regs = b.ff_bank(mem_outs, block="lsu_rdata")

    final = block_outputs["mul"][:4] + mem_regs[:4]
    _expose_outputs(netlist, final)
    netlist.validate()
    return netlist


_GENERATORS = {
    "aes": generate_aes,
    "ldpc": generate_ldpc,
    "netcard": generate_netcard,
    "cpu": generate_cpu,
}


def generate_netlist(
    name: str, lib: StdCellLibrary, scale: float = 1.0, seed: int = 0
) -> Netlist:
    """Generate one of the four evaluation netlists by name."""
    spec = NetlistSpec(name=name, scale=scale, seed=seed)
    return _GENERATORS[spec.name](lib, spec.scale, spec.seed)
