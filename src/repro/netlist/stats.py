"""Netlist statistics: the topology fingerprints the generators target.

The evaluation differentiates the four RTLs by their wiring character
(AES cell-dominant, LDPC wire-dominant with global nets, ...); these
statistics make that character measurable so the generator tests can pin
it down instead of trusting adjectives.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.netlist.core import Netlist

__all__ = ["NetlistStats", "compute_stats", "logic_depth_histogram"]


@dataclass(frozen=True)
class NetlistStats:
    """Topology fingerprint of one netlist."""

    instances: int
    nets: int
    sequential: int
    macros: int
    cell_area_um2: float
    mean_fanout: float
    max_fanout: int
    pins_per_net: float
    max_logic_depth: int
    mean_logic_depth: float

    @property
    def wire_per_gate(self) -> float:
        """Pins per net scaled by net count per instance: wiring pressure."""
        if self.instances == 0:
            return 0.0
        return self.pins_per_net * self.nets / self.instances


def logic_depth_histogram(netlist: Netlist) -> dict[int, int]:
    """Depth (in gates from any sequential/primary source) per comb cell."""
    depth: dict[str, int] = {}
    for inst in netlist.topological_order():
        best = 0
        for pin in inst.cell.input_pins:
            net_name = inst.net_of(pin)
            if net_name is None:
                continue
            driver = netlist.driver_instance(netlist.nets[net_name])
            if driver is None or driver.cell.is_sequential:
                continue
            best = max(best, depth.get(driver.name, 0))
        depth[inst.name] = best + 1
    histogram: Counter[int] = Counter(depth.values())
    return dict(sorted(histogram.items()))


def compute_stats(netlist: Netlist) -> NetlistStats:
    """Measure the fingerprint of one netlist."""
    fanouts = [
        net.fanout for net in netlist.nets.values() if not net.is_clock
    ]
    pin_counts = [
        net.fanout + (1 if net.driver else 0)
        for net in netlist.nets.values()
        if not net.is_clock
    ]
    histogram = logic_depth_histogram(netlist)
    total_cells = sum(histogram.values())
    mean_depth = (
        sum(d * c for d, c in histogram.items()) / total_cells
        if total_cells
        else 0.0
    )
    return NetlistStats(
        instances=len(netlist.instances),
        nets=len(netlist.nets),
        sequential=len(netlist.sequential_instances()),
        macros=len(netlist.memory_macros()),
        cell_area_um2=netlist.cell_area_um2(),
        mean_fanout=sum(fanouts) / len(fanouts) if fanouts else 0.0,
        max_fanout=max(fanouts) if fanouts else 0,
        pins_per_net=sum(pin_counts) / len(pin_counts) if pin_counts else 0.0,
        max_logic_depth=max(histogram) if histogram else 0,
        mean_logic_depth=mean_depth,
    )
