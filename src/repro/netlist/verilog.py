"""Structural Verilog writer and reader.

The flows operate on the in-memory :class:`~repro.netlist.core.Netlist`,
but a physical-design repository needs an interchange format: this module
writes a gate-level structural Verilog module (one instance per cell,
named port connections) and reads it back, so designs can be inspected,
diffed, and round-tripped through external tools.

Tier and placement are design data, not netlist data, so they travel in
structured ``// pragma repro`` comments that the reader understands and
other tools ignore.
"""

from __future__ import annotations

import re

from repro.errors import NetlistError
from repro.liberty.library import StdCellLibrary
from repro.netlist.core import Netlist, PortDirection

__all__ = ["write_verilog", "read_verilog"]

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _escape(name: str) -> str:
    """Escape a name into a legal Verilog identifier."""
    if _IDENT.match(name):
        return name
    return f"\\{name} "


def write_verilog(netlist: Netlist) -> str:
    """Serialize a netlist to structural Verilog text."""
    lines: list[str] = []
    ports = sorted(netlist.ports)
    lines.append(f"module {_escape(netlist.name)} (")
    lines.append("  " + ",\n  ".join(_escape(p) for p in ports))
    lines.append(");")
    for port in ports:
        direction = netlist.ports[port]
        kw = "input" if direction is PortDirection.INPUT else "output"
        lines.append(f"  {kw} {_escape(port)};")

    wires = sorted(n for n in netlist.nets if n not in netlist.ports)
    for wire in wires:
        lines.append(f"  wire {_escape(wire)};")

    for name in sorted(netlist.instances):
        inst = netlist.instances[name]
        conns = ", ".join(
            f".{pin}({_escape(net)})" for pin, net in sorted(inst.connected_pins())
        )
        lines.append(f"  {inst.cell.name} {_escape(name)} ({conns});")
        meta = [f"tier={inst.tier}"]
        if inst.block:
            meta.append(f"block={inst.block}")
        if inst.is_placed:
            meta.append(f"xy={inst.x_um:.4f},{inst.y_um:.4f}")
        if inst.fixed:
            meta.append("fixed=1")
        lines.append(f"  // pragma repro {_escape(name)} {' '.join(meta)}")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_PRAGMA = re.compile(r"^\s*// pragma repro (\S+) (.*)$")
_INSTANCE = re.compile(r"^\s*(\S+)\s+(\S+)\s+\((.*)\);$")
_CONN = re.compile(r"\.([A-Za-z0-9_]+)\(([^)]+)\)")


def read_verilog(
    text: str,
    libraries: dict[str, StdCellLibrary],
) -> Netlist:
    """Parse structural Verilog produced by :func:`write_verilog`.

    ``libraries`` supplies the cell definitions; every referenced cell
    name must resolve in exactly one of them.  The reader understands the
    writer's pragma comments and restores tier/placement/block state, so
    ``read_verilog(write_verilog(n), libs)`` is a full round trip.
    """
    cell_lookup: dict[str, object] = {}
    for lib in libraries.values():
        for cell in lib.cells:
            cell_lookup[cell.name] = cell

    module_match = re.search(r"module\s+(\S+)\s*\(", text)
    if not module_match:
        raise NetlistError("no module declaration found")
    netlist = Netlist(module_match.group(1).rstrip())

    clock_candidates: set[str] = set()
    pragmas: dict[str, dict[str, str]] = {}
    body = text[module_match.end():]

    # Declarations first: ports then wires.
    for kw, name in re.findall(r"^\s*(input|output)\s+(\S+);$", body, re.M):
        direction = (
            PortDirection.INPUT if kw == "input" else PortDirection.OUTPUT
        )
        is_clock = name == "clk"
        netlist.add_port(name, direction, is_clock=is_clock)
        if is_clock:
            clock_candidates.add(name)
    for name in re.findall(r"^\s*wire\s+(\S+);$", body, re.M):
        netlist.add_net(name)

    for line in body.splitlines():
        pragma = _PRAGMA.match(line)
        if pragma:
            inst_name, rest = pragma.groups()
            meta = dict(
                item.split("=", 1) for item in rest.split() if "=" in item
            )
            pragmas[inst_name.rstrip()] = meta
            continue
        if line.strip().startswith(("module", "input", "output", "wire", ")", "endmodule", "//")):
            continue
        m = _INSTANCE.match(line)
        if not m:
            continue
        cell_name, inst_name, conn_text = m.groups()
        cell = cell_lookup.get(cell_name)
        if cell is None:
            raise NetlistError(f"unknown cell {cell_name!r}")
        inst = netlist.add_instance(inst_name, cell)
        for pin, net in _CONN.findall(conn_text):
            netlist.connect(net.strip().rstrip("\\ ").strip(), inst.name, pin)

    for inst_name, meta in pragmas.items():
        inst = netlist.instances.get(inst_name)
        if inst is None:
            continue
        if "tier" in meta:
            inst.tier = int(meta["tier"])
        if "block" in meta:
            inst.block = meta["block"]
        if "xy" in meta:
            x, y = meta["xy"].split(",")
            inst.x_um = float(x)
            inst.y_um = float(y)
        if meta.get("fixed") == "1":
            inst.fixed = True

    netlist.validate()
    return netlist
