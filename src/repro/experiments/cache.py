"""Persistent, content-addressed result cache for the evaluation matrix.

Flow runs are seconds-to-minutes, and every pytest session, CLI call and
example script used to pay that cost from scratch.  This module stores
two kinds of entries as JSON files on disk so a *second* process warm
starts in milliseconds:

- ``result`` entries: one :class:`~repro.flow.report.FlowResult` per
  matrix cell, keyed by design/config/scale/seed/period (and the flow's
  keyword overrides, when cacheable);
- ``period`` entries: the per-design 12-track max-frequency search
  outcome, keyed by design/scale/seed/iterations;
- ``manifest`` entries: one per matrix run shape
  (designs/configs/scale/seed), recording target periods, completed
  cells and quarantined failures as the run progresses -- this is what
  makes an interrupted matrix resumable (``repro matrix --resume``).

Entries are content-addressed: the filename is the SHA-256 of the
canonical JSON of the key fields *plus the package version*, so a new
release never reads results computed by old code.  Corrupt or truncated
entries (killed process, disk full) are deleted and treated as misses.

Environment knobs
-----------------
``REPRO_CACHE_DIR``
    Cache directory (default ``~/.cache/repro``).
``REPRO_CACHE``
    Kill switch: set to ``0``, ``off``, ``false`` or ``no`` to disable
    all reads and writes (every lookup misses, nothing is stored).
``REPRO_LOCK_TIMEOUT_S``
    How long :func:`manifest_lock` waits for another process to release
    a run-manifest before raising :class:`~repro.errors.LockError`
    (default 10; ``0`` fails immediately).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import time
from pathlib import Path

from repro import __version__
from repro.errors import LockError
from repro.experiments.faults import inject
from repro.flow.report import FlowResult
from repro.log import get_logger

__all__ = [
    "cache_dir",
    "cache_enabled",
    "cache_key",
    "clear_cache",
    "load_manifest",
    "load_payload",
    "load_period",
    "load_result",
    "manifest_key",
    "manifest_lock",
    "store_manifest",
    "store_payload",
    "store_period",
    "store_result",
]

_log = get_logger("cache")

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_SWITCH = "REPRO_CACHE"

_FALSY = {"0", "off", "false", "no"}


def cache_enabled() -> bool:
    """Whether the on-disk cache is active (``$REPRO_CACHE`` kill switch)."""
    return os.environ.get(ENV_CACHE_SWITCH, "1").strip().lower() not in _FALSY


def cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


def cache_key(kind: str, **fields) -> str:
    """Content address for an entry: SHA-256 of the canonical key JSON.

    ``kind`` separates the entry namespaces (``"result"``/``"period"``),
    and the package version rides along so stale results from older code
    can never be served.
    """
    payload = {"kind": kind, "version": __version__, **fields}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _entry_path(key: str) -> Path:
    return cache_dir() / f"{key}.json"


def load_payload(key: str) -> dict | None:
    """Read one entry; corrupt entries are deleted and read as a miss."""
    if not cache_enabled():
        return None
    path = _entry_path(key)
    try:
        text = path.read_text()
    except OSError:
        return None
    try:
        entry = json.loads(text)
        if not isinstance(entry, dict) or "payload" not in entry:
            raise ValueError("malformed cache entry")
        return entry["payload"]
    except (ValueError, TypeError, KeyError):
        # Truncated write or foreign file: recover by dropping the entry.
        _log.warning("dropping corrupt cache entry %s", path.name)
        try:
            path.unlink()
        except OSError:
            pass
        return None


def store_payload(
    key: str,
    payload: dict,
    *,
    meta: dict | None = None,
    entry_kind: str = "",
) -> None:
    """Write one entry atomically (tmp file + rename); best-effort."""
    if not cache_enabled():
        return
    path = _entry_path(key)
    entry = {"version": __version__, "meta": meta or {}, "payload": payload}
    try:
        with inject("cache_write", entry=entry_kind, key=key, path=str(path)):
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(entry, sort_keys=True))
            os.replace(tmp, path)
    except OSError as exc:
        # A read-only or full disk never breaks the run; it just stays cold.
        _log.warning("cache write failed for %s: %s", path.name, exc)


# ----------------------------------------------------------------------
# typed entry points
# ----------------------------------------------------------------------
def result_key(
    design: str,
    config: str,
    *,
    scale: float,
    seed: int,
    period_ns: float,
    extra: dict | None = None,
) -> str:
    """Key of one matrix-cell result."""
    return cache_key(
        "result",
        design=design,
        config=config,
        scale=scale,
        seed=seed,
        period_ns=period_ns,
        extra=extra or {},
    )


def load_result(key: str) -> FlowResult | None:
    """Deserialize a cached :class:`FlowResult`, or ``None`` on a miss."""
    payload = load_payload(key)
    if payload is None:
        return None
    try:
        return FlowResult.from_dict(payload)
    except (TypeError, ValueError, KeyError):
        # Schema drift within one version (dev tree): drop and re-run.
        try:
            _entry_path(key).unlink()
        except OSError:
            pass
        return None


def store_result(key: str, result: FlowResult, *, meta: dict | None = None) -> None:
    """Persist one matrix-cell result."""
    store_payload(key, result.to_dict(), meta=meta, entry_kind="result")


def period_key(design: str, *, scale: float, seed: int, iterations: int) -> str:
    """Key of one per-design target-period search."""
    return cache_key(
        "period", design=design, scale=scale, seed=seed, iterations=iterations
    )


def load_period(key: str) -> float | None:
    """Cached target period in ns, or ``None`` on a miss."""
    payload = load_payload(key)
    if payload is None:
        return None
    value = payload.get("period_ns") if isinstance(payload, dict) else None
    return float(value) if isinstance(value, (int, float)) else None


def store_period(key: str, period_ns: float, *, meta: dict | None = None) -> None:
    """Persist one target-period search outcome."""
    store_payload(key, {"period_ns": period_ns}, meta=meta, entry_kind="period")


def manifest_key(
    designs: tuple[str, ...],
    config_names: tuple[str, ...],
    *,
    scale: float,
    seed: int,
    periods: dict | None = None,
) -> str:
    """Key of one matrix run-manifest (the run's shape, not its data).

    ``periods`` participates only when the caller pinned explicit target
    periods (CLI ``--period``), so a pinned run never aliases the
    default-period manifest.
    """
    return cache_key(
        "manifest",
        designs=list(designs),
        configs=list(config_names),
        scale=scale,
        seed=seed,
        periods=periods or {},
    )


def load_manifest(key: str) -> dict | None:
    """The stored run-manifest payload, or ``None``."""
    payload = load_payload(key)
    return payload if isinstance(payload, dict) else None


def store_manifest(key: str, manifest: dict) -> None:
    """Persist one run-manifest (rewritten as the run progresses)."""
    store_payload(key, manifest, entry_kind="manifest")


@contextlib.contextmanager
def manifest_lock(key: str, *, timeout_s: float | None = None):
    """Exclusive advisory lock on one run-manifest (``flock`` based).

    Two processes resuming the same matrix shape would interleave
    manifest rewrites and clobber each other's progress records; the
    serving daemon makes that a real concurrency, not a user error.
    The lock is a kernel ``flock`` on ``<key>.lock`` next to the
    manifest entry, so it evaporates when the holder dies -- including
    ``kill -9`` -- and can never go stale the way pidfiles do.

    Waits ``timeout_s`` (default ``$REPRO_LOCK_TIMEOUT_S`` or 10s) then
    raises :class:`~repro.errors.LockError` naming the lock file.  With
    the cache disabled there is no shared manifest to protect, so the
    lock degrades to a no-op.
    """
    if not cache_enabled():
        yield
        return
    import fcntl

    if timeout_s is None:
        try:
            timeout_s = float(os.environ.get("REPRO_LOCK_TIMEOUT_S", "") or 10.0)
        except ValueError:
            timeout_s = 10.0
    path = cache_dir() / f"{key}.lock"
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(path, os.O_CREAT | os.O_RDWR)
    deadline = time.monotonic() + max(0.0, timeout_s)
    try:
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise LockError(
                        f"another run holds the manifest lock {path.name}"
                        f" (waited {timeout_s:.1f}s; is a second matrix of"
                        f" the same shape already running?)"
                    ) from None
                time.sleep(0.05)
        yield
    finally:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        except OSError:
            pass
        os.close(fd)


def clear_cache() -> int:
    """Delete every cache entry; returns the number of files removed.

    Covers the flat result/period/manifest entries and the design-space
    explorer's stage-prefix store (``dse_prefix/<key>/NN_stage.json``).
    """
    removed = 0
    root = cache_dir()
    if not root.is_dir():
        return 0
    for path in root.glob("*.json"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    prefix_root = root / "dse_prefix"
    if prefix_root.is_dir():
        for path in prefix_root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for sub in prefix_root.iterdir():
            with contextlib.suppress(OSError):
                sub.rmdir()
        with contextlib.suppress(OSError):
            prefix_root.rmdir()
    return removed
