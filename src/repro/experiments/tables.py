"""Emitters for every table of the paper.

Each ``table*`` function returns structured data (and a formatted text
block) for one published table; the benchmark suite regenerates and
checks them.  Functions that need flow results take an
:class:`~repro.experiments.runner.EvaluationMatrix` so the expensive runs
are shared across tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.model import CostModel
from repro.experiments.runner import EvaluationMatrix, run_configuration
from repro.liberty.presets import NINE_TRACK_CORNER, TWELVE_TRACK_CORNER
from repro.liberty.spice import (
    FAST_INVERTER,
    SLOW_INVERTER,
    simulate_fo4_input_boundary,
    simulate_fo4_output_boundary,
)

__all__ = [
    "table1_qualitative_ranks",
    "PAPER_TABLE1",
    "table2_output_boundary",
    "table3_input_boundary",
    "table4_cost_model",
    "table5_flow_improvement",
    "table6_hetero_ppac",
    "table7_deltas",
    "table8_detailed_analysis",
    "conclusion_claims",
]

#: Table I as published: rank 1 = worst, 5 = best, per metric and config.
PAPER_TABLE1: dict[str, dict[str, int]] = {
    "frequency": {"2D_9T": 1, "3D_9T": 2, "2D_12T": 3, "3D_12T": 5, "3D_HET": 4},
    "power": {"2D_9T": 4, "3D_9T": 5, "2D_12T": 1, "3D_12T": 2, "3D_HET": 3},
    "power_per_freq": {"2D_9T": 3, "3D_9T": 4, "2D_12T": 1, "3D_12T": 2, "3D_HET": 5},
    "footprint": {"2D_9T": 4, "3D_9T": 5, "2D_12T": 1, "3D_12T": 2, "3D_HET": 3},
    "si_area": {"2D_9T": 5, "3D_9T": 5, "2D_12T": 1, "3D_12T": 1, "3D_HET": 3},
    "die_cost": {"2D_9T": 5, "3D_9T": 4, "2D_12T": 2, "3D_12T": 1, "3D_HET": 3},
}


def table1_qualitative_ranks() -> dict[str, dict[str, int]]:
    """Predict Table I's PPAC ranks from first principles.

    Scores per configuration are built from the library corners (delay,
    energy, area scale) and the configuration geometry (3-D halves the
    footprint and shortens wires ~25%; 3-D adds wafer cost), then ranked.
    Higher rank = better, matching the paper's convention.
    """
    fast = TWELVE_TRACK_CORNER
    slow = NINE_TRACK_CORNER
    model = CostModel()
    configs = {
        "2D_9T": dict(delay=slow.delay_scale, energy=slow.energy_scale,
                      area=slow.area_scale, tiers=1),
        "2D_12T": dict(delay=fast.delay_scale, energy=fast.energy_scale,
                       area=fast.area_scale, tiers=1),
        # 3-D halves the footprint: ~25% shorter wires cut delay ~7%
        # and switched (wire) energy ~12%.
        "3D_9T": dict(delay=slow.delay_scale * 0.93, energy=slow.energy_scale * 0.88,
                      area=slow.area_scale, tiers=2),
        "3D_12T": dict(delay=fast.delay_scale * 0.93, energy=fast.energy_scale * 0.88,
                       area=fast.area_scale, tiers=2),
        # heterogeneous: half the cells in each corner, critical cells fast
        # (a small delay penalty vs pure 12-track 3-D)
        "3D_HET": dict(
            delay=fast.delay_scale * 0.93 * 1.04,
            energy=0.5 * (fast.energy_scale + slow.energy_scale) * 0.88,
            area=0.5 * (fast.area_scale + slow.area_scale),
            tiers=2,
        ),
    }

    ref_area_mm2 = 0.4  # representative die
    metrics: dict[str, dict[str, float]] = {
        "frequency": {}, "power": {}, "power_per_freq": {},
        "footprint": {}, "si_area": {}, "die_cost": {},
    }
    for name, c in configs.items():
        freq = 1.0 / c["delay"]
        power = c["energy"] * freq
        si_area = c["area"]
        footprint = si_area / c["tiers"]
        cost = model.die_cost(
            ref_area_mm2 * footprint, c["tiers"]
        ).die_cost
        metrics["frequency"][name] = freq
        metrics["power"][name] = -power  # lower is better
        metrics["power_per_freq"][name] = -power / freq
        metrics["footprint"][name] = -footprint
        metrics["si_area"][name] = -si_area
        metrics["die_cost"][name] = -cost

    ranks: dict[str, dict[str, int]] = {}
    for metric, values in metrics.items():
        ordered = sorted(values, key=lambda k: values[k])
        ranks[metric] = {}
        rank = 0
        prev = None
        for i, name in enumerate(ordered):
            # equal scores share a rank, as the paper's Si-area row does
            if prev is None or abs(values[name] - prev) > 1e-9:
                rank = i + 1
            ranks[metric][name] = rank
            prev = values[name]
    return ranks


@dataclass(frozen=True)
class BoundaryRow:
    """One case column of Table II/III."""

    label: str
    tier0: str
    tier1: str
    rise_slew_ps: float
    fall_slew_ps: float
    rise_delay_ps: float
    fall_delay_ps: float
    leakage_uw: float
    total_power_uw: float


def table2_output_boundary() -> list[BoundaryRow]:
    """Table II: FO-4 with the load on the other tier (Fig. 2(a))."""
    cases = [
        ("Case-I", FAST_INVERTER, FAST_INVERTER, "fast", "fast"),
        ("Case-II", FAST_INVERTER, SLOW_INVERTER, "fast", "slow"),
        ("Case-III", SLOW_INVERTER, SLOW_INVERTER, "slow", "slow"),
        ("Case-IV", SLOW_INVERTER, FAST_INVERTER, "slow", "fast"),
    ]
    rows = []
    for label, driver, load, t0, t1 in cases:
        r = simulate_fo4_output_boundary(driver, load)
        rows.append(
            BoundaryRow(
                label, t0, t1, r.rise_slew_ps, r.fall_slew_ps,
                r.rise_delay_ps, r.fall_delay_ps, r.leakage_uw,
                r.total_power_uw,
            )
        )
    return rows


def table3_input_boundary() -> list[BoundaryRow]:
    """Table III: FO-4 with the driver input from the other tier."""
    cases = [
        ("fast Case-I", FAST_INVERTER, FAST_INVERTER, "fast", "fast"),
        ("fast Case-II", FAST_INVERTER, SLOW_INVERTER, "slow", "fast"),
        ("slow Case-I", SLOW_INVERTER, SLOW_INVERTER, "slow", "slow"),
        ("slow Case-II", SLOW_INVERTER, FAST_INVERTER, "fast", "slow"),
    ]
    rows = []
    for label, cell, rail, t0, t1 in cases:
        if cell is rail:
            r = simulate_fo4_output_boundary(cell, cell)
        else:
            r = simulate_fo4_input_boundary(cell, rail)
        rows.append(
            BoundaryRow(
                label, t0, t1, r.rise_slew_ps, r.fall_slew_ps,
                r.rise_delay_ps, r.fall_delay_ps, r.leakage_uw,
                r.total_power_uw,
            )
        )
    return rows


def table4_cost_model() -> dict[str, float]:
    """Table IV: the cost-model constants, as implemented."""
    model = CostModel()
    return {
        "feol_cost": model.feol_fraction,
        "beol_cost_6_metals": model.beol_cost_per_layer * model.signal_layers,
        "integration_penalty": model.integration_penalty,
        "wafer_diameter_mm": model.wafer_diameter_mm,
        "defect_density_per_mm2": model.defect_density_per_mm2,
        "wafer_yield": model.wafer_yield,
        "yield_degradation_3d": model.yield_degradation_3d,
        "wafer_cost_2d": model.wafer_cost_2d(),
        "wafer_cost_3d": model.wafer_cost_3d(),
    }


def table5_flow_improvement(
    *, scale: float | None = None, seed: int = 0
) -> dict[str, dict[str, float]]:
    """Table V: plain Pin-3D vs Hetero-Pin-3D on the CPU design.

    Both runs use the heterogeneous stack; the baseline disables the
    Section III enhancements (timing partitioning, 3-D CTS,
    repartitioning).
    """
    _d, plain = run_configuration(
        "cpu", "3D_HET", scale=scale, seed=seed,
        timing_partitioning=False, hetero_cts=False, repartition=False,
    )
    _d, enhanced = run_configuration("cpu", "3D_HET", scale=scale, seed=seed)
    def row(r):
        return {
            "frequency_ghz": r.frequency_ghz,
            "wl_mm": r.wirelength_mm,
            "wns_ns": r.wns_ns,
            "total_power_mw": r.total_power_mw,
        }
    return {"pin3d": row(plain), "hetero_pin3d": row(enhanced)}


def table6_hetero_ppac(matrix: EvaluationMatrix) -> dict[str, dict[str, float]]:
    """Table VI: raw PPAC of the heterogeneous designs, per netlist."""
    out = {}
    for design in ("netcard", "aes", "ldpc", "cpu"):
        r = matrix.hetero(design)
        row = r.row()
        row["density_pct"] = r.density * 100.0
        out[design] = row
    return out


#: Table VII metrics: FlowResult attribute and whether negative deltas
#: mean the heterogeneous design wins.
TABLE7_METRICS: dict[str, str] = {
    "si_area_mm2": "Si Area",
    "density": "Density",
    "wirelength_mm": "WL",
    "total_power_mw": "Total Power",
    "effective_delay_ns": "Eff. Delay",
    "pdp_pj": "PDP",
    "die_cost_1e6": "Die Cost",
    "cost_per_cm2": "Cost per cm2",
    "ppc": "PPC",
}


def table7_deltas(matrix: EvaluationMatrix) -> dict[str, dict[str, dict[str, float]]]:
    """Table VII: percent deltas of hetero vs each homogeneous config.

    Returns ``{config: {design: {metric: delta_pct}}}``.
    """
    out: dict[str, dict[str, dict[str, float]]] = {}
    for config in ("2D_9T", "2D_12T", "3D_9T", "3D_12T"):
        out[config] = {}
        for design in ("netcard", "aes", "ldpc", "cpu"):
            out[config][design] = {
                metric: matrix.delta_pct(design, config, metric)
                for metric in TABLE7_METRICS
            }
    return out


def table8_detailed_analysis(
    matrix: EvaluationMatrix,
) -> dict[str, dict[str, float]]:
    """Table VIII: clock network, critical path, memory nets of the CPU.

    Compares the best 2-D (12-track), the best homogeneous 3-D
    (12-track), and the heterogeneous 3-D implementation.
    """
    out: dict[str, dict[str, float]] = {}
    for config in ("2D_12T", "3D_12T", "3D_HET"):
        r = matrix.result("cpu", config)
        cp = r.critical_path
        clock = r.clock
        row: dict[str, float] = {
            "clock_buffer_count": clock.buffer_count,
            "clock_buffer_area_um2": clock.buffer_area_um2,
            "clock_wirelength_mm": clock.wirelength_mm,
            "clock_max_latency_ns": clock.max_latency_ns,
            "clock_max_skew_ns": clock.max_skew_ns,
            "clock_power_mw": clock.power_mw,
            "crit_clock_period_ns": r.period_ns,
            "crit_slack_ns": cp.slack_ns,
            "crit_clock_skew_ns": cp.clock_skew_ns,
            "crit_setup_ns": cp.setup_ns,
            "crit_path_delay_ns": cp.path_delay_ns,
            "crit_wire_delay_ns": cp.wire_delay_ns,
            "crit_cell_delay_ns": cp.cell_delay_ns,
            "crit_wirelength_um": cp.wirelength_um,
            "crit_total_cells": cp.total_cells,
        }
        if config != "2D_12T":
            row.update(
                {
                    "clock_buffers_top": clock.buffer_count_by_tier.get(1, 0),
                    "clock_buffers_bottom": clock.buffer_count_by_tier.get(0, 0),
                    "crit_mivs": cp.miv_count,
                    "crit_top_cells": cp.cells_on_tier(1),
                    "crit_bottom_cells": cp.cells_on_tier(0),
                    "crit_top_cell_delay_ns": cp.cell_delay_on_tier(1),
                    "crit_bottom_cell_delay_ns": cp.cell_delay_on_tier(0),
                    "crit_avg_top_delay_ns": cp.average_cell_delay_on_tier(1),
                    "crit_avg_bottom_delay_ns": cp.average_cell_delay_on_tier(0),
                    "crit_top_wirelength_um": cp.wirelength_on_tier(1),
                    "crit_bottom_wirelength_um": cp.wirelength_on_tier(0),
                }
            )
        if r.memory_nets is not None:
            row.update(
                {
                    "mem_input_net_latency_ps": r.memory_nets.input_net_latency_ps,
                    "mem_output_net_latency_ps": r.memory_nets.output_net_latency_ps,
                    "mem_net_switching_uw": r.memory_nets.net_switching_power_uw,
                }
            )
        out[config] = row
    return out


def conclusion_claims(matrix: EvaluationMatrix) -> dict[str, float]:
    """Section V: PPAC benefit ranges of heterogeneous 3-D.

    The paper summarizes PPC gains of 10-50% vs 3-D and 18-57% vs 2-D;
    this returns our measured min/max PPC deltas per class.
    """
    deltas_3d = [
        matrix.delta_pct(d, c, "ppc")
        for d in ("netcard", "aes", "ldpc", "cpu")
        for c in ("3D_9T", "3D_12T")
    ]
    deltas_2d = [
        matrix.delta_pct(d, c, "ppc")
        for d in ("netcard", "aes", "ldpc", "cpu")
        for c in ("2D_9T", "2D_12T")
    ]
    return {
        "ppc_vs_3d_min": min(deltas_3d),
        "ppc_vs_3d_max": max(deltas_3d),
        "ppc_vs_2d_min": min(deltas_2d),
        "ppc_vs_2d_max": max(deltas_2d),
    }


def format_table(rows: dict[str, dict[str, float]], title: str) -> str:
    """Render a nested dict as an aligned text table."""
    lines = [title]
    if not rows:
        return title
    columns = sorted({k for row in rows.values() for k in row})
    header = f"{'':24s}" + "".join(f"{c[:14]:>16s}" for c in columns)
    lines.append(header)
    for name, row in rows.items():
        cells = "".join(
            f"{row.get(c, float('nan')):16.4f}" if isinstance(row.get(c), (int, float))
            else f"{'-':>16s}"
            for c in columns
        )
        lines.append(f"{name:24s}" + cells)
    return "\n".join(lines)
