"""Process-parallel execution of the evaluation matrix.

The 4 x 5 matrix is embarrassingly parallel once the per-design target
periods are known: every cell is an independent flow run.  This module
fans the work out in two waves --

1. the four per-design period searches (each internally a serial binary
   search), then
2. all twenty cells concurrently --

over a :class:`~concurrent.futures.ProcessPoolExecutor`.  Worker count
comes from ``jobs=`` or ``$REPRO_JOBS`` (default 1 = serial).  Workers
reset their own telemetry, do the work, and ship a snapshot back with
each result; the parent merges them so ``repro matrix --stats`` stays
truthful.  Workers share the on-disk cache with the parent, so a
parallel cold run leaves the same warm cache a serial one would.

Failure handling is delegated to
:mod:`repro.experiments.resilience`:

- a worker *crash* (``BrokenProcessPool``) or a per-wave *timeout* is
  transient -- the pool is rebuilt and only the unfinished jobs rerun;
  results already harvested from completed futures are never discarded;
- an exception raised by the *flow itself* inside a worker crosses the
  process boundary as a :class:`~repro.experiments.resilience.WorkerTaskError`
  (so a flow-raised ``OSError`` is never mistaken for pool breakage);
  deterministic failures (any :class:`~repro.errors.ReproError`) are
  quarantined, not retried;
- only when the very first pool cannot be constructed at all does the
  caller fall back to the fully-serial path
  (:class:`~repro.experiments.resilience.PoolUnavailable`), which
  produces identical results.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from repro.experiments.faults import inject
from repro.experiments.resilience import (
    FailedCell,
    RetryPolicy,
    WorkerTaskError,
    run_jobs_with_retry,
)
from repro.flow.report import FlowResult
from repro.log import get_logger
from repro.obs import attach_subtree

__all__ = ["default_jobs", "find_periods", "run_cells", "run_matrix_parallel"]

_log = get_logger("parallel")


def default_jobs() -> int:
    """Worker count: ``$REPRO_JOBS`` (default 1 = serial)."""
    try:
        jobs = int(os.environ.get("REPRO_JOBS", "1"))
    except ValueError:
        return 1
    return max(1, jobs)


def _pool_factory(workers: int):
    """Build the wave executor (module-level so tests can monkeypatch
    ``ProcessPoolExecutor`` here, and so spawn failures surface as
    :class:`PoolUnavailable` in the caller)."""
    return ProcessPoolExecutor(max_workers=max(1, workers))


# ----------------------------------------------------------------------
# worker entry points (top level: must be picklable by spawn/fork alike)
# ----------------------------------------------------------------------
def _probe_period(design_name: str, scale: float, seed: int):
    from repro.experiments.runner import find_target_period
    from repro.experiments.telemetry import get_telemetry, reset_telemetry
    from repro.obs import reset_trace, trace_snapshot

    reset_telemetry()
    # Honour the tracing mode the parent exported before building the
    # pool; the subtree ships back with the result for stitching.
    reset_trace(from_env=True)
    try:
        with inject("worker", stage="period_search", design=design_name):
            period = find_target_period(design_name, scale=scale, seed=seed)
    except Exception as exc:  # noqa: BLE001 -- process boundary
        raise WorkerTaskError.wrap(
            exc, stage="period_search", design=design_name
        ) from None
    return design_name, period, get_telemetry().snapshot(), trace_snapshot()


def _run_cell(
    design_name: str, config_name: str, period_ns: float, scale: float, seed: int
):
    from repro.experiments.runner import run_configuration
    from repro.experiments.telemetry import get_telemetry, reset_telemetry
    from repro.obs import reset_trace, trace_snapshot

    reset_telemetry()
    reset_trace(from_env=True)
    try:
        with inject(
            "worker", stage="flow", design=design_name, config=config_name
        ):
            _design, result = run_configuration(
                design_name, config_name,
                period_ns=period_ns, scale=scale, seed=seed,
            )
    except Exception as exc:  # noqa: BLE001 -- process boundary
        raise WorkerTaskError.wrap(
            exc, stage="flow", design=design_name, config=config_name
        ) from None
    return (
        (design_name, config_name),
        result,
        get_telemetry().snapshot(),
        trace_snapshot(),
    )


# ----------------------------------------------------------------------
# parent-side orchestration
# ----------------------------------------------------------------------
def find_periods(
    designs: tuple[str, ...],
    *,
    scale: float,
    seed: int,
    jobs: int,
    policy: RetryPolicy | None = None,
) -> tuple[dict[str, float], dict[str, FailedCell]]:
    """Wave 1: per-design target periods, in parallel.

    Returns ``(periods, failures)``.  Periods already found survive any
    mid-wave pool breakage.  Raises
    :class:`~repro.experiments.resilience.PoolUnavailable` only when the
    first pool cannot be built (nothing lost; caller goes serial).
    """
    from repro.experiments.runner import _period_cache
    from repro.experiments.telemetry import get_telemetry

    policy = policy or RetryPolicy()
    tasks = {name: (name, scale, seed) for name in designs}
    raw, failures = run_jobs_with_retry(
        tasks,
        _probe_period,
        pool_factory=_pool_factory,
        jobs=min(jobs, max(1, len(designs))),
        policy=policy,
        describe=lambda name: ("period_search", name, "*"),
    )
    periods: dict[str, float] = {}
    for name, (_name, period, snapshot, trace) in raw.items():
        periods[name] = period
        get_telemetry().merge(snapshot)
        attach_subtree(trace, worker=f"period_search:{name}")
        # Seed the parent's in-process cache; the disk entry was written
        # by the worker, so only the memory layer needs filling in.
        _period_cache[(name, scale, seed)] = period
    return periods, failures


def run_cells(
    cells: list[tuple[str, str, float]],
    *,
    scale: float,
    seed: int,
    jobs: int,
    policy: RetryPolicy | None = None,
) -> tuple[dict[tuple[str, str], FlowResult], dict[tuple[str, str], FailedCell]]:
    """Wave 2: independent ``(design, config, period_ns)`` cells.

    Returns ``(results, failures)``; completed cells survive pool
    breakage mid-wave and are never rerun.  Raises
    :class:`~repro.experiments.resilience.PoolUnavailable` only when the
    first pool cannot be built.
    """
    from repro.experiments.runner import _result_cache
    from repro.experiments.telemetry import get_telemetry

    policy = policy or RetryPolicy()
    tasks = {
        (design, config): (design, config, period, scale, seed)
        for design, config, period in cells
    }
    period_of = {(design, config): period for design, config, period in cells}
    raw, failures = run_jobs_with_retry(
        tasks,
        _run_cell,
        pool_factory=_pool_factory,
        jobs=min(jobs, max(1, len(cells))),
        policy=policy,
        describe=lambda key: ("flow", key[0], key[1]),
    )
    results: dict[tuple[str, str], FlowResult] = {}
    for key, (_key, result, snapshot, trace) in raw.items():
        results[key] = result
        get_telemetry().merge(snapshot)
        design, config = key
        attach_subtree(trace, worker=f"{design}:{config}")
        _result_cache[(design, config, scale, seed, period_of[key])] = (
            None,
            result,
        )
    return results, failures


def run_matrix_parallel(
    matrix,
    *,
    designs: tuple[str, ...],
    config_names: tuple[str, ...],
    jobs: int,
    policy: RetryPolicy | None = None,
) -> bool:
    """Fill ``matrix`` using worker processes.

    Returns ``False`` when no pool can be built at all, so
    :func:`~repro.experiments.runner.run_matrix` can fall back to its
    serial loop (results are identical either way).  Failures are
    recorded on ``matrix.failed`` / ``matrix.failed_periods`` after
    transient ones get one last serial rescue attempt in the parent.
    """
    from repro.experiments.resilience import (
        DETERMINISTIC,
        PoolUnavailable,
        call_with_retry,
    )
    from repro.experiments.runner import find_target_period, run_configuration

    policy = policy or RetryPolicy()
    scale, seed = matrix.scale, matrix.seed

    need = tuple(d for d in designs if d not in matrix.target_periods)
    if need:
        try:
            periods, period_failures = find_periods(
                need, scale=scale, seed=seed, jobs=jobs, policy=policy
            )
        except PoolUnavailable as exc:
            _log.warning("worker pool unavailable (%s); running serially", exc)
            return False
        matrix.target_periods.update(periods)
        for name, failure in period_failures.items():
            if failure.kind == DETERMINISTIC:
                matrix.record_period_failure(name, failure)
                continue
            # Transient even after pool retries: one serial rescue try.
            _log.warning(
                "period search for %s failed transiently in the pool;"
                " retrying serially", name,
            )
            period, serial_failure = call_with_retry(
                lambda name=name: find_target_period(
                    name, scale=scale, seed=seed
                ),
                policy=policy, stage="period_search", design=name,
            )
            if serial_failure is None:
                matrix.target_periods[name] = period
            else:
                matrix.record_period_failure(name, serial_failure)

    # Serve warm cells from the parent's caches; only cold cells travel
    # to the pool (workers would re-read the disk entry anyway, but the
    # parent-side lookup keeps telemetry provenance accurate).
    cold: list[tuple[str, str, float]] = []
    for design_name in designs:
        period = matrix.target_periods.get(design_name)
        if period is None:
            continue  # period search quarantined this design's row
        for config_name in config_names:
            design, result = _lookup_cached(
                design_name, config_name, period, scale, seed
            )
            if result is None:
                cold.append((design_name, config_name, period))
            else:
                matrix.results[(design_name, config_name)] = result
                if design is not None:
                    matrix.designs[(design_name, config_name)] = design

    if cold:
        try:
            fanned, cell_failures = run_cells(
                cold, scale=scale, seed=seed, jobs=jobs, policy=policy
            )
        except PoolUnavailable as exc:
            # Pool died between waves: finish the remaining cells
            # serially, keeping everything already completed.
            _log.warning(
                "worker pool unavailable mid-matrix (%s);"
                " finishing %d cell(s) serially", exc, len(cold),
            )
            fanned, cell_failures = {}, {}
            for design_name, config_name, period in cold:
                if (design_name, config_name) in matrix.results:
                    continue
                value, failure = call_with_retry(
                    lambda d=design_name, c=config_name, p=period: (
                        run_configuration(
                            d, c, period_ns=p, scale=scale, seed=seed
                        )
                    ),
                    policy=policy, stage="flow",
                    design=design_name, config=config_name,
                )
                if failure is None:
                    design, result = value
                    matrix.results[(design_name, config_name)] = result
                    if design is not None:
                        matrix.designs[(design_name, config_name)] = design
                else:
                    cell_failures[(design_name, config_name)] = failure
        matrix.results.update(fanned)
        for key, failure in cell_failures.items():
            if failure.kind == DETERMINISTIC:
                matrix.record_cell_failure(key, failure)
                continue
            # Transient after all pool retries (e.g. repeated timeouts):
            # one serial rescue attempt before quarantining.
            design_name, config_name = key
            _log.warning(
                "cell %s/%s failed transiently in the pool;"
                " retrying serially", design_name, config_name,
            )
            period = matrix.target_periods[design_name]
            value, serial_failure = call_with_retry(
                lambda d=design_name, c=config_name, p=period: (
                    run_configuration(d, c, period_ns=p, scale=scale, seed=seed)
                ),
                policy=policy, stage="flow",
                design=design_name, config=config_name,
            )
            if serial_failure is None:
                design, result = value
                matrix.results[key] = result
                if design is not None:
                    matrix.designs[key] = design
            else:
                matrix.record_cell_failure(key, serial_failure)
    return True


def _lookup_cached(design_name, config_name, period, scale, seed):
    """Memory-then-disk lookup of one cell without ever running a flow."""
    from repro.experiments import cache
    from repro.experiments.runner import _result_cache
    from repro.experiments.telemetry import get_telemetry

    key = (design_name, config_name, scale, seed, period)
    hit = _result_cache.get(key)
    if hit is not None:
        get_telemetry().memory_hits += 1
        get_telemetry().record_cell(design_name, config_name, 0.0, "memory")
        return hit
    if cache.cache_enabled():
        result = cache.load_result(
            cache.result_key(
                design_name, config_name, scale=scale, seed=seed, period_ns=period
            )
        )
        if result is not None:
            get_telemetry().disk_hits += 1
            get_telemetry().record_cell(design_name, config_name, 0.0, "disk")
            _result_cache[key] = (None, result)
            return None, result
        # A miss here is not counted: the worker (or the serial fallback)
        # that actually runs the cell records it.
    return None, None
