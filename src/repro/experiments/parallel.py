"""Process-parallel execution of the evaluation matrix.

The 4 x 5 matrix is embarrassingly parallel once the per-design target
periods are known: every cell is an independent flow run.  This module
fans the work out in two waves --

1. the four per-design period searches (each internally a serial binary
   search), then
2. all twenty cells concurrently --

over a :class:`~concurrent.futures.ProcessPoolExecutor`.  Worker count
comes from ``jobs=`` or ``$REPRO_JOBS`` (default 1 = serial).  Workers
reset their own telemetry, do the work, and ship a snapshot back with
each result; the parent merges them so ``repro matrix --stats`` stays
truthful.  Workers share the on-disk cache with the parent, so a
parallel cold run leaves the same warm cache a serial one would.

Any spawn or pickling failure degrades gracefully: the caller falls
back to the serial path and produces identical results.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool

from repro.flow.report import FlowResult

__all__ = ["default_jobs", "find_periods", "run_cells", "run_matrix_parallel"]

#: Exceptions that mean "the pool broke", not "the flow failed".
_POOL_FAILURES = (BrokenProcessPool, pickle.PicklingError, OSError, ImportError)


def default_jobs() -> int:
    """Worker count: ``$REPRO_JOBS`` (default 1 = serial)."""
    try:
        jobs = int(os.environ.get("REPRO_JOBS", "1"))
    except ValueError:
        return 1
    return max(1, jobs)


# ----------------------------------------------------------------------
# worker entry points (top level: must be picklable by spawn/fork alike)
# ----------------------------------------------------------------------
def _probe_period(design_name: str, scale: float, seed: int):
    from repro.experiments.runner import find_target_period
    from repro.experiments.telemetry import get_telemetry, reset_telemetry

    reset_telemetry()
    period = find_target_period(design_name, scale=scale, seed=seed)
    return design_name, period, get_telemetry().snapshot()


def _run_cell(
    design_name: str, config_name: str, period_ns: float, scale: float, seed: int
):
    from repro.experiments.runner import run_configuration
    from repro.experiments.telemetry import get_telemetry, reset_telemetry

    reset_telemetry()
    _design, result = run_configuration(
        design_name, config_name, period_ns=period_ns, scale=scale, seed=seed
    )
    return (design_name, config_name), result, get_telemetry().snapshot()


# ----------------------------------------------------------------------
# parent-side orchestration
# ----------------------------------------------------------------------
def find_periods(
    designs: tuple[str, ...],
    *,
    scale: float,
    seed: int,
    jobs: int,
) -> dict[str, float] | None:
    """Wave 1: per-design target periods, in parallel.

    Returns ``None`` if the pool could not be used (caller goes serial).
    """
    from repro.experiments.runner import _period_cache
    from repro.experiments.telemetry import get_telemetry

    periods: dict[str, float] = {}
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(designs))) as pool:
            futures = [
                pool.submit(_probe_period, name, scale, seed) for name in designs
            ]
            for future in as_completed(futures):
                name, period, snapshot = future.result()
                periods[name] = period
                get_telemetry().merge(snapshot)
    except _POOL_FAILURES:
        return None
    for name, period in periods.items():
        # Seed the parent's in-process cache; the disk entry was written
        # by the worker, so only the memory layer needs filling in.
        _period_cache[(name, scale, seed)] = period
    return periods


def run_cells(
    cells: list[tuple[str, str, float]],
    *,
    scale: float,
    seed: int,
    jobs: int,
) -> dict[tuple[str, str], FlowResult] | None:
    """Wave 2: independent ``(design, config, period_ns)`` cells.

    Returns ``None`` if the pool could not be used (caller goes serial).
    """
    from repro.experiments.runner import _result_cache
    from repro.experiments.telemetry import get_telemetry

    results: dict[tuple[str, str], FlowResult] = {}
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, max(1, len(cells)))) as pool:
            futures = {
                pool.submit(_run_cell, design, config, period, scale, seed): (
                    design,
                    config,
                    period,
                )
                for design, config, period in cells
            }
            for future in as_completed(futures):
                key, result, snapshot = future.result()
                results[key] = result
                get_telemetry().merge(snapshot)
                design, config, period = futures[future]
                _result_cache[(design, config, scale, seed, period)] = (None, result)
    except _POOL_FAILURES:
        return None
    return results


def run_matrix_parallel(
    matrix,
    *,
    designs: tuple[str, ...],
    config_names: tuple[str, ...],
    jobs: int,
) -> bool:
    """Fill ``matrix`` using worker processes.

    Returns ``False`` when the pool is unusable so :func:`run_matrix`
    can fall back to its serial loop (results are identical either way).
    """
    from repro.experiments.runner import run_configuration

    scale, seed = matrix.scale, matrix.seed
    periods = find_periods(designs, scale=scale, seed=seed, jobs=jobs)
    if periods is None:
        return False
    matrix.target_periods.update(periods)

    # Serve warm cells from the parent's caches; only cold cells travel
    # to the pool (workers would re-read the disk entry anyway, but the
    # parent-side lookup keeps telemetry provenance accurate).
    cold: list[tuple[str, str, float]] = []
    for design_name in designs:
        for config_name in config_names:
            design, result = _lookup_cached(
                design_name, config_name, periods[design_name], scale, seed
            )
            if result is None:
                cold.append((design_name, config_name, periods[design_name]))
            else:
                matrix.results[(design_name, config_name)] = result
                if design is not None:
                    matrix.designs[(design_name, config_name)] = design

    if cold:
        fanned = run_cells(cold, scale=scale, seed=seed, jobs=jobs)
        if fanned is None:
            # Pool died mid-matrix: finish the remaining cells serially.
            for design_name, config_name, period in cold:
                if (design_name, config_name) in matrix.results:
                    continue
                design, result = run_configuration(
                    design_name, config_name,
                    period_ns=period, scale=scale, seed=seed,
                )
                matrix.results[(design_name, config_name)] = result
                if design is not None:
                    matrix.designs[(design_name, config_name)] = design
        else:
            matrix.results.update(fanned)
    return True


def _lookup_cached(design_name, config_name, period, scale, seed):
    """Memory-then-disk lookup of one cell without ever running a flow."""
    from repro.experiments import cache
    from repro.experiments.runner import _result_cache
    from repro.experiments.telemetry import get_telemetry

    key = (design_name, config_name, scale, seed, period)
    hit = _result_cache.get(key)
    if hit is not None:
        get_telemetry().memory_hits += 1
        get_telemetry().record_cell(design_name, config_name, 0.0, "memory")
        return hit
    if cache.cache_enabled():
        result = cache.load_result(
            cache.result_key(
                design_name, config_name, scale=scale, seed=seed, period_ns=period
            )
        )
        if result is not None:
            get_telemetry().disk_hits += 1
            get_telemetry().record_cell(design_name, config_name, 0.0, "disk")
            _result_cache[key] = (None, result)
            return None, result
        # A miss here is not counted: the worker (or the serial fallback)
        # that actually runs the cell records it.
    return None, None
