"""Experiment harnesses: the 4-netlist x 5-configuration evaluation matrix."""

from repro.experiments.configs import CONFIG_NAMES, Configuration, configurations
from repro.experiments.resilience import FailedCell, RetryPolicy
from repro.experiments.runner import (
    EvaluationMatrix,
    clear_memory_caches,
    find_target_period,
    run_configuration,
    run_matrix,
)
from repro.experiments.telemetry import Telemetry, get_telemetry, reset_telemetry

__all__ = [
    "CONFIG_NAMES",
    "Configuration",
    "configurations",
    "EvaluationMatrix",
    "FailedCell",
    "RetryPolicy",
    "clear_memory_caches",
    "find_target_period",
    "run_configuration",
    "run_matrix",
    "Telemetry",
    "get_telemetry",
    "reset_telemetry",
]
