"""Experiment harnesses: the 4-netlist x 5-configuration evaluation matrix."""

from repro.experiments.configs import CONFIG_NAMES, Configuration, configurations
from repro.experiments.runner import EvaluationMatrix, run_configuration, run_matrix

__all__ = [
    "CONFIG_NAMES",
    "Configuration",
    "configurations",
    "EvaluationMatrix",
    "run_configuration",
    "run_matrix",
]
