"""Emitters for the paper's figures (data + ASCII renderings).

The figures are layouts and diagrams; we regenerate their *content* --
the quantitative statements each figure makes -- as structured data plus
a terminal-friendly ASCII rendering:

- **Fig. 1**: the five technology/design configurations.
- **Fig. 2**: the two boundary-cell circuits (covered by the Table II/III
  benchmarks; here we return the circuit descriptions).
- **Fig. 3**: placement/routing layouts of the CPU in 2-D 9T, 2-D 12T and
  heterogeneous 3-D -- die outlines, row pitches per tier, densities, and
  a density heat-map.
- **Fig. 4**: clock-tree, memory-net, and critical-path overlays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.configs import configurations
from repro.experiments.runner import EvaluationMatrix
from repro.flow.design import Design

__all__ = [
    "fig1_configurations",
    "fig2_boundary_circuits",
    "fig3_layout_stats",
    "fig4_overlays",
    "density_heatmap",
]


def fig1_configurations() -> list[dict[str, str]]:
    """Fig. 1: the five configurations and their tier stacks."""
    out = []
    for name, config in configurations().items():
        out.append(
            {
                "name": name,
                "tiers": str(config.tiers),
                "tracks": config.tracks,
                "description": config.description,
            }
        )
    return out


def fig2_boundary_circuits() -> dict[str, str]:
    """Fig. 2: the two FO-4 boundary conditions (textual description)."""
    return {
        "a": "heterogeneity at the driver output: driver on tier-0, the "
             "four load inverters on tier-1 (load capacitance changes)",
        "b": "heterogeneity at the driver input: driver and loads share "
             "tier-1, the driver's gate is driven from tier-0's rail "
             "(overdrive and leakage change)",
    }


@dataclass(frozen=True)
class LayoutStats:
    """Quantitative content of one Fig. 3 layout panel."""

    config: str
    width_um: float
    height_um: float
    tiers: int
    row_pitch_by_tier: dict[int, float]
    density: float
    macro_count: int
    cells_by_tier: dict[int, int]

    def describe(self) -> str:
        pitches = ", ".join(
            f"tier{t}: {p:.2f}um" for t, p in sorted(self.row_pitch_by_tier.items())
        )
        return (
            f"{self.config}: {self.width_um:.0f} x {self.height_um:.0f} um, "
            f"{self.tiers} tier(s), rows [{pitches}], "
            f"density {self.density:.0%}, {self.macro_count} macros"
        )


def layout_stats(design: Design) -> LayoutStats:
    """Measure the Fig. 3 facts of one implemented design."""
    fp = design.floorplan
    cells_by_tier: dict[int, int] = {}
    for inst in design.netlist.instances.values():
        if inst.cell.is_macro:
            continue
        cells_by_tier[inst.tier] = cells_by_tier.get(inst.tier, 0) + 1
    return LayoutStats(
        config=design.config,
        width_um=fp.width_um,
        height_um=fp.height_um,
        tiers=design.tiers,
        row_pitch_by_tier={
            t: lib.cell_height_um for t, lib in design.tier_libs.items()
        },
        density=fp.density(design.netlist),
        macro_count=len(design.netlist.memory_macros()),
        cells_by_tier=cells_by_tier,
    )


def fig3_layout_stats(matrix: EvaluationMatrix) -> list[LayoutStats]:
    """Fig. 3: the CPU under 2-D 9T, 2-D 12T, and heterogeneous 3-D."""
    stats = []
    for config in ("2D_9T", "2D_12T", "3D_HET"):
        design = matrix.designs[("cpu", config)]
        stats.append(layout_stats(design))
    return stats


def density_heatmap(design: Design, *, bins: int = 12, tier: int | None = None) -> str:
    """ASCII density map of a placed design (one Fig. 3 panel)."""
    fp = design.floorplan
    grid = np.zeros((bins, bins))
    for inst in design.netlist.instances.values():
        if inst.cell.is_macro or not inst.is_placed:
            continue
        if tier is not None and inst.tier != tier:
            continue
        cx, cy = inst.center()
        bx = min(bins - 1, max(0, int(cx / fp.width_um * bins)))
        by = min(bins - 1, max(0, int(cy / fp.height_um * bins)))
        grid[by, bx] += inst.area_um2
    bin_area = (fp.width_um / bins) * (fp.height_um / bins)
    grid /= bin_area
    shades = " .:-=+*#%@"
    lines = []
    for row in reversed(range(bins)):
        line = "".join(
            shades[min(len(shades) - 1, int(grid[row, col] * (len(shades) - 1)))]
            for col in range(bins)
        )
        lines.append(line)
    return "\n".join(lines)


def fig4_overlays(matrix: EvaluationMatrix) -> dict[str, dict[str, float]]:
    """Fig. 4: clock tree (a), memory nets (b), critical path (c) data.

    Returns per-configuration quantitative content: clock wirelength and
    sink spread, memory-net latencies, and the critical-path geometry --
    what the colored overlays of the figure visualize.
    """
    out: dict[str, dict[str, float]] = {}
    for config in ("2D_12T", "3D_HET"):
        r = matrix.result("cpu", config)
        cp = r.critical_path
        row = {
            "clock_wirelength_mm": r.clock.wirelength_mm,
            "clock_buffer_count": float(r.clock.buffer_count),
            "clock_sink_count": float(len(r.clock.latencies)),
            "crit_path_cells": float(cp.total_cells),
            "crit_path_wirelength_um": cp.wirelength_um,
        }
        if r.memory_nets is not None:
            row["mem_input_latency_ps"] = r.memory_nets.input_net_latency_ps
            row["mem_output_latency_ps"] = r.memory_nets.output_net_latency_ps
        out[config] = row
    return out
