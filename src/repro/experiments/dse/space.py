"""Config lattice for the design-space explorer.

A lattice is the cross product of four axes the paper motivates:

- ``slow_tracks`` -- track height of the top (slow) die library;
- ``slow_vdd`` -- its supply, constrained by the Section II-B rule that
  V_DDH - V_DDL must stay below ``0.3 * V_DDH`` (otherwise the pair
  needs level shifters and is reported *incompatible*, never run);
- ``tier_cap`` -- the timing-based pinning area cap, restricted to the
  paper's 20-30% range (Section III-A1);
- ``fm_tolerance`` -- the FM partitioner's balance tolerance.

The fast (bottom-die) library is fixed per exploration, which is what
lets every config share one synthesis/pseudo-place prefix per clock
period (:mod:`repro.experiments.dse.search`).

Incompatibility is decided by the *actual* library objects
(:meth:`~repro.liberty.library.StdCellLibrary.voltage_compatible_with`
plus the ``vdd > vth + 50mV`` constructability floor), so the lattice
can never silently diverge from what the flow itself would reject.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache

from repro.liberty.library import StdCellLibrary
from repro.liberty.presets import make_track_variant

__all__ = [
    "TIER_CAP_RANGE",
    "DseConfig",
    "LatticeSpec",
    "build_library",
    "generate_lattice",
]

#: The paper's pinning-area-cap range (Section III-A1): "capped at
#: 20-30% of cell area".  Lattice specs outside it are rejected.
TIER_CAP_RANGE = (0.20, 0.30)


@lru_cache(maxsize=None)
def build_library(tracks: int, vdd_v: float | None = None) -> StdCellLibrary:
    """Preset library for one lattice point (memoized: table synthesis
    is cheap but the lattice asks for the same corner thousands of
    times)."""
    return make_track_variant(tracks, vdd_v=vdd_v)


@dataclass(frozen=True, order=True)
class DseConfig:
    """One lattice point: the axis values of a single candidate config."""

    slow_tracks: int
    slow_vdd: float
    tier_cap: float
    fm_tolerance: float

    @property
    def label(self) -> str:
        """Stable unique id used in manifests, logs and reports."""
        return (
            f"{self.slow_tracks}T@{self.slow_vdd:.3f}V"
            f"/cap{self.tier_cap:.3f}/fm{self.fm_tolerance:.3f}"
        )

    def key_fields(self) -> dict:
        """The config's contribution to content-addressed cache keys."""
        return {
            "slow_tracks": self.slow_tracks,
            "slow_vdd": self.slow_vdd,
            "tier_cap": self.tier_cap,
            "fm_tolerance": self.fm_tolerance,
        }

    def to_dict(self) -> dict:
        return self.key_fields()

    @staticmethod
    def from_dict(d: dict) -> "DseConfig":
        return DseConfig(
            slow_tracks=int(d["slow_tracks"]),
            slow_vdd=float(d["slow_vdd"]),
            tier_cap=float(d["tier_cap"]),
            fm_tolerance=float(d["fm_tolerance"]),
        )


@dataclass(frozen=True)
class LatticeSpec:
    """The axes of one exploration (defaults: a 300-point lattice)."""

    fast_tracks: int = 12
    fast_vdd: float | None = None  # None = the preset's own supply
    slow_tracks: tuple[int, ...] = (8, 9, 10)
    slow_vdd: tuple[float, ...] = (0.66, 0.70, 0.75, 0.81, 0.90)
    tier_caps: tuple[float, ...] = (0.20, 0.225, 0.25, 0.275, 0.30)
    fm_tolerances: tuple[float, ...] = (0.08, 0.10, 0.12, 0.15)

    def __post_init__(self) -> None:
        lo, hi = TIER_CAP_RANGE
        bad = [c for c in self.tier_caps if not lo <= c <= hi]
        if bad:
            raise ValueError(
                f"tier caps {bad} outside the paper's"
                f" {lo:.0%}-{hi:.0%} pinning range (Section III-A1)"
            )
        bad = [t for t in self.fm_tolerances if not 0.0 < t <= 0.5]
        if bad:
            raise ValueError(f"FM balance tolerances {bad} outside (0, 0.5]")
        if not (self.slow_tracks and self.slow_vdd
                and self.tier_caps and self.fm_tolerances):
            raise ValueError("every lattice axis needs at least one value")

    @property
    def size(self) -> int:
        return (len(self.slow_tracks) * len(self.slow_vdd)
                * len(self.tier_caps) * len(self.fm_tolerances))

    def fast_library(self) -> StdCellLibrary:
        return build_library(self.fast_tracks, self.fast_vdd)

    def axis_indices(self, cfg: DseConfig) -> tuple[int, int, int, int]:
        """The config's coordinates in the lattice (for neighbor
        distance -- warm starts and pruning predictions)."""
        return (
            self.slow_tracks.index(cfg.slow_tracks),
            self.slow_vdd.index(cfg.slow_vdd),
            self.tier_caps.index(cfg.tier_cap),
            self.fm_tolerances.index(cfg.fm_tolerance),
        )

    def distance(self, a: DseConfig, b: DseConfig) -> int:
        """Manhattan distance in lattice steps between two configs."""
        ia, ib = self.axis_indices(a), self.axis_indices(b)
        return sum(abs(x - y) for x, y in zip(ia, ib))

    def to_dict(self) -> dict:
        return {
            "fast_tracks": self.fast_tracks,
            "fast_vdd": self.fast_vdd,
            "slow_tracks": list(self.slow_tracks),
            "slow_vdd": list(self.slow_vdd),
            "tier_caps": list(self.tier_caps),
            "fm_tolerances": list(self.fm_tolerances),
        }

    @staticmethod
    def from_dict(d: dict) -> "LatticeSpec":
        return LatticeSpec(
            fast_tracks=int(d["fast_tracks"]),
            fast_vdd=None if d.get("fast_vdd") is None else float(d["fast_vdd"]),
            slow_tracks=tuple(int(v) for v in d["slow_tracks"]),
            slow_vdd=tuple(float(v) for v in d["slow_vdd"]),
            tier_caps=tuple(float(v) for v in d["tier_caps"]),
            fm_tolerances=tuple(float(v) for v in d["fm_tolerances"]),
        )


def generate_lattice(
    spec: LatticeSpec,
) -> tuple[list[DseConfig], list[tuple[DseConfig, str]]]:
    """Expand the axes into runnable and incompatible configs.

    Returns ``(runnable, incompatible)``; incompatible entries carry a
    human-readable reason (voltage-margin violation or an
    unconstructable corner) and are *reported*, never silently dropped
    and never run.  The runnable list is in lexicographic axis order
    with the last axis varying fastest, so consecutive configs are
    lattice neighbors -- which is what makes warm-started period
    searches land 1-2 steps from an already-evaluated answer.
    """
    fast_lib = spec.fast_library()
    runnable: list[DseConfig] = []
    incompatible: list[tuple[DseConfig, str]] = []

    # Classify each (tracks, vdd) corner once, not once per cap/fm combo.
    corner_reason: dict[tuple[int, float], str | None] = {}
    for tracks, vdd in itertools.product(spec.slow_tracks, spec.slow_vdd):
        try:
            slow_lib = build_library(tracks, vdd)
        except ValueError as exc:
            corner_reason[(tracks, vdd)] = f"unconstructable corner: {exc}"
            continue
        if not fast_lib.voltage_compatible_with(slow_lib):
            corner_reason[(tracks, vdd)] = (
                f"voltage margin: {fast_lib.vdd_v:.2f}V - {vdd:.2f}V"
                f" violates the 0.3*V_DDH rule (needs level shifters)"
            )
        else:
            corner_reason[(tracks, vdd)] = None

    for tracks, vdd, cap, fm in itertools.product(
        spec.slow_tracks, spec.slow_vdd, spec.tier_caps, spec.fm_tolerances
    ):
        cfg = DseConfig(tracks, vdd, cap, fm)
        reason = corner_reason[(tracks, vdd)]
        if reason is None:
            runnable.append(cfg)
        else:
            incompatible.append((cfg, reason))
    return runnable, incompatible
