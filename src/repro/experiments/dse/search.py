"""Batch explorer: prefix reuse, warm period searches, pruning, resume.

One exploration pushes every runnable lattice config through a
per-config max-frequency search plus a final evaluation, against three
compounding cost reducers:

1. **Stage-prefix reuse.**  Synthesis and pseudo-place consume only
   ``(design, scale, seed, fast library, period, utilization)`` -- not
   the slow library, tier cap, or FM tolerance.  Their checkpoints are
   therefore stored once per *prefix key* (a content hash of exactly
   those fields) in ``<cache>/dse_prefix/<key>/`` and re-slotted into
   every later config's flow via
   :func:`~repro.integrity.checkpoint.rebind_checkpoint_tier_library`
   + ``from_stage`` resume.  Reuse is counted in
   ``telemetry.prefix_stages_reused``; a fully warm sweep re-executes
   zero prefix stages.

2. **Warm-started period searches.**  Periods live on a shared
   geometric grid (:func:`period_grid`), so every config's search is a
   boundary search over grid indices
   (:func:`grid_boundary_search`) -- and the nearest already-evaluated
   lattice neighbor's index seeds it, collapsing the usual
   ``log2(steps)`` bisection to 1-2 probes.  Under a monotone
   pass/fail predicate the warm result is provably identical to the
   cold one (property-tested); sharing the grid is also what lets
   *different* configs share prefix checkpoints, since the prefix key
   contains the probe period.

   The same independence argument also runs *forward*: partitioning is
   the only stage the tier-cap and FM-tolerance axes feed, so each
   evaluation first runs to the partitioning checkpoint only
   (``until_stage``), fingerprints the partitioned state (parameter
   echoes masked), and serves the entire post-partition tail from the
   ``dse_suffix`` cache when any earlier config produced the same
   partition -- distinct (cap, fm) settings collapse onto far fewer
   distinct partitions.  Exact by construction; counted in
   ``telemetry.suffix_flows_reused``.

3. **Dominance pruning.**  Before evaluating a config, its objective
   vector is lower-bounded from every evaluated lattice neighbor in
   range: each predicts the candidate as its own vector relaxed by the
   per-step optimism margin (``$REPRO_DSE_PRUNE_MARGIN``), and the
   componentwise *minimum* of the predictions is the bound -- sound as
   soon as any one neighbor's smoothness assumption holds, which is
   what keeps configs across a partition-flip cliff safe.  If a front
   member is <= that bound everywhere and < somewhere
   (:meth:`~repro.experiments.dse.pareto.ParetoFront.certifies_skip`),
   the config cannot enter the front and is skipped -- logged with the
   bound and the dominating point, counted in ``telemetry.dse_pruned``,
   never silent.

Every flow evaluation is content-addressed in the on-disk cache, and a
run-manifest records completed rows per wave, so an interrupted
exploration resumes (``repro explore --resume``) with zero redundant
flow runs and a byte-identical final front.

Environment knobs (all read at :func:`explore` time):

- ``REPRO_DSE_PERIOD_STEPS`` -- period-grid resolution (default 17);
- ``REPRO_DSE_PRUNE`` / ``REPRO_DSE_PREFIX`` / ``REPRO_DSE_WARM`` --
  kill switches for the three layers (``0``/``off`` disables);
- ``REPRO_DSE_SUFFIX`` -- kill switch for partition-fingerprint tail
  reuse (part of the prefix layer; also auto-disabled whenever
  ``$REPRO_CHECK`` enables stage-boundary checks, the one consumer of
  the notes the fingerprint masks);
- ``REPRO_DSE_PRUNE_MARGIN`` -- per-step optimism of the lower-bound
  predictor: either one float (uniform across axes) or four
  comma-separated floats, one per lattice axis in
  ``(slow_tracks, slow_vdd, tier_cap, fm_tolerance)`` order (default
  uniform ``0.25``: any neighbor may underestimate the candidate by up
  to 25% per lattice step before a skip becomes unsound);
- ``REPRO_DSE_PRUNE_DISTANCE`` -- the consensus radius: every
  evaluated config within this many lattice steps contributes a
  prediction to the componentwise-min bound (default 1).  Because the
  bound is a minimum, widening the radius only *loosens* it -- extra
  neighbors can veto a skip, never enable one -- so larger values
  trade pruning yield for extra safety near metric cliffs.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError
from repro.experiments import cache
from repro.experiments.dse.pareto import (
    DEFAULT_OBJECTIVES,
    Objective,
    ParetoFront,
    pareto_mask,
)
from repro.experiments.dse.space import (
    DseConfig,
    LatticeSpec,
    build_library,
    generate_lattice,
)
from repro.experiments.faults import inject
from repro.experiments.resilience import (
    RetryPolicy,
    WorkerTaskError,
    call_with_retry,
    run_jobs_with_retry,
)
from repro.experiments.telemetry import get_telemetry, timed_stage
from repro.flow.report import FlowResult
from repro.integrity.contracts import CheckMode, current_mode
from repro.integrity.checkpoint import (
    checkpoint_path,
    rebind_checkpoint_tier_library,
)
from repro.log import get_logger
from repro.obs import emit_metric, span

__all__ = [
    "ExploreReport",
    "ExploreSpec",
    "evaluate_config",
    "explore",
    "grid_boundary_search",
    "load_report",
    "period_grid",
]

_log = get_logger("dse")

ENV_PERIOD_STEPS = "REPRO_DSE_PERIOD_STEPS"
ENV_PRUNE = "REPRO_DSE_PRUNE"
ENV_PREFIX = "REPRO_DSE_PREFIX"
ENV_SUFFIX = "REPRO_DSE_SUFFIX"
ENV_WARM = "REPRO_DSE_WARM"
ENV_PRUNE_MARGIN = "REPRO_DSE_PRUNE_MARGIN"
ENV_PRUNE_DISTANCE = "REPRO_DSE_PRUNE_DISTANCE"

_FALSY = {"0", "off", "false", "no"}

#: Stages whose output is independent of every per-config axis (slow
#: library, tier cap, FM tolerance) -- the shareable flow prefix, in
#: stage order.  ``rebind_checkpoint_tier_library`` enforces the
#: independence claim at reuse time.
PREFIX_STAGES = ("synthesis", "pseudo_place")
_STAGE_AFTER = {"synthesis": "pseudo_place", "pseudo_place": "partitioning"}
_SLOW_TIER = 1

#: Partitioning is the last stage that reads the tier cap / FM
#: tolerance axes; everything after it is a pure function of the
#: partitioned design state plus ``(period, utilization,
#: opt_iterations, seed)``.  That makes the whole flow *tail* reusable
#: across configs whose partitions collapse to the same state -- keyed
#: by a fingerprint of the partitioning checkpoint.
_PARTITION_STAGE = "partitioning"
_PARTITION_INDEX = 2  # stage position in the voltage-compatible flow
_SUFFIX_RESUME = "placement_3d"

#: Parameter echoes partitioning writes into ``design.notes``.  They
#: are excluded from the suffix fingerprint: no flow stage reads them
#: (only the stage-boundary invariant checks do, and suffix reuse is
#: disabled whenever ``$REPRO_CHECK`` turns those on), so two configs
#: whose partitions agree on everything else produce byte-identical
#: tails.
_PARTITION_ECHO_NOTES = frozenset({
    "pinned_cells",
    "pinned_area_fraction",
    "pinned_area_cap",
    "fm_balance_tolerance",
})

#: The grid widens the 12T sweep bracket upward: low-voltage slow dies
#: can need more relaxed periods than the fast-library search ever saw.
_GRID_WIDEN = 1.5

#: Metrics copied into every report row (objectives are added on top).
_ROW_METRICS = (
    "frequency_ghz",
    "wns_ns",
    "total_power_mw",
    "pdp_pj",
    "die_cost_1e6",
    "ppc",
    "wirelength_mm",
)


def _env_flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


#: Per-axis pruning optimism, ``(slow_tracks, slow_vdd, tier_cap,
#: fm_tolerance)`` order -- see the module docstring for the rationale.
DEFAULT_PRUNE_MARGINS = (0.25, 0.25, 0.25, 0.25)
DEFAULT_PRUNE_DISTANCE = 1


def _parse_margins(raw: str) -> tuple[float, ...]:
    parts = [float(p) for p in raw.split(",") if p.strip()]
    if len(parts) == 1:
        return tuple(parts * 4)
    if len(parts) == 4:
        return tuple(parts)
    raise ValueError(
        f"REPRO_DSE_PRUNE_MARGIN needs 1 or 4 floats, got {raw!r}"
    )


def _env_margins(name: str) -> tuple[float, ...]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return DEFAULT_PRUNE_MARGINS
    try:
        return _parse_margins(raw)
    except ValueError:
        return DEFAULT_PRUNE_MARGINS


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "") or default)
    except ValueError:
        return default


@dataclass(frozen=True)
class ExploreSpec:
    """Everything one exploration depends on (picklable for workers).

    ``None`` perf knobs mean "resolve from the environment at explore
    time"; :func:`resolve_spec` pins them so workers and manifests see
    concrete values.
    """

    design: str
    scale: float = 0.4
    seed: int = 0
    lattice: LatticeSpec = field(default_factory=LatticeSpec)
    objectives: tuple[Objective, ...] = DEFAULT_OBJECTIVES
    opt_iterations: int = 4
    utilization: float = 0.82
    period_steps: int | None = None
    prune: bool | None = None
    reuse_prefix: bool | None = None
    warm_periods: bool | None = None
    prune_margin: tuple[float, ...] | float | None = None
    prune_distance: int | None = None

    def key_fields(self) -> dict:
        """Fields that shape the run-manifest identity.

        The perf toggles stay out: pruning/reuse/warm starts change how
        much work runs, never what any evaluated row contains, so a
        resumed run may legally flip them.
        """
        return {
            "design": self.design,
            "scale": self.scale,
            "seed": self.seed,
            "lattice": self.lattice.to_dict(),
            "objectives": [o.label for o in self.objectives],
            "opt_iterations": self.opt_iterations,
            "utilization": self.utilization,
            "period_steps": self.period_steps,
        }


def resolve_spec(spec: ExploreSpec) -> ExploreSpec:
    """Pin every ``None`` perf knob from the environment/defaults."""
    return replace(
        spec,
        period_steps=(
            spec.period_steps if spec.period_steps is not None
            else max(2, _env_int(ENV_PERIOD_STEPS, 17))
        ),
        prune=(
            spec.prune if spec.prune is not None
            else _env_flag(ENV_PRUNE)
        ),
        reuse_prefix=(
            spec.reuse_prefix if spec.reuse_prefix is not None
            else _env_flag(ENV_PREFIX)
        ),
        warm_periods=(
            spec.warm_periods if spec.warm_periods is not None
            else _env_flag(ENV_WARM)
        ),
        prune_margin=(
            (spec.prune_margin,) * 4
            if isinstance(spec.prune_margin, (int, float))
            else spec.prune_margin if spec.prune_margin is not None
            else _env_margins(ENV_PRUNE_MARGIN)
        ),
        prune_distance=(
            spec.prune_distance if spec.prune_distance is not None
            else _env_int(ENV_PRUNE_DISTANCE, DEFAULT_PRUNE_DISTANCE)
        ),
    )


# ----------------------------------------------------------------------
# period grid + boundary search
# ----------------------------------------------------------------------
def period_grid(design: str, steps: int) -> list[float]:
    """Shared geometric period grid for one design.

    Sharing a *discrete* grid across every config is load-bearing twice:
    probe periods coincide across configs (so prefix checkpoints keyed
    by period are actually shared), and a warm-started search lands on
    exactly the periods a cold one would probe.
    """
    from repro.experiments.runner import _SWEEP_BOUNDS

    lo, hi = _SWEEP_BOUNDS[design]
    hi *= _GRID_WIDEN
    if steps < 2:
        raise ValueError("period grid needs at least 2 steps")
    ratio = hi / lo
    return [
        round(lo * ratio ** (i / (steps - 1)), 6) for i in range(steps)
    ]


def grid_boundary_search(n: int, passes, hint: int | None = None):
    """Minimal grid index whose probe passes; ``(index, probes)``.

    ``passes(i) -> bool`` must be monotone (False...False True...True)
    for the contract "returns the first passing index, or ``n - 1``
    when nothing passes"; under that assumption the result is identical
    for every ``hint`` -- including ``None`` (cold bisection) -- which
    the property tests pin.  A good hint (the neighbor config's answer)
    costs 1-2 probes; a bad one degrades gracefully to galloping +
    bisection, never worse than O(log n).
    """
    if n < 1:
        raise ValueError("empty period grid")
    probes = 0
    known: dict[int, bool] = {}

    def probe(i: int) -> bool:
        nonlocal probes
        if i not in known:
            probes += 1
            known[i] = bool(passes(i))
        return known[i]

    lo, hi = -1, n - 1  # invariant: lo failed (or virtual), answer in (lo, hi]
    if hint is not None and 0 <= hint < n:
        if probe(hint):
            if hint == 0 or not probe(hint - 1):
                return hint, probes
            # The boundary sits below the hint: gallop down.
            hi, step = hint - 1, 2
            while hi > 0:
                i = hint - step
                if i <= 0:
                    break
                if not probe(i):
                    lo = i
                    break
                hi = i
                step *= 2
        else:
            # The boundary sits above the hint: gallop up.
            lo, step = hint, 1
            while True:
                i = lo + step
                if i >= n - 1:
                    break
                if probe(i):
                    hi = i
                    break
                lo = i
                step *= 2
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if probe(mid):
            hi = mid
        else:
            lo = mid
    return hi, probes


# ----------------------------------------------------------------------
# cached flow evaluation with prefix reuse
# ----------------------------------------------------------------------
def _flow_key_fields(spec: ExploreSpec) -> dict:
    lat = spec.lattice
    return {
        "design": spec.design,
        "scale": spec.scale,
        "seed": spec.seed,
        "fast_tracks": lat.fast_tracks,
        "fast_vdd": lat.fast_vdd,
        "utilization": spec.utilization,
        "opt_iterations": spec.opt_iterations,
    }


def _result_cache_key(cfg: DseConfig, spec: ExploreSpec, period_ns: float) -> str:
    return cache.cache_key(
        "dse_result", period_ns=period_ns,
        **_flow_key_fields(spec), **cfg.key_fields(),
    )


def _prefix_cache_key(spec: ExploreSpec, period_ns: float) -> str:
    """Content hash of exactly the fields the prefix stages consume."""
    return cache.cache_key(
        "dse_prefix", period_ns=period_ns, **_flow_key_fields(spec)
    )


def _prefix_root() -> Path:
    return cache.cache_dir() / "dse_prefix"


def _partition_fingerprint(tmpdir: str) -> str | None:
    """Content hash of the partitioning checkpoint's design payload,
    with the parameter-echo notes (:data:`_PARTITION_ECHO_NOTES`)
    masked out.  ``None`` when the checkpoint is unreadable -- the
    caller then falls back to running the tail, never to guessing."""
    path = checkpoint_path(tmpdir, _PARTITION_INDEX, _PARTITION_STAGE)
    try:
        payload = json.loads(path.read_text())["design"]
    except (OSError, ValueError, KeyError, TypeError):
        return None
    notes = payload.get("notes")
    if isinstance(notes, dict):
        payload = dict(payload)
        payload["notes"] = {
            k: v for k, v in notes.items()
            if k not in _PARTITION_ECHO_NOTES
        }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _suffix_cache_key(
    spec: ExploreSpec, period_ns: float, fingerprint: str
) -> str:
    """Content hash of exactly what the post-partition tail consumes:
    the fingerprinted design state plus the runtime knobs the tail
    stages read.  Deliberately *not* keyed on the config axes -- the
    collapse of distinct (cap, fm) settings onto one partition is the
    entire savings."""
    return cache.cache_key(
        "dse_suffix", period_ns=period_ns, fingerprint=fingerprint,
        **_flow_key_fields(spec),
    )


def _seed_prefix(tmpdir: str, prefix_key: str, slow_lib) -> tuple[int, str | None]:
    """Copy the deepest stored prefix checkpoint into ``tmpdir``.

    Returns ``(stages_reused, from_stage)``: the checkpoint is
    re-slotted for this config's slow library and the flow resumes at
    the stage after it.  Any unreadable/unshareable entry falls back to
    the shallower stage, then to a cold start -- reuse can degrade,
    never corrupt.
    """
    store = _prefix_root() / prefix_key
    for idx in range(len(PREFIX_STAGES) - 1, -1, -1):
        stage = PREFIX_STAGES[idx]
        src = checkpoint_path(store, idx, stage)
        if not src.exists():
            continue
        try:
            envelope = json.loads(src.read_text())
            rebound = rebind_checkpoint_tier_library(
                envelope, _SLOW_TIER, slow_lib
            )
        except (OSError, ValueError, CheckpointError) as exc:
            _log.warning(
                "dse prefix %s/%s unusable (%s); trying an earlier stage",
                prefix_key[:12], stage, exc,
            )
            continue
        dst = checkpoint_path(tmpdir, idx, stage)
        dst.write_text(json.dumps(rebound))
        return idx + 1, _STAGE_AFTER[stage]
    return 0, None


def _publish_prefix(tmpdir: str, prefix_key: str) -> None:
    """Move this run's prefix checkpoints into the shared store.

    Atomic per file (tmp + rename); concurrent publishers of the same
    key write byte-identical content (the flow is deterministic), so
    last-wins is safe.  Best-effort like every cache write.
    """
    store = _prefix_root() / prefix_key
    try:
        store.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        _log.warning("cannot create dse prefix store %s: %s", store, exc)
        return
    for idx, stage in enumerate(PREFIX_STAGES):
        src = checkpoint_path(tmpdir, idx, stage)
        dst = checkpoint_path(store, idx, stage)
        if not src.exists() or dst.exists():
            continue
        try:
            tmp = dst.with_suffix(f".tmp.{os.getpid()}")
            shutil.copyfile(src, tmp)
            os.replace(tmp, dst)
        except OSError as exc:
            _log.warning("dse prefix publish failed for %s: %s", dst.name, exc)


def _flow_at_period(
    cfg: DseConfig, spec: ExploreSpec, period_ns: float
) -> FlowResult:
    """One (config, period) evaluation: cache, prefix-reuse, run, store."""
    from repro.flow.hetero import run_flow_hetero_3d

    telemetry = get_telemetry()
    rkey = _result_cache_key(cfg, spec, period_ns)
    if cache.cache_enabled():
        result = cache.load_result(rkey)
        if result is not None:
            telemetry.disk_hits += 1
            return result
        telemetry.disk_misses += 1

    fast_lib = spec.lattice.fast_library()
    slow_lib = build_library(cfg.slow_tracks, cfg.slow_vdd)
    kwargs = dict(
        period_ns=period_ns,
        scale=spec.scale,
        seed=spec.seed,
        utilization=spec.utilization,
        opt_iterations=spec.opt_iterations,
        pinning_area_cap=cfg.tier_cap,
        fm_tolerance=cfg.fm_tolerance,
    )
    use_prefix = bool(spec.reuse_prefix) and cache.cache_enabled()
    with timed_stage(
        "dse_flow", design=spec.design, config=cfg.label, period_ns=period_ns
    ), inject("cell", design=spec.design, config=cfg.label):
        if not use_prefix:
            _design, result = run_flow_hetero_3d(
                spec.design, fast_lib, slow_lib, **kwargs
            )
            telemetry.flows_run += 1
        else:
            pkey = _prefix_cache_key(spec, period_ns)
            # Suffix reuse is sound only while the stage-boundary
            # checks are off: they are the one consumer of the notes
            # the fingerprint masks (see _PARTITION_ECHO_NOTES).
            use_suffix = (
                _env_flag(ENV_SUFFIX, True)
                and current_mode(None) is CheckMode.OFF
            )
            with tempfile.TemporaryDirectory(prefix="repro-dse-") as tmpdir:
                seeded, from_stage = _seed_prefix(tmpdir, pkey, slow_lib)
                result = None
                skey = None
                if use_suffix:
                    # Stop after partitioning (the only stage the
                    # cap/fm axes feed), fingerprint its checkpoint,
                    # and serve the whole tail from cache when another
                    # config already produced this exact state.
                    run_flow_hetero_3d(
                        spec.design, fast_lib, slow_lib,
                        checkpoint_dir=tmpdir, from_stage=from_stage,
                        until_stage=_PARTITION_STAGE, **kwargs,
                    )
                    fingerprint = _partition_fingerprint(tmpdir)
                    if fingerprint is not None:
                        skey = _suffix_cache_key(spec, period_ns, fingerprint)
                        result = cache.load_result(skey)
                    from_stage = _SUFFIX_RESUME
                if result is not None:
                    telemetry.suffix_flows_reused += 1
                    emit_metric("suffix_flows_reused", 1)
                else:
                    _design, result = run_flow_hetero_3d(
                        spec.design, fast_lib, slow_lib,
                        checkpoint_dir=tmpdir, from_stage=from_stage,
                        **kwargs,
                    )
                    if skey is not None:
                        cache.store_result(
                            skey, result,
                            meta={"design": spec.design, "dse": cfg.label,
                                  "period_ns": period_ns},
                        )
                telemetry.flows_run += 1
                if seeded:
                    telemetry.prefix_stages_reused += seeded
                    emit_metric("prefix_stages_reused", seeded)
                if seeded < len(PREFIX_STAGES):
                    _publish_prefix(tmpdir, pkey)
    if cache.cache_enabled():
        cache.store_result(
            rkey, result,
            meta={"design": spec.design, "dse": cfg.label,
                  "period_ns": period_ns},
        )
    return result


def evaluate_config(
    cfg: DseConfig, spec: ExploreSpec, hint_index: int | None = None
) -> dict:
    """Full evaluation of one config: period search + metrics row."""
    grid = period_grid(spec.design, spec.period_steps)
    telemetry = get_telemetry()
    # Re-import to keep one source of truth for the WNS acceptance band.
    from repro.experiments.runner import _WNS_TOLERANCE

    memo: dict[int, FlowResult] = {}

    def result_at(i: int) -> FlowResult:
        if i not in memo:
            memo[i] = _flow_at_period(cfg, spec, grid[i])
        return memo[i]

    def passes(i: int) -> bool:
        telemetry.period_probes += 1
        result = result_at(i)
        return result.wns_ns >= -_WNS_TOLERANCE * grid[i]

    with timed_stage("dse_config", design=spec.design, config=cfg.label):
        hint = hint_index if spec.warm_periods else None
        index, probes = grid_boundary_search(len(grid), passes, hint=hint)
        emit_metric("period_probes", probes)
        result = result_at(index)

    metrics = {name: float(getattr(result, name)) for name in _ROW_METRICS}
    for objective in spec.objectives:
        if objective.metric not in metrics:
            try:
                metrics[objective.metric] = float(
                    getattr(result, objective.metric)
                )
            except (AttributeError, TypeError) as exc:
                raise ValueError(
                    f"objective metric {objective.metric!r} is not a"
                    f" numeric FlowResult field"
                ) from exc
    return {
        "label": cfg.label,
        "config": cfg.to_dict(),
        "period_ns": grid[index],
        "period_index": index,
        "probes": probes,
        "metrics": metrics,
    }


# ----------------------------------------------------------------------
# worker entry point (top level: picklable by spawn/fork alike)
# ----------------------------------------------------------------------
def _evaluate_task(cfg: DseConfig, spec: ExploreSpec, hint_index):
    from repro.experiments.telemetry import get_telemetry, reset_telemetry
    from repro.obs import reset_trace, trace_snapshot

    reset_telemetry()
    reset_trace(from_env=True)
    try:
        with inject("worker", stage="dse", design=spec.design,
                    config=cfg.label):
            row = evaluate_config(cfg, spec, hint_index)
    except Exception as exc:  # noqa: BLE001 -- process boundary
        raise WorkerTaskError.wrap(
            exc, stage="dse", design=spec.design, config=cfg.label
        ) from None
    return cfg.label, row, get_telemetry().snapshot(), trace_snapshot()


# ----------------------------------------------------------------------
# the explorer
# ----------------------------------------------------------------------
def _objective_vector(row: dict, objectives) -> tuple[float, ...]:
    return tuple(
        o.to_min(row["metrics"][o.metric]) for o in objectives
    )


def _compute_front(rows: dict, objectives) -> list[str]:
    """Final front over every evaluated row -- label-sorted, so the
    result is independent of evaluation order, interruption points,
    parallelism, and which configs pruning skipped (soundness means
    skipped configs could never have entered it)."""
    labels = sorted(rows)
    if not labels:
        return []
    points = np.array(
        [_objective_vector(rows[label], objectives) for label in labels]
    )
    mask = pareto_mask(points)
    return [label for label, keep in zip(labels, mask) if keep]


def _nearest_evaluated(
    cfg: DseConfig, by_label: dict[str, DseConfig], spec: ExploreSpec
) -> tuple[str, int] | None:
    best: tuple[int, str] | None = None
    for label, other in by_label.items():
        dist = spec.lattice.distance(cfg, other)
        if best is None or dist < best[0]:
            best = (dist, label)
            if dist == 1:
                break  # cannot do better on a lattice
    if best is None:
        return None
    return best[1], best[0]


def _optimism(spec: ExploreSpec, a: DseConfig, b: DseConfig) -> float:
    """Total prediction optimism between two lattice points: per-axis
    margin times per-axis step count, summed.  Anisotropic on purpose
    -- see the ``REPRO_DSE_PRUNE_MARGIN`` doc."""
    ia = spec.lattice.axis_indices(a)
    ib = spec.lattice.axis_indices(b)
    return sum(
        m * abs(x - y) for m, x, y in zip(spec.prune_margin, ia, ib)
    )


def _maybe_prune(
    cfg: DseConfig,
    spec: ExploreSpec,
    rows: dict[str, dict],
    by_label: dict[str, DseConfig],
    front: ParetoFront,
) -> dict | None:
    """Skip record when the config provably cannot enter the front.

    Every evaluated config within ``prune_distance`` lattice steps
    predicts a lower bound for the candidate: its own objective vector
    relaxed by the per-axis optimism of the path between them.  The
    candidate's bound is the *componentwise minimum* over all such
    predictions -- a pessimist's consensus.  ``min(e_1..e_k)`` is a
    true lower bound as soon as *any one* ``e_j`` is, so the skip is
    sound whenever at least one nearby neighbor's smoothness assumption
    holds -- which is what protects configs sitting across a metric
    cliff (a partition flip): their good-side neighbors drag the bound
    down and the certificate fails.  Only a front member that dominates
    the combined bound certifies the skip.
    """
    used: list[tuple[int, str]] = []
    bound: list[float] | None = None
    for label, other in by_label.items():
        dist = spec.lattice.distance(cfg, other)
        if dist > spec.prune_distance:
            continue
        optimism = _optimism(spec, cfg, other)
        vector = _objective_vector(rows[label], spec.objectives)
        estimate = [v - optimism * abs(v) for v in vector]
        used.append((dist, label))
        bound = (
            estimate if bound is None
            else [min(b, e) for b, e in zip(bound, estimate)]
        )
    if bound is None:
        return None
    certificate = front.certifies_skip(tuple(bound))
    if certificate is None:
        return None
    dominated_by, dom_vector = certificate
    used.sort()
    return {
        "reason": "dominance",
        "neighbors": [label for _, label in used],
        "distance": used[0][0],
        "lower_bound": list(bound),
        "dominated_by": dominated_by,
        "dominating_vector": list(dom_vector),
    }


@dataclass
class ExploreReport:
    """Everything one exploration produced (JSON-serializable)."""

    spec_fields: dict
    rows: dict[str, dict]
    skipped: dict[str, dict]
    incompatible: list[dict]
    failed: dict[str, dict]
    front_ids: list[str]
    objectives: list[str]
    telemetry: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed

    def front_rows(self) -> list[dict]:
        """Front rows with volatile perf counters stripped: ``probes``
        varies with warm starts and cache state without changing any
        result, so it cannot participate in the identity artifact."""
        rows = []
        for label in self.front_ids:
            row = dict(self.rows[label])
            row.pop("probes", None)
            rows.append(row)
        return rows

    def front_json(self) -> str:
        """Canonical serialization of the front -- the byte-identity
        artifact the benchmark and CI compare across run modes."""
        return json.dumps(
            self.front_rows(), sort_keys=True, separators=(",", ":")
        )

    def to_dict(self) -> dict:
        return {
            "spec": self.spec_fields,
            "rows": self.rows,
            "skipped": self.skipped,
            "incompatible": self.incompatible,
            "failed": self.failed,
            "front": self.front_ids,
            "objectives": self.objectives,
            "telemetry": self.telemetry,
        }

    @staticmethod
    def from_dict(d: dict) -> "ExploreReport":
        return ExploreReport(
            spec_fields=dict(d.get("spec", {})),
            rows=dict(d.get("rows", {})),
            skipped=dict(d.get("skipped", {})),
            incompatible=list(d.get("incompatible", [])),
            failed=dict(d.get("failed", {})),
            front_ids=list(d.get("front", [])),
            objectives=list(d.get("objectives", [])),
            telemetry=dict(d.get("telemetry", {})),
        )

    def render(self, *, top: int | None = None) -> str:
        """ASCII Pareto report (``repro explore --report``)."""
        lines = [
            f"explored {len(self.rows)} config(s),"
            f" pruned {len(self.skipped)},"
            f" incompatible {len(self.incompatible)},"
            f" failed {len(self.failed)}",
            f"Pareto front ({' / '.join(self.objectives)}):"
            f" {len(self.front_ids)} member(s)",
            f"{'config':28s} {'period':>7s} {'freq':>6s} {'PDP':>9s}"
            f" {'PPC':>12s} {'power':>9s} {'cost':>8s}",
        ]
        ranked = sorted(
            self.front_ids,
            key=lambda l: self.rows[l]["metrics"].get("pdp_pj", 0.0),
        )
        if top is not None:
            ranked = ranked[:top]
        for label in ranked:
            row = self.rows[label]
            m = row["metrics"]
            lines.append(
                f"{label:28s} {row['period_ns']:7.3f}"
                f" {m.get('frequency_ghz', 0.0):6.2f}"
                f" {m.get('pdp_pj', 0.0):9.3f}"
                f" {m.get('ppc', 0.0):12.1f}"
                f" {m.get('total_power_mw', 0.0):9.3f}"
                f" {m.get('die_cost_1e6', 0.0):8.4f}"
            )
        if self.skipped:
            lines.append("pruned (dominance-certified, never evaluated):")
            for label in sorted(self.skipped):
                rec = self.skipped[label]
                lines.append(
                    f"  {label:28s} dominated by {rec['dominated_by']}"
                    f" (bound from {len(rec['neighbors'])} neighbor(s),"
                    f" nearest {rec['distance']} step(s))"
                )
        if self.failed:
            lines.append("failed:")
            for label in sorted(self.failed):
                rec = self.failed[label]
                lines.append(
                    f"  {label:28s} {rec.get('error_type', '?')}:"
                    f" {rec.get('message', '')}"
                )
        return "\n".join(lines)


def _manifest_key(spec: ExploreSpec) -> str:
    return cache.cache_key("dse_manifest", **spec.key_fields())


def _store_manifest(
    key: str, spec: ExploreSpec, rows, skipped, failed, *, complete: bool
) -> None:
    cache.store_manifest(
        key,
        {
            "spec": spec.key_fields(),
            "rows": rows,
            "skipped": skipped,
            "failed": failed,
            "complete": complete,
        },
    )


def load_report(spec: ExploreSpec) -> ExploreReport | None:
    """Rebuild the report of a stored run without evaluating anything.

    Powers ``repro explore --report``: reads the run-manifest for this
    spec and recomputes the front from the rows it recorded.  Returns
    ``None`` when no manifest exists (nothing was ever run).
    """
    spec = resolve_spec(spec)
    manifest = cache.load_manifest(_manifest_key(spec))
    if manifest is None:
        return None
    configs, incompatible_pairs = generate_lattice(spec.lattice)
    rows = dict(manifest.get("rows", {}))
    return ExploreReport(
        spec_fields=spec.key_fields(),
        rows=rows,
        skipped=dict(manifest.get("skipped", {})),
        incompatible=[
            {"label": cfg.label, "config": cfg.to_dict(), "reason": reason}
            for cfg, reason in incompatible_pairs
        ],
        failed=dict(manifest.get("failed", {})),
        front_ids=_compute_front(rows, spec.objectives),
        objectives=[o.label for o in spec.objectives],
        telemetry={},
    )


def explore(
    spec: ExploreSpec,
    *,
    jobs: int = 1,
    resume: bool = False,
    policy: RetryPolicy | None = None,
    progress=None,
) -> ExploreReport:
    """Run one exploration end to end; quarantines failing configs.

    ``jobs > 1`` fans config evaluations out in waves through
    :func:`~repro.experiments.resilience.run_jobs_with_retry`;
    pruning/warm-start state advances between waves.  ``resume``
    restores completed rows and recorded skips from the run-manifest
    (zero redundant flow runs); ``progress`` is an optional callable
    receiving one status line per wave.
    """
    spec = resolve_spec(spec)
    policy = policy or RetryPolicy()
    telemetry = get_telemetry()
    configs, incompatible_pairs = generate_lattice(spec.lattice)
    incompatible = [
        {"label": cfg.label, "config": cfg.to_dict(), "reason": reason}
        for cfg, reason in incompatible_pairs
    ]
    for entry in incompatible:
        _log.info(
            "config %s incompatible, not run: %s",
            entry["label"], entry["reason"],
        )

    rows: dict[str, dict] = {}
    skipped: dict[str, dict] = {}
    failed: dict[str, dict] = {}
    mkey = _manifest_key(spec)

    with cache.manifest_lock(mkey):
        if resume:
            manifest = cache.load_manifest(mkey)
            if manifest is None:
                _log.warning("no dse run-manifest to resume from; starting cold")
            else:
                rows = dict(manifest.get("rows", {}))
                skipped = dict(manifest.get("skipped", {}))
                _log.info(
                    "resuming exploration: %d row(s), %d skip(s) restored"
                    " (prior failures retry)",
                    len(rows), len(skipped),
                )

        front = ParetoFront(len(spec.objectives))
        by_label: dict[str, DseConfig] = {}
        for label in sorted(rows):
            cfg = DseConfig.from_dict(rows[label]["config"])
            by_label[label] = cfg
            front.add(label, _objective_vector(rows[label], spec.objectives))

        pending = [
            c for c in configs
            if c.label not in rows and c.label not in skipped
        ]
        wave_size = max(1, jobs)

        with span(
            "dse", design=spec.design, configs=len(configs), jobs=jobs
        ):
            while pending:
                wave: list[DseConfig] = []
                hints: dict[str, int | None] = {}
                while pending and len(wave) < wave_size:
                    cfg = pending.pop(0)
                    if spec.prune:
                        skip = _maybe_prune(cfg, spec, rows, by_label, front)
                        if skip is not None:
                            skipped[cfg.label] = skip
                            telemetry.dse_pruned += 1
                            emit_metric("dse_pruned", 1)
                            _log.info(
                                "pruned %s: bound %s (from %d neighbors)"
                                " dominated by %s",
                                cfg.label, skip["lower_bound"],
                                len(skip["neighbors"]), skip["dominated_by"],
                            )
                            continue
                    neighbor = _nearest_evaluated(cfg, by_label, spec)
                    hints[cfg.label] = (
                        rows[neighbor[0]]["period_index"]
                        if neighbor is not None else None
                    )
                    wave.append(cfg)
                if not wave:
                    break

                wave_rows = _run_wave(
                    wave, spec, hints, jobs=jobs, policy=policy, failed=failed
                )
                for label, row in wave_rows.items():
                    rows[label] = row
                    by_label[label] = DseConfig.from_dict(row["config"])
                    front.add(
                        label, _objective_vector(row, spec.objectives)
                    )
                _store_manifest(
                    mkey, spec, rows, skipped, failed, complete=False
                )
                if progress is not None:
                    progress(
                        f"evaluated {len(rows)}/{len(configs)}"
                        f" (pruned {len(skipped)}, failed {len(failed)},"
                        f" front {len(front)})"
                    )

        complete = (
            not failed
            and len(rows) + len(skipped) == len(configs)
        )
        _store_manifest(mkey, spec, rows, skipped, failed, complete=complete)

    report = ExploreReport(
        spec_fields=spec.key_fields(),
        rows=rows,
        skipped=skipped,
        incompatible=incompatible,
        failed=failed,
        front_ids=_compute_front(rows, spec.objectives),
        objectives=[o.label for o in spec.objectives],
        telemetry=telemetry.snapshot(),
    )
    return report


def _run_wave(
    wave: list[DseConfig],
    spec: ExploreSpec,
    hints: dict[str, int | None],
    *,
    jobs: int,
    policy: RetryPolicy,
    failed: dict[str, dict],
) -> dict[str, dict]:
    """Evaluate one wave of configs (parallel when it pays)."""
    results: dict[str, dict] = {}
    if jobs > 1 and len(wave) > 1:
        from repro.experiments.parallel import _pool_factory
        from repro.experiments.resilience import PoolUnavailable
        from repro.obs import attach_subtree

        tasks = {
            cfg.label: (cfg, spec, hints.get(cfg.label)) for cfg in wave
        }
        try:
            raw, wave_failures = run_jobs_with_retry(
                tasks,
                _evaluate_task,
                pool_factory=_pool_factory,
                jobs=min(jobs, len(wave)),
                policy=policy,
                describe=lambda label: ("dse", spec.design, label),
            )
        except PoolUnavailable as exc:
            _log.warning(
                "worker pool unavailable (%s); evaluating wave serially", exc
            )
            raw, wave_failures = {}, {}
            _run_wave_serial(wave, spec, hints, policy, results, failed)
            return results
        telemetry = get_telemetry()
        for label, (_label, row, snapshot, trace) in raw.items():
            results[label] = row
            telemetry.merge(snapshot)
            attach_subtree(trace, worker=f"dse:{label}")
        for label, cell in wave_failures.items():
            failed[label] = cell.to_dict()
        return results
    _run_wave_serial(wave, spec, hints, policy, results, failed)
    return results


def _run_wave_serial(
    wave: list[DseConfig],
    spec: ExploreSpec,
    hints: dict[str, int | None],
    policy: RetryPolicy,
    results: dict[str, dict],
    failed: dict[str, dict],
) -> None:
    for cfg in wave:
        value, failure = call_with_retry(
            lambda c=cfg: evaluate_config(c, spec, hints.get(c.label)),
            policy=policy, stage="dse",
            design=spec.design, config=cfg.label,
        )
        if failure is not None:
            failed[cfg.label] = failure.to_dict()
            _log.warning(
                "quarantined dse config %s after %d attempt(s): %s: %s",
                cfg.label, failure.attempts,
                failure.error_type, failure.message,
            )
            continue
        results[cfg.label] = value
