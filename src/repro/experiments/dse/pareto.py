"""Vectorized dominance kernel and the incremental Pareto front.

Everything works in **minimize space**: an :class:`Objective` with
``sense="max"`` is negated on the way in, so dominance is always
"componentwise <= with at least one strict <".  Duplicated points never
dominate each other, so every copy of a non-dominated point stays on
the front -- the property-based tests pin the incremental front to the
brute-force reference under exactly this definition.

The pruning primitive is :meth:`ParetoFront.certifies_skip`: given a
*lower bound* on a candidate's objective vector, it returns an
evaluated front point that is <= the bound everywhere and < somewhere.
If such a point exists, any true vector ``f >= lb`` is strictly
dominated by it, so skipping the candidate provably cannot change the
front -- the soundness argument lives or dies with the bound being a
true lower bound, which is why every skip is logged with the bound and
the dominating point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DEFAULT_OBJECTIVES",
    "Objective",
    "ParetoFront",
    "brute_force_front",
    "pareto_mask",
    "parse_objectives",
]

#: Row-chunk size of the vectorized kernel: bounds peak memory at
#: roughly ``chunk * n * k`` booleans while keeping the inner loop in
#: numpy for lattices of tens of thousands of points.
_CHUNK = 256


@dataclass(frozen=True)
class Objective:
    """One search objective: a FlowResult metric and its direction."""

    metric: str
    sense: str  # "min" | "max"

    def __post_init__(self) -> None:
        if self.sense not in ("min", "max"):
            raise ValueError(f"objective sense must be min/max, got {self.sense!r}")

    def to_min(self, value: float) -> float:
        """Map a raw metric value into minimize space."""
        return -float(value) if self.sense == "max" else float(value)

    @property
    def label(self) -> str:
        return f"{self.metric}:{self.sense}"


#: The paper's headline tradeoff: power-delay product vs PPC.
DEFAULT_OBJECTIVES = (Objective("pdp_pj", "min"), Objective("ppc", "max"))


def parse_objectives(text: str) -> tuple[Objective, ...]:
    """Parse ``"pdp_pj:min,ppc:max"`` into :class:`Objective` tuples."""
    objectives = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        metric, sep, sense = part.partition(":")
        if not sep:
            raise ValueError(
                f"objective {part!r} must be metric:min or metric:max"
            )
        objectives.append(Objective(metric.strip(), sense.strip()))
    if not objectives:
        raise ValueError("no objectives given")
    return tuple(objectives)


def pareto_mask(points: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows (minimize every column).

    Vectorized O(n^2 k) with bounded memory: candidates are compared
    against the full point set one row-chunk at a time.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise ValueError(f"expected an (n, k) array, got shape {pts.shape}")
    n = len(pts)
    mask = np.ones(n, dtype=bool)
    if n == 0:
        return mask
    for start in range(0, n, _CHUNK):
        chunk = pts[start:start + _CHUNK]  # (c, k) candidates
        # dominated[j] = any i with pts[i] <= chunk[j] everywhere and
        # < somewhere.
        le = (pts[:, None, :] <= chunk[None, :, :]).all(axis=2)
        lt = (pts[:, None, :] < chunk[None, :, :]).any(axis=2)
        mask[start:start + _CHUNK] = ~(le & lt).any(axis=0)
    return mask


def brute_force_front(points) -> list[int]:
    """Reference implementation: indices of non-dominated points.

    Pure-python O(n^2); the hypothesis tests compare both the
    vectorized kernel and the incremental front against this.
    """
    pts = [list(map(float, p)) for p in points]
    front = []
    for j, q in enumerate(pts):
        dominated = False
        for p in pts:
            if all(a <= b for a, b in zip(p, q)) and any(
                a < b for a, b in zip(p, q)
            ):
                dominated = True
                break
        if not dominated:
            front.append(j)
    return front


class ParetoFront:
    """Incrementally maintained set of non-dominated points.

    Point ids are opaque (config labels); vectors are minimize-space.
    ``add`` either rejects a dominated point or admits it and evicts
    every member the newcomer dominates.
    """

    def __init__(self, n_objectives: int):
        if n_objectives < 1:
            raise ValueError("need at least one objective")
        self.n_objectives = n_objectives
        self._points = np.empty((0, n_objectives), dtype=float)
        self._ids: list[str] = []

    def __len__(self) -> int:
        return len(self._ids)

    def members(self) -> list[tuple[str, tuple[float, ...]]]:
        """Current front as ``(id, vector)`` pairs, insertion order."""
        return [
            (pid, tuple(vec)) for pid, vec in zip(self._ids, self._points)
        ]

    @property
    def ids(self) -> list[str]:
        return list(self._ids)

    def add(self, point_id: str, vector) -> bool:
        """Offer one evaluated point; returns ``True`` if it entered."""
        v = np.asarray(vector, dtype=float).reshape(-1)
        if v.shape != (self.n_objectives,):
            raise ValueError(
                f"vector of {v.shape} against {self.n_objectives} objectives"
            )
        if len(self._ids):
            le = (self._points <= v).all(axis=1)
            lt = (self._points < v).any(axis=1)
            if bool((le & lt).any()):
                return False  # strictly dominated by a member
            ge = (self._points >= v).all(axis=1)
            gt = (self._points > v).any(axis=1)
            evict = ge & gt
            if bool(evict.any()):
                keep = ~evict
                self._points = self._points[keep]
                self._ids = [
                    pid for pid, k in zip(self._ids, keep) if k
                ]
        self._points = np.vstack([self._points, v[None, :]])
        self._ids.append(point_id)
        return True

    def certifies_skip(self, lower_bound) -> tuple[str, tuple[float, ...]] | None:
        """A member proving any point ``>= lower_bound`` is dominated.

        Returns ``(member_id, member_vector)`` when a front point ``p``
        satisfies ``p <= lower_bound`` everywhere and ``p <
        lower_bound`` somewhere -- then for any true vector ``f >=
        lower_bound``, ``p`` dominates ``f`` (the strict coordinate
        carries through), so the candidate can never be Pareto-optimal.
        ``None`` means the skip cannot be certified and the candidate
        must be evaluated.
        """
        if not len(self._ids):
            return None
        lb = np.asarray(lower_bound, dtype=float).reshape(-1)
        if lb.shape != (self.n_objectives,):
            raise ValueError(
                f"bound of {lb.shape} against {self.n_objectives} objectives"
            )
        le = (self._points <= lb).all(axis=1)
        lt = (self._points < lb).any(axis=1)
        hits = np.nonzero(le & lt)[0]
        if not len(hits):
            return None
        i = int(hits[0])
        return self._ids[i], tuple(self._points[i])
