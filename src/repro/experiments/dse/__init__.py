"""Pareto design-space exploration (the ROADMAP's large-scale DSE item).

The paper hand-picks five configurations per netlist; this package
searches the heterogeneous design space the paper only gestures at --
tier-split caps (20-30%), slow-tier voltage under the 0.3*V_DDH margin
rule, track-height library mixes, and FM balance tolerances -- for
PPC/PDP Pareto fronts, batch-evaluating hundreds to thousands of
configs through the cached parallel engine.

Three compounding perf layers keep that affordable:

- **stage-prefix reuse** (:mod:`.search`): per-stage checkpoints keyed
  by a content hash of only the fields each stage consumes, so configs
  differing in late-stage knobs share their synthesis/pseudo-place
  prefix;
- **warm-started period searches**: each config's max-frequency search
  starts from the nearest evaluated neighbor's answer, collapsing most
  searches to 1-2 probes;
- **dominance pruning** (:mod:`.pareto`): lower-bound predictions from
  lattice neighbors skip configs that provably cannot enter the front
  -- every skip logged, never silent.
"""

from repro.experiments.dse.pareto import (
    Objective,
    ParetoFront,
    brute_force_front,
    parse_objectives,
    pareto_mask,
)
from repro.experiments.dse.search import (
    ExploreReport,
    ExploreSpec,
    explore,
    grid_boundary_search,
    period_grid,
)
from repro.experiments.dse.space import (
    TIER_CAP_RANGE,
    DseConfig,
    LatticeSpec,
    build_library,
    generate_lattice,
)

__all__ = [
    "DseConfig",
    "ExploreReport",
    "ExploreSpec",
    "LatticeSpec",
    "Objective",
    "ParetoFront",
    "TIER_CAP_RANGE",
    "brute_force_front",
    "build_library",
    "explore",
    "generate_lattice",
    "grid_boundary_search",
    "pareto_mask",
    "parse_objectives",
    "period_grid",
]
