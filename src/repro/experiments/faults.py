"""Deterministic fault injection for the evaluation engine.

The resilience layer (:mod:`repro.experiments.resilience`) exists to
survive worker crashes, hangs, corrupt cache entries and bad cells --
none of which occur naturally in a unit test.  This module makes them
occur *on demand, deterministically*: the engine is instrumented with
named injection sites (``with inject("cell", design=..., config=...)``)
that are no-ops unless ``$REPRO_FAULTS`` names them.

Spec format
-----------
``REPRO_FAULTS`` holds ``;``-separated fault entries; each entry is a
``,``-separated list of ``key=value`` fields::

    REPRO_FAULTS="site=worker,design=aes,config=3D_9T,kind=exit"
    REPRO_FAULTS="site=cell,design=ldpc,kind=raise,times=0;site=cache_write,kind=corrupt"

Recognized fields:

``site`` (required)
    Name of the injection point.  The engine defines ``cell`` (around
    each flow execution), ``period_search`` (around each target-period
    search), ``worker`` (at worker-process task entry) and
    ``cache_write`` (around each on-disk cache store).  The serving
    daemon (:mod:`repro.serve`) adds ``journal_write`` (around each
    write-ahead journal append; context ``type``/``path``),
    ``heartbeat`` (each worker heartbeat tick; ``kind=hang`` wedges the
    worker so the watchdog sees a stale heartbeat; context ``worker``),
    ``job_claim`` (around journaling a job claim, before dispatch;
    context ``job``/``kind``/``worker``), ``client_disconnect``
    (around sending a response; firing drops the connection without
    replying, like a client crash; context ``request``, since ``op=``
    is reserved by the spec syntax), ``scale_event`` (around each
    autoscaler pool change; context ``direction`` (``up``/``down``)
    plus ``pool`` or ``worker``; ``kind=exit`` models the daemon dying
    mid-scale), ``disk_full`` (around the disk-pressure guard's free-
    space probe; firing reads as zero bytes free and flips the daemon
    into degraded mode; context ``path``) and ``compaction_crash``
    (inside the online journal compactor, firing once with
    ``phase=written`` -- tmp file durable, rename not yet issued --
    and once with ``phase=replaced`` -- rename durable; ``kind=exit``
    at either phase proves compaction is crash-safe at any instant;
    context ``path``).
``kind`` (required)
    ``raise`` (a deterministic :class:`FaultInjected`, a
    :class:`~repro.errors.ReproError`), ``raise_transient`` (a
    :class:`TransientFaultInjected`, an ``OSError``), ``exit`` (the
    process dies via ``os._exit`` -- a worker crash), ``hang`` (sleep
    ``seconds`` before proceeding), ``corrupt`` (overwrite the file
    named by the site's ``path`` context after the block completes), or
    ``corrupt_design`` (mutate the live :class:`Design` at a flow-stage
    boundary -- see :func:`maybe_corrupt_design`; the site is the stage
    name and ``op=`` selects the corruption from :data:`CORRUPT_OPS`).
``op`` (corrupt_design only, required)
    Which invariant class to break: ``dangling_net``, ``undriven_net``,
    ``floating_input``, ``stale_ref``, ``overlap``,
    ``out_of_floorplan``, ``row_misalign``, ``bad_tier``,
    ``wrong_library``, ``drop_shifter``, or ``comb_loop``.
``times`` (default 1)
    How many matching hits fire; ``0`` means every hit, forever.
``after`` (default 0)
    Skip the first N matching hits before firing.
``seconds`` (default 30)
    Sleep duration for ``hang``.
``p`` / ``seed`` (defaults 1 / 0)
    Fire probability per eligible hit, drawn from a RNG seeded by
    ``(seed, site, entry index, hit index)`` -- reproducible across
    runs and processes.

Any other field is a *match filter*: the fault only fires when the
site's context has that key with that (stringified) value.

Cross-process determinism
-------------------------
Hit counting must be shared between the parent and its pool workers for
``times``/``after`` to mean anything fleet-wide.  Point
``$REPRO_FAULTS_STATE`` at a fresh directory and every hit claims a slot
file there with ``O_CREAT|O_EXCL`` -- an atomic, processes-wide counter.
Without a state dir, counting is per-process (fine for serial runs).
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.log import get_logger

__all__ = [
    "CORRUPT_OPS",
    "CORRUPT_OP_CHECKS",
    "ENV_FAULTS",
    "ENV_FAULTS_STATE",
    "FaultInjected",
    "TransientFaultInjected",
    "FaultSpec",
    "active_faults",
    "inject",
    "maybe_corrupt_design",
    "parse_spec",
    "reset_fault_state",
]

ENV_FAULTS = "REPRO_FAULTS"
ENV_FAULTS_STATE = "REPRO_FAULTS_STATE"

_KINDS = (
    "raise", "raise_transient", "exit", "hang", "corrupt", "corrupt_design"
)

_log = get_logger("faults")


class FaultInjected(ReproError):
    """Deterministic injected failure (quarantine path)."""


class TransientFaultInjected(OSError):
    """Transient injected failure (retry path); deliberately not a ReproError."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``REPRO_FAULTS`` entry."""

    site: str
    kind: str
    index: int  # position in the spec string; part of the fault's identity
    times: int = 1
    after: int = 0
    seconds: float = 30.0
    p: float = 1.0
    seed: int = 0
    op: str = ""  # corruption operator (kind=corrupt_design only)
    match: dict = field(default_factory=dict)


def parse_spec(text: str) -> list[FaultSpec]:
    """Parse a ``REPRO_FAULTS`` value; raises ``ValueError`` on bad specs."""
    specs: list[FaultSpec] = []
    for index, raw in enumerate(part for part in text.split(";") if part.strip()):
        fields: dict[str, str] = {}
        for item in raw.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"fault field {item!r} is not key=value")
            key, value = item.split("=", 1)
            fields[key.strip()] = value.strip()
        site = fields.pop("site", "")
        kind = fields.pop("kind", "")
        if not site:
            raise ValueError(f"fault entry {raw!r} is missing site=")
        if kind not in _KINDS:
            raise ValueError(
                f"fault entry {raw!r} has unknown kind {kind!r}"
                f" (expected one of {', '.join(_KINDS)})"
            )
        op = fields.pop("op", "")
        if kind == "corrupt_design":
            if op not in CORRUPT_OPS:
                raise ValueError(
                    f"fault entry {raw!r} needs op= one of "
                    f"{', '.join(CORRUPT_OPS)}"
                )
        elif op:
            raise ValueError(
                f"fault entry {raw!r}: op= only applies to kind=corrupt_design"
            )
        specs.append(
            FaultSpec(
                site=site,
                kind=kind,
                index=index,
                times=int(fields.pop("times", "1")),
                after=int(fields.pop("after", "0")),
                seconds=float(fields.pop("seconds", "30")),
                p=float(fields.pop("p", "1")),
                seed=int(fields.pop("seed", "0")),
                op=op,
                match=fields,
            )
        )
    return specs


# Parsed specs memoized on the raw env text (hot path: no-fault runs).
_parse_memo: tuple[str, list[FaultSpec]] | None = None

# Per-process hit counters, used when no state dir is configured.
_counters: dict[int, int] = {}


def active_faults() -> list[FaultSpec]:
    """The faults currently requested by ``$REPRO_FAULTS`` (maybe empty)."""
    global _parse_memo
    text = os.environ.get(ENV_FAULTS, "")
    if not text.strip():
        return []
    if _parse_memo is not None and _parse_memo[0] == text:
        return _parse_memo[1]
    specs = parse_spec(text)
    _parse_memo = (text, specs)
    return specs


def reset_fault_state() -> None:
    """Drop per-process hit counters and the parse memo (tests)."""
    global _parse_memo
    _parse_memo = None
    _counters.clear()


def _matches(spec: FaultSpec, site: str, context: dict) -> bool:
    if spec.site != site:
        return False
    return all(
        str(context.get(key)) == value for key, value in spec.match.items()
    )


def _claim_hit(spec: FaultSpec) -> int | None:
    """Reserve this hit's global index, or ``None`` when exhausted.

    With ``$REPRO_FAULTS_STATE`` set, slots are ``O_CREAT|O_EXCL`` files
    shared by every process of the run; otherwise a per-process counter.
    """
    limit = None if spec.times <= 0 else spec.after + spec.times
    state = os.environ.get(ENV_FAULTS_STATE)
    if not state:
        n = _counters.get(spec.index, 0)
        if limit is not None and n >= limit:
            return None
        _counters[spec.index] = n + 1
        return n
    root = Path(state)
    try:
        root.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    n = 0
    while limit is None or n < limit:
        slot = root / f"fault-{spec.index}.{n}"
        try:
            fd = os.open(slot, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            n += 1
            continue
        except OSError:
            return None
        os.close(fd)
        return n
    return None


def _should_fire(spec: FaultSpec, site: str, context: dict) -> bool:
    if not _matches(spec, site, context):
        return False
    n = _claim_hit(spec)
    if n is None or n < spec.after:
        return False
    if spec.p < 1.0:
        rng = random.Random(f"{spec.seed}:{spec.site}:{spec.index}:{n}")
        if rng.random() >= spec.p:
            return False
    return True


def _describe(site: str, context: dict) -> str:
    rendered = ", ".join(f"{k}={v}" for k, v in sorted(context.items()))
    return f"{site}({rendered})" if rendered else site


def _corrupt_path(path: str) -> None:
    try:
        Path(path).write_text("{ corrupted by fault injection")
    except OSError:
        pass


@contextmanager
def inject(site: str, **context):
    """Injection point: a no-op unless an active fault targets ``site``.

    ``raise``/``raise_transient``/``exit``/``hang`` act before the body
    runs; ``corrupt`` acts after it completes, mangling the file named
    by the site's ``path`` context value.
    """
    post_corrupt: list[FaultSpec] = []
    for spec in active_faults():
        if spec.kind == "corrupt_design":
            continue  # design corruption fires via maybe_corrupt_design
        if not _should_fire(spec, site, context):
            continue
        where = _describe(site, context)
        if spec.kind == "corrupt":
            post_corrupt.append(spec)
        elif spec.kind == "hang":
            _log.warning("injected hang %.1fs at %s", spec.seconds, where)
            time.sleep(spec.seconds)
        elif spec.kind == "exit":
            _log.warning("injected process exit at %s", where)
            os._exit(23)
        elif spec.kind == "raise_transient":
            _log.warning("injected transient fault at %s", where)
            raise TransientFaultInjected(f"injected transient fault at {where}")
        else:  # "raise"
            _log.warning("injected deterministic fault at %s", where)
            raise FaultInjected(f"injected fault at {where}")
    yield
    for spec in post_corrupt:
        path = context.get("path")
        if path:
            _log.warning(
                "injected cache corruption at %s", _describe(site, context)
            )
            _corrupt_path(str(path))


# ----------------------------------------------------------------------
# design corruption (kind=corrupt_design)
# ----------------------------------------------------------------------
# Each operator mutates a live Design to break exactly one invariant
# class, so CI can prove the matching checker catches it at the next
# stage boundary.  Targets are chosen deterministically (first eligible
# in sorted-name order); an operator with no eligible target is a no-op
# returning None.


def _movable_cells(design):
    return sorted(
        (
            inst
            for inst in design.netlist.instances.values()
            if not inst.cell.is_macro and not inst.fixed and inst.is_placed
        ),
        key=lambda inst: inst.name,
    )


def _corrupt_dangling_net(design):
    netlist = design.netlist
    name = netlist.unique_name("corrupt_net")
    netlist.add_net(name)
    return f"added dangling net {name}"


def _corrupt_undriven_net(design):
    netlist = design.netlist
    for name in sorted(netlist.nets):
        net = netlist.nets[name]
        if net.driver is None or not net.sinks or net.is_clock:
            continue
        inst_name, pin = net.driver
        del netlist.instances[inst_name]._pin_nets[pin]
        net.driver = None
        return f"removed driver {inst_name}.{pin} from net {name}"
    return None


def _corrupt_floating_input(design):
    netlist = design.netlist
    for name in sorted(netlist.instances):
        inst = netlist.instances[name]
        if inst.cell.is_macro:
            continue
        for pin, _net in sorted(inst.connected_pins()):
            if inst.cell.pins[pin].direction != "output":
                netlist.disconnect(name, pin)
                return f"disconnected input {name}.{pin}"
    return None


def _corrupt_stale_ref(design):
    netlist = design.netlist
    for name in sorted(netlist.nets):
        net = netlist.nets[name]
        if net.sinks:
            net.sinks.append(("__corrupt_ghost__", "A"))
            return f"appended ghost sink to net {name}"
    return None


def _corrupt_overlap(design):
    by_tier: dict[int, object] = {}
    for inst in _movable_cells(design):
        prev = by_tier.get(inst.tier)
        if prev is not None:
            inst.x_um, inst.y_um = prev.x_um, prev.y_um
            return f"stacked {inst.name} onto {prev.name} (tier {inst.tier})"
        by_tier[inst.tier] = inst
    return None


def _corrupt_out_of_floorplan(design):
    if design.floorplan is None:
        return None
    cells = _movable_cells(design)
    if not cells:
        return None
    inst = cells[0]
    inst.x_um = design.floorplan.width_um + 10.0
    return f"moved {inst.name} outside the die"


def _corrupt_row_misalign(design):
    for inst in _movable_cells(design):
        lib = design.tier_libs.get(inst.tier)
        if lib is None:
            continue
        inst.y_um += 0.4 * lib.cell_height_um
        return f"shifted {inst.name} off the row grid"
    return None


def _corrupt_bad_tier(design):
    cells = _movable_cells(design)
    if not cells:
        return None
    inst = cells[0]
    inst.tier = 7
    return f"assigned {inst.name} to nonexistent tier 7"


def _corrupt_wrong_library(design):
    libs = {lib.name: lib for lib in design.tier_libs.values()}
    if len(libs) < 2:
        return None
    netlist = design.netlist
    for name in sorted(netlist.instances):
        inst = netlist.instances[name]
        if inst.cell.is_macro:
            continue
        for lib in libs.values():
            if lib.name != inst.cell.library_name:
                netlist.rebind(name, lib.equivalent_of(inst.cell))
                return f"rebound {name} to {lib.name} without moving tiers"
    return None


def _corrupt_drop_shifter(design):
    from repro.liberty.cells import CellFunction

    netlist = design.netlist
    for name in sorted(netlist.instances):
        inst = netlist.instances[name]
        if inst.cell.function is not CellFunction.LEVEL_SHIFTER:
            continue
        in_net = inst.net_of("A")
        out_net = inst.net_of("Y")
        if in_net is None or out_net is None:
            continue
        for sink_name, pin in list(netlist.nets[out_net].sinks):
            netlist.disconnect(sink_name, pin)
            netlist.connect(in_net, sink_name, pin)
        netlist.remove_instance(name)
        netlist.remove_net(out_net)
        return f"removed level shifter {name}, rewired {out_net} onto {in_net}"
    return None


def _corrupt_comb_loop(design):
    netlist = design.netlist
    for name in sorted(netlist.instances):
        inst = netlist.instances[name]
        if inst.cell.is_macro or inst.cell.is_sequential:
            continue
        out_net = None
        for pin, net_name in inst.connected_pins():
            if inst.cell.pins[pin].direction == "output":
                out_net = net_name
                break
        if out_net is None:
            continue
        for pin, net_name in sorted(inst.connected_pins()):
            spec = inst.cell.pins[pin]
            if spec.direction == "output" or net_name == out_net:
                continue
            netlist.disconnect(name, pin)
            netlist.connect(out_net, name, pin)
            return f"looped {name}.{pin} back onto its own output {out_net}"
    return None


#: op name -> operator; keys are the values ``op=`` accepts.
CORRUPT_OPS = {
    "dangling_net": _corrupt_dangling_net,
    "undriven_net": _corrupt_undriven_net,
    "floating_input": _corrupt_floating_input,
    "stale_ref": _corrupt_stale_ref,
    "overlap": _corrupt_overlap,
    "out_of_floorplan": _corrupt_out_of_floorplan,
    "row_misalign": _corrupt_row_misalign,
    "bad_tier": _corrupt_bad_tier,
    "wrong_library": _corrupt_wrong_library,
    "drop_shifter": _corrupt_drop_shifter,
    "comb_loop": _corrupt_comb_loop,
}

#: op name -> the integrity check expected to catch it.
CORRUPT_OP_CHECKS = {
    "dangling_net": "connectivity",
    "undriven_net": "connectivity",
    "floating_input": "connectivity",
    "stale_ref": "connectivity",
    "overlap": "placement",
    "out_of_floorplan": "placement",
    "row_misalign": "placement",
    "bad_tier": "tiers",
    "wrong_library": "tiers",
    "drop_shifter": "tiers",
    "comb_loop": "timing",
}


def maybe_corrupt_design(design, *, site: str, **context) -> list[str]:
    """Apply any matching ``corrupt_design`` faults to a live design.

    The flow pipeline calls this after each stage body with
    ``site=<stage name>``, so ``REPRO_FAULTS="site=legalization,
    kind=corrupt_design,op=overlap"`` corrupts the design exactly once,
    right where the legalization boundary checks must catch it.
    Returns the ops actually applied.
    """
    applied: list[str] = []
    context.setdefault("design", design.name)
    context.setdefault("config", design.config)
    for spec in active_faults():
        if spec.kind != "corrupt_design":
            continue
        if not _should_fire(spec, site, context):
            continue
        where = _describe(site, context)
        detail = CORRUPT_OPS[spec.op](design)
        if detail is None:
            _log.warning(
                "corrupt_design op=%s found no target at %s", spec.op, where
            )
            continue
        _log.warning(
            "injected design corruption op=%s at %s: %s",
            spec.op, where, detail,
        )
        applied.append(spec.op)
    return applied
