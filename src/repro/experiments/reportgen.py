"""Markdown report generation from an evaluation matrix.

Renders the full paper-shaped result set -- Tables I through VIII, the
figure statistics, and the Section V claims -- as one self-contained
markdown document, so a matrix run leaves a reviewable artifact behind
(``python -m repro report`` writes it to disk).
"""

from __future__ import annotations

from repro.experiments.figures import fig1_configurations, fig3_layout_stats
from repro.experiments.runner import EvaluationMatrix
from repro.experiments.tables import (
    PAPER_TABLE1,
    TABLE7_METRICS,
    conclusion_claims,
    table1_qualitative_ranks,
    table2_output_boundary,
    table3_input_boundary,
    table4_cost_model,
    table6_hetero_ppac,
    table7_deltas,
    table8_detailed_analysis,
)

__all__ = ["render_report"]

_CONFIGS = ("2D_9T", "3D_9T", "2D_12T", "3D_12T", "3D_HET")
_DESIGNS = ("netcard", "aes", "ldpc", "cpu")


def _md_table(header: list[str], rows: list[list[str]]) -> str:
    out = ["| " + " | ".join(header) + " |"]
    out.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)


def _section_table1() -> str:
    ranks = table1_qualitative_ranks()
    rows = []
    for metric in PAPER_TABLE1:
        rows.append([metric + " (ours)"]
                    + [str(ranks[metric][c]) for c in _CONFIGS])
        rows.append([metric + " (paper)"]
                    + [str(PAPER_TABLE1[metric][c]) for c in _CONFIGS])
    return "## Table I — qualitative PPAC ranks\n\n" + _md_table(
        ["metric"] + list(_CONFIGS), rows
    )


def _section_boundary(title: str, rows) -> str:
    header = ["case", "tiers", "rise del ps", "fall del ps",
              "rise slew ps", "leak uW", "total uW"]
    body = [
        [r.label, f"{r.tier0}/{r.tier1}", f"{r.rise_delay_ps:.1f}",
         f"{r.fall_delay_ps:.1f}", f"{r.rise_slew_ps:.1f}",
         f"{r.leakage_uw:.3f}", f"{r.total_power_uw:.2f}"]
        for r in rows
    ]
    return f"## {title}\n\n" + _md_table(header, body)


def _section_table4() -> str:
    values = table4_cost_model()
    body = [[k, f"{v:.4f}"] for k, v in values.items()]
    return "## Table IV — cost model\n\n" + _md_table(["parameter", "value"], body)


def _section_table6(matrix: EvaluationMatrix) -> str:
    rows6 = table6_hetero_ppac(matrix)
    metrics = sorted(next(iter(rows6.values())))
    body = [
        [d] + [f"{rows6[d][m]:.4g}" for m in metrics] for d in _DESIGNS
    ]
    return (
        "## Table VI — heterogeneous 3-D PPAC (repro scale)\n\n"
        + _md_table(["design"] + metrics, body)
    )


def _section_table7(matrix: EvaluationMatrix) -> str:
    deltas = table7_deltas(matrix)
    parts = ["## Table VII — percent deltas, hetero vs homogeneous"]
    for config, per_design in deltas.items():
        body = [
            [label] + [f"{per_design[d][metric]:+.1f}" for d in _DESIGNS]
            for metric, label in TABLE7_METRICS.items()
        ]
        parts.append(f"### vs {config}\n\n"
                     + _md_table(["metric"] + list(_DESIGNS), body))
    return "\n\n".join(parts)


def _section_table8(matrix: EvaluationMatrix) -> str:
    rows8 = table8_detailed_analysis(matrix)
    keys = sorted({k for row in rows8.values() for k in row})
    body = [
        [k] + [
            f"{rows8[c].get(k, float('nan')):.4g}" if k in rows8[c] else "-"
            for c in rows8
        ]
        for k in keys
    ]
    return (
        "## Table VIII — clock / critical path / memory nets (CPU)\n\n"
        + _md_table(["quantity"] + list(rows8), body)
    )


def _section_figures(matrix: EvaluationMatrix) -> str:
    parts = ["## Figures"]
    parts.append("### Fig. 1 — configurations\n\n" + _md_table(
        ["name", "tiers", "tracks", "description"],
        [[c["name"], c["tiers"], c["tracks"], c["description"]]
         for c in fig1_configurations()],
    ))
    stats = fig3_layout_stats(matrix)
    parts.append("### Fig. 3 — CPU layout statistics\n\n" + _md_table(
        ["config", "die (um)", "tiers", "density", "macros"],
        [[s.config, f"{s.width_um:.0f} x {s.height_um:.0f}", str(s.tiers),
          f"{s.density:.0%}", str(s.macro_count)] for s in stats],
    ))
    return "\n\n".join(parts)


def _section_claims(matrix: EvaluationMatrix) -> str:
    claims = conclusion_claims(matrix)
    body = [[k, f"{v:+.1f}%"] for k, v in claims.items()]
    return "## Section V claims — PPC benefit ranges\n\n" + _md_table(
        ["claim", "measured"], body
    )


def render_report(matrix: EvaluationMatrix) -> str:
    """Render the complete markdown report for one matrix run."""
    header = (
        "# Regenerated paper tables and figures\n\n"
        f"Matrix: scale={matrix.scale}, seed={matrix.seed}; frequency "
        "targets from the 12-track 2-D max-frequency sweep:\n\n"
        + _md_table(
            ["design", "period (ns)", "frequency (GHz)"],
            [
                [d, f"{p:.3f}", f"{1 / p:.2f}"]
                for d, p in sorted(matrix.target_periods.items())
            ],
        )
    )
    sections = [
        header,
        _section_table1(),
        _section_boundary(
            "Table II — FO-4, heterogeneity at driver output",
            table2_output_boundary(),
        ),
        _section_boundary(
            "Table III — FO-4, heterogeneity at driver input",
            table3_input_boundary(),
        ),
        _section_table4(),
        _section_table6(matrix),
        _section_table7(matrix),
        _section_table8(matrix),
        _section_figures(matrix),
        _section_claims(matrix),
    ]
    return "\n\n".join(sections) + "\n"
