"""Fault tolerance for the evaluation engine: retry, timeout, quarantine.

The matrix engine distinguishes two failure families:

**Transient** failures are environmental: a worker process died
(``BrokenProcessPool``), the pool could not ship a task
(``PicklingError``), a job exceeded its wall-clock timeout, or the code
under execution raised an OS-level error (``OSError``, ``EOFError``,
``ConnectionError``, ``MemoryError``, ``TimeoutError``).  These are
retried with capped exponential backoff -- and, on the parallel path,
the broken pool is rebuilt and *only the affected jobs* rerun; completed
futures are never discarded.

**Deterministic** failures are the code telling us the input is bad: any
:class:`~repro.errors.ReproError`, or any other exception the flow
raises (a ``ValueError`` from a flow is a bug, and rerunning a
deterministic computation cannot change the answer).  These are never
retried; with ``keep_going`` the cell is *quarantined* -- recorded as a
structured :class:`FailedCell` -- instead of poisoning the whole run.

Worker exceptions cross the process boundary wrapped in
:class:`WorkerTaskError`, which carries the original type name, message
and classification -- so a flow-raised ``OSError`` inside a worker is
*not* mistaken for pool breakage (it is retried in the pool, not
degraded to the serial path).
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

from repro.errors import ReproError
from repro.experiments.telemetry import get_telemetry
from repro.log import get_logger

__all__ = [
    "TRANSIENT",
    "DETERMINISTIC",
    "FailedCell",
    "PoolUnavailable",
    "RetryPolicy",
    "WorkerTaskError",
    "call_with_retry",
    "classify",
    "run_jobs_with_retry",
]

TRANSIENT = "transient"
DETERMINISTIC = "deterministic"

#: Failures of the pool machinery itself (never of the flow under it).
POOL_BREAKAGE = (BrokenProcessPool, pickle.PicklingError)

#: Exception families treated as transient when raised *by the job's own
#: code* (in a worker or serially): environmental, so worth a retry.
TRANSIENT_ERRORS = (OSError, EOFError, MemoryError, TimeoutError)

_log = get_logger("resilience")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the engine fights transient failures.

    ``timeout_s`` is the per-dispatch wall-clock limit of the parallel
    path: it is measured from the moment a wave of jobs is submitted to
    the pool, so size it to cover the slowest *legitimate* job plus any
    queueing (jobs > workers).  The serial path cannot preempt a running
    flow, so timeouts are not enforced there.
    """

    max_retries: int = 2
    backoff_s: float = 0.25
    backoff_factor: float = 2.0
    max_backoff_s: float = 4.0
    timeout_s: float | None = None
    keep_going: bool = False

    def backoff(self, attempt: int) -> float:
        """Capped exponential delay before retry ``attempt`` (0-based)."""
        if self.backoff_s <= 0:
            return 0.0
        return min(
            self.backoff_s * self.backoff_factor**attempt, self.max_backoff_s
        )

    def with_overrides(
        self,
        *,
        keep_going: bool | None = None,
        max_retries: int | None = None,
        timeout_s: float | None = None,
    ) -> "RetryPolicy":
        """A copy with any explicitly-given fields replaced."""
        fields = {}
        if keep_going is not None:
            fields["keep_going"] = keep_going
        if max_retries is not None:
            fields["max_retries"] = max_retries
        if timeout_s is not None:
            fields["timeout_s"] = timeout_s
        return replace(self, **fields) if fields else self


@dataclass
class FailedCell:
    """Structured record of one quarantined unit of matrix work."""

    design: str
    config: str  # "*" for design-level (period-search) failures
    stage: str  # "period_search" | "flow" | "timeout" | "pool"
    kind: str  # TRANSIENT | DETERMINISTIC
    error_type: str
    message: str
    attempts: int
    exception: BaseException | None = field(
        default=None, repr=False, compare=False
    )

    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "config": self.config,
            "stage": self.stage,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
        }

    @staticmethod
    def from_dict(d: dict) -> "FailedCell":
        return FailedCell(
            design=str(d.get("design", "?")),
            config=str(d.get("config", "*")),
            stage=str(d.get("stage", "?")),
            kind=str(d.get("kind", DETERMINISTIC)),
            error_type=str(d.get("error_type", "?")),
            message=str(d.get("message", "")),
            attempts=int(d.get("attempts", 1)),
        )

    def raisable(self) -> BaseException:
        """An exception to re-raise for fail-fast callers.

        Prefers the original exception when it is still in hand (serial
        path); otherwise reconstructs the original ``ReproError``
        subclass by name, falling back to ``FlowError``.
        """
        if self.exception is not None:
            return self.exception
        from repro import errors

        exc_type = getattr(errors, self.error_type, None)
        if not (isinstance(exc_type, type) and issubclass(exc_type, ReproError)):
            exc_type = errors.FlowError
        exc = exc_type(self.message)
        return exc.with_context(
            stage=self.stage,
            design=self.design,
            config=None if self.config == "*" else self.config,
            attempt=self.attempts,
        )


class PoolUnavailable(Exception):
    """Worker pool could not be constructed at all (caller goes serial)."""


class WorkerTaskError(Exception):
    """Picklable carrier for an exception raised inside a pool worker.

    Raising this (rather than the original exception) from the worker
    entry point lets the parent distinguish "the flow failed" from "the
    pool broke" -- the two demand opposite recoveries.
    """

    def __init__(
        self,
        stage: str,
        design: str,
        config: str,
        error_type: str,
        message: str,
        transient: bool,
    ):
        super().__init__(message)
        self.stage = stage
        self.design = design
        self.config = config
        self.error_type = error_type
        self.message = message
        self.transient = transient

    def __reduce__(self):
        return (
            WorkerTaskError,
            (
                self.stage,
                self.design,
                self.config,
                self.error_type,
                self.message,
                self.transient,
            ),
        )

    def __str__(self) -> str:
        return (
            f"{self.error_type}: {self.message}"
            f"  [stage={self.stage}, design={self.design},"
            f" config={self.config}]"
        )

    @staticmethod
    def wrap(
        exc: BaseException, *, stage: str, design: str, config: str = "*"
    ) -> "WorkerTaskError":
        """Classify and box an exception raised by worker-side job code."""
        if isinstance(exc, WorkerTaskError):
            return exc
        transient = not isinstance(exc, ReproError) and isinstance(
            exc, TRANSIENT_ERRORS
        )
        return WorkerTaskError(
            stage, design, config, type(exc).__name__, str(exc), transient
        )


def classify(exc: BaseException) -> str:
    """``TRANSIENT`` (retry) or ``DETERMINISTIC`` (quarantine)."""
    if isinstance(exc, WorkerTaskError):
        return TRANSIENT if exc.transient else DETERMINISTIC
    if isinstance(exc, ReproError):
        return DETERMINISTIC
    if isinstance(exc, POOL_BREAKAGE) or isinstance(exc, TRANSIENT_ERRORS):
        return TRANSIENT
    return DETERMINISTIC


def _failed_cell(
    exc: BaseException,
    *,
    stage: str,
    design: str,
    config: str,
    attempts: int,
    keep_exception: bool = True,
) -> FailedCell:
    if isinstance(exc, WorkerTaskError):
        return FailedCell(
            design=exc.design,
            config=exc.config,
            stage=exc.stage,
            kind=classify(exc),
            error_type=exc.error_type,
            message=exc.message,
            attempts=attempts,
        )
    return FailedCell(
        design=design,
        config=config,
        stage=stage,
        kind=classify(exc),
        error_type=type(exc).__name__,
        message=str(exc),
        attempts=attempts,
        exception=exc if keep_exception else None,
    )


# ----------------------------------------------------------------------
# serial execution with retry
# ----------------------------------------------------------------------
def call_with_retry(
    fn,
    *,
    policy: RetryPolicy,
    stage: str,
    design: str,
    config: str = "*",
):
    """Run ``fn()`` under the retry policy.

    Returns ``(value, None)`` on success or ``(None, FailedCell)`` once
    the error is deterministic or retries are exhausted.  The original
    exception rides on ``FailedCell.exception`` so fail-fast callers can
    re-raise it unchanged.
    """
    attempt = 0
    while True:
        try:
            return fn(), None
        except Exception as exc:  # noqa: BLE001 -- classification boundary
            attempt += 1
            if isinstance(exc, ReproError):
                exc.with_context(
                    stage=stage, design=design,
                    config=None if config == "*" else config,
                    attempt=attempt,
                )
            kind = classify(exc)
            if kind == TRANSIENT and attempt <= policy.max_retries:
                delay = policy.backoff(attempt - 1)
                get_telemetry().retries += 1
                _log.warning(
                    "transient failure in %s (%s/%s), retry %d/%d in %.2fs: %s",
                    stage, design, config, attempt, policy.max_retries,
                    delay, exc,
                )
                if delay:
                    time.sleep(delay)
                continue
            return None, _failed_cell(
                exc, stage=stage, design=design, config=config,
                attempts=attempt,
            )


# ----------------------------------------------------------------------
# pooled execution with retry / timeout / pool rebuild
# ----------------------------------------------------------------------
def run_jobs_with_retry(
    tasks: dict,
    worker,
    *,
    pool_factory,
    jobs: int,
    policy: RetryPolicy,
    describe,
):
    """Run ``{key: args}`` over worker processes, surviving the pool.

    ``worker`` is the picklable task function, ``pool_factory(n)``
    builds an executor with ``n`` workers, and ``describe(key)`` returns
    ``(stage, design, config)`` for failure records.

    Completed futures are harvested even when the pool later breaks or
    times out; transiently-failed jobs are retried (with backoff) on a
    freshly-built pool up to ``policy.max_retries`` times.  Returns
    ``(results, failures)`` where ``results`` maps keys to raw worker
    return values and ``failures`` maps keys to :class:`FailedCell`.

    Raises :class:`PoolUnavailable` only when the very first pool cannot
    be constructed -- nothing has run yet, so the caller loses no work
    by switching to the serial path.
    """
    telemetry = get_telemetry()
    attempts = dict.fromkeys(tasks, 0)
    results: dict = {}
    failures: dict = {}
    pending = set(tasks)
    round_no = 0
    pool = None  # reused across rounds unless it broke or timed out

    try:
        while pending:
            round_keys = sorted(pending)
            if round_no > 0:
                delay = policy.backoff(round_no - 1)
                if delay:
                    time.sleep(delay)
            if pool is None and round_no > 0:
                telemetry.pool_rebuilds += 1
                _log.warning(
                    "rebuilding worker pool (round %d) for %d job(s)",
                    round_no + 1, len(round_keys),
                )
            if pool is None:
                try:
                    pool = pool_factory(min(jobs, len(round_keys)))
                except Exception as exc:  # noqa: BLE001 -- spawn/OS failures
                    if round_no == 0:
                        raise PoolUnavailable(str(exc)) from exc
                    for key in round_keys:
                        stage, design, config = describe(key)
                        failures[key] = _failed_cell(
                            exc, stage="pool", design=design, config=config,
                            attempts=attempts[key] + 1, keep_exception=False,
                        )
                    break

            futures = {}
            submit_failed: list = []
            try:
                for key in round_keys:
                    futures[pool.submit(worker, *tasks[key])] = key
            except Exception as exc:  # noqa: BLE001 -- broken at submit time
                if round_no == 0 and not futures:
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise PoolUnavailable(str(exc)) from exc
                submitted = set(futures.values())
                submit_failed = [
                    (key, exc) for key in round_keys if key not in submitted
                ]

            round_failures: dict = {}
            deadline = (
                time.monotonic() + policy.timeout_s if policy.timeout_s else None
            )
            not_done = set(futures)
            broken = False
            timed_out = False
            while not_done:
                step = 0.05 if deadline is not None else None
                done, not_done = wait(
                    not_done, timeout=step, return_when=FIRST_COMPLETED
                )
                for future in done:
                    key = futures[future]
                    stage, design, config = describe(key)
                    try:
                        results[key] = future.result()
                    except Exception as exc:  # noqa: BLE001
                        if isinstance(exc, POOL_BREAKAGE):
                            broken = True
                            round_failures[key] = _failed_cell(
                                exc, stage="pool", design=design, config=config,
                                attempts=attempts[key] + 1, keep_exception=False,
                            )
                        else:
                            round_failures[key] = _failed_cell(
                                exc, stage=stage, design=design, config=config,
                                attempts=attempts[key] + 1, keep_exception=False,
                            )
                if deadline is not None and not_done and time.monotonic() > deadline:
                    timed_out = True
                    for future in not_done:
                        future.cancel()
                        key = futures[future]
                        stage, design, config = describe(key)
                        telemetry.timeouts += 1
                        _log.warning(
                            "job %s/%s exceeded %.1fs timeout; abandoning attempt",
                            design, config, policy.timeout_s,
                        )
                        round_failures[key] = FailedCell(
                            design=design, config=config, stage="timeout",
                            kind=TRANSIENT, error_type="TimeoutError",
                            message=(
                                f"no result within {policy.timeout_s:.1f}s"
                            ),
                            attempts=attempts[key] + 1,
                        )
                    not_done = set()
            if timed_out or broken or submit_failed:
                # The pool is unusable (hung or crashed workers): tear it
                # down now; the next round builds a fresh one.
                _shutdown_pool(pool, kill=True)
                pool = None

            for key, exc in submit_failed:
                stage, design, config = describe(key)
                round_failures[key] = _failed_cell(
                    exc, stage="pool", design=design, config=config,
                    attempts=attempts[key] + 1, keep_exception=False,
                )

            pending = set()
            for key, cell in round_failures.items():
                attempts[key] = cell.attempts
                if cell.kind == TRANSIENT and attempts[key] <= policy.max_retries:
                    telemetry.retries += 1
                    _log.warning(
                        "retrying %s/%s (attempt %d/%d): %s",
                        cell.design, cell.config, attempts[key] + 1,
                        policy.max_retries + 1, cell.message,
                    )
                    pending.add(key)
                else:
                    failures[key] = cell
            round_no += 1
    except BaseException:
        # Interrupt (SIGINT/SIGTERM via KeyboardInterrupt/SystemExit) or
        # an unexpected crash mid-round: never leave worker processes
        # running behind an exiting parent -- an orphaned pool keeps
        # burning CPU and can double-run cells the caller will retry.
        if pool is not None:
            _shutdown_pool(pool, kill=True)
        raise
    if pool is not None:
        _shutdown_pool(pool, kill=False)
    return results, failures


def _shutdown_pool(pool, *, kill: bool) -> None:
    """Tear a pool down; with ``kill``, terminate hung workers too."""
    if not kill:
        pool.shutdown(wait=True)
        return
    procs = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.terminate()
        except Exception:  # noqa: BLE001 -- best-effort cleanup
            pass
