"""Lightweight instrumentation for the evaluation-matrix engine.

A process-global :class:`Telemetry` object accumulates, per run:

- ``flows_run`` / ``period_probes`` -- how many full flow executions
  actually happened (the expensive part; a fully warm matrix run must
  report zero);
- ``flow_stages_run`` -- individual stage bodies executed by the staged
  driver (:func:`repro.flow.pipeline.execute_flow`); the design-space
  explorer's stage-prefix reuse is proven by this counter, not timing;
- ``prefix_stages_reused`` / ``suffix_flows_reused`` / ``dse_pruned``
  -- the explorer's perf layers: checkpointed stages served from the
  shared prefix store instead of re-executing, post-partition flow
  tails served whole from the partition-fingerprint cache, and lattice
  configs skipped by dominance pruning (every skip is also logged);
- ``memory_hits`` / ``disk_hits`` / ``disk_misses`` -- where each
  requested cell was served from;
- ``retries`` / ``timeouts`` / ``quarantined`` / ``pool_rebuilds`` --
  the resilience layer's activity: transient-failure retries, per-wave
  timeouts, cells quarantined as :class:`FailedCell` records, and
  worker-pool rebuilds after breakage;
- ``cell_seconds`` / ``cell_source`` -- wall time and provenance
  (``"flow"``, ``"memory"``, ``"disk"``) of every matrix cell;
- ``stage_seconds`` -- cumulative wall time per named stage
  (``"period_search"``, ``"flow"``, ...).

Worker processes of the parallel engine carry their own instance; the
parent merges their snapshots with :meth:`Telemetry.merge`, so the
counters stay correct whether the matrix ran serially or fanned out.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field

from repro.log import get_logger
from repro.obs import trace as _trace

__all__ = ["Telemetry", "get_telemetry", "reset_telemetry", "timed_stage"]

_log = get_logger("telemetry")


@dataclass
class Telemetry:
    """Counters and timings for one evaluation run."""

    flows_run: int = 0
    period_probes: int = 0
    flow_stages_run: int = 0
    prefix_stages_reused: int = 0
    suffix_flows_reused: int = 0
    dse_pruned: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    retries: int = 0
    timeouts: int = 0
    quarantined: int = 0
    pool_rebuilds: int = 0
    cell_seconds: dict[tuple[str, str], float] = field(default_factory=dict)
    cell_source: dict[tuple[str, str], str] = field(default_factory=dict)
    stage_seconds: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_cell(
        self, design: str, config: str, seconds: float, source: str
    ) -> None:
        """Log one matrix cell: where it came from and how long it took."""
        self.cell_seconds[(design, config)] = seconds
        self.cell_source[(design, config)] = source

    def record_stage(self, stage: str, seconds: float) -> None:
        """Accumulate wall time under a named stage."""
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def merge(self, other: "Telemetry | dict") -> None:
        """Fold a worker snapshot (object or ``snapshot()`` dict) in."""
        if isinstance(other, dict):
            other = Telemetry.from_snapshot(other)
        self.flows_run += other.flows_run
        self.period_probes += other.period_probes
        self.flow_stages_run += other.flow_stages_run
        self.prefix_stages_reused += other.prefix_stages_reused
        self.suffix_flows_reused += other.suffix_flows_reused
        self.dse_pruned += other.dse_pruned
        self.memory_hits += other.memory_hits
        self.disk_hits += other.disk_hits
        self.disk_misses += other.disk_misses
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.quarantined += other.quarantined
        self.pool_rebuilds += other.pool_rebuilds
        # Worker snapshots must describe disjoint cells: the matrix
        # dispatches each (design, config) to exactly one worker.  A
        # collision means a cell was attributed twice (double-counted
        # wall time), so make it diagnosable instead of silently keeping
        # whichever snapshot merged last.
        collisions = self.cell_seconds.keys() & other.cell_seconds.keys()
        for design, config in sorted(collisions):
            _log.warning(
                "telemetry merge: cell %s/%s reported by more than one"
                " source (%.2fs then %.2fs); keeping the later report",
                design, config,
                self.cell_seconds[(design, config)],
                other.cell_seconds[(design, config)],
            )
        self.cell_seconds.update(other.cell_seconds)
        self.cell_source.update(other.cell_source)
        for stage, seconds in other.stage_seconds.items():
            self.record_stage(stage, seconds)

    def snapshot(self) -> dict:
        """A picklable/JSON-able dict view (cell keys become lists)."""
        d = asdict(self)
        d["cell_seconds"] = [[k[0], k[1], v] for k, v in self.cell_seconds.items()]
        d["cell_source"] = [[k[0], k[1], v] for k, v in self.cell_source.items()]
        return d

    @staticmethod
    def from_snapshot(d: dict) -> "Telemetry":
        """Inverse of :meth:`snapshot`."""
        t = Telemetry(
            flows_run=d.get("flows_run", 0),
            period_probes=d.get("period_probes", 0),
            flow_stages_run=d.get("flow_stages_run", 0),
            prefix_stages_reused=d.get("prefix_stages_reused", 0),
            suffix_flows_reused=d.get("suffix_flows_reused", 0),
            dse_pruned=d.get("dse_pruned", 0),
            memory_hits=d.get("memory_hits", 0),
            disk_hits=d.get("disk_hits", 0),
            disk_misses=d.get("disk_misses", 0),
            retries=d.get("retries", 0),
            timeouts=d.get("timeouts", 0),
            quarantined=d.get("quarantined", 0),
            pool_rebuilds=d.get("pool_rebuilds", 0),
            stage_seconds=dict(d.get("stage_seconds", {})),
        )
        for design, config, v in d.get("cell_seconds", []):
            t.cell_seconds[(design, config)] = v
        for design, config, v in d.get("cell_source", []):
            t.cell_source[(design, config)] = v
        return t

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Multi-line human-readable report (``repro matrix --stats``)."""
        lines = [
            f"flows run        {self.flows_run}"
            f" (period probes {self.period_probes},"
            f" stages {self.flow_stages_run})",
            f"dse              prefix stages reused {self.prefix_stages_reused},"
            f" suffix flows reused {self.suffix_flows_reused},"
            f" configs pruned {self.dse_pruned}",
            f"cache            memory {self.memory_hits} hits,"
            f" disk {self.disk_hits} hits / {self.disk_misses} misses",
            f"resilience       retries {self.retries},"
            f" timeouts {self.timeouts},"
            f" quarantined {self.quarantined},"
            f" pool rebuilds {self.pool_rebuilds}",
        ]
        if self.stage_seconds:
            lines.append("stage wall time:")
            for stage, seconds in sorted(self.stage_seconds.items()):
                lines.append(f"  {stage:20s} {seconds:8.2f} s")
        if self.cell_seconds:
            lines.append("cells:")
            for key in sorted(self.cell_seconds):
                design, config = key
                src = self.cell_source.get(key, "?")
                lines.append(
                    f"  {design:8s} {config:8s} {self.cell_seconds[key]:8.2f} s"
                    f"  [{src}]"
                )
        return "\n".join(lines)


_telemetry = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-global telemetry accumulator."""
    return _telemetry


def reset_telemetry() -> Telemetry:
    """Zero the global accumulator (start of a run / a worker task)."""
    global _telemetry
    _telemetry = Telemetry()
    return _telemetry


@contextmanager
def timed_stage(stage: str, **attrs):
    """Accumulate the block's wall time under ``stage`` -- as a span.

    Every ``timed_stage`` site is also a tracing span: with tracing
    enabled the block appears in the trace tree (with ``attrs``) and
    ``stage_seconds`` is *derived from the span's own clock*, so the
    trace and the telemetry can never disagree about a stage's wall
    time.  With tracing off, the span is the shared no-op and a local
    ``perf_counter`` pair does the timing, exactly as before.
    """
    sp = _trace.span(stage, **attrs)
    start = 0.0 if sp.is_recording else time.perf_counter()
    try:
        with sp:
            yield sp
    finally:
        seconds = (
            sp.duration_s if sp.is_recording
            else time.perf_counter() - start
        )
        get_telemetry().record_stage(stage, seconds)
