"""The five technology/design configurations of Fig. 1.

(a) 12-track 2-D, (b) 9-track 2-D, (c) 12-track 3-D, (d) 9-track 3-D,
and (e) 9+12-track heterogeneous 3-D.  Each configuration knows how to
run its flow; the runner module handles frequency targeting and caching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.flow.design import Design
from repro.flow.flow2d import run_flow_2d
from repro.flow.hetero import run_flow_hetero_3d
from repro.flow.pin3d import run_flow_pin3d
from repro.flow.report import FlowResult
from repro.liberty.library import StdCellLibrary
from repro.liberty.presets import make_library_pair

__all__ = ["CONFIG_NAMES", "Configuration", "configurations"]

#: Table VII column order.
CONFIG_NAMES: tuple[str, ...] = (
    "2D_9T",
    "2D_12T",
    "3D_9T",
    "3D_12T",
    "3D_HET",
)


@dataclass(frozen=True)
class Configuration:
    """One of the five Fig. 1 configurations."""

    name: str
    tiers: int
    tracks: str  # "9", "12", or "9+12"
    description: str
    _runner: Callable[..., tuple[Design, FlowResult]]

    def run(
        self,
        design_name: str,
        *,
        period_ns: float,
        scale: float,
        seed: int,
        **kwargs,
    ) -> tuple[Design, FlowResult]:
        """Implement ``design_name`` in this configuration."""
        return self._runner(
            design_name, period_ns=period_ns, scale=scale, seed=seed, **kwargs
        )


def configurations(
    libs: tuple[StdCellLibrary, StdCellLibrary] | None = None,
) -> dict[str, Configuration]:
    """Build the five configurations over a (12-track, 9-track) pair."""
    lib12, lib9 = libs if libs is not None else make_library_pair()

    def flow_2d(lib: StdCellLibrary):
        def run(name: str, **kw) -> tuple[Design, FlowResult]:
            return run_flow_2d(name, lib, **kw)

        return run

    def flow_3d(lib: StdCellLibrary):
        def run(name: str, **kw) -> tuple[Design, FlowResult]:
            return run_flow_pin3d(name, lib, **kw)

        return run

    def flow_het(name: str, **kw) -> tuple[Design, FlowResult]:
        return run_flow_hetero_3d(name, lib12, lib9, **kw)

    return {
        "2D_9T": Configuration(
            "2D_9T", 1, "9", "9-track 2-D (slow & small)", flow_2d(lib9)
        ),
        "2D_12T": Configuration(
            "2D_12T", 1, "12", "12-track 2-D (fast & large)", flow_2d(lib12)
        ),
        "3D_9T": Configuration(
            "3D_9T", 2, "9", "9-track homogeneous M3D", flow_3d(lib9)
        ),
        "3D_12T": Configuration(
            "3D_12T", 2, "12", "12-track homogeneous M3D", flow_3d(lib12)
        ),
        "3D_HET": Configuration(
            "3D_HET", 2, "9+12", "9+12-track heterogeneous M3D", flow_het
        ),
    }
