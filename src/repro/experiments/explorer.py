"""Technology-mix exploration (Section V).

"Choosing the right mix of technologies is key for heterogeneous 3-D IC
and is currently done manually as metal track variants only, and more
exploration is beneficial."  This module performs that exploration: given
a list of track heights, it builds every stackable (fast, slow) pair from
:func:`repro.liberty.presets.make_track_variant`, runs the heterogeneous
flow on each, and ranks the pairs by PPC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flow.hetero import run_flow_hetero_3d
from repro.flow.report import FlowResult
from repro.liberty.presets import make_track_variant

__all__ = ["PairResult", "explore_track_pairs"]


@dataclass(frozen=True)
class PairResult:
    """One explored technology pair."""

    fast_tracks: int
    slow_tracks: int
    compatible: bool
    result: FlowResult | None

    @property
    def label(self) -> str:
        return f"{self.slow_tracks}+{self.fast_tracks}T"

    @property
    def ppc(self) -> float | None:
        """PPC of the implementation, or ``None`` when the pair was not
        run (incompatible voltage gap).

        A sentinel like ``0.0`` would rank an *unrun* pair as a real --
        terrible -- PPC value and poison any ``min()``/sort over the
        exploration, so not-run is ``None`` and ranking excludes it.
        """
        return self.result.ppc if self.result is not None else None


def explore_track_pairs(
    design_name: str,
    track_heights: tuple[int, ...] = (8, 9, 10, 12),
    *,
    period_ns: float,
    scale: float = 0.4,
    seed: int = 0,
    opt_iterations: int = 8,
) -> list[PairResult]:
    """Run the heterogeneous flow over every stackable track pair.

    The faster (taller) library always goes on the bottom tier.  Pairs
    whose voltage gap violates the Section II-B rule are reported as
    incompatible rather than run (they would need level shifters).
    Results are sorted best-PPC first; incompatible (not-run) pairs have
    ``ppc is None`` and sort after every ranked pair.
    """
    libs = {t: make_track_variant(t) for t in track_heights}
    results: list[PairResult] = []
    for fast in track_heights:
        for slow in track_heights:
            if slow >= fast:
                continue  # the taller library is the fast one by design
            fast_lib, slow_lib = libs[fast], libs[slow]
            if not fast_lib.voltage_compatible_with(slow_lib):
                results.append(PairResult(fast, slow, False, None))
                continue
            _design, result = run_flow_hetero_3d(
                design_name,
                fast_lib,
                slow_lib,
                period_ns=period_ns,
                scale=scale,
                seed=seed,
                opt_iterations=opt_iterations,
            )
            results.append(PairResult(fast, slow, True, result))
    results.sort(
        key=lambda p: (p.ppc is None, -(p.ppc if p.ppc is not None else 0.0))
    )
    return results
