"""Evaluation-matrix runner: frequency targeting, execution, caching.

Methodology (Section IV-A2):

1. For each netlist, sweep the 12-track 2-D implementation over clock
   periods to find the maximum achievable frequency, accepting a period
   when WNS stays within ~5-7% of it.
2. That max frequency becomes the iso-performance target for all five
   configurations of the netlist.
3. Run every configuration at the target and collect the
   :class:`~repro.flow.report.FlowResult` for the tables.

Flow runs are seconds-to-minutes, so results are cached in-process by
``(design, config, scale, seed)``; every Table/Figure benchmark then
reads the same matrix instead of re-running flows.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.experiments.configs import CONFIG_NAMES, configurations
from repro.flow.design import Design
from repro.flow.report import FlowResult
from repro.netlist.generators import DESIGN_NAMES

__all__ = [
    "default_scale",
    "EvaluationMatrix",
    "find_target_period",
    "run_configuration",
    "run_matrix",
]

#: Period sweep bounds per design (ns): generous brackets around each
#: netlist's achievable range at the default scale.
_SWEEP_BOUNDS: dict[str, tuple[float, float]] = {
    "aes": (0.25, 1.6),
    "ldpc": (0.4, 2.4),
    "netcard": (0.4, 2.4),
    "cpu": (0.5, 3.0),
}

#: WNS acceptance band as a fraction of the period (paper: ~5-7%).
_WNS_TOLERANCE = 0.06

_period_cache: dict[tuple[str, float, int], float] = {}
_result_cache: dict[tuple[str, str, float, int], tuple[Design, FlowResult]] = {}


def default_scale() -> float:
    """Netlist scale used by benchmarks; override with $REPRO_SCALE."""
    return float(os.environ.get("REPRO_SCALE", "0.5"))


def find_target_period(
    design_name: str,
    *,
    scale: float,
    seed: int = 0,
    iterations: int = 6,
) -> float:
    """Binary-search the 12-track 2-D max frequency for one netlist.

    Each probe runs the full 2-D flow (with a reduced optimization budget
    for speed) and checks the paper's timing-met criterion.  The result
    is cached per (design, scale, seed).
    """
    key = (design_name, scale, seed)
    cached = _period_cache.get(key)
    if cached is not None:
        return cached

    configs = configurations()
    lo, hi = _SWEEP_BOUNDS[design_name]
    best = hi
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        _design, result = configs["2D_12T"].run(
            design_name,
            period_ns=mid,
            scale=scale,
            seed=seed,
            opt_iterations=8,
        )
        if result.wns_ns >= -_WNS_TOLERANCE * mid:
            best = mid
            hi = mid
        else:
            lo = mid
        if hi - lo < 0.02:
            break
    _period_cache[key] = best
    return best


def run_configuration(
    design_name: str,
    config_name: str,
    *,
    period_ns: float | None = None,
    scale: float | None = None,
    seed: int = 0,
    **kwargs,
) -> tuple[Design, FlowResult]:
    """Run (and cache) one cell of the evaluation matrix."""
    scale = default_scale() if scale is None else scale
    if period_ns is None:
        period_ns = find_target_period(design_name, scale=scale, seed=seed)
    key = (design_name, config_name, scale, seed)
    if key in _result_cache and not kwargs:
        return _result_cache[key]
    configs = configurations()
    design, result = configs[config_name].run(
        design_name, period_ns=period_ns, scale=scale, seed=seed, **kwargs
    )
    if not kwargs:
        _result_cache[key] = (design, result)
    return design, result


@dataclass
class EvaluationMatrix:
    """All results of the 4 x 5 evaluation."""

    scale: float
    seed: int
    target_periods: dict[str, float] = field(default_factory=dict)
    results: dict[tuple[str, str], FlowResult] = field(default_factory=dict)
    designs: dict[tuple[str, str], Design] = field(default_factory=dict)

    def result(self, design: str, config: str) -> FlowResult:
        """One cell of the matrix."""
        return self.results[(design, config)]

    def hetero(self, design: str) -> FlowResult:
        """The heterogeneous implementation of one netlist."""
        return self.results[(design, "3D_HET")]

    def delta_pct(self, design: str, config: str, metric: str) -> float:
        """Table VII delta: (hetero - config) / config * 100 for a metric."""
        het = getattr(self.hetero(design), metric)
        ref = getattr(self.result(design, config), metric)
        if ref == 0:
            return 0.0
        return (het - ref) / ref * 100.0


def run_matrix(
    *,
    designs: tuple[str, ...] = DESIGN_NAMES,
    config_names: tuple[str, ...] = CONFIG_NAMES,
    scale: float | None = None,
    seed: int = 0,
) -> EvaluationMatrix:
    """Run the full evaluation matrix (cached per cell)."""
    scale = default_scale() if scale is None else scale
    matrix = EvaluationMatrix(scale=scale, seed=seed)
    for design_name in designs:
        period = find_target_period(design_name, scale=scale, seed=seed)
        matrix.target_periods[design_name] = period
        for config_name in config_names:
            design, result = run_configuration(
                design_name,
                config_name,
                period_ns=period,
                scale=scale,
                seed=seed,
            )
            matrix.results[(design_name, config_name)] = result
            matrix.designs[(design_name, config_name)] = design
    return matrix
