"""Evaluation-matrix runner: frequency targeting, execution, caching.

Methodology (Section IV-A2):

1. For each netlist, sweep the 12-track 2-D implementation over clock
   periods to find the maximum achievable frequency, accepting a period
   when WNS stays within ~5-7% of it.
2. That max frequency becomes the iso-performance target for all five
   configurations of the netlist.
3. Run every configuration at the target and collect the
   :class:`~repro.flow.report.FlowResult` for the tables.

Flow runs are seconds-to-minutes, so results are cached at two levels:

- **in-process** by ``(design, config, scale, seed, period_ns)`` --
  every Table/Figure benchmark in one session reads the same matrix;
- **on disk** (:mod:`repro.experiments.cache`) so a second process --
  the next pytest session, CLI call, or example script -- warm starts
  without running a single flow.  Disable with ``REPRO_CACHE=0``.

Independent matrix cells can fan out over worker processes
(:mod:`repro.experiments.parallel`); pass ``jobs=`` to
:func:`run_matrix` or set ``$REPRO_JOBS``.  Cache traffic and flow
executions are counted by :mod:`repro.experiments.telemetry`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.experiments import cache
from repro.experiments.configs import CONFIG_NAMES, configurations
from repro.experiments.telemetry import get_telemetry, timed_stage
from repro.flow.design import Design
from repro.flow.report import FlowResult
from repro.netlist.generators import DESIGN_NAMES

__all__ = [
    "default_scale",
    "clear_memory_caches",
    "EvaluationMatrix",
    "find_target_period",
    "run_configuration",
    "run_matrix",
]

#: Period sweep bounds per design (ns): generous brackets around each
#: netlist's achievable range at the default scale.
_SWEEP_BOUNDS: dict[str, tuple[float, float]] = {
    "aes": (0.25, 1.6),
    "ldpc": (0.4, 2.4),
    "netcard": (0.4, 2.4),
    "cpu": (0.5, 3.0),
}

#: WNS acceptance band as a fraction of the period (paper: ~5-7%).
_WNS_TOLERANCE = 0.06

_period_cache: dict[tuple[str, float, int], float] = {}
_result_cache: dict[
    tuple[str, str, float, int, float], tuple[Design | None, FlowResult]
] = {}


def default_scale() -> float:
    """Netlist scale used by benchmarks; override with $REPRO_SCALE."""
    return float(os.environ.get("REPRO_SCALE", "0.5"))


def clear_memory_caches() -> None:
    """Drop the in-process period/result caches (tests; disk untouched)."""
    _period_cache.clear()
    _result_cache.clear()


def find_target_period(
    design_name: str,
    *,
    scale: float,
    seed: int = 0,
    iterations: int = 6,
) -> float:
    """Binary-search the 12-track 2-D max frequency for one netlist.

    Each probe runs the full 2-D flow (with a reduced optimization budget
    for speed) and checks the paper's timing-met criterion.  The result
    is cached per ``(design, scale, seed)`` in process and per
    ``(design, scale, seed, iterations)`` on disk.

    If even the upper sweep bound fails timing, the search returns that
    upper bound ``hi`` unchanged: the caller gets the most relaxed period
    the bracket allows, and the matrix run will simply report negative
    slack at it.  (Callers that need to detect this can check
    ``result.wns_ns`` of the 2-D 12-track cell.)
    """
    mem_key = (design_name, scale, seed)
    cached = _period_cache.get(mem_key)
    if cached is not None:
        get_telemetry().memory_hits += 1
        return cached

    disk_key = cache.period_key(
        design_name, scale=scale, seed=seed, iterations=iterations
    )
    if cache.cache_enabled():
        from_disk = cache.load_period(disk_key)
        if from_disk is not None:
            get_telemetry().disk_hits += 1
            _period_cache[mem_key] = from_disk
            return from_disk
        get_telemetry().disk_misses += 1

    configs = configurations()
    lo, hi = _SWEEP_BOUNDS[design_name]
    best = hi
    with timed_stage("period_search"):
        for _ in range(iterations):
            mid = 0.5 * (lo + hi)
            _design, result = configs["2D_12T"].run(
                design_name,
                period_ns=mid,
                scale=scale,
                seed=seed,
                opt_iterations=8,
            )
            get_telemetry().period_probes += 1
            get_telemetry().flows_run += 1
            if result.wns_ns >= -_WNS_TOLERANCE * mid:
                best = mid
                hi = mid
            else:
                lo = mid
            if hi - lo < 0.02:
                break
    _period_cache[mem_key] = best
    cache.store_period(
        disk_key, best, meta={"design": design_name, "scale": scale, "seed": seed}
    )
    return best


def run_configuration(
    design_name: str,
    config_name: str,
    *,
    period_ns: float | None = None,
    scale: float | None = None,
    seed: int = 0,
    need_design: bool = False,
    **kwargs,
) -> tuple[Design | None, FlowResult]:
    """Run (and cache) one cell of the evaluation matrix.

    The cache key is ``(design, config, scale, seed, period_ns)`` -- the
    period is part of the key, so a call with an explicit non-default
    period can never poison later default-period lookups (and vice
    versa).  Keyword overrides (``opt_iterations`` etc.) bypass caching
    entirely, as before.

    On an on-disk cache hit only the :class:`FlowResult` is available,
    so the returned design is ``None``; pass ``need_design=True`` to
    force a flow run when the caller needs the placed
    :class:`~repro.flow.design.Design` object itself.
    """
    scale = default_scale() if scale is None else scale
    if period_ns is None:
        period_ns = find_target_period(design_name, scale=scale, seed=seed)

    telemetry = get_telemetry()
    cacheable = not kwargs
    key = (design_name, config_name, scale, seed, period_ns)
    if cacheable:
        hit = _result_cache.get(key)
        if hit is not None and (hit[0] is not None or not need_design):
            telemetry.memory_hits += 1
            telemetry.record_cell(design_name, config_name, 0.0, "memory")
            return hit
        if not need_design and cache.cache_enabled():
            disk_key = cache.result_key(
                design_name, config_name, scale=scale, seed=seed,
                period_ns=period_ns,
            )
            start = time.perf_counter()
            result = cache.load_result(disk_key)
            if result is not None:
                telemetry.disk_hits += 1
                telemetry.record_cell(
                    design_name, config_name,
                    time.perf_counter() - start, "disk",
                )
                _result_cache[key] = (None, result)
                return None, result
            telemetry.disk_misses += 1

    configs = configurations()
    start = time.perf_counter()
    with timed_stage("flow"):
        design, result = configs[config_name].run(
            design_name, period_ns=period_ns, scale=scale, seed=seed, **kwargs
        )
    telemetry.flows_run += 1
    telemetry.record_cell(
        design_name, config_name, time.perf_counter() - start, "flow"
    )
    if cacheable:
        _result_cache[key] = (design, result)
        cache.store_result(
            cache.result_key(
                design_name, config_name, scale=scale, seed=seed,
                period_ns=period_ns,
            ),
            result,
            meta={"design": design_name, "config": config_name},
        )
    return design, result


class _LazyDesigns(dict):
    """Per-matrix design map that rebuilds missing entries on demand.

    A disk-cache hit carries only the :class:`FlowResult`; benchmarks
    that inspect layouts (``matrix.designs[("cpu", "3D_HET")]``) get the
    placed design rebuilt transparently -- one flow run, only for the
    cells actually inspected, so a fully warm matrix still performs zero
    flow runs until somebody asks for a layout.
    """

    def __init__(self, matrix: "EvaluationMatrix"):
        super().__init__()
        self._matrix = matrix

    def __missing__(self, key: tuple[str, str]) -> Design:
        design_name, config_name = key
        design, _result = run_configuration(
            design_name,
            config_name,
            period_ns=self._matrix.target_periods.get(design_name),
            scale=self._matrix.scale,
            seed=self._matrix.seed,
            need_design=True,
        )
        self[key] = design
        return design


@dataclass
class EvaluationMatrix:
    """All results of the 4 x 5 evaluation."""

    scale: float
    seed: int
    target_periods: dict[str, float] = field(default_factory=dict)
    results: dict[tuple[str, str], FlowResult] = field(default_factory=dict)
    designs: dict[tuple[str, str], Design] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.designs, _LazyDesigns):
            lazy = _LazyDesigns(self)
            lazy.update(self.designs)
            self.designs = lazy

    def result(self, design: str, config: str) -> FlowResult:
        """One cell of the matrix."""
        return self.results[(design, config)]

    def design(self, design: str, config: str) -> Design:
        """The placed design of one cell (rebuilt on demand if warm)."""
        return self.designs[(design, config)]

    def hetero(self, design: str) -> FlowResult:
        """The heterogeneous implementation of one netlist."""
        return self.results[(design, "3D_HET")]

    def delta_pct(self, design: str, config: str, metric: str) -> float:
        """Table VII delta: (hetero - config) / config * 100 for a metric."""
        het = getattr(self.hetero(design), metric)
        ref = getattr(self.result(design, config), metric)
        if ref == 0:
            return 0.0
        return (het - ref) / ref * 100.0


def run_matrix(
    *,
    designs: tuple[str, ...] = DESIGN_NAMES,
    config_names: tuple[str, ...] = CONFIG_NAMES,
    scale: float | None = None,
    seed: int = 0,
    jobs: int | None = None,
) -> EvaluationMatrix:
    """Run the full evaluation matrix (cached per cell).

    ``jobs`` (default ``$REPRO_JOBS``, else 1) fans the per-design
    period searches and then all independent cells out over worker
    processes; any spawn or pickling failure falls back to the serial
    path, which produces identical results.
    """
    from repro.experiments.parallel import default_jobs, run_matrix_parallel

    scale = default_scale() if scale is None else scale
    jobs = default_jobs() if jobs is None else jobs
    matrix = EvaluationMatrix(scale=scale, seed=seed)
    if jobs > 1 and run_matrix_parallel(
        matrix, designs=designs, config_names=config_names, jobs=jobs
    ):
        return matrix
    for design_name in designs:
        period = find_target_period(design_name, scale=scale, seed=seed)
        matrix.target_periods[design_name] = period
        for config_name in config_names:
            design, result = run_configuration(
                design_name,
                config_name,
                period_ns=period,
                scale=scale,
                seed=seed,
            )
            matrix.results[(design_name, config_name)] = result
            if design is not None:
                matrix.designs[(design_name, config_name)] = design
    return matrix
