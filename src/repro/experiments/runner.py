"""Evaluation-matrix runner: frequency targeting, execution, caching.

Methodology (Section IV-A2):

1. For each netlist, sweep the 12-track 2-D implementation over clock
   periods to find the maximum achievable frequency, accepting a period
   when WNS stays within ~5-7% of it.
2. That max frequency becomes the iso-performance target for all five
   configurations of the netlist.
3. Run every configuration at the target and collect the
   :class:`~repro.flow.report.FlowResult` for the tables.

Flow runs are seconds-to-minutes, so results are cached at two levels:

- **in-process** by ``(design, config, scale, seed, period_ns)`` --
  every Table/Figure benchmark in one session reads the same matrix;
- **on disk** (:mod:`repro.experiments.cache`) so a second process --
  the next pytest session, CLI call, or example script -- warm starts
  without running a single flow.  Disable with ``REPRO_CACHE=0``.

Independent matrix cells can fan out over worker processes
(:mod:`repro.experiments.parallel`); pass ``jobs=`` to
:func:`run_matrix` or set ``$REPRO_JOBS``.  Cache traffic and flow
executions are counted by :mod:`repro.experiments.telemetry`.

Failure semantics (:mod:`repro.experiments.resilience`): transient
failures (worker crash, hang past the timeout, OS-level errors) are
retried with capped exponential backoff; deterministic failures (any
:class:`~repro.errors.ReproError`) are never retried.  With
``keep_going=True`` a failing cell is *quarantined* -- recorded as a
structured :class:`~repro.experiments.resilience.FailedCell` on
``matrix.failed`` -- and the rest of the matrix still completes.  A
run-manifest in the on-disk cache tracks target periods, completed
cells and quarantines as the run progresses, so an interrupted matrix
is resumable (``resume=True`` / ``repro matrix --resume``) with zero
redundant flow runs for already-completed cells.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.experiments import cache
from repro.experiments.configs import CONFIG_NAMES, configurations
from repro.experiments.faults import inject
from repro.experiments.resilience import (
    DETERMINISTIC,
    FailedCell,
    RetryPolicy,
    call_with_retry,
)
from repro.experiments.telemetry import get_telemetry, timed_stage
from repro.flow.design import Design
from repro.flow.report import FlowResult
from repro.log import get_logger
from repro.netlist.generators import DESIGN_NAMES
from repro.obs import add_span_event, emit_metric, span

__all__ = [
    "default_scale",
    "clear_memory_caches",
    "EvaluationMatrix",
    "find_target_period",
    "run_configuration",
    "run_matrix",
]

_log = get_logger("runner")

#: Period sweep bounds per design (ns): generous brackets around each
#: netlist's achievable range at the default scale.
_SWEEP_BOUNDS: dict[str, tuple[float, float]] = {
    "aes": (0.25, 1.6),
    "ldpc": (0.4, 2.4),
    "netcard": (0.4, 2.4),
    "cpu": (0.5, 3.0),
}

#: WNS acceptance band as a fraction of the period (paper: ~5-7%).
_WNS_TOLERANCE = 0.06

_period_cache: dict[tuple[str, float, int], float] = {}
_result_cache: dict[
    tuple[str, str, float, int, float], tuple[Design | None, FlowResult]
] = {}


def default_scale() -> float:
    """Netlist scale used by benchmarks; override with $REPRO_SCALE."""
    return float(os.environ.get("REPRO_SCALE", "0.5"))


def clear_memory_caches() -> None:
    """Drop the in-process period/result caches (tests; disk untouched)."""
    _period_cache.clear()
    _result_cache.clear()


def find_target_period(
    design_name: str,
    *,
    scale: float,
    seed: int = 0,
    iterations: int = 6,
) -> float:
    """Binary-search the 12-track 2-D max frequency for one netlist.

    Each probe runs the full 2-D flow (with a reduced optimization budget
    for speed) and checks the paper's timing-met criterion.  The result
    is cached per ``(design, scale, seed)`` in process and per
    ``(design, scale, seed, iterations)`` on disk.

    If even the upper sweep bound fails timing, the search returns that
    upper bound ``hi`` unchanged: the caller gets the most relaxed period
    the bracket allows, and the matrix run will simply report negative
    slack at it.  (Callers that need to detect this can check
    ``result.wns_ns`` of the 2-D 12-track cell.)
    """
    mem_key = (design_name, scale, seed)
    cached = _period_cache.get(mem_key)
    if cached is not None:
        get_telemetry().memory_hits += 1
        return cached

    disk_key = cache.period_key(
        design_name, scale=scale, seed=seed, iterations=iterations
    )
    if cache.cache_enabled():
        from_disk = cache.load_period(disk_key)
        if from_disk is not None:
            get_telemetry().disk_hits += 1
            _period_cache[mem_key] = from_disk
            return from_disk
        get_telemetry().disk_misses += 1

    configs = configurations()
    lo, hi = _SWEEP_BOUNDS[design_name]
    best = hi
    probes = 0
    with timed_stage("period_search", design=design_name), inject(
        "period_search", design=design_name
    ):
        for _ in range(iterations):
            mid = 0.5 * (lo + hi)
            _design, result = configs["2D_12T"].run(
                design_name,
                period_ns=mid,
                scale=scale,
                seed=seed,
                opt_iterations=8,
            )
            probes += 1
            get_telemetry().period_probes += 1
            get_telemetry().flows_run += 1
            if result.wns_ns >= -_WNS_TOLERANCE * mid:
                best = mid
                hi = mid
            else:
                lo = mid
            if hi - lo < 0.02:
                break
        # On the period_search span (the one wrapping this search's sta
        # spans), so traces carry the search cost as data: warm-start
        # wins are asserted by this metric, never by wall clock.
        emit_metric("period_probes", probes)
    _period_cache[mem_key] = best
    cache.store_period(
        disk_key, best, meta={"design": design_name, "scale": scale, "seed": seed}
    )
    return best


def run_configuration(
    design_name: str,
    config_name: str,
    *,
    period_ns: float | None = None,
    scale: float | None = None,
    seed: int = 0,
    need_design: bool = False,
    **kwargs,
) -> tuple[Design | None, FlowResult]:
    """Run (and cache) one cell of the evaluation matrix.

    The cache key is ``(design, config, scale, seed, period_ns)`` -- the
    period is part of the key, so a call with an explicit non-default
    period can never poison later default-period lookups (and vice
    versa).  Keyword overrides (``opt_iterations`` etc.) bypass caching
    entirely, as before.

    On an on-disk cache hit only the :class:`FlowResult` is available,
    so the returned design is ``None``; pass ``need_design=True`` to
    force a flow run when the caller needs the placed
    :class:`~repro.flow.design.Design` object itself.
    """
    scale = default_scale() if scale is None else scale
    if period_ns is None:
        period_ns = find_target_period(design_name, scale=scale, seed=seed)

    telemetry = get_telemetry()
    cacheable = not kwargs
    key = (design_name, config_name, scale, seed, period_ns)
    if cacheable:
        hit = _result_cache.get(key)
        if hit is not None and (hit[0] is not None or not need_design):
            telemetry.memory_hits += 1
            telemetry.record_cell(design_name, config_name, 0.0, "memory")
            return hit
        if not need_design and cache.cache_enabled():
            disk_key = cache.result_key(
                design_name, config_name, scale=scale, seed=seed,
                period_ns=period_ns,
            )
            start = time.perf_counter()
            result = cache.load_result(disk_key)
            if result is not None:
                telemetry.disk_hits += 1
                telemetry.record_cell(
                    design_name, config_name,
                    time.perf_counter() - start, "disk",
                )
                _result_cache[key] = (None, result)
                return None, result
            telemetry.disk_misses += 1

    configs = configurations()
    start = time.perf_counter()
    with timed_stage("flow", design=design_name, config=config_name), inject(
        "cell", design=design_name, config=config_name
    ):
        design, result = configs[config_name].run(
            design_name, period_ns=period_ns, scale=scale, seed=seed, **kwargs
        )
    telemetry.flows_run += 1
    telemetry.record_cell(
        design_name, config_name, time.perf_counter() - start, "flow"
    )
    if cacheable:
        _result_cache[key] = (design, result)
        cache.store_result(
            cache.result_key(
                design_name, config_name, scale=scale, seed=seed,
                period_ns=period_ns,
            ),
            result,
            meta={"design": design_name, "config": config_name},
        )
    return design, result


class _LazyDesigns(dict):
    """Per-matrix design map that rebuilds missing entries on demand.

    A disk-cache hit carries only the :class:`FlowResult`; benchmarks
    that inspect layouts (``matrix.designs[("cpu", "3D_HET")]``) get the
    placed design rebuilt transparently -- one flow run, only for the
    cells actually inspected, so a fully warm matrix still performs zero
    flow runs until somebody asks for a layout.
    """

    def __init__(self, matrix: "EvaluationMatrix"):
        super().__init__()
        self._matrix = matrix

    def __missing__(self, key: tuple[str, str]) -> Design:
        design_name, config_name = key
        design, _result = run_configuration(
            design_name,
            config_name,
            period_ns=self._matrix.target_periods.get(design_name),
            scale=self._matrix.scale,
            seed=self._matrix.seed,
            need_design=True,
        )
        self[key] = design
        return design


@dataclass
class EvaluationMatrix:
    """All results of the 4 x 5 evaluation.

    ``failed`` holds quarantined cells (``keep_going`` runs only) as
    structured :class:`FailedCell` records; ``failed_periods`` holds
    design-level period-search failures, which block that design's whole
    row.  A matrix with either non-empty is *partial* -- ``matrix.ok``
    is ``False`` and the CLI exits nonzero.
    """

    scale: float
    seed: int
    target_periods: dict[str, float] = field(default_factory=dict)
    results: dict[tuple[str, str], FlowResult] = field(default_factory=dict)
    designs: dict[tuple[str, str], Design] = field(default_factory=dict)
    failed: dict[tuple[str, str], FailedCell] = field(default_factory=dict)
    failed_periods: dict[str, FailedCell] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.designs, _LazyDesigns):
            lazy = _LazyDesigns(self)
            lazy.update(self.designs)
            self.designs = lazy

    @property
    def ok(self) -> bool:
        """Whether every requested cell completed."""
        return not self.failed and not self.failed_periods

    def record_cell_failure(self, key: tuple[str, str], cell: FailedCell) -> None:
        """Quarantine one cell (and count it in the telemetry)."""
        self.failed[key] = cell
        get_telemetry().quarantined += 1
        add_span_event(
            "quarantined",
            stage=cell.stage,
            design=cell.design,
            config=cell.config,
            kind=cell.kind,
            attempts=cell.attempts,
            error=f"{cell.error_type}: {cell.message}",
        )
        _log.warning(
            "quarantined cell %s/%s after %d attempt(s): %s: %s",
            cell.design, cell.config, cell.attempts,
            cell.error_type, cell.message,
        )

    def record_period_failure(self, design: str, cell: FailedCell) -> None:
        """Quarantine a whole design row: its period search failed."""
        self.failed_periods[design] = cell
        get_telemetry().quarantined += 1
        add_span_event(
            "quarantined",
            stage=cell.stage,
            design=cell.design,
            kind=cell.kind,
            attempts=cell.attempts,
            error=f"{cell.error_type}: {cell.message}",
        )
        _log.warning(
            "quarantined design %s (period search) after %d attempt(s): %s: %s",
            cell.design, cell.attempts, cell.error_type, cell.message,
        )

    def all_failures(self) -> list[FailedCell]:
        """Every quarantine record, period-search ones first."""
        return list(self.failed_periods.values()) + [
            self.failed[key] for key in sorted(self.failed)
        ]

    def failure_summary(self) -> str:
        """Human-readable per-cell failure table (empty string when ok)."""
        cells = self.all_failures()
        if not cells:
            return ""
        lines = [
            f"{'design':8s} {'config':8s} {'stage':14s} {'kind':14s}"
            f" {'attempts':8s} error"
        ]
        for cell in cells:
            lines.append(
                f"{cell.design:8s} {cell.config:8s} {cell.stage:14s}"
                f" {cell.kind:14s} {cell.attempts:<8d}"
                f" {cell.error_type}: {cell.message}"
            )
        return "\n".join(lines)

    def result(self, design: str, config: str) -> FlowResult:
        """One cell of the matrix."""
        return self.results[(design, config)]

    def design(self, design: str, config: str) -> Design:
        """The placed design of one cell (rebuilt on demand if warm)."""
        return self.designs[(design, config)]

    def hetero(self, design: str) -> FlowResult:
        """The heterogeneous implementation of one netlist."""
        return self.results[(design, "3D_HET")]

    def delta_pct(self, design: str, config: str, metric: str) -> float:
        """Table VII delta: (hetero - config) / config * 100 for a metric."""
        het = getattr(self.hetero(design), metric)
        ref = getattr(self.result(design, config), metric)
        if ref == 0:
            return 0.0
        return (het - ref) / ref * 100.0


def _store_run_manifest(
    manifest_key: str,
    matrix: EvaluationMatrix,
    designs: tuple[str, ...],
    config_names: tuple[str, ...],
    *,
    complete: bool,
) -> None:
    """Persist the run's progress (best-effort, like every cache write)."""
    cache.store_manifest(
        manifest_key,
        {
            "scale": matrix.scale,
            "seed": matrix.seed,
            "designs": list(designs),
            "configs": list(config_names),
            "target_periods": dict(matrix.target_periods),
            "completed": sorted([d, c] for d, c in matrix.results),
            "failed": [cell.to_dict() for cell in matrix.all_failures()],
            "complete": complete,
        },
    )


def _restore_from_manifest(manifest_key: str, matrix: EvaluationMatrix) -> None:
    """Seed a resuming matrix with the interrupted run's target periods.

    Completed cells are *not* copied -- they reload through the
    content-addressed result cache, which is what guarantees zero
    redundant flow runs.  Previously-failed cells get a fresh chance.
    """
    manifest = cache.load_manifest(manifest_key)
    if manifest is None:
        _log.warning("no run-manifest to resume from; starting cold")
        return
    periods = manifest.get("target_periods", {})
    if isinstance(periods, dict):
        for name, period in periods.items():
            if isinstance(period, (int, float)):
                matrix.target_periods[str(name)] = float(period)
                _period_cache[(str(name), matrix.scale, matrix.seed)] = float(
                    period
                )
    _log.info(
        "resuming matrix: %d period(s), %d completed cell(s),"
        " %d prior failure(s)",
        len(matrix.target_periods),
        len(manifest.get("completed", [])),
        len(manifest.get("failed", [])),
    )


def run_matrix(
    *,
    designs: tuple[str, ...] = DESIGN_NAMES,
    config_names: tuple[str, ...] = CONFIG_NAMES,
    scale: float | None = None,
    seed: int = 0,
    jobs: int | None = None,
    keep_going: bool = False,
    max_retries: int | None = None,
    timeout_s: float | None = None,
    resume: bool = False,
    target_periods: dict[str, float] | None = None,
    policy: RetryPolicy | None = None,
) -> EvaluationMatrix:
    """Run the full evaluation matrix (cached per cell).

    ``jobs`` (default ``$REPRO_JOBS``, else 1) fans the per-design
    period searches and then all independent cells out over worker
    processes; if no pool can be built at all, the serial path takes
    over and produces identical results.

    Resilience: transient failures (worker crash, hang past
    ``timeout_s``, OS-level errors) are retried up to ``max_retries``
    times with capped exponential backoff, rebuilding the pool when it
    broke -- completed cells are never discarded or rerun.
    Deterministic failures (any :class:`~repro.errors.ReproError`) are
    quarantined when ``keep_going`` is true: the matrix completes
    partially, with structured records on ``matrix.failed``.  With
    ``keep_going=False`` (default) the first unrecoverable failure
    raises, preserving the original exception (annotated with
    stage/design/config/attempt context).

    A run-manifest in the on-disk cache tracks progress; ``resume=True``
    restores the target periods of an interrupted run and reloads its
    completed cells from the result cache without rerunning a single
    flow.  ``target_periods`` pins explicit periods (skipping the
    per-design searches); ``policy`` overrides the whole retry policy
    (the individual ``keep_going``/``max_retries``/``timeout_s``
    arguments refine whichever policy is in effect).
    """
    from repro.experiments.parallel import default_jobs, run_matrix_parallel

    scale = default_scale() if scale is None else scale
    jobs = default_jobs() if jobs is None else jobs
    policy = (policy or RetryPolicy()).with_overrides(
        keep_going=keep_going or None,
        max_retries=max_retries,
        timeout_s=timeout_s,
    )
    matrix = EvaluationMatrix(scale=scale, seed=seed)
    manifest_key = cache.manifest_key(
        designs, config_names, scale=scale, seed=seed, periods=target_periods
    )
    # The whole run holds the manifest lock: two processes resuming the
    # same shape (easy to do once matrices are served from a daemon)
    # would interleave manifest rewrites.  flock dies with the holder,
    # so an interrupted or killed run never leaves a stale lock behind.
    with cache.manifest_lock(manifest_key):
        if resume:
            _restore_from_manifest(manifest_key, matrix)
        if target_periods:
            matrix.target_periods.update(target_periods)

        try:
            with span("matrix", scale=scale, seed=seed, jobs=jobs):
                if jobs > 1 and run_matrix_parallel(
                    matrix,
                    designs=designs,
                    config_names=config_names,
                    jobs=jobs,
                    policy=policy,
                ):
                    pass
                else:
                    _run_matrix_serial(
                        matrix, designs, config_names, policy, manifest_key
                    )
        finally:
            _store_run_manifest(
                manifest_key, matrix, designs, config_names,
                complete=matrix.ok
                and all(
                    (d, c) in matrix.results
                    for d in designs
                    for c in config_names
                ),
            )

    if not matrix.ok and not policy.keep_going:
        raise matrix.all_failures()[0].raisable()
    return matrix


def _run_matrix_serial(
    matrix: EvaluationMatrix,
    designs: tuple[str, ...],
    config_names: tuple[str, ...],
    policy: RetryPolicy,
    manifest_key: str,
) -> None:
    """The serial path: one cell at a time, retry/quarantine aware."""
    for design_name in designs:
        period = matrix.target_periods.get(design_name)
        if period is None:
            period, failure = call_with_retry(
                lambda name=design_name: find_target_period(
                    name, scale=matrix.scale, seed=matrix.seed
                ),
                policy=policy, stage="period_search", design=design_name,
            )
            if failure is not None:
                matrix.record_period_failure(design_name, failure)
                if not policy.keep_going:
                    return  # run_matrix re-raises from matrix.failed_periods
                continue
            matrix.target_periods[design_name] = period
            _store_run_manifest(
                manifest_key, matrix, designs, config_names, complete=False
            )
        for config_name in config_names:
            key = (design_name, config_name)
            if key in matrix.results:
                continue
            value, failure = call_with_retry(
                lambda d=design_name, c=config_name, p=period: (
                    run_configuration(
                        d, c, period_ns=p, scale=matrix.scale, seed=matrix.seed
                    )
                ),
                policy=policy, stage="flow",
                design=design_name, config=config_name,
            )
            if failure is not None:
                matrix.record_cell_failure(key, failure)
                if not policy.keep_going:
                    return
                continue
            design, result = value
            matrix.results[key] = result
            if design is not None:
                matrix.designs[key] = design
            _store_run_manifest(
                manifest_key, matrix, designs, config_names, complete=False
            )
