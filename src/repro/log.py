"""Package-wide logging for repro.

Every module logs through a child of the single ``"repro"`` logger so
applications can configure the whole package with one call.  The library
itself never prints: by default a :class:`logging.NullHandler` swallows
everything, as a library should.  Fallback paths that used to be silent
(cache write failures, corrupt-entry recovery, pool degradation, retry
and quarantine decisions) now emit log records here, so a degraded run
is always diagnosable after the fact.

The CLI (and any script that wants console output) calls
:func:`init_from_env`, which attaches one stream handler at the level
named by ``$REPRO_LOG`` (``debug``/``info``/``warning``/``error``;
default ``warning``).
"""

from __future__ import annotations

import logging
import os

__all__ = ["ENV_LOG_LEVEL", "get_logger", "init_from_env"]

ENV_LOG_LEVEL = "REPRO_LOG"

_ROOT = logging.getLogger("repro")
_ROOT.addHandler(logging.NullHandler())

#: Marker so repeated init_from_env calls never stack handlers.
_CONSOLE_HANDLER: logging.Handler | None = None

#: Whether the invalid-$REPRO_LOG warning already fired (warn once).
_warned_bad_level = False

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def get_logger(name: str | None = None) -> logging.Logger:
    """The package logger, or a named child of it (``repro.<name>``)."""
    if not name:
        return _ROOT
    return _ROOT.getChild(name)


def init_from_env(default: str = "warning") -> logging.Logger:
    """Attach one console handler at the ``$REPRO_LOG`` level.

    Idempotent: calling it again only adjusts the level.  An invalid
    ``$REPRO_LOG`` value is not accepted silently: it warns once and
    falls back to ``warning`` explicitly.  Returns the package logger.
    """
    global _CONSOLE_HANDLER, _warned_bad_level
    raw = os.environ.get(ENV_LOG_LEVEL, default).strip().lower()
    level = _LEVELS.get(raw)
    if _CONSOLE_HANDLER is None:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        _ROOT.addHandler(handler)
        _CONSOLE_HANDLER = handler
    if level is None:
        level = logging.WARNING
        _CONSOLE_HANDLER.setLevel(level)
        _ROOT.setLevel(level)
        if not _warned_bad_level:
            _warned_bad_level = True
            _ROOT.warning(
                "%s=%r is not a recognized level (expected one of %s);"
                " falling back to 'warning'",
                ENV_LOG_LEVEL, raw, "/".join(sorted(_LEVELS)),
            )
        return _ROOT
    _CONSOLE_HANDLER.setLevel(level)
    _ROOT.setLevel(level)
    return _ROOT
