"""Routing model: wirelength aggregation, grid congestion, MIV counting."""

from repro.route.congestion import CongestionMap, analyze_congestion
from repro.route.report import RoutingReport, route_design

__all__ = ["CongestionMap", "analyze_congestion", "RoutingReport", "route_design"]
