"""Design-level routing report: wirelength, MIVs, congestion.

``route_design`` is the "global route" stage of the flows: it aggregates
Steiner wirelength from the placement wire model, inflates it by the
congestion detour factor, and counts monolithic inter-tier vias.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.liberty.library import StdCellLibrary
from repro.netlist.core import Netlist
from repro.obs import emit_metric, span
from repro.route.congestion import CongestionMap, analyze_congestion
from repro.timing.delaycalc import DelayCalculator

__all__ = ["RoutingReport", "route_design"]


@dataclass(frozen=True)
class RoutingReport:
    """Aggregate routing metrics of one implementation."""

    steiner_wl_um: float
    routed_wl_um: float
    miv_count: int
    cut_nets: int
    peak_congestion: float
    overflow_fraction: float

    @property
    def routed_wl_mm(self) -> float:
        """Routed wirelength in millimeters (the paper's 'WL' rows)."""
        return self.routed_wl_um / 1000.0


def route_design(
    netlist: Netlist,
    calc: DelayCalculator,
    lib: StdCellLibrary,
    width_um: float,
    height_um: float,
    tiers: int,
    *,
    congestion: CongestionMap | None = None,
) -> RoutingReport:
    """Estimate routed wirelength and congestion for a placed design.

    ``congestion`` lets callers that already maintain a current map (the
    flow's placement session) pass it in instead of re-analyzing.
    """
    with span("routing", tiers=tiers):
        if congestion is None:
            congestion = analyze_congestion(
                netlist, lib, width_um, height_um, tiers
            )
        steiner = 0.0
        mivs = 0
        for net in netlist.nets.values():
            if net.is_clock:
                continue
            para = calc.net_parasitics(net)
            steiner += para.length_um
            mivs += para.miv_count
        detour = congestion.detour_factor()
        report = RoutingReport(
            steiner_wl_um=steiner,
            routed_wl_um=steiner * detour,
            miv_count=mivs,
            cut_nets=len(netlist.cut_nets()),
            peak_congestion=congestion.peak_demand,
            overflow_fraction=congestion.overflow_fraction,
        )
        emit_metric("routed_wl_mm", report.routed_wl_mm)
        emit_metric("miv_count", report.miv_count)
        emit_metric("cut_nets", report.cut_nets)
    return report
