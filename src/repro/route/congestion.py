"""Grid-based routing congestion estimation.

A coarse global-router model: the die is divided into a uniform bin grid,
each net spreads its estimated Steiner length uniformly over its bounding
box, and every bin compares accumulated demand against the track capacity
of the metal stack (six signal layers per tier, as in Section IV-A1).

The single number the flows consume is :attr:`CongestionMap.peak_demand`
(the 98th-percentile bin utilization): designs whose peak exceeds 1.0 are
unroutable at the current floorplan and must lower utilization -- the
mechanism that forces the wire-dominated LDPC to 64% density in Table VI
while cell-dominated designs close at ~86%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.liberty.library import StdCellLibrary
from repro.netlist.core import Instance, Net, Netlist
from repro.obs import emit_metric, span
from repro.timing.delaycalc import steiner_correction

__all__ = ["CongestionMap", "analyze_congestion"]

#: Signal routing layers available per tier (paper: six per tier).
SIGNAL_LAYERS_PER_TIER = 6

#: Routing track pitch in um (shared BEOL between the track variants).
TRACK_PITCH_UM = 0.10

#: Fraction of raw track capacity usable by the global router.
CAPACITY_DERATE = 0.36


@dataclass(frozen=True)
class CongestionMap:
    """Result of one congestion analysis."""

    bins: int
    demand: np.ndarray  # (bins, bins) wirelength demand per bin, um
    capacity_um: float  # routable wirelength per bin

    @property
    def utilization(self) -> np.ndarray:
        """Per-bin demand over capacity."""
        return self.demand / self.capacity_um

    @property
    def peak_demand(self) -> float:
        """98th-percentile bin utilization (robust peak)."""
        return float(np.percentile(self.utilization, 98.0))

    @property
    def overflow_fraction(self) -> float:
        """Fraction of bins whose demand exceeds capacity."""
        return float(np.mean(self.utilization > 1.0))

    def detour_factor(self) -> float:
        """Routed-wirelength inflation caused by congestion detours.

        Calibrated to a gentle super-linear ramp: uncongested designs pay
        nothing; designs at the routability cliff pay ~10-15%.
        """
        over = max(0.0, self.peak_demand - 0.7)
        return 1.0 + 0.25 * over * over


def analyze_congestion(
    netlist: Netlist,
    lib: StdCellLibrary,
    width_um: float,
    height_um: float,
    tiers: int,
    *,
    bins: int = 16,
) -> CongestionMap:
    """Accumulate per-bin routing demand from placed-net bounding boxes."""
    with span("congestion", bins=bins, tiers=tiers):
        result = _analyze(netlist, lib, width_um, height_um, tiers, bins)
        emit_metric("peak_congestion", result.peak_demand)
        emit_metric("congestion_overflow", result.overflow_fraction)
    return result


def _net_strips(
    net: Net,
    instances: dict[str, Instance],
    pads: dict[str, tuple[float, float]],
    bins: int,
    bin_w: float,
    bin_h: float,
) -> tuple[np.ndarray, np.ndarray] | None:
    """One net's L-route demand as (flat bin indices, demand values).

    Model each net as an L-route: the horizontal span runs along the
    driver's row of bins, the vertical span along the far column.
    Spreading demand over the whole bbox *area* would dilute exactly
    the long global nets that create congestion (LDPC's defining
    feature); an L concentrates it the way a global router does.
    Driverless (port-driven) nets anchor at the pad-ring coordinate of
    the port, so edge demand is not folded onto the first sink.
    Returns ``None`` for nets that place no demand (clock, degenerate).
    """
    if net.is_clock:
        return None
    points = []
    if net.driver is not None:
        points.append(instances[net.driver[0]].center())
    else:
        pad = pads.get(net.name)
        if pad is not None:
            points.append(pad)
    for sink, _pin in net.sinks:
        points.append(instances[sink].center())
    if len(points) < 2:
        return None
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    hpwl = (max(xs) - min(xs)) + (max(ys) - min(ys))
    length = hpwl * steiner_correction(len(net.sinks))
    if length <= 0:
        return None
    last = bins - 1
    bx0 = int(min(max(min(xs) / bin_w, 0), last))
    bx1 = int(min(max(max(xs) / bin_w, 0), last))
    by0 = int(min(max(min(ys) / bin_h, 0), last))
    by1 = int(min(max(max(ys) / bin_h, 0), last))
    nx = bx1 - bx0 + 1
    ny = by1 - by0 + 1
    correction = length / max(hpwl, 1e-9)
    dy0 = int(min(max(points[0][1] / bin_h, by0), by1))
    h_len = (max(xs) - min(xs)) * correction
    v_len = (max(ys) - min(ys)) * correction
    idx = np.concatenate(
        (
            dy0 * bins + np.arange(bx0, bx1 + 1),
            np.arange(by0, by1 + 1) * bins + bx1,
        )
    )
    val = np.concatenate(
        (np.full(nx, h_len / nx), np.full(ny, v_len / ny))
    )
    return idx, val


def _accumulate(strips, bins: int) -> np.ndarray:
    """Replay per-net strips into a (bins, bins) demand grid.

    One unbuffered ``np.add.at`` over the concatenated index/value
    streams accumulates each bin's addends in net order -- bitwise
    identical to adding every net's strips with scalar ``+=`` in a loop.
    """
    items = [s for s in strips if s is not None]
    demand = np.zeros(bins * bins)
    if items:
        idx = np.concatenate([i for i, _v in items])
        val = np.concatenate([v for _i, v in items])
        np.add.at(demand, idx, val)
    return demand.reshape(bins, bins)


def _bin_capacity(bin_w: float, bin_h: float, tiers: int) -> float:
    tracks = (bin_w / TRACK_PITCH_UM) * SIGNAL_LAYERS_PER_TIER * tiers
    return tracks * bin_h * CAPACITY_DERATE


def _analyze(
    netlist: Netlist,
    lib: StdCellLibrary,
    width_um: float,
    height_um: float,
    tiers: int,
    bins: int,
) -> CongestionMap:
    # Imported lazily: repro.place pulls in the session module, which in
    # turn imports this one -- a top-level import would be circular.
    from repro.place.floorplan import port_ring

    bin_w = width_um / bins
    bin_h = height_um / bins
    pads = port_ring(netlist, width_um, height_um)
    instances = netlist.instances
    demand = _accumulate(
        (
            _net_strips(net, instances, pads, bins, bin_w, bin_h)
            for net in netlist.nets.values()
        ),
        bins,
    )
    return CongestionMap(
        bins=bins, demand=demand, capacity_um=_bin_capacity(bin_w, bin_h, tiers)
    )
