"""Grid-based routing congestion estimation.

A coarse global-router model: the die is divided into a uniform bin grid,
each net spreads its estimated Steiner length uniformly over its bounding
box, and every bin compares accumulated demand against the track capacity
of the metal stack (six signal layers per tier, as in Section IV-A1).

The single number the flows consume is :attr:`CongestionMap.peak_demand`
(the 98th-percentile bin utilization): designs whose peak exceeds 1.0 are
unroutable at the current floorplan and must lower utilization -- the
mechanism that forces the wire-dominated LDPC to 64% density in Table VI
while cell-dominated designs close at ~86%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.liberty.library import StdCellLibrary
from repro.netlist.core import Netlist
from repro.obs import emit_metric, span
from repro.timing.delaycalc import steiner_correction

__all__ = ["CongestionMap", "analyze_congestion"]

#: Signal routing layers available per tier (paper: six per tier).
SIGNAL_LAYERS_PER_TIER = 6

#: Routing track pitch in um (shared BEOL between the track variants).
TRACK_PITCH_UM = 0.10

#: Fraction of raw track capacity usable by the global router.
CAPACITY_DERATE = 0.36


@dataclass(frozen=True)
class CongestionMap:
    """Result of one congestion analysis."""

    bins: int
    demand: np.ndarray  # (bins, bins) wirelength demand per bin, um
    capacity_um: float  # routable wirelength per bin

    @property
    def utilization(self) -> np.ndarray:
        """Per-bin demand over capacity."""
        return self.demand / self.capacity_um

    @property
    def peak_demand(self) -> float:
        """98th-percentile bin utilization (robust peak)."""
        return float(np.percentile(self.utilization, 98.0))

    @property
    def overflow_fraction(self) -> float:
        """Fraction of bins whose demand exceeds capacity."""
        return float(np.mean(self.utilization > 1.0))

    def detour_factor(self) -> float:
        """Routed-wirelength inflation caused by congestion detours.

        Calibrated to a gentle super-linear ramp: uncongested designs pay
        nothing; designs at the routability cliff pay ~10-15%.
        """
        over = max(0.0, self.peak_demand - 0.7)
        return 1.0 + 0.25 * over * over


def analyze_congestion(
    netlist: Netlist,
    lib: StdCellLibrary,
    width_um: float,
    height_um: float,
    tiers: int,
    *,
    bins: int = 16,
) -> CongestionMap:
    """Accumulate per-bin routing demand from placed-net bounding boxes."""
    with span("congestion", bins=bins, tiers=tiers):
        result = _analyze(netlist, lib, width_um, height_um, tiers, bins)
        emit_metric("peak_congestion", result.peak_demand)
        emit_metric("congestion_overflow", result.overflow_fraction)
    return result


def _analyze(
    netlist: Netlist,
    lib: StdCellLibrary,
    width_um: float,
    height_um: float,
    tiers: int,
    bins: int,
) -> CongestionMap:
    demand = np.zeros((bins, bins))
    bin_w = width_um / bins
    bin_h = height_um / bins

    for net in netlist.nets.values():
        if net.is_clock:
            continue
        points = []
        if net.driver is not None:
            points.append(netlist.instances[net.driver[0]].center())
        for sink, _pin in net.sinks:
            points.append(netlist.instances[sink].center())
        if len(points) < 2:
            continue
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        hpwl = (max(xs) - min(xs)) + (max(ys) - min(ys))
        length = hpwl * steiner_correction(len(net.sinks))
        if length <= 0:
            continue
        bx0 = int(np.clip(min(xs) / bin_w, 0, bins - 1))
        bx1 = int(np.clip(max(xs) / bin_w, 0, bins - 1))
        by0 = int(np.clip(min(ys) / bin_h, 0, bins - 1))
        by1 = int(np.clip(max(ys) / bin_h, 0, bins - 1))
        nx = bx1 - bx0 + 1
        ny = by1 - by0 + 1
        # Model each net as an L-route: the horizontal span runs along the
        # driver's row of bins, the vertical span along the far column.
        # Spreading demand over the whole bbox *area* would dilute exactly
        # the long global nets that create congestion (LDPC's defining
        # feature); an L concentrates it the way a global router does.
        correction = length / max(hpwl, 1e-9)
        dy0 = int(np.clip(points[0][1] / bin_h, by0, by1))
        h_len = (max(xs) - min(xs)) * correction
        v_len = (max(ys) - min(ys)) * correction
        demand[dy0, bx0 : bx1 + 1] += h_len / nx
        demand[by0 : by1 + 1, bx1] += v_len / ny

    tracks = (bin_w / TRACK_PITCH_UM) * SIGNAL_LAYERS_PER_TIER * tiers
    capacity = tracks * bin_h * CAPACITY_DERATE
    return CongestionMap(bins=bins, demand=demand, capacity_um=capacity)
