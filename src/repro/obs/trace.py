"""Hierarchical span tracer for the flow pipeline.

A *span* is one timed region of the flow -- a stage, a sub-step, one
matrix cell -- with a name, free-form attributes, nested children, QoR
:class:`~repro.obs.metrics.MetricPoint` records, and point-in-time
events (an injected fault, a quarantine decision).  Spans form a tree;
the roots of the current process live in a process-global trace.

Design constraints, in order:

1. **Off by default, near-zero overhead off.**  ``span()`` checks one
   module-level boolean and returns a shared no-op singleton when
   tracing is disabled -- no allocation, no clock reads.
2. **Crash-truncated traces stay valid.**  A span attaches to the tree
   on *entry*, so an exception (or a killed worker) leaves a
   truncated-but-well-formed tree; the ``__exit__`` that does run marks
   the span ``status="error"`` and records the exception as an event.
3. **Cross-process stitching.**  Pool workers call
   :func:`reset_trace` at task entry, trace normally, and ship
   :func:`trace_snapshot` (plain dicts) back with their result; the
   parent rebuilds the subtree with :func:`attach_subtree` under its
   active matrix span -- mirroring how ``Telemetry.merge`` folds worker
   counters in.
4. **Deterministic modulo timestamps.**  Two runs of the same flow
   produce the same tree shape, names, attributes and metric names;
   only clock values differ (see ``Span.to_dict(strip_times=True)``).

Enable with ``$REPRO_TRACE=1`` (the CLI's ``--trace PATH`` sets this so
pool workers inherit it) or programmatically via :func:`enable_tracing`.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # import cycle: metrics.py imports this module at runtime
    from repro.obs.metrics import MetricPoint

__all__ = [
    "ENV_TRACE",
    "Span",
    "add_span_event",
    "add_span_observer",
    "attach_subtree",
    "coverage_fraction",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "find_spans",
    "init_from_env",
    "remove_span_observer",
    "reset_trace",
    "span",
    "trace_roots",
    "trace_snapshot",
    "tracing_enabled",
    "walk_spans",
]

ENV_TRACE = "REPRO_TRACE"

#: $REPRO_TRACE values that keep tracing off.
_FALSY = {"", "0", "false", "off", "no"}


class _NullSpan:
    """The disabled-tracing fast path: a shared, stateless no-op span."""

    __slots__ = ()
    is_recording = False
    duration_s = 0.0
    cpu_s = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set_attr(self, **attrs: Any) -> None:
        pass

    def add_event(self, name: str, **attrs: Any) -> None:
        pass

    def add_metric(self, point: "MetricPoint") -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """One timed region of the flow, with children, metrics and events."""

    __slots__ = (
        "name",
        "attrs",
        "start_wall_s",
        "duration_s",
        "cpu_s",
        "status",
        "children",
        "metrics",
        "events",
        "_start_perf",
        "_start_cpu",
    )

    is_recording = True

    def __init__(self, name: str, attrs: dict[str, Any] | None = None):
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs or {})
        self.start_wall_s = 0.0
        self.duration_s = 0.0
        self.cpu_s = 0.0
        self.status = "open"
        self.children: list[Span] = []
        self.metrics: list["MetricPoint"] = []
        self.events: list[dict[str, Any]] = []
        self._start_perf = 0.0
        self._start_cpu = 0.0

    # ------------------------------------------------------------------
    # context manager protocol
    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        state = _STATE
        # Attach on entry so a crash mid-span leaves a truncated-but-
        # valid tree (constraint 2 above).
        if state.stack:
            state.stack[-1].children.append(self)
        else:
            state.roots.append(self)
        state.stack.append(self)
        self.start_wall_s = time.time()
        self._start_cpu = time.process_time()
        self._start_perf = time.perf_counter()
        if state.observers:
            _notify(state, "open", self, len(state.stack) - 1)
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        self.duration_s = time.perf_counter() - self._start_perf
        self.cpu_s = time.process_time() - self._start_cpu
        if exc_type is not None:
            self.status = "error"
            self.events.append(
                {
                    "name": "exception",
                    "type": exc_type.__name__,
                    "message": str(exc),
                }
            )
        else:
            self.status = "ok"
        state = _STATE
        if state.stack and state.stack[-1] is self:
            state.stack.pop()
        elif self in state.stack:  # unbalanced exit; recover conservatively
            state.stack.remove(self)
        if state.observers:
            _notify(state, "close", self, len(state.stack))
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.2f} ms,"
            f" children={len(self.children)}, metrics={len(self.metrics)})"
        )

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def set_attr(self, **attrs: Any) -> None:
        """Merge attributes into the span."""
        self.attrs.update(attrs)

    def add_event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event (fault, quarantine, retry...)."""
        event = {"name": name}
        event.update(attrs)
        self.events.append(event)

    def add_metric(self, point: "MetricPoint") -> None:
        """Attach one QoR metric point to this span."""
        self.metrics.append(point)

    # ------------------------------------------------------------------
    # serialization (worker -> parent, and the JSONL exporter)
    # ------------------------------------------------------------------
    def to_dict(self, *, strip_times: bool = False) -> dict[str, Any]:
        """Plain-dict view; ``strip_times`` drops every clock value so
        two runs of the same flow compare equal."""
        d: dict[str, Any] = {
            "name": self.name,
            "attrs": dict(self.attrs),
            "status": self.status,
            "metrics": [m.to_dict() for m in self.metrics],
            "events": [dict(e) for e in self.events],
            "children": [c.to_dict(strip_times=strip_times) for c in self.children],
        }
        if not strip_times:
            d["start_wall_s"] = self.start_wall_s
            d["start_perf_s"] = self._start_perf
            d["duration_s"] = self.duration_s
            d["cpu_s"] = self.cpu_s
        return d

    @staticmethod
    def from_dict(d: dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict`."""
        from repro.obs.metrics import MetricPoint

        sp = Span(str(d.get("name", "?")), d.get("attrs") or {})
        sp.start_wall_s = float(d.get("start_wall_s", 0.0))
        sp._start_perf = float(d.get("start_perf_s", 0.0))
        sp.duration_s = float(d.get("duration_s", 0.0))
        sp.cpu_s = float(d.get("cpu_s", 0.0))
        sp.status = str(d.get("status", "ok"))
        sp.metrics = [MetricPoint.from_dict(m) for m in d.get("metrics", [])]
        sp.events = [dict(e) for e in d.get("events", [])]
        sp.children = [Span.from_dict(c) for c in d.get("children", [])]
        return sp

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def start_perf_s(self) -> float:
        """Monotonic-clock start, consistent with ``duration_s``.

        Only comparable between spans recorded in the same process
        (clock domain); ``0.0`` for spans rebuilt from formats that do
        not carry it.
        """
        return self._start_perf

    @property
    def self_s(self) -> float:
        """Wall time not accounted for by child spans."""
        return max(0.0, self.duration_s - sum(c.duration_s for c in self.children))


class _TraceState:
    """Process-global trace: enabled flag, root spans, the open stack."""

    __slots__ = ("enabled", "roots", "stack", "observers")

    def __init__(self) -> None:
        self.enabled = False
        self.roots: list[Span] = []
        self.stack: list[Span] = []
        self.observers: list[Any] = []


_STATE = _TraceState()


def _notify(state: _TraceState, phase: str, sp: Span, depth: int) -> None:
    """Fan a span transition out to observers; observers never break spans."""
    for observer in list(state.observers):
        try:
            observer(phase, sp, depth)
        except Exception:  # noqa: BLE001 - observers are best-effort
            pass


def add_span_observer(fn: Any) -> None:
    """Register ``fn(phase, span, depth)`` for live span open/close.

    ``phase`` is ``"open"`` or ``"close"``, ``depth`` the span's depth in
    the open stack (0 for roots).  Observers power the serving daemon's
    live feed: a worker forwards its span transitions up the duplex pipe
    as they happen.  The hook costs one truthiness check per span when
    no observer is registered; observer exceptions are swallowed so a
    broken subscriber can never corrupt a trace.
    """
    if fn not in _STATE.observers:
        _STATE.observers.append(fn)


def remove_span_observer(fn: Any) -> None:
    """Unregister a span observer (missing observers are ignored)."""
    try:
        _STATE.observers.remove(fn)
    except ValueError:
        pass


def tracing_enabled() -> bool:
    """Whether spans are being recorded in this process."""
    return _STATE.enabled


def enable_tracing() -> None:
    """Start recording spans (does not clear already-recorded ones)."""
    _STATE.enabled = True


def disable_tracing() -> None:
    """Stop recording spans (already-recorded spans stay available)."""
    _STATE.enabled = False


def init_from_env() -> bool:
    """Enable tracing iff ``$REPRO_TRACE`` holds a truthy value."""
    raw = os.environ.get(ENV_TRACE, "").strip().lower()
    _STATE.enabled = raw not in _FALSY
    return _STATE.enabled


def reset_trace(*, from_env: bool = False) -> None:
    """Drop every recorded span (worker task entry / test setup).

    ``from_env=True`` additionally re-evaluates ``$REPRO_TRACE`` --
    pool workers call this so they honour the tracing mode the parent
    process exported before building the pool.  Observers survive a
    reset: the serving worker registers its forwarder once per task
    *after* resetting, and tests unregister explicitly.
    """
    _STATE.roots.clear()
    _STATE.stack.clear()
    if from_env:
        init_from_env()


def span(name: str, **attrs: Any):
    """Open a span: ``with span("cts", policy="prefer_slow") as sp:``.

    The no-op fast path: when tracing is disabled this returns a shared
    singleton without touching a clock or allocating anything.
    """
    if not _STATE.enabled:
        return _NULL_SPAN
    return Span(name, attrs)


def current_span() -> Span | None:
    """The innermost open span, or ``None`` (tracing off / no span)."""
    return _STATE.stack[-1] if _STATE.stack else None


def add_span_event(name: str, **attrs: Any) -> bool:
    """Record an event on the active span; returns whether it attached."""
    sp = current_span()
    if sp is None:
        return False
    sp.add_event(name, **attrs)
    return True


def trace_roots() -> list[Span]:
    """The root spans recorded so far in this process."""
    return list(_STATE.roots)


def trace_snapshot() -> list[dict[str, Any]]:
    """Picklable/JSON-able view of the whole trace (worker -> parent)."""
    return [root.to_dict() for root in _STATE.roots]


def attach_subtree(
    subtree: list[dict[str, Any]] | None, **attrs: Any
) -> list[Span]:
    """Stitch a worker's serialized trace under the active span.

    Extra ``attrs`` (e.g. ``worker="pid-1234"``) are merged into every
    subtree root so the stitched spans stay attributable.  With no span
    open the subtrees become new roots.  Returns the attached spans.
    """
    if not subtree or not _STATE.enabled:
        return []
    attached: list[Span] = []
    parent = current_span()
    for d in subtree:
        sp = Span.from_dict(d)
        if attrs:
            sp.attrs.update(attrs)
        if parent is not None:
            parent.children.append(sp)
        else:
            _STATE.roots.append(sp)
        attached.append(sp)
    return attached


def walk_spans(roots: list[Span] | None = None) -> Iterator[Span]:
    """Preorder iteration over a span forest (default: current trace)."""
    stack = list(reversed(_STATE.roots if roots is None else roots))
    while stack:
        sp = stack.pop()
        yield sp
        stack.extend(reversed(sp.children))


def find_spans(name: str, roots: list[Span] | None = None) -> list[Span]:
    """Every span with the given name, in preorder."""
    return [sp for sp in walk_spans(roots) if sp.name == name]


def coverage_fraction(sp: Span) -> float:
    """Fraction of a span's wall time covered by its direct children.

    The acceptance bar for the instrumented flow: the stage spans under
    one ``flow`` span must cover >= 95% of its wall time, i.e. no large
    untraced gaps.
    """
    if sp.duration_s <= 0.0:
        return 1.0
    return min(1.0, sum(c.duration_s for c in sp.children) / sp.duration_s)
