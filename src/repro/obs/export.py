"""Trace exporters and viewers.

Three output shapes for one span tree:

- **Chrome trace-event JSON** (:func:`write_chrome_trace`): complete
  ``"ph": "X"`` duration events plus ``"i"`` instant events for span
  events, loadable directly in ``chrome://tracing`` or Perfetto
  (https://ui.perfetto.dev).  Span attributes and QoR metrics travel in
  each event's ``args``, so nothing is lost in the conversion.
- **JSONL span log** (:func:`write_jsonl`): one span per line with
  explicit ``id``/``parent`` links -- greppable, streamable, and the
  highest-fidelity on-disk form.
- **ASCII views** (:func:`tree_summary`, :func:`profile_summary`): the
  ``repro trace`` tree and the ``repro profile --top N`` hot-stage
  table.

:func:`load_trace` reads either on-disk format back into
:class:`~repro.obs.trace.Span` trees (sniffed by content),
:func:`load_traces` aggregates a whole directory of per-job trace files
into one forest (the served daemon writes one file per job), and
:func:`validate_chrome_trace` is the schema check CI runs against every
exported trace.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricPoint
from repro.obs.trace import Span, walk_spans

__all__ = [
    "load_trace",
    "load_traces",
    "profile_summary",
    "to_chrome_trace",
    "tree_summary",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def _span_args(sp: Span) -> dict[str, Any]:
    args: dict[str, Any] = dict(sp.attrs)
    args["cpu_s"] = round(sp.cpu_s, 6)
    args["status"] = sp.status
    if sp.metrics:
        args["metrics"] = [m.to_dict() for m in sp.metrics]
    if sp.events:
        args["events"] = [dict(e) for e in sp.events]
    return args


def _tid_of(sp: Span, inherited: int, tids: dict[str, int]) -> int:
    """Stitched worker subtrees get their own Chrome 'thread' row."""
    worker = sp.attrs.get("worker")
    if worker is None:
        return inherited
    return tids.setdefault(str(worker), len(tids) + 2)


def to_chrome_trace(roots: list[Span]) -> dict[str, Any]:
    """Render a span forest as a Chrome trace-event object."""
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro flow"},
        }
    ]
    tids: dict[str, int] = {}
    # One shared time origin so stitched worker spans (whose wall clocks
    # are the same epoch) line up with the parent's spans.
    origin = min(
        (sp.start_wall_s for sp in walk_spans(roots) if sp.start_wall_s > 0),
        default=0.0,
    )

    def emit(sp: Span, tid: int, anchor: float | None) -> None:
        tid = _tid_of(sp, tid, tids)
        # Durations are monotonic-clock measurements, so timestamps must
        # come from the same clock or long spans drift out from under
        # their parents.  Trust the wall clock only once per clock
        # domain -- a root, or a stitched worker subtree -- to place the
        # domain on the shared timeline; within a domain every ts is
        # anchor + the span's own monotonic start.
        perf = sp.start_perf_s
        if anchor is None or "worker" in sp.attrs:
            anchor = sp.start_wall_s - perf
        ts_s = anchor + perf
        if abs(ts_s - sp.start_wall_s) > 1.0:  # foreign clock domain
            anchor = sp.start_wall_s - perf
            ts_s = sp.start_wall_s
        ts_us = max(0.0, (ts_s - origin) * 1e6)
        events.append(
            {
                "name": sp.name,
                "cat": "flow",
                "ph": "X",
                "ts": round(ts_us, 1),
                "dur": round(sp.duration_s * 1e6, 1),
                "pid": 1,
                "tid": tid,
                "args": _span_args(sp),
            }
        )
        for ev in sp.events:
            events.append(
                {
                    "name": ev.get("name", "event"),
                    "cat": "flow",
                    "ph": "i",
                    "ts": round(ts_us, 1),
                    "pid": 1,
                    "tid": tid,
                    "s": "t",
                    "args": {k: v for k, v in ev.items() if k != "name"},
                }
            )
        for child in sp.children:
            emit(child, tid, anchor)

    for root in roots:
        emit(root, 1, None)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, roots: list[Span]) -> Path:
    """Write the Chrome/Perfetto-loadable JSON trace."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(roots), indent=1))
    return path


def validate_chrome_trace(obj: Any) -> list[str]:
    """Schema-check a Chrome trace object; returns a list of problems.

    Checks what Perfetto needs to load the file: a ``traceEvents``
    list, numeric ``ts``/``pid``/``tid`` everywhere, non-negative
    ``dur`` on every complete ``X`` event, matched ``B``/``E`` pairs if
    any are present, and properly nested (never partially overlapping)
    ``X`` events within one thread row.
    """
    errors: list[str] = []
    if not isinstance(obj, dict) or not isinstance(obj.get("traceEvents"), list):
        return ["trace is not an object with a traceEvents list"]
    open_begins: dict[tuple[Any, Any], list[str]] = {}
    by_tid: dict[tuple[Any, Any], list[tuple[float, float, str]]] = {}
    for i, ev in enumerate(obj["traceEvents"]):
        if not isinstance(ev, dict):
            errors.append(f"event #{i} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "i", "I", "M", "C"):
            errors.append(f"event #{i} has unsupported ph={ph!r}")
            continue
        if ph == "M":
            continue
        name = ev.get("name", "?")
        for field in ("ts", "pid", "tid"):
            if not isinstance(ev.get(field), (int, float)):
                errors.append(f"event #{i} ({name}) has non-numeric {field}")
        key = (ev.get("pid"), ev.get("tid"))
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event #{i} ({name}) has bad dur={dur!r}")
            else:
                by_tid.setdefault(key, []).append(
                    (float(ev.get("ts", 0.0)), float(dur), str(name))
                )
        elif ph == "B":
            open_begins.setdefault(key, []).append(str(name))
        elif ph == "E":
            stack = open_begins.get(key, [])
            if not stack:
                errors.append(f"event #{i} ({name}): E without matching B")
            else:
                stack.pop()
    for key, stack in open_begins.items():
        for name in stack:
            errors.append(f"unclosed B event {name!r} on pid/tid {key}")
    # X events on one thread row must nest, never partially overlap.
    # Span starts use the wall clock but durations use the monotonic
    # clock, so allow sub-millisecond skew before calling it an overlap.
    tol_us = 500.0
    for key, spans in by_tid.items():
        spans.sort()
        stack: list[tuple[float, float, str]] = []
        for ts, dur, name in spans:
            while stack and ts >= stack[-1][0] + stack[-1][1] - tol_us:
                stack.pop()
            if stack and ts + dur > stack[-1][0] + stack[-1][1] + tol_us:
                errors.append(
                    f"span {name!r} partially overlaps {stack[-1][2]!r}"
                    f" on pid/tid {key}"
                )
            stack.append((ts, dur, name))
    return errors


# ----------------------------------------------------------------------
# JSONL span log
# ----------------------------------------------------------------------
def write_jsonl(path: str | Path, roots: list[Span]) -> Path:
    """One span per line with explicit id/parent links (preorder ids)."""
    path = Path(path)
    lines: list[str] = []
    next_id = 0

    def emit(sp: Span, parent: int | None) -> None:
        nonlocal next_id
        sid = next_id
        next_id += 1
        record = {
            "id": sid,
            "parent": parent,
            "name": sp.name,
            "start_wall_s": sp.start_wall_s,
            "start_perf_s": sp.start_perf_s,
            "duration_s": sp.duration_s,
            "cpu_s": sp.cpu_s,
            "status": sp.status,
            "attrs": dict(sp.attrs),
            "metrics": [m.to_dict() for m in sp.metrics],
            "events": [dict(e) for e in sp.events],
        }
        lines.append(json.dumps(record, sort_keys=True))
        for child in sp.children:
            emit(child, sid)

    for root in roots:
        emit(root, None)
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


# ----------------------------------------------------------------------
# loading (both formats)
# ----------------------------------------------------------------------
def _spans_from_jsonl(text: str) -> list[Span]:
    spans: dict[int, Span] = {}
    roots: list[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        d = json.loads(line)
        sp = Span(str(d.get("name", "?")), d.get("attrs") or {})
        sp.start_wall_s = float(d.get("start_wall_s", 0.0))
        sp._start_perf = float(d.get("start_perf_s", 0.0))
        sp.duration_s = float(d.get("duration_s", 0.0))
        sp.cpu_s = float(d.get("cpu_s", 0.0))
        sp.status = str(d.get("status", "ok"))
        sp.metrics = [MetricPoint.from_dict(m) for m in d.get("metrics", [])]
        sp.events = [dict(e) for e in d.get("events", [])]
        spans[int(d["id"])] = sp
        parent = d.get("parent")
        if parent is None:
            roots.append(sp)
        elif int(parent) in spans:
            spans[int(parent)].children.append(sp)
        else:
            roots.append(sp)  # orphan from a truncated log: keep it visible
    return roots


def _spans_from_chrome(obj: dict[str, Any]) -> list[Span]:
    """Rebuild the span forest from X events (nesting by containment)."""
    per_tid: dict[tuple[Any, Any], list[dict[str, Any]]] = {}
    for ev in obj.get("traceEvents", []):
        if isinstance(ev, dict) and ev.get("ph") == "X":
            per_tid.setdefault((ev.get("pid"), ev.get("tid")), []).append(ev)
    roots: list[Span] = []
    for _key, events in sorted(per_tid.items(), key=lambda kv: str(kv[0])):
        events.sort(key=lambda e: (float(e.get("ts", 0)), -float(e.get("dur", 0))))
        stack: list[tuple[float, Span]] = []  # (end_ts, span)
        for ev in events:
            ts = float(ev.get("ts", 0.0))
            dur = float(ev.get("dur", 0.0))
            args = dict(ev.get("args") or {})
            metrics = [
                MetricPoint.from_dict(m) for m in args.pop("metrics", [])
            ]
            events_list = [dict(e) for e in args.pop("events", [])]
            cpu_s = float(args.pop("cpu_s", 0.0))
            status = str(args.pop("status", "ok"))
            sp = Span(str(ev.get("name", "?")), args)
            sp.start_wall_s = ts / 1e6
            sp.duration_s = dur / 1e6
            sp.cpu_s = cpu_s
            sp.status = status
            sp.metrics = metrics
            sp.events = events_list
            while stack and ts >= stack[-1][0] - 0.5:
                stack.pop()
            if stack:
                stack[-1][1].children.append(sp)
            else:
                roots.append(sp)
            stack.append((ts + dur, sp))
    return roots


def load_trace(path: str | Path) -> list[Span]:
    """Read a trace file written by either exporter back into spans."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped[:2000]:
        return _spans_from_chrome(json.loads(text))
    return _spans_from_jsonl(text)


def load_traces(path: str | Path) -> list[Span]:
    """Load one trace file, or every ``*.json``/``*.jsonl`` in a
    directory, into a single span forest.

    Directory aggregation is what makes ``repro profile DIR`` rank the
    hottest stages *across* a whole served run: each per-job trace
    contributes its roots, in filename order so the output is stable.
    Unreadable or non-trace JSON files are skipped (a serve state dir
    holds journals and results next to traces), but a directory where
    nothing parses raises, because silence there would look like an
    empty run.
    """
    path = Path(path)
    if not path.is_dir():
        return load_trace(path)
    roots: list[Span] = []
    errors: list[str] = []
    files = sorted(
        p for p in path.iterdir()
        if p.suffix in (".json", ".jsonl") and p.is_file()
    )
    for file in files:
        try:
            roots.extend(load_trace(file))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            errors.append(f"{file.name}: {type(exc).__name__}: {exc}")
    if not roots and errors:
        raise ValueError(
            f"no loadable traces in {path} "
            f"({len(errors)} file(s) failed: {'; '.join(errors[:3])})"
        )
    return roots


# ----------------------------------------------------------------------
# ASCII views
# ----------------------------------------------------------------------
def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:7.3f} s"
    return f"{seconds * 1e3:7.2f} ms"


def tree_summary(
    roots: list[Span], *, max_depth: int | None = None, metrics: bool = True
) -> str:
    """The ``repro trace`` view: an indented tree with times and QoR."""
    lines: list[str] = []

    def emit(sp: Span, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        flag = "" if sp.status == "ok" else f" !{sp.status}"
        attrs = ""
        interesting = {
            k: v for k, v in sp.attrs.items()
            if k in ("design", "config", "phase", "worker", "policy")
        }
        if interesting:
            attrs = " [" + ", ".join(
                f"{k}={v}" for k, v in sorted(interesting.items())
            ) + "]"
        lines.append(
            f"{_fmt_s(sp.duration_s)}  {'  ' * depth}{sp.name}{attrs}{flag}"
        )
        if metrics:
            for point in sp.metrics:
                lines.append(f"{'':10s}  {'  ' * (depth + 1)}* {point.label()}")
        for ev in sp.events:
            rendered = ", ".join(
                f"{k}={v}" for k, v in sorted(ev.items()) if k != "name"
            )
            lines.append(
                f"{'':10s}  {'  ' * (depth + 1)}! {ev.get('name', 'event')}"
                + (f" ({rendered})" if rendered else "")
            )
        for child in sp.children:
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def profile_summary(roots: list[Span], *, top: int = 5) -> str:
    """The ``repro profile`` view: hottest span names by self time.

    *Self* time is a span's wall time minus its direct children -- the
    flame-graph notion of where the milliseconds actually go, so a
    parent stage does not hide the sub-stage that dominates it.
    """
    totals: dict[str, tuple[int, float, float]] = {}
    grand_total = sum(sp.duration_s for sp in roots)
    for sp in walk_spans(roots):
        count, total_s, self_s = totals.get(sp.name, (0, 0.0, 0.0))
        totals[sp.name] = (count + 1, total_s + sp.duration_s, self_s + sp.self_s)
    ranked = sorted(totals.items(), key=lambda kv: kv[1][2], reverse=True)
    lines = [
        f"{'stage':22s} {'calls':>6s} {'self':>11s} {'total':>11s} {'self%':>6s}"
    ]
    for name, (count, total_s, self_s) in ranked[: max(1, top)]:
        pct = 100.0 * self_s / grand_total if grand_total > 0 else 0.0
        lines.append(
            f"{name:22s} {count:6d} {_fmt_s(self_s):>11s}"
            f" {_fmt_s(total_s):>11s} {pct:5.1f}%"
        )
    if grand_total > 0:
        lines.append(f"{'(trace total)':22s} {'':6s} {'':11s} {_fmt_s(grand_total):>11s}")
    return "\n".join(lines)
