"""Flow-wide observability: hierarchical tracing and QoR metrics.

The flow between ``run_flow_*`` entry and :class:`FlowResult` exit used
to be a black box; this package opens it up:

- :mod:`repro.obs.trace` -- a hierarchical span tracer.  Stages open
  ``span("stage", **attrs)`` blocks that record nested wall/CPU time;
  worker processes serialize their subtrees and the parent stitches
  them back under the dispatching matrix span.  Tracing defaults *off*
  (``$REPRO_TRACE``) with a near-zero-overhead no-op fast path.
- :mod:`repro.obs.metrics` -- typed :class:`MetricPoint` records that
  stages emit at their boundaries (worst slack, HPWL, per-tier area,
  MIV count, clock skew, ECO deltas, ...), each tied to the paper table
  it reproduces.
- :mod:`repro.obs.export` -- Chrome trace-event JSON (loadable in
  ``chrome://tracing``/Perfetto), a JSONL span log, and the ASCII
  tree/profile views behind ``repro trace`` and ``repro profile``.
- :mod:`repro.obs.registry` -- a typed metrics registry (counters,
  gauges, bucketed histograms) with thread-safe snapshot/merge and
  Prometheus text exposition; the serving daemon's continuously
  scrapable state lives here.
"""

from repro.obs.metrics import METRIC_DEFS, MetricDef, MetricPoint, emit_metric
from repro.obs.registry import (
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    get_registry,
    render_prometheus,
    reset_registry,
    validate_prometheus,
)
from repro.obs.trace import (
    ENV_TRACE,
    Span,
    add_span_event,
    add_span_observer,
    attach_subtree,
    coverage_fraction,
    current_span,
    disable_tracing,
    enable_tracing,
    find_spans,
    init_from_env,
    remove_span_observer,
    reset_trace,
    span,
    trace_roots,
    trace_snapshot,
    tracing_enabled,
    walk_spans,
)

__all__ = [
    "ENV_TRACE",
    "LATENCY_BUCKETS_S",
    "METRIC_DEFS",
    "MetricDef",
    "MetricPoint",
    "MetricsRegistry",
    "Span",
    "add_span_event",
    "add_span_observer",
    "attach_subtree",
    "coverage_fraction",
    "current_span",
    "disable_tracing",
    "emit_metric",
    "enable_tracing",
    "find_spans",
    "get_registry",
    "init_from_env",
    "remove_span_observer",
    "render_prometheus",
    "reset_registry",
    "reset_trace",
    "span",
    "trace_roots",
    "trace_snapshot",
    "tracing_enabled",
    "validate_prometheus",
    "walk_spans",
]
