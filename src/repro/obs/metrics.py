"""QoR metrics: typed measurements the flow stages emit at boundaries.

Every number the paper's result tables report about an intermediate
flow state -- worst/total negative slack, HPWL, per-tier cell counts
and area, congestion overflow, MIV count, clock skew, repartition-ECO
deltas -- is a registered metric here.  Stages call
:func:`emit_metric` at their boundaries; the point attaches to the
active :class:`~repro.obs.trace.Span`, so the exported trace carries
the quality trajectory of the run, not just its timing.

``METRIC_DEFS`` records, per metric, its unit and the paper table (or
section) the number corresponds to, so ``repro trace`` output and the
documentation stay in sync with the reproduction targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "METRIC_DEFS",
    "MetricDef",
    "MetricPoint",
    "emit_metric",
    "hpwl_um",
    "net_hpwl_um",
]


@dataclass(frozen=True)
class MetricDef:
    """Registry entry: what one metric means and where the paper uses it."""

    unit: str
    table: str  # paper table/section the metric reproduces
    description: str


#: Registry of stage-boundary QoR metrics.  ``table`` names the paper
#: artifact each number feeds (Tables IV-VIII, Section III discussions).
METRIC_DEFS: dict[str, MetricDef] = {
    "cells": MetricDef("count", "Table VI", "instances in the netlist"),
    "cell_area_um2": MetricDef("um2", "Table VI", "total standard-cell area"),
    "tier_cells": MetricDef("count", "Table VIII", "instances on one tier"),
    "tier_area_um2": MetricDef("um2", "Table VIII", "cell area on one tier"),
    "utilization": MetricDef("frac", "Table VI", "placement utilization used"),
    "hpwl_mm": MetricDef("mm", "Table VI", "half-perimeter wirelength"),
    "routed_wl_mm": MetricDef("mm", "Table VI", "routed wirelength estimate"),
    "wns_ns": MetricDef("ns", "Table VI", "worst negative slack"),
    "tns_ns": MetricDef("ns", "Table VI", "total negative slack"),
    "peak_congestion": MetricDef(
        "frac", "Table VI", "98th-percentile bin routing utilization"
    ),
    "congestion_overflow": MetricDef(
        "frac", "Table VI", "fraction of bins over routing capacity"
    ),
    "miv_count": MetricDef("count", "Table VI", "monolithic inter-tier vias"),
    "cut_nets": MetricDef("count", "Table VI", "nets crossing the tier cut"),
    "density_pct": MetricDef("%", "Table VI", "placement density"),
    "total_power_mw": MetricDef("mW", "Table VI", "total power at signoff"),
    "die_cost_1e6": MetricDef("1e-6 C'", "Table VI", "die cost, Eq. (5)"),
    "pinned_cells": MetricDef(
        "count", "Sec III-A1", "critical cells pinned to the fast die"
    ),
    "pinned_area_fraction": MetricDef(
        "frac", "Sec III-A1", "fast-die area consumed by pinned cells"
    ),
    "critical_cell_fraction": MetricDef(
        "frac", "Sec III-C", "share of critical cells on the slow die"
    ),
    "clock_buffers": MetricDef("count", "Table VIII", "clock buffers inserted"),
    "clock_skew_ns": MetricDef("ns", "Table VIII", "global clock skew"),
    "clock_power_mw": MetricDef("mW", "Table VIII", "clock network power"),
    "clock_slow_tier_fraction": MetricDef(
        "frac", "Table VIII", "clock buffers on the slow (9T) tier"
    ),
    "eco_iterations": MetricDef(
        "count", "Sec III-C", "repartition-ECO loop iterations"
    ),
    "eco_cells_moved": MetricDef(
        "count", "Table V", "cells ECO-moved to the fast die"
    ),
    "eco_batches_accepted": MetricDef(
        "count", "Sec III-C", "accepted ECO batches"
    ),
    "eco_batches_rejected": MetricDef(
        "count", "Sec III-C", "rejected (undone) ECO batches"
    ),
    "eco_wns_gain_ns": MetricDef(
        "ns", "Table V", "WNS improvement from repartitioning"
    ),
    "legal_displacement_um": MetricDef(
        "um", "Sec IV-A2", "total legalization displacement"
    ),
    "opt_upsized": MetricDef("count", "Sec IV-A2", "cells upsized by timing opt"),
    "opt_buffers": MetricDef("count", "Sec IV-A2", "buffers inserted by opt"),
    "opt_downsized": MetricDef(
        "count", "Sec IV-A2", "cells downsized by area/power recovery"
    ),
    "integrity_violations": MetricDef(
        "count", "QoR gate", "invariant violations found at a stage boundary"
    ),
    "integrity_repairs": MetricDef(
        "count", "QoR gate", "auto-repairs applied at a stage boundary"
    ),
    "sta_full_runs": MetricDef(
        "count", "perf", "timing reports served by a full graph rebuild"
    ),
    "sta_incremental_runs": MetricDef(
        "count", "perf", "timing reports served incrementally (cone or reuse)"
    ),
    "sta_propagated_fraction": MetricDef(
        "frac", "perf", "share of combinational instances re-propagated"
    ),
    "place_full_runs": MetricDef(
        "count", "perf", "placement queries served by a full recompute"
    ),
    "place_incremental_runs": MetricDef(
        "count", "perf", "placement queries served by row/net-level reuse"
    ),
    "place_disturbed_fraction": MetricDef(
        "frac", "perf", "share of movable cells dirty at the last legalize"
    ),
    "period_probes": MetricDef(
        "count", "perf", "flow probes spent by one target-period search"
    ),
    "prefix_stages_reused": MetricDef(
        "count", "perf", "flow stages served from the DSE prefix store"
    ),
    "suffix_flows_reused": MetricDef(
        "count", "perf",
        "DSE flow tails served by partition-fingerprint reuse"
    ),
    "dse_pruned": MetricDef(
        "count", "perf", "lattice configs skipped by dominance pruning"
    ),
}


@dataclass(frozen=True)
class MetricPoint:
    """One QoR measurement emitted at a stage boundary.

    ``tier`` disambiguates per-tier metrics (``tier_cells`` etc.);
    ``unit``/``table`` default from :data:`METRIC_DEFS` for registered
    names so ad-hoc emissions stay self-describing.
    """

    name: str
    value: float
    unit: str = ""
    table: str = ""
    tier: int | None = None

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "name": self.name,
            "value": self.value,
            "unit": self.unit,
            "table": self.table,
        }
        if self.tier is not None:
            d["tier"] = self.tier
        return d

    @staticmethod
    def from_dict(d: dict[str, Any]) -> "MetricPoint":
        return MetricPoint(
            name=str(d.get("name", "?")),
            value=float(d.get("value", 0.0)),
            unit=str(d.get("unit", "")),
            table=str(d.get("table", "")),
            tier=d.get("tier"),
        )

    def label(self) -> str:
        """Compact human-readable rendering for the ASCII views."""
        tier = f"[t{self.tier}]" if self.tier is not None else ""
        unit = f" {self.unit}" if self.unit and self.unit != "count" else ""
        return f"{self.name}{tier}={self.value:g}{unit}"


def emit_metric(
    name: str,
    value: float,
    *,
    tier: int | None = None,
    unit: str | None = None,
    table: str | None = None,
) -> MetricPoint | None:
    """Attach one metric point to the active span.

    A no-op (returning ``None``) when tracing is disabled or no span is
    open, so stages can emit unconditionally at zero cost in production
    runs.
    """
    from repro.obs import trace

    sp = trace.current_span()
    if sp is None:
        return None
    spec = METRIC_DEFS.get(name)
    point = MetricPoint(
        name=name,
        value=float(value),
        unit=unit if unit is not None else (spec.unit if spec else ""),
        table=table if table is not None else (spec.table if spec else ""),
        tier=tier,
    )
    sp.add_metric(point)
    return point


def net_hpwl_um(net, instances) -> float:
    """Half-perimeter wirelength of one net (um); 0.0 when degenerate."""
    xs: list[float] = []
    ys: list[float] = []
    pins = list(net.sinks)
    if net.driver is not None:
        pins.append(net.driver)
    for inst_name, _pin in pins:
        inst = instances.get(inst_name)
        if inst is None or inst.x_um is None or inst.y_um is None:
            continue
        xs.append(inst.x_um)
        ys.append(inst.y_um)
    if len(xs) < 2:
        return 0.0
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def hpwl_um(netlist) -> float:
    """Half-perimeter wirelength over all placed nets (um).

    Uses instance origins (placement resolution is a row/site anyway);
    unplaced instances and single-pin nets contribute nothing.
    """
    total = 0.0
    instances = netlist.instances
    for net in netlist.nets.values():
        total += net_hpwl_um(net, instances)
    return total
