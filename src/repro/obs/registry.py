"""Typed metrics registry: counters, gauges, histograms, exposition.

Where :mod:`repro.obs.trace` answers "what happened inside one run",
the registry answers "what is this *process* doing right now" -- the
serving daemon's continuously-scrapable state: queue depth, admission
rejects, journal fsync latency, job wait/run latency, worker restarts,
heartbeat age, per-stage flow seconds fed from the existing spans.

Three metric types, deliberately Prometheus-shaped:

- :class:`Counter` -- monotonically increasing total (``_total`` names);
- :class:`Gauge` -- a value that goes up and down (depths, ages);
- :class:`Histogram` -- bucketed observations with ``sum``/``count``,
  rendered as the standard cumulative ``_bucket{le=...}`` series.

Every metric family may carry **labels**; ``family.labels(state="done")``
returns (creating on first use) the child holding that label
combination's value.  All mutation goes through one registry lock, so
the daemon's socket threads, supervisor thread and metric ticker can
hammer the same registry safely; reads take the same lock and return
plain-dict :meth:`MetricsRegistry.snapshot` views.

Snapshots are the interchange format: :meth:`MetricsRegistry.merge`
folds one in (counters/histograms add, gauges last-write-wins) --
mirroring how ``Telemetry.merge`` folds worker counters -- and
:func:`render_prometheus` turns one into Prometheus text exposition
format, so the daemon and a client holding a scraped snapshot render
identically.  :func:`validate_prometheus` is the format check CI runs
against ``repro metrics --prom`` output.

A process-global registry (:func:`get_registry`) mirrors the telemetry
singleton; the daemon publishes through it and tests reset it with
:func:`reset_registry`.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "get_registry",
    "render_prometheus",
    "reset_registry",
    "validate_prometheus",
]

#: Default latency buckets (seconds): sub-millisecond journal fsyncs up
#: to ten-minute matrix jobs on one scale.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class _Child:
    """One label combination's value holder (shared-lock mutation)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self.value = 0.0


class Counter(_Child):
    """Monotonically increasing total."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge(_Child):
    """A value that can go up and down."""

    __slots__ = ()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Bucketed observations: per-bucket counts plus sum and count."""

    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, lock: threading.RLock, buckets: tuple[float, ...]):
        self._lock = lock
        self.buckets = buckets  # finite upper bounds, ascending
        self.counts = [0] * (len(buckets) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.buckets, value)] += 1
            self.sum += value
            self.count += 1

    @property
    def value(self) -> float:  # uniform child interface (mean)
        with self._lock:
            return self.sum / self.count if self.count else 0.0


class _Family:
    """One named metric with typed children per label combination."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        lock: threading.RLock,
        buckets: tuple[float, ...] = (),
    ):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        self._lock = lock
        self._children: dict[tuple[str, ...], Any] = {}
        if not label_names:
            self._children[()] = self._make_child()

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._lock, self.buckets)
        return Counter(self._lock) if self.kind == "counter" else Gauge(self._lock)

    def labels(self, **labels: str):
        """The child for this label combination (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name} takes labels {self.label_names},"
                f" got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def remove(self, **labels: str) -> bool:
        """Drop one label combination's child from the family.

        The antidote to dead label sets: a long-lived daemon that
        retires workers must remove their ``{worker=...}`` children or
        the exposition accumulates gauges for processes that no longer
        exist.  Returns whether the combination existed.  Removing an
        unknown combination is a no-op, and the unlabeled singleton
        cannot be removed.
        """
        if not self.label_names:
            raise ValueError(f"metric {self.name} has no labeled children")
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name} takes labels {self.label_names},"
                f" got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            return self._children.pop(key, None) is not None

    # Unlabeled convenience: family proxies its single child.
    def _solo(self):
        if self.label_names:
            raise ValueError(f"metric {self.name} needs labels(...)")
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value


class MetricsRegistry:
    """A process's metric families behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # registration (idempotent: same name returns the same family)
    # ------------------------------------------------------------------
    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Iterable[str],
        buckets: tuple[float, ...] = (),
    ) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise ValueError(
                        f"metric {name} already registered as {family.kind}"
                        f" with labels {family.label_names}"
                    )
                return family
            family = _Family(
                name, kind, help_text, label_names, self._lock, buckets
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> _Family:
        return self._register(name, "counter", help_text, labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> _Family:
        return self._register(name, "gauge", help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        buckets: tuple[float, ...] = LATENCY_BUCKETS_S,
    ) -> _Family:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        return self._register(name, "histogram", help_text, labels, bounds)

    # ------------------------------------------------------------------
    # snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-safe point-in-time view of every family and child."""
        with self._lock:
            families = []
            for name in sorted(self._families):
                family = self._families[name]
                samples = []
                for key in sorted(family._children):
                    child = family._children[key]
                    labels = dict(zip(family.label_names, key))
                    if family.kind == "histogram":
                        samples.append(
                            {
                                "labels": labels,
                                "counts": list(child.counts),
                                "sum": child.sum,
                                "count": child.count,
                            }
                        )
                    else:
                        samples.append({"labels": labels, "value": child.value})
                entry: dict[str, Any] = {
                    "name": name,
                    "type": family.kind,
                    "help": family.help,
                    "label_names": list(family.label_names),
                    "samples": samples,
                }
                if family.kind == "histogram":
                    entry["buckets"] = list(family.buckets)
                families.append(entry)
            return {"families": families}

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot in: counters/histograms add, gauges overwrite."""
        for entry in snapshot.get("families", []):
            name = entry.get("name", "")
            kind = entry.get("type", "")
            labels = tuple(entry.get("label_names", []))
            if kind == "histogram":
                family = self.histogram(
                    name, entry.get("help", ""), labels,
                    tuple(entry.get("buckets", LATENCY_BUCKETS_S)),
                )
            elif kind == "counter":
                family = self.counter(name, entry.get("help", ""), labels)
            else:
                family = self.gauge(name, entry.get("help", ""), labels)
            for sample in entry.get("samples", []):
                child = (
                    family.labels(**sample.get("labels", {}))
                    if labels else family._solo()
                )
                with self._lock:
                    if kind == "histogram":
                        counts = sample.get("counts", [])
                        if len(counts) == len(child.counts):
                            for i, n in enumerate(counts):
                                child.counts[i] += int(n)
                        child.sum += float(sample.get("sum", 0.0))
                        child.count += int(sample.get("count", 0))
                    elif kind == "counter":
                        child.value += float(sample.get("value", 0.0))
                    else:
                        child.value = float(sample.get("value", 0.0))

    def to_prometheus(self) -> str:
        """This registry's state in Prometheus text exposition format."""
        return render_prometheus(self.snapshot())

    def to_json(self) -> dict:
        """Alias of :meth:`snapshot` (the documented JSON export)."""
        return self.snapshot()


# ----------------------------------------------------------------------
# exposition
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot as Prometheus text exposition format.

    Histograms become the standard cumulative ``_bucket{le=...}``
    series (always ending in ``le="+Inf"``) plus ``_sum`` and
    ``_count``.  The output ends in exactly one trailing newline, as
    the format requires.
    """
    lines: list[str] = []
    for entry in snapshot.get("families", []):
        name = entry["name"]
        kind = entry["type"]
        help_text = entry.get("help", "")
        if help_text:
            escaped = help_text.replace("\\", r"\\").replace("\n", r"\n")
            lines.append(f"# HELP {name} {escaped}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in entry.get("samples", []):
            labels = dict(sample.get("labels", {}))
            if kind == "histogram":
                bounds = list(entry.get("buckets", [])) + [math.inf]
                cumulative = 0
                for bound, count in zip(bounds, sample.get("counts", [])):
                    cumulative += int(count)
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _fmt_value(float(bound))
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(labels)}"
                    f" {_fmt_value(float(sample.get('sum', 0.0)))}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)}"
                    f" {int(sample.get('count', 0))}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels)}"
                    f" {_fmt_value(float(sample.get('value', 0.0)))}"
                )
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\S+)(?: (?P<ts>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$'
)


def validate_prometheus(text: str) -> list[str]:
    """Check Prometheus text exposition format; returns a problem list.

    Validates what a scraper needs: parseable sample lines with legal
    metric/label names, numeric values, ``# TYPE`` declared before its
    samples (and at most once), histogram ``_bucket`` series that are
    cumulative (non-decreasing) and end in ``le="+Inf"`` matching
    ``_count``, and a trailing newline.
    """
    problems: list[str] = []
    if text and not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    typed: dict[str, str] = {}
    seen_samples: set[str] = set()
    # histogram bookkeeping: (base name, frozen labels) -> bucket values
    buckets: dict[tuple[str, str], list[tuple[float, float]]] = {}
    counts: dict[tuple[str, str], float] = {}

    def base_of(name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                if typed[name[: -len(suffix)]] == "histogram":
                    return name[: -len(suffix)]
        return name

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                problems.append(f"line {lineno}: unknown type {kind!r}")
            if name in typed:
                problems.append(f"line {lineno}: duplicate TYPE for {name}")
            if name in seen_samples:
                problems.append(
                    f"line {lineno}: TYPE for {name} after its samples"
                )
            typed[name] = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        raw_labels = match.group("labels") or ""
        label_map: dict[str, str] = {}
        if raw_labels:
            body = raw_labels[1:-1].strip()
            if body:
                ok = True
                for pair in _split_label_pairs(body):
                    if not _LABEL_PAIR_RE.match(pair):
                        problems.append(
                            f"line {lineno}: bad label pair {pair!r}"
                        )
                        ok = False
                        break
                    key, _, raw = pair.partition("=")
                    label_map[key] = raw[1:-1]
                if not ok:
                    continue
        raw_value = match.group("value")
        try:
            value = float(raw_value.replace("+Inf", "inf").replace(
                "-Inf", "-inf"))
        except ValueError:
            problems.append(f"line {lineno}: non-numeric value {raw_value!r}")
            continue
        base = base_of(name)
        seen_samples.add(base)
        if base != name or name in typed:
            pass
        elif not any(name.startswith(t) for t in typed):
            problems.append(f"line {lineno}: sample {name} has no TYPE line")
        if typed.get(base) == "histogram" and name == base + "_bucket":
            le = label_map.get("le")
            if le is None:
                problems.append(f"line {lineno}: _bucket without le label")
                continue
            bound = math.inf if le == "+Inf" else float(le)
            key = (base, _render_labels(
                {k: v for k, v in label_map.items() if k != "le"}
            ))
            buckets.setdefault(key, []).append((bound, value))
        elif typed.get(base) == "histogram" and name == base + "_count":
            counts[(base, _render_labels(label_map))] = value

    for (base, labels), series in buckets.items():
        ordered = sorted(series)
        values = [v for _b, v in ordered]
        if values != sorted(values):
            problems.append(
                f"histogram {base}{labels}: buckets are not cumulative"
            )
        if not ordered or ordered[-1][0] != math.inf:
            problems.append(f"histogram {base}{labels}: missing +Inf bucket")
        elif (base, labels) in counts and ordered[-1][1] != counts[
            (base, labels)
        ]:
            problems.append(
                f"histogram {base}{labels}: +Inf bucket"
                f" != _count ({ordered[-1][1]} vs {counts[(base, labels)]})"
            )
    return problems


def _split_label_pairs(body: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    pairs: list[str] = []
    depth_quote = False
    escaped = False
    current: list[str] = []
    for ch in body:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            depth_quote = not depth_quote
            current.append(ch)
            continue
        if ch == "," and not depth_quote:
            pairs.append("".join(current).strip())
            current = []
            continue
        current.append(ch)
    if current:
        pairs.append("".join(current).strip())
    return pairs


# ----------------------------------------------------------------------
# process-global registry (mirrors the telemetry singleton)
# ----------------------------------------------------------------------
_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _registry


def reset_registry() -> MetricsRegistry:
    """Replace the global registry with a fresh one (test setup)."""
    global _registry
    _registry = MetricsRegistry()
    return _registry
