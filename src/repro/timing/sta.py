"""Static timing analysis with slew propagation and setup checks.

The analysis follows the structure of a signoff timer:

1. **Launch**: primary inputs arrive at t=0; sequential outputs (flip-flop
   and macro Q pins) launch at the instance's clock latency plus its
   clock-to-q arc delay.
2. **Forward propagation** over the levelized combinational core:
   per-pin arrivals are driver arrival + per-sink Elmore wire delay, and
   output arrival/slew come from the worst input through the NLDM arcs
   (with the heterogeneous input-boundary derate applied by the delay
   calculator).
3. **Capture**: every sequential data input is an endpoint; its required
   time is ``period + capture latency - setup(slew)``.  Slack, WNS and TNS
   follow.
4. **Backward propagation** computes per-instance worst slack -- the
   *cell-based criticality* of Section III-A1 ("instead of path-based slack
   measurement, we visit the cells individually and find the worst slack
   among the paths going through the cell").

Path extraction backtracks the worst arrival chain and reports the same
breakdowns as Table VIII (cells/delay/wirelength/MIVs per tier).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TimingError
from repro.netlist.core import Instance, Netlist
from repro.obs import emit_metric, span
from repro.timing.delaycalc import DelayCalculator

__all__ = ["PathStep", "CriticalPath", "TimingReport", "run_sta"]

#: Default transition time assumed at primary inputs and clock pins (ns).
DEFAULT_INPUT_SLEW_NS = 0.02

_INF = float("inf")


@dataclass(frozen=True)
class PathStep:
    """One stage of a timing path: arrival through one cell."""

    instance: str
    cell_name: str
    tier: int
    arc_delay_ns: float
    wire_delay_ns: float
    wirelength_um: float
    crosses_tier: bool


@dataclass(frozen=True)
class CriticalPath:
    """A launch-to-capture register path with Table VIII style breakdowns."""

    endpoint: tuple[str, str]
    slack_ns: float
    launch_latency_ns: float
    capture_latency_ns: float
    setup_ns: float
    steps: tuple[PathStep, ...] = field(repr=False)

    @property
    def clock_skew_ns(self) -> float:
        """Capture minus launch clock latency (positive helps setup)."""
        return self.capture_latency_ns - self.launch_latency_ns

    @property
    def cell_delay_ns(self) -> float:
        """Total delay spent in cell arcs."""
        return sum(s.arc_delay_ns for s in self.steps)

    @property
    def wire_delay_ns(self) -> float:
        """Total delay spent in interconnect."""
        return sum(s.wire_delay_ns for s in self.steps)

    @property
    def path_delay_ns(self) -> float:
        """End-to-end data path delay (cells + wires + launch latency)."""
        return self.cell_delay_ns + self.wire_delay_ns

    @property
    def wirelength_um(self) -> float:
        """Total routed length along the path."""
        return sum(s.wirelength_um for s in self.steps)

    @property
    def total_cells(self) -> int:
        """Logic depth in cells."""
        return len(self.steps)

    @property
    def miv_count(self) -> int:
        """Number of tier crossings along the path."""
        return sum(1 for s in self.steps if s.crosses_tier)

    def cells_on_tier(self, tier: int) -> int:
        """Number of path cells on one tier."""
        return sum(1 for s in self.steps if s.tier == tier)

    def cell_delay_on_tier(self, tier: int) -> float:
        """Cell delay contributed by one tier."""
        return sum(s.arc_delay_ns for s in self.steps if s.tier == tier)

    def wirelength_on_tier(self, tier: int) -> float:
        """Wirelength of path segments whose sink is on one tier."""
        return sum(s.wirelength_um for s in self.steps if s.tier == tier)

    def average_cell_delay_on_tier(self, tier: int) -> float:
        """Mean stage delay on one tier (0 when the tier is unused)."""
        n = self.cells_on_tier(tier)
        return self.cell_delay_on_tier(tier) / n if n else 0.0


@dataclass
class TimingReport:
    """Result of one STA run."""

    period_ns: float
    wns_ns: float
    tns_ns: float
    endpoint_slacks: dict[tuple[str, str], float]
    cell_slack: dict[str, float]
    critical_path: CriticalPath | None

    @property
    def effective_delay_ns(self) -> float:
        """``clock period - worst slack`` (paper's PDP delay term)."""
        return self.period_ns - self.wns_ns

    @property
    def frequency_ghz(self) -> float:
        """Target clock frequency of this run."""
        return 1.0 / self.period_ns

    def timing_met(self, tolerance_fraction: float = 0.07) -> bool:
        """The paper's closure criterion: |WNS| below ~5-7% of the period."""
        return self.wns_ns >= -tolerance_fraction * self.period_ns

    def worst_endpoints(self, count: int) -> list[tuple[tuple[str, str], float]]:
        """The ``count`` worst endpoints, most negative slack first."""
        ranked = sorted(self.endpoint_slacks.items(), key=lambda kv: kv[1])
        return ranked[:count]


class StaEngine:
    """State of one STA computation (arrivals, slews, requireds).

    :func:`run_sta` builds one per call; the incremental
    :class:`~repro.timing.incremental.TimingSession` keeps one alive
    across edits and re-evaluates only dirty cones through the exact
    same per-instance methods, which is what makes the incremental
    results bit-identical to a from-scratch run.
    """

    def __init__(
        self,
        netlist: Netlist,
        calc: DelayCalculator,
        period_ns: float,
        clock_latencies: dict[str, float] | None,
    ) -> None:
        self.netlist = netlist
        self.calc = calc
        self.period_ns = period_ns
        self.latencies = clock_latencies or {}
        # Arrival/slew at each net, measured at the driver output pin.
        self.arrival: dict[str, float] = {}
        self.slew: dict[str, float] = {}
        self.required: dict[str, float] = {}
        # Which input pin set each instance's output arrival (for backtrace).
        self.worst_input: dict[str, str] = {}

    # -- forward ---------------------------------------------------------
    def launch(self) -> None:
        for net in self.netlist.nets.values():
            if net.driver is None and not net.is_clock:
                self.arrival[net.name] = 0.0
                self.slew[net.name] = DEFAULT_INPUT_SLEW_NS
        for inst in self.netlist.sequential_instances():
            self._launch_sequential(inst)

    def _launch_sequential(self, inst: Instance) -> None:
        out_pin = inst.cell.output_pin
        net_name = inst.net_of(out_pin)
        if net_name is None:
            return
        clock_pin = inst.cell.clock_pin
        arc = inst.cell.arc_to(out_pin, clock_pin) if clock_pin else None
        latency = self.latencies.get(inst.name, 0.0)
        load = self.calc.output_load_ff(inst, out_pin)
        if arc is None:
            self.arrival[net_name] = latency
            self.slew[net_name] = DEFAULT_INPUT_SLEW_NS
            return
        delay, out_slew = self.calc.arc_delay_slew(
            inst, arc, DEFAULT_INPUT_SLEW_NS, load
        )
        self.arrival[net_name] = latency + delay
        self.slew[net_name] = out_slew

    def input_arrival_slew(self, inst: Instance, pin: str) -> tuple[float, float]:
        """Arrival and slew at one instance input pin."""
        net_name = inst.net_of(pin)
        if net_name is None:
            return 0.0, DEFAULT_INPUT_SLEW_NS
        net = self.netlist.nets[net_name]
        base = self.arrival.get(net_name)
        if base is None:
            # Undriven/unreached net: treat as constant (never toggles).
            return 0.0, DEFAULT_INPUT_SLEW_NS
        wire = self.calc.net_parasitics(net).sink_delay_ns.get((inst.name, pin), 0.0)
        return base + wire, self.slew.get(net_name, DEFAULT_INPUT_SLEW_NS)

    def eval_instance(self, inst: Instance) -> None:
        """(Re)compute one combinational instance's output arrival/slew.

        Shared by the full forward pass and the incremental dirty-cone
        update; on an unreached output any stale entries are deleted so a
        re-evaluation converges to exactly the state a fresh propagation
        would produce.
        """
        out_pin = inst.cell.output_pin
        out_net = inst.net_of(out_pin)
        if out_net is None:
            return
        load = self.calc.output_load_ff(inst, out_pin)
        best_arr = -_INF
        best_slew = DEFAULT_INPUT_SLEW_NS
        best_pin = ""
        for pin in inst.cell.input_pins:
            arc = inst.cell.arc_to(out_pin, pin)
            if arc is None:
                continue
            arr_in, slew_in = self.input_arrival_slew(inst, pin)
            delay, out_slew = self.calc.arc_delay_slew(inst, arc, slew_in, load)
            if arr_in + delay > best_arr:
                best_arr = arr_in + delay
                best_slew = out_slew
                best_pin = pin
        if best_arr == -_INF:
            self.arrival.pop(out_net, None)
            self.slew.pop(out_net, None)
            self.worst_input.pop(inst.name, None)
            return
        self.arrival[out_net] = best_arr
        self.slew[out_net] = best_slew
        self.worst_input[inst.name] = best_pin

    def propagate(self) -> None:
        for inst in self.netlist.topological_order():
            self.eval_instance(inst)

    # -- capture ---------------------------------------------------------
    def endpoint_base(self) -> list[tuple[tuple[str, str], float, float, float]]:
        """Period-independent endpoint terms: (key, arrival, setup, latency).

        Arrivals, slews (hence setup times), and clock latencies do not
        depend on the clock period; only the required time does.  The
        incremental session caches this list across period probes and
        re-derives the slack dict per candidate period in O(endpoints).
        """
        base: list[tuple[tuple[str, str], float, float, float]] = []
        for inst in self.netlist.sequential_instances():
            latency = self.latencies.get(inst.name, 0.0)
            for pin in inst.cell.input_pins:
                arr, slew_in = self.input_arrival_slew(inst, pin)
                net_name = inst.net_of(pin)
                if net_name is None or self.arrival.get(net_name) is None:
                    continue
                setup = self.calc.setup_time(inst.cell, slew_in)
                base.append(((inst.name, pin), arr, setup, latency))
        return base

    @staticmethod
    def slacks_at(
        period_ns: float,
        base: list[tuple[tuple[str, str], float, float, float]],
    ) -> dict[tuple[str, str], float]:
        """Endpoint slacks at one period from the period-independent base."""
        slacks: dict[tuple[str, str], float] = {}
        for key, arr, setup, latency in base:
            required = period_ns + latency - setup
            slacks[key] = required - arr
        return slacks

    def endpoint_slacks(self) -> dict[tuple[str, str], float]:
        return self.slacks_at(self.period_ns, self.endpoint_base())

    # -- backward ---------------------------------------------------------
    def seed_required_map(
        self, endpoints: dict[tuple[str, str], float]
    ) -> dict[str, float]:
        """Required time each endpoint imposes at its net's driver output."""
        seeds: dict[str, float] = {}
        for (inst_name, pin), slack in endpoints.items():
            inst = self.netlist.instances[inst_name]
            net_name = inst.net_of(pin)
            if net_name is None:
                continue
            net = self.netlist.nets[net_name]
            wire = self.calc.net_parasitics(net).sink_delay_ns.get(
                (inst_name, pin), 0.0
            )
            arr, _ = self.input_arrival_slew(inst, pin)
            req_at_pin = arr + slack
            req_at_driver = req_at_pin - wire
            prev = seeds.get(net_name, _INF)
            if req_at_driver < prev:
                seeds[net_name] = req_at_driver
        return seeds

    def propagate_required(self, endpoints: dict[tuple[str, str], float]) -> None:
        """Backward pass: required time at every net's driver output."""
        # Seed required times at endpoint input pins, mapped back to nets.
        for net_name, req_at_driver in self.seed_required_map(endpoints).items():
            prev = self.required.get(net_name, _INF)
            self.required[net_name] = min(prev, req_at_driver)

        for inst in reversed(self.netlist.topological_order()):
            out_pin = inst.cell.output_pin
            out_net = inst.net_of(out_pin)
            if out_net is None:
                continue
            req_out = self.required.get(out_net, _INF)
            if req_out == _INF:
                continue
            load = self.calc.output_load_ff(inst, out_pin)
            for pin in inst.cell.input_pins:
                arc = inst.cell.arc_to(out_pin, pin)
                if arc is None:
                    continue
                in_net = inst.net_of(pin)
                if in_net is None:
                    continue
                net = self.netlist.nets[in_net]
                _, slew_in = self.input_arrival_slew(inst, pin)
                delay, _ = self.calc.arc_delay_slew(inst, arc, slew_in, load)
                wire = self.calc.net_parasitics(net).sink_delay_ns.get(
                    (inst.name, pin), 0.0
                )
                candidate = req_out - delay - wire
                prev = self.required.get(in_net, _INF)
                if candidate < prev:
                    self.required[in_net] = candidate

    def cell_slacks(self) -> dict[str, float]:
        """Worst slack of any path through each instance (criticality)."""
        slacks: dict[str, float] = {}
        for inst in self.netlist.instances.values():
            out_net = inst.net_of(inst.cell.output_pin) if not inst.cell.is_sequential else None
            if inst.cell.is_sequential:
                out_net = inst.net_of(inst.cell.output_pin)
            if out_net is None:
                continue
            arr = self.arrival.get(out_net)
            req = self.required.get(out_net)
            if arr is None or req is None or req == _INF:
                continue
            slacks[inst.name] = req - arr
        return slacks

    # -- path extraction ---------------------------------------------------
    def backtrace(self, endpoint: tuple[str, str], slack: float) -> CriticalPath:
        inst_name, pin = endpoint
        capture = self.netlist.instances[inst_name]
        _, slew_in = self.input_arrival_slew(capture, pin)
        setup = self.calc.setup_time(capture.cell, slew_in)
        steps: list[PathStep] = []

        current_inst = capture
        current_pin = pin
        launch_latency = 0.0
        guard = 0
        while guard < 100000:
            guard += 1
            net_name = current_inst.net_of(current_pin)
            if net_name is None:
                break
            net = self.netlist.nets[net_name]
            para = self.calc.net_parasitics(net)
            wire = para.sink_delay_ns.get((current_inst.name, current_pin), 0.0)
            driver = self.netlist.driver_instance(net)
            if driver is None:
                # reached a primary input
                break
            # wirelength share: manhattan distance when placed, else share
            if driver.is_placed and current_inst.is_placed:
                dx, dy = driver.center(), current_inst.center()
                seg_len = abs(dx[0] - dy[0]) + abs(dx[1] - dy[1])
            else:
                seg_len = para.length_um / max(1, net.fanout)
            crosses = driver.tier != current_inst.tier
            out_pin = driver.cell.output_pin
            if driver.cell.is_sequential:
                clock_pin = driver.cell.clock_pin
                arc = driver.cell.arc_to(out_pin, clock_pin) if clock_pin else None
                load = self.calc.output_load_ff(driver, out_pin)
                if arc is not None:
                    delay, _ = self.calc.arc_delay_slew(
                        driver, arc, DEFAULT_INPUT_SLEW_NS, load
                    )
                else:
                    delay = 0.0
                steps.append(
                    PathStep(
                        instance=driver.name,
                        cell_name=driver.cell.name,
                        tier=driver.tier,
                        arc_delay_ns=delay,
                        wire_delay_ns=wire,
                        wirelength_um=seg_len,
                        crosses_tier=crosses,
                    )
                )
                launch_latency = self.latencies.get(driver.name, 0.0)
                break
            worst_pin = self.worst_input.get(driver.name)
            if worst_pin is None:
                break
            arc = driver.cell.arc_to(out_pin, worst_pin)
            load = self.calc.output_load_ff(driver, out_pin)
            _, slew_at = self.input_arrival_slew(driver, worst_pin)
            delay, _ = self.calc.arc_delay_slew(driver, arc, slew_at, load)
            steps.append(
                PathStep(
                    instance=driver.name,
                    cell_name=driver.cell.name,
                    tier=driver.tier,
                    arc_delay_ns=delay,
                    wire_delay_ns=wire,
                    wirelength_um=seg_len,
                    crosses_tier=crosses,
                )
            )
            current_inst = driver
            current_pin = worst_pin
        else:
            raise TimingError("path backtrace did not terminate")

        steps.reverse()
        return CriticalPath(
            endpoint=endpoint,
            slack_ns=slack,
            launch_latency_ns=launch_latency,
            capture_latency_ns=self.latencies.get(inst_name, 0.0),
            setup_ns=setup,
            steps=tuple(steps),
        )


def run_sta(
    netlist: Netlist,
    calc: DelayCalculator,
    period_ns: float,
    clock_latencies: dict[str, float] | None = None,
    *,
    with_cell_slacks: bool = True,
) -> TimingReport:
    """Run a full setup-timing analysis at one clock period.

    Parameters
    ----------
    netlist:
        The design; sequential cells define launch/capture points.
    calc:
        A :class:`~repro.timing.delaycalc.DelayCalculator` bound to the
        netlist and a wire model.
    period_ns:
        Target clock period.
    clock_latencies:
        Per-sequential-instance clock insertion delay from CTS; ``None``
        analyzes with an ideal clock.
    with_cell_slacks:
        Skip the backward pass when per-cell criticality is not needed
        (saves roughly half the runtime inside optimization loops).
    """
    if period_ns <= 0:
        raise TimingError(f"period must be positive, got {period_ns}")
    with span("sta", period_ns=period_ns, cell_slacks=with_cell_slacks):
        engine = StaEngine(netlist, calc, period_ns, clock_latencies)
        engine.launch()
        engine.propagate()
        endpoint_slacks = engine.endpoint_slacks()
        if endpoint_slacks:
            wns = min(endpoint_slacks.values())
            tns = sum((s for s in endpoint_slacks.values() if s < 0), 0.0)
            worst = min(endpoint_slacks, key=endpoint_slacks.get)
            critical = engine.backtrace(worst, endpoint_slacks[worst])
        else:
            wns, tns, critical = 0.0, 0.0, None

        cell_slack: dict[str, float] = {}
        if with_cell_slacks and endpoint_slacks:
            engine.propagate_required(endpoint_slacks)
            cell_slack = engine.cell_slacks()
        emit_metric("wns_ns", wns)
        emit_metric("tns_ns", tns)

    return TimingReport(
        period_ns=period_ns,
        wns_ns=wns,
        tns_ns=tns,
        endpoint_slacks=endpoint_slacks,
        cell_slack=cell_slack,
        critical_path=critical,
    )


def top_critical_paths(
    netlist: Netlist,
    calc: DelayCalculator,
    report: TimingReport,
    count: int,
    clock_latencies: dict[str, float] | None = None,
) -> list[CriticalPath]:
    """Backtrace the ``count`` worst endpoints of a finished STA run.

    Used by the repartitioning ECO (Algorithm 1) and the Table VIII
    top-100-paths skew analysis.
    """
    engine = StaEngine(netlist, calc, report.period_ns, clock_latencies)
    engine.launch()
    engine.propagate()
    paths = []
    for endpoint, slack in report.worst_endpoints(count):
        paths.append(engine.backtrace(endpoint, slack))
    return paths
