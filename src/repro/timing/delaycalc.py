"""Delay calculation: wire parasitics, NLDM lookup, boundary derating.

Two wire models are provided, mirroring how real flows estimate
interconnect before and after placement:

- :class:`FanoutWireModel` -- a wire-load model (length from fanout) used
  during synthesis, before any placement exists;
- :class:`PlacementWireModel` -- Steiner-corrected half-perimeter lengths
  from actual instance locations, with per-sink Elmore delays and MIV
  parasitics added for every tier crossing (monolithic 3-D nets).

The :class:`DelayCalculator` combines a wire model with the NLDM tables of
the bound cells, and applies the *input-boundary voltage derate* of
Section II-B: a gate whose driving net comes from a tier with a different
supply rail sees its arc delay and output slew scaled by the overdrive
sensitivity fitted in :mod:`repro.liberty.spice`.  The *output-boundary*
effect (different load capacitance across tiers) needs no special
handling -- it emerges naturally because load is summed from the actual
sink pin capacitances.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.liberty.cells import CellType, TimingArc
from repro.liberty.library import StdCellLibrary
from repro.liberty.spice import (
    input_voltage_delay_factor,
    input_voltage_slew_factor,
)
from repro.netlist.core import Instance, Net, Netlist
from repro.units import RC_TO_NS

__all__ = [
    "NetParasitics",
    "FanoutWireModel",
    "PlacementWireModel",
    "DelayCalculator",
]

#: Steiner-tree length correction over HPWL as a function of fanout,
#: following the classic Chu/Wong FLUTE statistics.
def steiner_correction(fanout: int) -> float:
    """Multiplier that converts HPWL into an RSMT length estimate."""
    if fanout <= 2:
        return 1.0
    return 1.0 + 0.18 * (fanout - 2) ** 0.5


@dataclass(frozen=True)
class NetParasitics:
    """Extracted parasitics of one net.

    ``sink_delay_ns`` maps each sink ``(instance, pin)`` to the Elmore
    delay from the driver output to that sink; ``total_cap_ff`` is the
    load seen by the driver (wire + all sink pins + MIVs);
    ``length_um`` is the estimated routed length; ``miv_count`` the number
    of inter-tier vias the net needs.
    """

    length_um: float
    total_cap_ff: float
    sink_delay_ns: dict[tuple[str, str], float]
    miv_count: int = 0


class FanoutWireModel:
    """Pre-placement wire-load model: length grows with fanout."""

    def __init__(
        self,
        lib: StdCellLibrary,
        base_length_um: float = 4.0,
        per_fanout_um: float = 6.0,
    ) -> None:
        self._lib = lib
        self._base = base_length_um
        self._per_fanout = per_fanout_um

    def extract(self, netlist: Netlist, net: Net) -> NetParasitics:
        """Estimate parasitics from fanout alone."""
        length = self._base + self._per_fanout * max(0, net.fanout - 1)
        wire_cap = length * self._lib.wire_c_ff_per_um
        pin_cap = sum(
            netlist.instances[i].cell.input_capacitance_ff(p)
            for i, p in net.sinks
        )
        wire_r = length * self._lib.wire_r_kohm_per_um
        # Single lumped-pi estimate shared by all sinks.
        delay = wire_r * (wire_cap / 2.0 + pin_cap) * RC_TO_NS
        sink_delay = {sink: delay for sink in net.sinks}
        return NetParasitics(
            length_um=length,
            total_cap_ff=wire_cap + pin_cap,
            sink_delay_ns=sink_delay,
        )


class PlacementWireModel:
    """Post-placement model: Steiner-corrected HPWL plus MIV parasitics.

    For 3-D designs, the same (x, y) plane is shared by both tiers and a
    net spanning tiers pays one MIV (R and C) per crossing, exactly the
    monolithic-3-D abstraction the paper's flows use.
    """

    def __init__(self, lib: StdCellLibrary) -> None:
        self._lib = lib

    def extract(self, netlist: Netlist, net: Net) -> NetParasitics:
        """Extract from actual placement; all pins must be placed."""
        points: list[tuple[float, float, int]] = []
        driver_point: tuple[float, float, int] | None = None
        if net.driver is not None:
            inst = netlist.instances[net.driver[0]]
            x, y = inst.center()
            driver_point = (x, y, inst.tier)
            points.append(driver_point)
        for sink_name, _pin in net.sinks:
            inst = netlist.instances[sink_name]
            x, y = inst.center()
            points.append((x, y, inst.tier))
        if not points:
            return NetParasitics(0.0, 0.0, {})

        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        hpwl = (max(xs) - min(xs)) + (max(ys) - min(ys))
        length = hpwl * steiner_correction(len(net.sinks))
        tiers = {p[2] for p in points}
        miv_count = self._count_mivs(driver_point, points) if len(tiers) > 1 else 0

        wire_cap = length * self._lib.wire_c_ff_per_um
        pin_cap = sum(
            netlist.instances[i].cell.input_capacitance_ff(p)
            for i, p in net.sinks
        )
        total_cap = wire_cap + pin_cap + miv_count * self._lib.miv_c_ff

        sink_delay: dict[tuple[str, str], float] = {}
        for sink_name, pin in net.sinks:
            sink_inst = netlist.instances[sink_name]
            if driver_point is None:
                sink_delay[(sink_name, pin)] = 0.0
                continue
            sx, sy = sink_inst.center()
            dist = abs(sx - driver_point[0]) + abs(sy - driver_point[1])
            seg_r = dist * self._lib.wire_r_kohm_per_um
            seg_c = dist * self._lib.wire_c_ff_per_um
            sink_cap = sink_inst.cell.input_capacitance_ff(pin)
            delay = seg_r * (seg_c / 2.0 + sink_cap) * RC_TO_NS
            if sink_inst.tier != driver_point[2]:
                delay += self._lib.miv_r_kohm * (
                    self._lib.miv_c_ff / 2.0 + sink_cap
                ) * RC_TO_NS
            sink_delay[(sink_name, pin)] = delay
        return NetParasitics(
            length_um=length,
            total_cap_ff=total_cap,
            sink_delay_ns=sink_delay,
            miv_count=miv_count,
        )

    @staticmethod
    def _count_mivs(
        driver_point: tuple[float, float, int] | None,
        points: list[tuple[float, float, int]],
    ) -> int:
        """One MIV per foreign-tier sink cluster, minimum one per net.

        A production router would share MIVs between nearby sinks; we use
        the number of sinks on tiers other than the driver's, compressed
        by a sharing factor of 2, which matches the paper's reported
        MIV-per-cut-net densities.
        """
        if driver_point is None:
            driver_tier = points[0][2]
        else:
            driver_tier = driver_point[2]
        foreign = sum(1 for p in points[1:] if p[2] != driver_tier)
        return max(1, (foreign + 1) // 2)


@lru_cache(maxsize=None)
def _voltage_factors(vdd_v: float, vth_v: float, vg_v: float) -> tuple[float, float]:
    """Memoized (delay, slew) derate pair for one supply combination.

    Only a handful of (vdd, vth, vg) triples ever occur per design (one
    per heterogeneous library pair), so an unbounded cache is safe.
    """
    return (
        input_voltage_delay_factor(vdd_v, vth_v, vg_v),
        input_voltage_slew_factor(vdd_v, vth_v, vg_v),
    )


#: Cap on the arc-delay memo; cleared wholesale on overflow.  Entries are
#: pure function results, so dropping them only costs recomputation.
_ARC_MEMO_MAX = 200_000


class DelayCalculator:
    """Combines a wire model with NLDM tables and boundary derates."""

    def __init__(
        self,
        netlist: Netlist,
        wire_model: FanoutWireModel | PlacementWireModel,
        libraries: dict[str, StdCellLibrary],
    ) -> None:
        self._netlist = netlist
        self._wire_model = wire_model
        self._libraries = libraries
        self._cache: dict[str, NetParasitics] = {}
        self._listeners: list[Callable[[str | None], None]] = []
        # NLDM lookups are pure functions of (arc, input slew, load), so
        # repeated evaluations -- the common case inside optimization
        # loops, period sweeps, and backward propagation -- are memoized.
        # Keys use id(arc); the arc objects are pinned in _arc_refs so an
        # id can never be recycled while its memo entries live.
        self._arc_memo: dict[tuple[int, float, float], tuple[float, float]] = {}
        self._arc_refs: dict[int, TimingArc] = {}
        # Optional slew quantization for the memo key (ns).  Defaults to
        # exact keys: quantizing perturbs the lookup input and would break
        # bit-identity with the unmemoized engine.
        self._slew_quantum = float(os.environ.get("REPRO_STA_SLEW_Q", "0") or 0.0)

    def add_invalidation_listener(
        self, listener: Callable[[str | None], None]
    ) -> None:
        """Register a callback invoked on every :meth:`invalidate`.

        The incremental timing session uses this to learn which nets went
        stale; the callback receives the net name, or None for a
        full-cache invalidation.
        """
        self._listeners.append(listener)

    def invalidate(self, net_name: str | None = None) -> None:
        """Drop cached parasitics (all nets, or one) after an edit."""
        if net_name is None:
            self._cache.clear()
        else:
            self._cache.pop(net_name, None)
        for listener in self._listeners:
            listener(net_name)

    def net_parasitics(self, net: Net) -> NetParasitics:
        """Extract (and cache) parasitics for one net."""
        cached = self._cache.get(net.name)
        if cached is None:
            cached = self._wire_model.extract(self._netlist, net)
            self._cache[net.name] = cached
        return cached

    def output_load_ff(self, inst: Instance, out_pin: str) -> float:
        """Total load on one instance output pin."""
        net_name = inst.net_of(out_pin)
        if net_name is None:
            return 0.0
        return self.net_parasitics(self._netlist.nets[net_name]).total_cap_ff

    def input_derates(self, inst: Instance, in_pin: str) -> tuple[float, float]:
        """(delay, slew) multipliers from input-boundary heterogeneity.

        Returns (1.0, 1.0) unless the net driving ``in_pin`` comes from an
        instance bound to a library with a different supply voltage.
        """
        net_name = inst.net_of(in_pin)
        if net_name is None:
            return 1.0, 1.0
        net = self._netlist.nets[net_name]
        driver = self._netlist.driver_instance(net)
        if driver is None:
            return 1.0, 1.0
        vg = driver.cell.vdd_v
        if abs(vg - inst.cell.vdd_v) < 1e-9:
            return 1.0, 1.0
        from repro.liberty.cells import CellFunction

        if inst.cell.function is CellFunction.LEVEL_SHIFTER:
            # shifters are characterized for foreign-rail inputs
            return 1.0, 1.0
        lib = self._libraries[inst.cell.library_name]
        return _voltage_factors(lib.vdd_v, lib.vth_v, vg)

    def arc_delay_slew(
        self,
        inst: Instance,
        arc: TimingArc,
        input_slew_ns: float,
        load_ff: float,
    ) -> tuple[float, float]:
        """Arc delay and output slew with the input-boundary derate applied.

        The raw (pre-derate) table lookups are memoized per arc; the
        derate depends on the driving instance's rail and is applied per
        call.  Memo hits are exact-key by default, so the result is
        bit-identical to the unmemoized computation regardless of call
        order.
        """
        if self._slew_quantum > 0.0:
            input_slew_ns = round(input_slew_ns / self._slew_quantum) * self._slew_quantum
        key = (id(arc), input_slew_ns, load_ff)
        hit = self._arc_memo.get(key)
        if hit is None:
            if len(self._arc_memo) >= _ARC_MEMO_MAX:
                self._arc_memo.clear()
                self._arc_refs.clear()
            hit = (
                arc.delay.lookup(input_slew_ns, load_ff),
                arc.output_slew.lookup(input_slew_ns, load_ff),
            )
            self._arc_memo[key] = hit
            self._arc_refs.setdefault(key[0], arc)
        derate_d, derate_s = self.input_derates(inst, arc.from_pin)
        return hit[0] * derate_d, hit[1] * derate_s

    def setup_time(self, cell: CellType, data_slew_ns: float) -> float:
        """Setup requirement of a sequential cell at the given data slew."""
        for arc in cell.arcs:
            if arc.kind == "setup":
                return arc.delay.lookup(data_slew_ns, 0.0)
        return cell.setup_ns
