"""Incremental STA: the :class:`TimingSession` facade.

A session owns one long-lived :class:`~repro.timing.sta.StaEngine` and
keeps it consistent with the netlist across local edits, instead of
rebuilding the whole timing graph per query the way :func:`run_sta`
does.  Three reuse layers compound:

1. **Dirty-cone re-propagation.**  Every edit the flows make (upsize,
   clone, buffer insertion, ECO tier move, level-shifter insertion) is
   already paired with ``DelayCalculator.invalidate(net)`` calls for the
   touched nets; the session listens to those invalidations, seeds the
   drivers and sinks of the dirty nets, closes over their transitive
   fanout cone, re-levelizes only the cone (Kahn on the subgraph), and
   re-evaluates exactly those instances through the same
   ``StaEngine.eval_instance`` the full pass uses.  Instances outside
   the cone keep their arrivals; because each cone instance is computed
   once from finalized fanin values, the result is bit-identical to a
   from-scratch propagation.

2. **Period-sweep arrival reuse.**  Arrivals, slews, setup times and
   clock latencies do not depend on the clock period; only required
   times do.  The session caches the period-independent endpoint base
   (``StaEngine.endpoint_base``) and derives the slack dict per
   candidate period in O(endpoints), so a period binary search costs
   one forward propagation total instead of one per probe.

3. **Confined backward updates.**  Required times are recomputed only
   over the backward region reachable from changed seeds: invalidated
   nets, input nets of forward-cone instances, and endpoints whose seed
   required changed.  The region is processed in falling topological
   order of each net's driver with a pull-based min that enumerates the
   same candidate set as the full push-based pass, hence equal values.

**Invalidation contract**: netlist edits must invalidate every touched
net through the :class:`~repro.timing.delaycalc.DelayCalculator` bound
to the session (the convention all flow edits already follow).  A full
``calc.invalidate()`` marks the whole graph dirty.  When the dirty cone
exceeds ``REPRO_STA_THRESHOLD`` (default 35%) of the combinational
core, the session falls back to a full rebuild -- incrementality never
wins once most of the graph moved.  Setting ``REPRO_STA=full`` disables
all reuse and rebuilds from scratch on every report; this is the
equivalence kill switch CI uses, mirroring ``REPRO_CACHE=0``.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field

from repro.errors import TimingError
from repro.netlist.core import Netlist
from repro.obs import emit_metric, span
from repro.timing.delaycalc import DelayCalculator
from repro.timing.sta import (
    DEFAULT_INPUT_SLEW_NS,
    CriticalPath,
    StaEngine,
    TimingReport,
)

__all__ = ["TimingSession", "SessionStats", "full_sta_forced"]

_INF = float("inf")

#: Dirty-cone fraction of the combinational core above which the
#: session rebuilds from scratch instead of patching incrementally.
DEFAULT_FULL_FRACTION = 0.35


def full_sta_forced() -> bool:
    """True when ``REPRO_STA=full`` disables incremental updates."""
    return os.environ.get("REPRO_STA", "").strip().lower() == "full"


@dataclass
class SessionStats:
    """Counters one session accumulates; mirrored as trace metrics."""

    full_runs: int = 0
    incremental_runs: int = 0
    reused_runs: int = 0  # clean reports: no re-propagation at all
    propagated_instances: int = 0
    graph_instances: int = 0
    backward_full: int = 0
    backward_incremental: int = 0
    last_cone_size: int = 0

    @property
    def reports(self) -> int:
        return self.full_runs + self.incremental_runs + self.reused_runs

    @property
    def propagated_fraction(self) -> float:
        """Instances re-propagated per report, averaged, as a fraction."""
        if self.graph_instances <= 0 or self.reports == 0:
            return 0.0
        return self.propagated_instances / (self.graph_instances * self.reports)


@dataclass
class _BackwardState:
    """What the last backward pass was computed against."""

    period_ns: float
    seeds: dict[str, float] = field(default_factory=dict)


class TimingSession:
    """Incremental timing facade over one (netlist, calculator) pair.

    Produces :class:`~repro.timing.sta.TimingReport` objects numerically
    identical to :func:`~repro.timing.sta.run_sta` on the same state,
    while reusing arrivals across edits and period probes.
    """

    def __init__(
        self,
        netlist: Netlist,
        calc: DelayCalculator,
        clock_latencies: dict[str, float] | None = None,
        *,
        full_fraction: float | None = None,
    ) -> None:
        self.netlist = netlist
        self.calc = calc
        self.latencies = clock_latencies or {}
        if full_fraction is None:
            full_fraction = float(
                os.environ.get("REPRO_STA_THRESHOLD", "") or DEFAULT_FULL_FRACTION
            )
        self.full_fraction = full_fraction
        self.stats = SessionStats()

        self._engine: StaEngine | None = None
        self._dirty_all = True
        self._dirty_nets: set[str] = set()
        # Accumulated since the last backward pass (forward batches may
        # land between two cell-slack requests).
        self._invalid_since_backward: set[str] = set()
        self._cone_since_backward: set[str] = set()
        self._backward: _BackwardState | None = None
        # Period-independent endpoint terms, keyed to the topology
        # version they were extracted at.
        self._endpoint_base: list | None = None
        self._base_version = -1
        # name -> position in the cached topological order.
        self._topo_index: dict[str, int] = {}
        self._topo_version = -1
        # combinational-core size, keyed to the topology version
        self._comb_total = 0
        self._comb_version = -1
        # (instance name, output net) pairs in netlist.instances order,
        # keyed to the topology version; cell slacks derive from these by
        # plain dict lookups in the same order engine.cell_slacks() uses.
        self._cell_pairs: list[tuple[str, str]] = []
        self._cell_pairs_version = -1
        self._last_fraction = 0.0

        calc.add_invalidation_listener(self._on_invalidate)

    # ------------------------------------------------------------------
    # dirty tracking
    # ------------------------------------------------------------------
    def _on_invalidate(self, net_name: str | None) -> None:
        if net_name is None:
            self._dirty_all = True
            self._dirty_nets.clear()
        elif not self._dirty_all:
            self._dirty_nets.add(net_name)

    def invalidate_all(self) -> None:
        """Force the next report to rebuild from scratch."""
        self._dirty_all = True
        self._dirty_nets.clear()

    def set_clock_latencies(self, clock_latencies: dict[str, float] | None) -> None:
        """Swap the clock latency map (after CTS); forces a rebuild."""
        self.latencies = clock_latencies or {}
        self.invalidate_all()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(
        self, period_ns: float, *, with_cell_slacks: bool = True
    ) -> TimingReport:
        """Timing report at one period; equals ``run_sta`` on this state."""
        if period_ns <= 0:
            raise TimingError(f"period must be positive, got {period_ns}")
        forced_full = full_sta_forced()
        with span("sta", period_ns=period_ns, cell_slacks=with_cell_slacks,
                  incremental=not forced_full):
            mode = self._refresh_forward(forced_full)
            engine = self._engine
            engine.period_ns = period_ns

            base = self._refresh_endpoint_base()
            endpoint_slacks = StaEngine.slacks_at(period_ns, base)
            if endpoint_slacks:
                wns = min(endpoint_slacks.values())
                tns = sum((s for s in endpoint_slacks.values() if s < 0), 0.0)
                worst = min(endpoint_slacks, key=endpoint_slacks.get)
                critical = engine.backtrace(worst, endpoint_slacks[worst])
            else:
                wns, tns, critical = 0.0, 0.0, None

            cell_slack: dict[str, float] = {}
            if with_cell_slacks and endpoint_slacks:
                self._refresh_required(period_ns, endpoint_slacks, forced_full)
                cell_slack = self._cell_slacks()
            emit_metric("wns_ns", wns)
            emit_metric("tns_ns", tns)
            emit_metric("sta_propagated_fraction", self._last_fraction)
            if mode == "full":
                emit_metric("sta_full_runs", 1)
            else:
                emit_metric("sta_incremental_runs", 1)

        return TimingReport(
            period_ns=period_ns,
            wns_ns=wns,
            tns_ns=tns,
            endpoint_slacks=endpoint_slacks,
            cell_slack=cell_slack,
            critical_path=critical,
        )

    def top_paths(self, report: TimingReport, count: int) -> list[CriticalPath]:
        """Backtrace the ``count`` worst endpoints of ``report``.

        Unlike :func:`~repro.timing.sta.top_critical_paths` this reuses
        the session's live arrivals instead of re-propagating the whole
        graph, which removes one full forward pass per optimizer round.
        """
        self._refresh_forward(full_sta_forced())
        engine = self._engine
        return [
            engine.backtrace(endpoint, slack)
            for endpoint, slack in report.worst_endpoints(count)
        ]

    # ------------------------------------------------------------------
    # forward maintenance
    # ------------------------------------------------------------------
    def _refresh_forward(self, forced_full: bool) -> str:
        version = self.netlist.topology_version
        if self._comb_version != version:
            self._comb_total = len(self.netlist.instances) - len(
                self.netlist.sequential_instances()
            )
            self._comb_version = version
        comb_total = self._comb_total
        self.stats.graph_instances = comb_total
        if forced_full or self._dirty_all or self._engine is None:
            self._full_rebuild()
            self._last_fraction = 1.0 if comb_total else 0.0
            return "full"
        if not self._dirty_nets:
            self.stats.reused_runs += 1
            self._last_fraction = 0.0
            return "reused"

        cone = self._forward_cone()
        if comb_total and len(cone) > self.full_fraction * comb_total:
            self._full_rebuild()
            self._last_fraction = 1.0
            return "full"

        self._apply_cone(cone)
        self.stats.incremental_runs += 1
        self.stats.propagated_instances += len(cone)
        self.stats.last_cone_size = len(cone)
        self._last_fraction = (len(cone) / comb_total) if comb_total else 0.0
        return "incremental"

    def _full_rebuild(self) -> None:
        engine = StaEngine(self.netlist, self.calc, 1.0, self.latencies)
        engine.launch()
        engine.propagate()
        self._engine = engine
        self._dirty_all = False
        self._dirty_nets.clear()
        self._endpoint_base = None
        self._backward = None
        self._invalid_since_backward.clear()
        self._cone_since_backward.clear()
        self.stats.full_runs += 1
        self.stats.propagated_instances += self.stats.graph_instances

    def _forward_cone(self) -> set[str]:
        """Combinational instances needing re-evaluation, as a name set.

        Also re-launches sequential drivers of dirty nets (their output
        load changed) and refreshes primary-input arrivals, which are the
        only non-combinational effects a net invalidation can have.
        """
        engine = self._engine
        nets = self.netlist.nets
        instances = self.netlist.instances
        seeds: set[str] = set()
        for net_name in self._dirty_nets:
            net = nets.get(net_name)
            if net is None:
                # The net was removed; any structural rewiring around it
                # invalidated the surviving nets too.
                continue
            if net.driver is None:
                if not net.is_clock:
                    engine.arrival[net_name] = 0.0
                    engine.slew[net_name] = DEFAULT_INPUT_SLEW_NS
            else:
                driver = instances[net.driver[0]]
                if driver.cell.is_sequential:
                    engine._launch_sequential(driver)
                else:
                    seeds.add(driver.name)
            for sink_name, _pin in net.sinks:
                if not instances[sink_name].cell.is_sequential:
                    seeds.add(sink_name)

        # Transitive fanout closure over the combinational core.
        cone: set[str] = set()
        stack = list(seeds)
        while stack:
            name = stack.pop()
            if name in cone:
                continue
            cone.add(name)
            inst = instances[name]
            for pin, net_name in inst.connected_pins():
                if inst.cell.pins[pin].direction != "output":
                    continue
                for sink_name, _pin in nets[net_name].sinks:
                    if (sink_name not in cone
                            and not instances[sink_name].cell.is_sequential):
                        stack.append(sink_name)
        return cone

    def _apply_cone(self, cone: set[str]) -> None:
        """Re-evaluate the cone in topological order (Kahn on subgraph)."""
        engine = self._engine
        nets = self.netlist.nets
        instances = self.netlist.instances

        indegree: dict[str, int] = {}
        for name in cone:
            inst = instances[name]
            count = 0
            for pin, net_name in inst.connected_pins():
                if inst.cell.pins[pin].direction == "output":
                    continue
                drv = nets[net_name].driver
                if drv is not None and drv[0] in cone:
                    count += 1
            indegree[name] = count

        ready = deque(sorted(name for name, d in indegree.items() if d == 0))
        done = 0
        while ready:
            name = ready.popleft()
            done += 1
            inst = instances[name]
            engine.eval_instance(inst)
            for pin, net_name in inst.connected_pins():
                if inst.cell.pins[pin].direction != "output":
                    continue
                for sink_name, _pin in nets[net_name].sinks:
                    if sink_name in indegree:
                        indegree[sink_name] -= 1
                        if indegree[sink_name] == 0:
                            ready.append(sink_name)
        if done != len(cone):
            raise TimingError(
                f"combinational loop in dirty cone: ordered {done} of {len(cone)}"
            )

        self._invalid_since_backward |= self._dirty_nets
        self._cone_since_backward |= cone
        self._dirty_nets.clear()
        self._endpoint_base = None

    # ------------------------------------------------------------------
    # endpoint base (period-independent)
    # ------------------------------------------------------------------
    def _refresh_endpoint_base(self) -> list:
        version = self.netlist.topology_version
        if self._endpoint_base is None or self._base_version != version:
            self._endpoint_base = self._engine.endpoint_base()
            self._base_version = version
        return self._endpoint_base

    # ------------------------------------------------------------------
    # cell slacks
    # ------------------------------------------------------------------
    def _cell_slacks(self) -> dict[str, float]:
        """Same mapping (and insertion order) as ``StaEngine.cell_slacks``.

        The instance -> output-net walk only changes with the topology,
        so it is cached; per report this is two dict lookups per cell.
        """
        version = self.netlist.topology_version
        if self._cell_pairs_version != version:
            pairs: list[tuple[str, str]] = []
            for inst in self.netlist.instances.values():
                out_net = inst.net_of(inst.cell.output_pin)
                if out_net is not None:
                    pairs.append((inst.name, out_net))
            self._cell_pairs = pairs
            self._cell_pairs_version = version

        engine = self._engine
        arrival = engine.arrival
        required = engine.required
        slacks: dict[str, float] = {}
        for name, out_net in self._cell_pairs:
            arr = arrival.get(out_net)
            req = required.get(out_net)
            if arr is None or req is None or req == _INF:
                continue
            slacks[name] = req - arr
        return slacks

    # ------------------------------------------------------------------
    # backward maintenance
    # ------------------------------------------------------------------
    def _refresh_required(
        self,
        period_ns: float,
        endpoint_slacks: dict[tuple[str, str], float],
        forced_full: bool,
    ) -> None:
        engine = self._engine
        seeds = engine.seed_required_map(endpoint_slacks)
        state = self._backward
        if (forced_full or state is None or state.period_ns != period_ns):
            engine.required.clear()
            engine.propagate_required(endpoint_slacks)
            self._backward = _BackwardState(period_ns=period_ns, seeds=seeds)
            self._invalid_since_backward.clear()
            self._cone_since_backward.clear()
            self.stats.backward_full += 1
            return

        region_seeds: set[str] = set()
        old_seeds = state.seeds
        for net_name in seeds.keys() | old_seeds.keys():
            if seeds.get(net_name) != old_seeds.get(net_name):
                region_seeds.add(net_name)
        nets = self.netlist.nets
        instances = self.netlist.instances
        for net_name in self._invalid_since_backward:
            if net_name in nets:
                region_seeds.add(net_name)
        for inst_name in self._cone_since_backward:
            inst = instances.get(inst_name)
            if inst is None:
                continue
            # The instance's delay may have changed: every input net that
            # feeds it gets a different pull candidate.
            for pin in inst.cell.input_pins:
                net_name = inst.net_of(pin)
                if net_name is not None:
                    region_seeds.add(net_name)

        if not region_seeds:
            state.seeds = seeds
            self._invalid_since_backward.clear()
            self._cone_since_backward.clear()
            return

        # Backward closure: a changed net invalidates the pull candidates
        # of its driver's input nets.
        region: set[str] = set()
        stack = list(region_seeds)
        while stack:
            net_name = stack.pop()
            if net_name in region or net_name not in nets:
                continue
            region.add(net_name)
            drv = nets[net_name].driver
            if drv is None:
                continue
            driver = instances[drv[0]]
            if driver.cell.is_sequential:
                continue
            for pin in driver.cell.input_pins:
                in_net = driver.net_of(pin)
                if in_net is not None and in_net not in region:
                    stack.append(in_net)

        self._ensure_topo_index()
        ordered = sorted(
            region,
            key=lambda n: self._driver_topo_index(n),
            reverse=True,
        )
        for net_name in ordered:
            self._recompute_required(net_name, seeds)

        state.seeds = seeds
        self._invalid_since_backward.clear()
        self._cone_since_backward.clear()
        self.stats.backward_incremental += 1

    def _recompute_required(self, net_name: str, seeds: dict[str, float]) -> None:
        """Pull-based recompute of one net's required time.

        Enumerates exactly the candidate set the full push-based pass
        produces for this net: its endpoint seed (if any) and one
        candidate per combinational consumer arc whose output required
        is finite.
        """
        engine = self._engine
        nets = self.netlist.nets
        instances = self.netlist.instances
        net = nets[net_name]
        value = seeds.get(net_name, _INF)
        for sink_name, pin in net.sinks:
            inst = instances[sink_name]
            if inst.cell.is_sequential:
                continue
            out_pin = inst.cell.output_pin
            out_net = inst.net_of(out_pin)
            if out_net is None:
                continue
            arc = inst.cell.arc_to(out_pin, pin)
            if arc is None:
                continue
            req_out = engine.required.get(out_net, _INF)
            if req_out == _INF:
                continue
            load = engine.calc.output_load_ff(inst, out_pin)
            _, slew_in = engine.input_arrival_slew(inst, pin)
            delay, _ = engine.calc.arc_delay_slew(inst, arc, slew_in, load)
            wire = engine.calc.net_parasitics(net).sink_delay_ns.get(
                (sink_name, pin), 0.0
            )
            candidate = req_out - delay - wire
            if candidate < value:
                value = candidate
        if value == _INF:
            engine.required.pop(net_name, None)
        else:
            engine.required[net_name] = value

    # ------------------------------------------------------------------
    # topology index
    # ------------------------------------------------------------------
    def _ensure_topo_index(self) -> None:
        version = self.netlist.topology_version
        if self._topo_version != version:
            self._topo_index = {
                inst.name: i
                for i, inst in enumerate(self.netlist.topological_order())
            }
            self._topo_version = version

    def _driver_topo_index(self, net_name: str) -> int:
        drv = self.netlist.nets[net_name].driver
        if drv is None:
            return -1
        index = self._topo_index.get(drv[0])
        # Sequential drivers sort with primary inputs: nothing pulls
        # through them, so they can be recomputed in any late position.
        return -1 if index is None else index
