"""Static timing analysis: delay calculation, graph traversal, reports."""

from repro.timing.delaycalc import (
    DelayCalculator,
    FanoutWireModel,
    NetParasitics,
    PlacementWireModel,
)
from repro.timing.incremental import SessionStats, TimingSession, full_sta_forced
from repro.timing.sta import CriticalPath, PathStep, TimingReport, run_sta

__all__ = [
    "DelayCalculator",
    "FanoutWireModel",
    "NetParasitics",
    "PlacementWireModel",
    "CriticalPath",
    "PathStep",
    "SessionStats",
    "TimingReport",
    "TimingSession",
    "full_sta_forced",
    "run_sta",
]
