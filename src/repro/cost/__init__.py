"""Cost modeling: wafer/die cost, yield, PPC, and PDP (Table IV)."""

from repro.cost.model import (
    CostModel,
    DieCostReport,
    performance_per_cost,
    power_delay_product_pj,
)

__all__ = [
    "CostModel",
    "DieCostReport",
    "performance_per_cost",
    "power_delay_product_pj",
]
