"""The die cost model of Section II-C, Table IV (adapted from Ku et al.).

All costs are expressed in units of ``C'``, the baseline wafer cost of a
die with one FEOL layer and eight BEOL metal layers.  The model:

- FEOL contributes 30% of the baseline wafer cost;
- BEOL metals have a consistent per-layer cost (8 layers -> 70%, so six
  signal layers cost ``0.7 * 6/8 = 0.525``... the paper rounds the 2-D
  wafer, FEOL + 6 metals, to ``0.96 C'`` which corresponds to a per-layer
  BEOL cost of ``0.11 C'``; we follow the paper's published constants);
- 3-D integration adds a 5% wafer-cost penalty (``alpha``) and a 5% yield
  penalty (``beta = 0.95``);
- dies per wafer and yield follow Eqs. (1)-(3) with a 300 mm wafer,
  defect density 0.2 /mm^2 (negative-binomial with clustering 2), and
  95% baseline wafer yield;
- die cost is Eq. (5): wafer cost over good dies per wafer, where the
  good-die count already folds in the die yield of Eqs. (2)/(3).

The published headline constants (2-D wafer ``0.96 C'``, 3-D wafer
``1.97 C'``) are reproduced exactly by the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import pi, sqrt

from repro.errors import CostModelError

__all__ = [
    "CostModel",
    "DieCostReport",
    "performance_per_cost",
    "power_delay_product_pj",
]


@dataclass(frozen=True)
class DieCostReport:
    """Cost breakdown of one die configuration (all costs in units of C')."""

    die_area_mm2: float
    tiers: int
    wafer_cost: float
    dies_per_wafer: float
    die_yield: float
    good_dies: float
    die_cost: float

    @property
    def cost_per_cm2(self) -> float:
        """Die cost normalized by total silicon area (the paper's metric)."""
        total_si_mm2 = self.die_area_mm2 * self.tiers
        return self.die_cost / (total_si_mm2 / 100.0)


@dataclass(frozen=True)
class CostModel:
    """Table IV parameters; defaults reproduce the paper exactly."""

    feol_fraction: float = 0.30
    beol_cost_per_layer: float = 0.11
    signal_layers: int = 6
    integration_penalty: float = 0.05  # alpha
    wafer_diameter_mm: float = 300.0
    defect_density_per_mm2: float = 0.2  # D_w
    wafer_yield: float = 0.95  # kappa
    yield_degradation_3d: float = 0.95  # beta

    def __post_init__(self) -> None:
        if not 0 < self.wafer_yield <= 1:
            raise CostModelError("wafer yield must be in (0, 1]")
        if not 0 < self.yield_degradation_3d <= 1:
            raise CostModelError("3-D yield degradation must be in (0, 1]")
        if self.defect_density_per_mm2 < 0:
            raise CostModelError("defect density cannot be negative")

    # ------------------------------------------------------------------
    # wafer-level constants
    # ------------------------------------------------------------------
    @property
    def wafer_area_mm2(self) -> float:
        """Usable wafer area A_w."""
        return pi * (self.wafer_diameter_mm / 2.0) ** 2

    def wafer_cost_2d(self) -> float:
        """2-D wafer cost: FEOL + six signal metal layers (0.96 C')."""
        return self.feol_fraction + self.beol_cost_per_layer * self.signal_layers

    def wafer_cost_3d(self) -> float:
        """3-D wafer cost: two FEOLs, two six-metal stacks, plus alpha.

        Matches the paper's 1.97 C' with the default constants.
        """
        return 2.0 * self.wafer_cost_2d() + self.integration_penalty

    # ------------------------------------------------------------------
    # Eqs. (1)-(5)
    # ------------------------------------------------------------------
    def dies_per_wafer(self, die_area_mm2: float) -> float:
        """Eq. (1): gross dies corrected for edge loss."""
        if die_area_mm2 <= 0:
            raise CostModelError("die area must be positive")
        aw = self.wafer_area_mm2
        return aw / die_area_mm2 - sqrt(2.0 * pi * aw / die_area_mm2)

    def die_yield(self, die_area_mm2: float, tiers: int) -> float:
        """Eqs. (2)/(3): negative-binomial yield, with beta for 3-D."""
        base = self.wafer_yield * (
            1.0 + die_area_mm2 * self.defect_density_per_mm2 / 2.0
        ) ** (-2)
        if tiers == 1:
            return base
        if tiers == 2:
            return base * self.yield_degradation_3d
        raise CostModelError(f"unsupported tier count {tiers}")

    def die_cost(self, die_area_mm2: float, tiers: int) -> DieCostReport:
        """Eq. (5) with the supporting quantities, as a report.

        ``die_area_mm2`` is the footprint of one tier; a 2-tier die has
        silicon area ``2 x die_area_mm2`` but occupies one footprint on
        the wafer.
        """
        wafer_cost = self.wafer_cost_2d() if tiers == 1 else self.wafer_cost_3d()
        dpw = self.dies_per_wafer(die_area_mm2)
        if dpw <= 0:
            raise CostModelError("die larger than wafer")
        y = self.die_yield(die_area_mm2, tiers)
        good = dpw * y
        return DieCostReport(
            die_area_mm2=die_area_mm2,
            tiers=tiers,
            wafer_cost=wafer_cost,
            dies_per_wafer=dpw,
            die_yield=y,
            good_dies=good,
            die_cost=wafer_cost / good,
        )


def power_delay_product_pj(total_power_mw: float, effective_delay_ns: float) -> float:
    """PDP in pJ: total power times effective delay (period - worst slack)."""
    if effective_delay_ns < 0:
        raise CostModelError("effective delay cannot be negative")
    return total_power_mw * effective_delay_ns


def performance_per_cost(
    frequency_ghz: float, total_power_mw: float, die_cost_1e6: float
) -> float:
    """PPC -- Table VI's headline metric.

    The paper prints the unit as GHz/(mW x 1e-6 C') but the published
    values only reproduce with power in watts (CPU: 1.2/(0.188 x 6.26) =
    1.02, AES: 3.0/(0.138 x 1.97) = 11.03 vs the printed 11.06), so power
    is converted accordingly.  ``die_cost_1e6`` is the die cost in units
    of 1e-6 C', as Table VI lists it.
    """
    if total_power_mw <= 0 or die_cost_1e6 <= 0:
        raise CostModelError("power and cost must be positive")
    return frequency_ghz / ((total_power_mw / 1000.0) * die_cost_1e6)
