#!/usr/bin/env python3
"""Power delivery study: IR drop in heterogeneous vs homogeneous M3D.

The paper's Section V names PDN analysis as required future work: the top
die of a monolithic stack is fed through power vias from the bottom die,
so its supply rail is softer.  This study quantifies the question for the
CPU design: the heterogeneous stack's low-power 9-track top die draws
less current, which offsets exactly that penalty.

Usage::

    python examples/pdn_study.py [--scale 0.4] [--period 1.2]
"""

from __future__ import annotations

import argparse

from repro import make_library_pair
from repro.flow import run_flow_hetero_3d, run_flow_pin3d
from repro.pdn import PdnConfig, analyze_pdn

PAPER_CPU_CELLS = 150_000


def report(label: str, design) -> None:
    scale_factor = PAPER_CPU_CELLS / max(1, len(design.netlist.instances))
    result = analyze_pdn(design, current_scale=scale_factor)
    print(f"== {label} (currents scaled x{scale_factor:.0f} to paper size) ==")
    for tier, tr in sorted(result.tiers.items()):
        verdict = "OK" if tr.meets_budget() else "VIOLATES 5% budget"
        print(f"  tier {tier} ({tr.vdd_v:.2f} V): "
              f"{tr.total_current_ma:8.1f} mA, "
              f"worst drop {tr.worst_drop_mv:6.2f} mV "
              f"({tr.worst_drop_fraction:6.2%})  [{verdict}]")
    print()


def via_sweep(design) -> None:
    scale_factor = PAPER_CPU_CELLS / max(1, len(design.netlist.instances))
    print("== power-via resistance sweep (hetero top die) ==")
    print(f"{'via R (ohm)':>12s} {'top-die worst drop':>20s}")
    for via_r in (0.1, 0.35, 1.0, 2.0, 5.0):
        result = analyze_pdn(
            design, PdnConfig(via_r_ohm=via_r), current_scale=scale_factor
        )
        print(f"{via_r:12.2f} {result.tiers[1].worst_drop_mv:17.2f} mV")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--period", type=float, default=1.2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    lib12, lib9 = make_library_pair()
    homo, _ = run_flow_pin3d(
        "cpu", lib12, period_ns=args.period, scale=args.scale, seed=args.seed
    )
    het, _ = run_flow_hetero_3d(
        "cpu", lib12, lib9, period_ns=args.period, scale=args.scale,
        seed=args.seed,
    )
    report("homogeneous 12-track 3-D", homo)
    report("heterogeneous 9+12-track 3-D", het)
    via_sweep(het)


if __name__ == "__main__":
    main()
