#!/usr/bin/env python3
"""Deep dive into one heterogeneous CPU implementation (Table VIII style).

Implements the CPU core as a 9+12-track heterogeneous M3D design and
reports everything Section IV-C analyzes: the clock network's tier
distribution, the critical path's per-tier breakdown, the memory
interconnect latencies, and ASCII density maps of both tiers
(the Fig. 3(c)/Fig. 4 content).

Usage::

    python examples/hetero_cpu_deep_dive.py [--scale 0.5] [--period 1.2]
"""

from __future__ import annotations

import argparse

from repro import make_library_pair
from repro.experiments.figures import density_heatmap, layout_stats
from repro.flow import run_flow_hetero_3d


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--period", type=float, default=1.2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    lib12, lib9 = make_library_pair()
    design, result = run_flow_hetero_3d(
        "cpu", lib12, lib9, period_ns=args.period, scale=args.scale,
        seed=args.seed,
    )

    print("== implementation ==")
    print(layout_stats(design).describe())
    print(f"WNS {result.wns_ns:+.3f} ns, TNS {result.tns_ns:+.2f} ns, "
          f"power {result.total_power_mw:.3f} mW "
          f"(clock {result.power.clock_mw:.3f} mW, "
          f"leakage {result.power.leakage_mw * 1000:.2f} uW)")
    print(f"flow notes: {design.notes}")

    print("\n== clock network (Table VIII) ==")
    clock = result.clock
    print(f"buffers: {clock.buffer_count} total, "
          f"{clock.buffer_count_by_tier.get(1, 0)} on the 9-track top die, "
          f"{clock.buffer_count_by_tier.get(0, 0)} on the 12-track bottom die")
    print(f"buffer area {clock.buffer_area_um2:.1f} um2, "
          f"wirelength {clock.wirelength_mm:.3f} mm")
    print(f"max latency {clock.max_latency_ns:.3f} ns, "
          f"max skew {clock.max_skew_ns:.3f} ns, "
          f"power {clock.power_mw:.3f} mW")

    print("\n== critical path (Table VIII) ==")
    cp = result.critical_path
    print(f"endpoint {cp.endpoint[0]}.{cp.endpoint[1]}, "
          f"slack {cp.slack_ns:+.3f} ns, skew {cp.clock_skew_ns:+.3f} ns")
    print(f"{cp.total_cells} cells "
          f"({cp.cells_on_tier(0)} bottom / {cp.cells_on_tier(1)} top), "
          f"{cp.miv_count} MIV crossings")
    print(f"cell delay {cp.cell_delay_ns:.3f} ns "
          f"(bottom {cp.cell_delay_on_tier(0):.3f}, "
          f"top {cp.cell_delay_on_tier(1):.3f}); "
          f"wire delay {cp.wire_delay_ns:.3f} ns")
    avg0 = cp.average_cell_delay_on_tier(0) * 1000
    avg1 = cp.average_cell_delay_on_tier(1) * 1000
    print(f"average stage delay: bottom {avg0:.1f} ps, top {avg1:.1f} ps")
    print("stage-by-stage:")
    for step in cp.steps:
        tier = "BOT" if step.tier == 0 else "TOP"
        marker = " <-- crosses tier" if step.crosses_tier else ""
        print(f"  {tier} {step.cell_name:16s} arc {step.arc_delay_ns * 1e3:5.1f} ps"
              f"  wire {step.wire_delay_ns * 1e3:5.2f} ps{marker}")

    if result.memory_nets is not None:
        print("\n== memory interconnects (Table VIII) ==")
        m = result.memory_nets
        print(f"input-net latency (RMS) {m.input_net_latency_ps:.1f} ps")
        print(f"output-net latency (RMS) {m.output_net_latency_ps:.1f} ps")
        print(f"net switching power {m.net_switching_power_uw:.2f} uW")

    print("\n== tier density maps (Fig. 3(c)) ==")
    for tier, label in ((0, "bottom / 12-track"), (1, "top / 9-track")):
        print(f"[{label}]")
        print(density_heatmap(design, tier=tier))
        print()


if __name__ == "__main__":
    main()
