#!/usr/bin/env python3
"""Quickstart: implement one netlist in all five configurations.

Runs the CPU design (a Cortex-A7-class synthetic core with cache macros)
through the paper's five configurations of Fig. 1 at one frequency
target, and prints the Table VI/VII-style comparison.

Usage::

    python examples/quickstart.py [--design cpu] [--scale 0.4] [--seed 0]

Expect a couple of minutes at the default scale.
"""

from __future__ import annotations

import argparse
import time

from repro import make_library_pair
from repro.flow import run_flow_2d, run_flow_hetero_3d, run_flow_pin3d


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="cpu",
                        choices=["aes", "ldpc", "netcard", "cpu"])
    parser.add_argument("--scale", type=float, default=0.4,
                        help="netlist size scale (1.0 = a few thousand cells)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--period", type=float, default=None,
                        help="clock period in ns (default: per-design preset)")
    args = parser.parse_args()

    presets = {"aes": 0.55, "ldpc": 0.5, "netcard": 0.7, "cpu": 1.2}
    period = args.period or presets[args.design]

    lib12, lib9 = make_library_pair()
    runs = [
        ("2D 9-track", lambda: run_flow_2d(
            args.design, lib9, period_ns=period, scale=args.scale,
            seed=args.seed)),
        ("2D 12-track", lambda: run_flow_2d(
            args.design, lib12, period_ns=period, scale=args.scale,
            seed=args.seed)),
        ("3D 9-track", lambda: run_flow_pin3d(
            args.design, lib9, period_ns=period, scale=args.scale,
            seed=args.seed)),
        ("3D 12-track", lambda: run_flow_pin3d(
            args.design, lib12, period_ns=period, scale=args.scale,
            seed=args.seed)),
        ("3D heterogeneous", lambda: run_flow_hetero_3d(
            args.design, lib12, lib9, period_ns=period, scale=args.scale,
            seed=args.seed)),
    ]

    print(f"design={args.design}  period={period} ns "
          f"({1.0 / period:.2f} GHz)  scale={args.scale}\n")
    header = (f"{'config':18s} {'WNS(ns)':>9s} {'Si(um2)':>10s} "
              f"{'WL(mm)':>8s} {'P(mW)':>8s} {'PDP(pJ)':>9s} "
              f"{'cost(1e-6C)':>12s} {'PPC':>9s}")
    print(header)
    print("-" * len(header))
    for label, fn in runs:
        t0 = time.time()
        _design, r = fn()
        print(
            f"{label:18s} {r.wns_ns:+9.3f} {r.si_area_mm2 * 1e6:10.0f} "
            f"{r.wirelength_mm:8.2f} {r.total_power_mw:8.3f} "
            f"{r.pdp_pj:9.3f} {r.die_cost_1e6:12.4f} {r.ppc:9.1f}"
            f"   [{time.time() - t0:.1f}s]"
        )


if __name__ == "__main__":
    main()
