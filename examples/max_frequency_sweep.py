#!/usr/bin/env python3
"""Maximum-frequency sweep: the paper's iso-performance methodology.

Section IV-A2: "the faster 12-track 2-D implementations are swept across
a range of frequencies to find the maximum achievable target", accepting
a period when WNS stays within ~5-7% of it; that frequency then becomes
the target every other configuration must hit.

This example runs the sweep for one netlist, prints each probe, and then
shows how the five configurations behave at the chosen target.

Usage::

    python examples/max_frequency_sweep.py [--design ldpc] [--scale 0.4]
"""

from __future__ import annotations

import argparse

from repro import make_library_pair
from repro.flow import run_flow_2d, run_flow_hetero_3d, run_flow_pin3d

WNS_TOLERANCE = 0.06


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="ldpc",
                        choices=["aes", "ldpc", "netcard", "cpu"])
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    lib12, lib9 = make_library_pair()
    bounds = {"aes": (0.25, 1.6), "ldpc": (0.4, 2.4),
              "netcard": (0.4, 2.4), "cpu": (0.5, 3.0)}
    lo, hi = bounds[args.design]
    best = hi

    print(f"binary sweep of 12-track 2-D {args.design} "
          f"(accept when WNS >= -{WNS_TOLERANCE:.0%} of the period):")
    for _ in range(6):
        mid = 0.5 * (lo + hi)
        _d, r = run_flow_2d(args.design, lib12, period_ns=mid,
                            scale=args.scale, seed=args.seed,
                            opt_iterations=8)
        met = r.wns_ns >= -WNS_TOLERANCE * mid
        print(f"  period {mid:6.3f} ns ({1 / mid:5.2f} GHz): "
              f"WNS {r.wns_ns:+.3f} -> {'MET' if met else 'failed'}")
        if met:
            best, hi = mid, mid
        else:
            lo = mid
        if hi - lo < 0.02:
            break

    print(f"\nmax frequency: {1 / best:.2f} GHz (period {best:.3f} ns)")
    print("\nall five configurations at that target:")
    runs = [
        ("2D 9T", lambda: run_flow_2d(args.design, lib9, period_ns=best,
                                      scale=args.scale, seed=args.seed)),
        ("2D 12T", lambda: run_flow_2d(args.design, lib12, period_ns=best,
                                       scale=args.scale, seed=args.seed)),
        ("3D 9T", lambda: run_flow_pin3d(args.design, lib9, period_ns=best,
                                         scale=args.scale, seed=args.seed)),
        ("3D 12T", lambda: run_flow_pin3d(args.design, lib12, period_ns=best,
                                          scale=args.scale, seed=args.seed)),
        ("3D HET", lambda: run_flow_hetero_3d(
            args.design, lib12, lib9, period_ns=best, scale=args.scale,
            seed=args.seed)),
    ]
    for label, fn in runs:
        _d, r = fn()
        print(f"  {label:7s} WNS {r.wns_ns:+.3f} ns, "
              f"power {r.total_power_mw:7.3f} mW, "
              f"PDP {r.pdp_pj:7.3f} pJ, PPC {r.ppc:9.1f}")


if __name__ == "__main__":
    main()
