#!/usr/bin/env python3
"""Boundary-cell study: what happens where the two technologies meet.

Reproduces the Section II-B analysis interactively: the FO-4 experiments
of Tables II/III, the level-shifter voltage-margin rule, and a sweep of
the top-die supply showing why the paper keeps V_DDH - V_DDL below
0.3 x V_DDH (and in practice to ~10%).

Usage::

    python examples/boundary_cells.py
"""

from __future__ import annotations

import dataclasses

from repro.experiments.tables import table2_output_boundary, table3_input_boundary
from repro.liberty.presets import make_library_pair
from repro.liberty.spice import (
    SLOW_INVERTER,
    FAST_INVERTER,
    input_voltage_delay_factor,
    input_voltage_leakage_factor,
    simulate_fo4_input_boundary,
)


def print_fo4_tables() -> None:
    for title, rows in (
        ("Table II: heterogeneity at the driver output", table2_output_boundary()),
        ("Table III: heterogeneity at the driver input", table3_input_boundary()),
    ):
        print(f"== {title} ==")
        print(f"{'case':14s} {'tiers':>11s} {'riseD ps':>9s} {'fallD ps':>9s} "
              f"{'riseS ps':>9s} {'leak uW':>9s} {'total uW':>9s}")
        for r in rows:
            print(f"{r.label:14s} {r.tier0 + '/' + r.tier1:>11s} "
                  f"{r.rise_delay_ps:9.1f} {r.fall_delay_ps:9.1f} "
                  f"{r.rise_slew_ps:9.1f} {r.leakage_uw:9.3f} "
                  f"{r.total_power_uw:9.2f}")
        print()


def voltage_margin_rule() -> None:
    lib12, lib9 = make_library_pair()
    print("== level-shifter rule: V_DDH - V_DDL < 0.3 x V_DDH ==")
    print(f"pair ({lib12.vdd_v:.2f} V, {lib9.vdd_v:.2f} V): "
          f"compatible = {lib12.voltage_compatible_with(lib9)}")
    for vdd_low in (0.85, 0.81, 0.75, 0.70, 0.60, 0.50):
        candidate = dataclasses.replace(
            lib9, vdd_v=vdd_low, _cells=lib9._cells,
            _by_function=lib9._by_function,
        )
        ok = lib12.voltage_compatible_with(candidate)
        print(f"  top die at {vdd_low:.2f} V: "
              f"{'OK without level shifters' if ok else 'needs level shifters'}")
    print()


def supply_sweep() -> None:
    print("== fast-tier cell driven from a sweeping foreign rail ==")
    print(f"{'V_G (V)':>8s} {'delay x':>9s} {'leakage x':>10s}")
    for vg in (0.90, 0.87, 0.84, 0.81, 0.78, 0.75, 0.72):
        d = input_voltage_delay_factor(0.90, 0.30, vg)
        l = input_voltage_leakage_factor(0.90, 0.30, vg)
        print(f"{vg:8.2f} {d:9.3f} {l:10.1f}")
    print("(the exponential leakage blow-up is why the rail gap stays ~10%)\n")

    print("== the same FO-4, slow cell overdriven from the fast rail ==")
    r = simulate_fo4_input_boundary(SLOW_INVERTER, FAST_INVERTER)
    base = simulate_fo4_input_boundary(SLOW_INVERTER, SLOW_INVERTER)
    d = r.delta_pct(base)
    print(f"rise delay {d['rise_delay']:+.1f}%, leakage {d['leakage']:+.1f}%, "
          f"total power {d['total_power']:+.1f}%")


def main() -> None:
    print_fo4_tables()
    voltage_margin_rule()
    supply_sweep()


if __name__ == "__main__":
    main()
