#!/usr/bin/env python3
"""Cost-model explorer: when does 3-D integration pay off? (Table IV)

Sweeps die area and the cost model's knobs (3-D integration penalty,
yield degradation, defect density) and prints the 2-D vs 3-D die-cost
crossover the paper's Section II-C discussion is about: big dice win
from 3-D's yield advantage (two small dice yield better than one big
one), small dice just pay the integration premium.

Usage::

    python examples/cost_explorer.py
"""

from __future__ import annotations

from repro.cost.model import CostModel


def sweep_die_area() -> None:
    model = CostModel()
    print("die area sweep (same total silicon, 2-D vs folded 3-D):")
    print(f"{'Si mm2':>8s} {'2D cost':>12s} {'3D cost':>12s} {'3D/2D':>8s}")
    for si_mm2 in (0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 25.0, 100.0, 400.0):
        c2d = model.die_cost(si_mm2, 1).die_cost
        c3d = model.die_cost(si_mm2 / 2, 2).die_cost
        print(f"{si_mm2:8.2f} {c2d * 1e6:12.3f} {c3d * 1e6:12.3f} "
              f"{c3d / c2d:8.3f}")
    print("(costs in 1e-6 C'; ratio < 1 means 3-D is cheaper)\n")


def sweep_integration_penalty() -> None:
    print("3-D integration penalty sweep (alpha), 1 mm2 of silicon:")
    print(f"{'alpha':>8s} {'3D/2D cost':>12s}")
    for alpha in (0.0, 0.05, 0.10, 0.20, 0.40):
        model = CostModel(integration_penalty=alpha)
        c2d = model.die_cost(1.0, 1).die_cost
        c3d = model.die_cost(0.5, 2).die_cost
        print(f"{alpha:8.2f} {c3d / c2d:12.3f}")
    print()


def sweep_defect_density() -> None:
    print("defect density sweep (D_w), 4 mm2 of silicon:")
    print(f"{'D_w/mm2':>8s} {'2D yield':>10s} {'3D yield':>10s} {'3D/2D cost':>12s}")
    for dw in (0.05, 0.1, 0.2, 0.5, 1.0):
        model = CostModel(defect_density_per_mm2=dw)
        r2d = model.die_cost(4.0, 1)
        r3d = model.die_cost(2.0, 2)
        print(f"{dw:8.2f} {r2d.die_yield:10.3f} {r3d.die_yield:10.3f} "
              f"{r3d.die_cost / r2d.die_cost:12.3f}")
    print("(higher defect densities favor folding into two smaller dice)\n")


def paper_design_costs() -> None:
    model = CostModel()
    print("Table VI footprints through the cost model (1e-6 C'):")
    print(f"{'design':>8s} {'Si mm2':>8s} {'hetero 3D':>10s} {'flat 2D':>10s}")
    for name, si in (("netcard", 0.384), ("aes", 0.126),
                     ("ldpc", 0.216), ("cpu", 0.390)):
        c3d = model.die_cost(si / 2, 2).die_cost * 1e6
        c2d = model.die_cost(si, 1).die_cost * 1e6
        print(f"{name:>8s} {si:8.3f} {c3d:10.2f} {c2d:10.2f}")


def main() -> None:
    sweep_die_area()
    sweep_integration_penalty()
    sweep_defect_density()
    paper_design_costs()


if __name__ == "__main__":
    main()
