"""Benchmark: regenerate Fig. 1 (the five technology/design configurations)."""

from conftest import emit

from repro.experiments.figures import fig1_configurations


def test_fig1_configurations(benchmark):
    configs = benchmark(fig1_configurations)
    lines = [
        f"({chr(ord('a') + i)}) {c['name']:8s} {c['tiers']} tier(s), "
        f"{c['tracks']:>5s}-track: {c['description']}"
        for i, c in enumerate(configs)
    ]
    emit("Fig. 1: the five configurations", "\n".join(lines))

    names = {c["name"] for c in configs}
    assert names == {"2D_9T", "2D_12T", "3D_9T", "3D_12T", "3D_HET"}
    by_name = {c["name"]: c for c in configs}
    assert by_name["2D_9T"]["tiers"] == "1"
    assert by_name["2D_12T"]["tiers"] == "1"
    assert by_name["3D_9T"]["tiers"] == "2"
    assert by_name["3D_12T"]["tiers"] == "2"
    assert by_name["3D_HET"]["tiers"] == "2"
    assert by_name["3D_HET"]["tracks"] == "9+12"
